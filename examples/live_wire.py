#!/usr/bin/env python3
"""The batched wire: drain/flush datagram I/O vs the classic transports.

On a zero-latency loopback the live stack's throughput ceiling is not
the protocol — it is the wire mechanics: one event-loop wakeup and one
`bytes` allocation per datagram.  The batched layer of `repro.live.wire`
(docs/PROTOCOL.md §15) drains every queued datagram per wakeup through
ctypes `recvmmsg`, flushes sends in `sendmmsg` batches, and encodes
outbound packets into pooled buffers.  This example shows it two ways:

* the **isolated wire pump** (`repro.live.pump`) — identical
  credit-based 8-lane workloads of real encoded frames through the real
  four-socket proxy topology, classic vs batched, reporting the raw
  wire-layer speedup the bench gates as ``live_wire_speedup``;
* a **full live scenario** run over both wires with the same seed,
  verifying the verdicts and the delivered byte stream are identical —
  the wire moves datagrams, never the protocol.

Run:  python examples/live_wire.py
"""

from __future__ import annotations

from repro.live import BackoffPolicy, LinkProfile, LiveScenario, run_live_scenario
from repro.live.pump import run_wire_pump
from repro.live.wire import mmsg_available

POLL = BackoffPolicy(base=0.004, factor=2.0, cap=0.05, jitter=0.25)


def wire_pump() -> None:
    print("== isolated wire pump: 8 lanes, every message acked ==\n")
    print(f"   (recvmmsg/sendmmsg fast path available: {mmsg_available()})\n")
    rates = {}
    for wire in ("classic", "batched"):
        report = run_wire_pump(wire=wire, messages=6000, lanes=8)
        rates[wire] = report.messages_per_second
        extra = ""
        if report.wire_stats is not None:
            stats = report.wire_stats
            extra = (f"  [{stats.datagrams_received} datagrams in "
                     f"{stats.recv_batches} drain chunks"
                     + (", mmsg" if stats.mmsg else "") + "]")
        print(f"  {wire:>8}: {rates[wire]:>9,.0f} messages/sec{extra}")
    print(f"\n  wire-layer speedup: {rates['batched'] / rates['classic']:.2f}x\n")


def verdict_parity() -> None:
    print("== same scenario, both wires: verdicts must not move ==\n")
    reports = {}
    for wire in ("classic", "batched"):
        reports[wire] = run_live_scenario(LiveScenario(
            messages=20,
            seed=11,
            lanes=4,
            profile=LinkProfile(drop=0.04, duplicate=0.03, delay=0.001),
            poll=POLL,
            budget=45.0,
            give_up_idle=5.0,
            wire=wire,
            label=f"wire-{wire}",
        ))
        r = reports[wire]
        print(f"  {wire:>8}: status={r.status.value}  oks={r.oks}"
              f"  safety={'pass' if r.safety.passed else 'FAIL'}"
              f"  liveness={'pass' if r.liveness_passed else 'FAIL'}")
    classic, batched = reports["classic"], reports["batched"]
    assert classic.delivered_stream == batched.delivered_stream
    assert batched.pool_outstanding == 0
    print("\n  delivered byte streams identical; "
          "all pooled buffers returned\n")


if __name__ == "__main__":
    wire_pump()
    verdict_parity()
