#!/usr/bin/env python3
"""The paper's Section 5 open problems, made executable.

Three mini-demos, one per open direction the paper names:

1. **Forgery** ("the main open problem"): drop the causality axiom and let
   the channel deliver packets that were never sent.  The paper
   conjectures safety survives but liveness falls — shown here with the
   adaptive generation-chasing attacker (zero progress, safety intact)
   and its exponential price tag.
2. **Content awareness**: drop the obliviousness assumption.  A
   packet-reading attacker kills the fixed-nonce strawman surgically, yet
   the real protocol still stands — its security rests on challenge
   entropy, not adversary blindness (causality doing the real work).
3. **Efficiency** ("select good size, bound, increment functions"): the
   size/bound policy ablation in one line each.

Run:  python examples/open_problems.py
"""

from __future__ import annotations

from repro import SequentialWorkload, Simulator, check_all_safety, make_data_link
from repro.baselines import make_naive_handshake_link
from repro.core import AggressivePolicy, PrintedPaperPolicy, SoundPolicy
from repro.extensions import (
    ContentAwareReplayAttacker,
    ForgeryLivenessAttacker,
    ForgingSimulator,
)


def demo_forgery() -> None:
    print("1. FORGERY (causality dropped) " + "-" * 34)
    link = make_data_link(epsilon=2.0 ** -14, seed=1)
    attacker = ForgeryLivenessAttacker(link.params)
    sim = ForgingSimulator(
        link, attacker, SequentialWorkload(3), seed=1,
        max_steps=20_000, enforce_fairness=False,
    )
    result = sim.run()
    report = check_all_safety(result.trace)
    print(f"   messages delivered: {result.metrics.messages_ok} (liveness lost)")
    print(f"   safety conditions:  {'all hold' if report.passed else 'VIOLATED'}")
    print(f"   forged packets:     {attacker.forgeries} "
          f"(cost doubles per generation: now at gen {attacker.generation})")
    print(f"   receiver challenge: {len(link.receiver.rho)} bits and growing\n")


def demo_content_awareness() -> None:
    print("2. CONTENT AWARENESS (obliviousness dropped) " + "-" * 20)
    for label, factory in (
        ("fixed 6-bit nonce", lambda s: make_naive_handshake_link(6, seed=s)),
        ("paper protocol", lambda s: make_data_link(epsilon=2.0 ** -12, seed=s)),
    ):
        broken = 0
        for seed in range(5):
            link = factory(seed)
            attacker = ContentAwareReplayAttacker(harvest_messages=70)
            sim = Simulator(
                link, attacker, SequentialWorkload(200), seed=seed,
                max_steps=30_000,
            )
            attacker.attach_channels(sim.channels)
            result = sim.run()
            if not check_all_safety(result.trace).passed:
                broken += 1
        print(f"   {label:>20}: broken in {broken}/5 runs")
    print("   (entropy, not blindness, carries the security)\n")


def demo_policy_choices() -> None:
    print("3. SIZE/BOUND FUNCTIONS (efficiency) " + "-" * 28)
    epsilon = 2.0 ** -10
    for policy in (SoundPolicy(), PrintedPaperPolicy(), AggressivePolicy()):
        mass = policy.total_failure_mass(epsilon)
        print(f"   {policy.name:>10}: size(1)={policy.size(1, epsilon):>2} bits, "
              f"bound(1)={policy.bound(1)}, "
              f"union bound {'<= eps/4 (sound)' if policy.is_sound(epsilon) else f'= {mass:.2e} (NOT sound)'}")
    print("   (run `pytest benchmarks/test_bench_policy_ablation.py` for the full trade-off)")


def main() -> None:
    demo_forgery()
    demo_content_awareness()
    demo_policy_choices()


if __name__ == "__main__":
    main()
