#!/usr/bin/env python3
"""The transport-layer deployment of Section 1.

Runs the data link between the corners of a 4x4 mesh whose links fail and
recover at random, once over each semi-reliable relay the paper names:

* flooding — every node forwards to all neighbours; robust, costs on the
  order of |E| transmissions per packet, and duplicates packets whenever
  the topology offers several routes (the data link absorbs this);
* path maintenance ([HK89]) — one cached route, recomputed only when an
  error is detected; near-optimal when quiet, loses packets exactly when
  links break mid-route.

Run:  python examples/transport_layer.py
"""

from __future__ import annotations

from repro import SequentialWorkload, Simulator, check_all_safety, make_data_link
from repro.transport import FloodingRelay, NetworkRelay, PathRelay, mesh_network

MESSAGES = 12


def run_relay(relay_name: str, relay_cls) -> None:
    network = mesh_network(4, fail_rate=0.03, repair_rate=0.3)
    relay = relay_cls(network)
    adversary = NetworkRelay(network, relay)
    link = make_data_link(epsilon=2.0 ** -12, seed=99)
    simulator = Simulator(
        link, adversary, SequentialWorkload(MESSAGES), seed=99, max_steps=120_000
    )
    result = simulator.run()
    report = check_all_safety(result.trace)

    print(f"--- {relay_name} over a failing 4x4 mesh "
          f"({network.edge_count} links) ---")
    print(f"  messages OK'd:        {result.metrics.messages_ok}/{MESSAGES}")
    print(f"  end-to-end packets:   {result.metrics.packets_sent}")
    print(f"  per-hop transmissions: {relay.transmissions}")
    print(f"  hops per message:     "
          f"{relay.transmissions / max(result.metrics.messages_ok, 1):.1f}")
    if isinstance(relay, PathRelay):
        print(f"  path repairs:         {relay.path_repairs}")
        print(f"  packets lost en route: {relay.losses}")
    print(f"  safety conditions:    {'all OK' if report.passed else 'VIOLATED'}")
    print()
    assert report.passed


def main() -> None:
    run_relay("flooding relay", FloodingRelay)
    run_relay("path-maintenance relay", PathRelay)
    print("Same data link, same guarantees; the relay only changes the cost.")


if __name__ == "__main__":
    main()
