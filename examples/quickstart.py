#!/usr/bin/env python3
"""Quickstart: reliable messaging over a hostile channel in ~30 lines.

Builds the Goldreich-Herzberg-Mansour data link, runs it against a channel
that loses 30% of packets, duplicates 30%, reorders half of what remains
and occasionally crashes both stations — then verifies every correctness
condition of the paper on the recorded execution.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SequentialWorkload, Simulator, check_all_safety, make_data_link
from repro.adversary import FaultProfile, RandomFaultAdversary


def main() -> None:
    # A transmitter/receiver pair with per-message error probability 2^-16.
    link = make_data_link(epsilon=2.0 ** -16, seed=2024)

    # The channel's worst-case behaviour is played by an adversary; this one
    # injects every fault class of the paper's model.
    adversary = RandomFaultAdversary(
        FaultProfile(loss=0.3, duplicate=0.3, reorder=0.5, crash_t=0.002, crash_r=0.002)
    )

    # The higher layer submits 25 unique messages (Axioms 1-2 enforced).
    simulator = Simulator(link, adversary, SequentialWorkload(25), seed=7)
    result = simulator.run()

    print(f"completed:            {result.completed}")
    print(f"messages submitted:   {result.metrics.messages_submitted}")
    print(f"messages OK'd:        {result.metrics.messages_ok}")
    print(f"crashes injected:     {result.metrics.crashes_t + result.metrics.crashes_r}")
    print(f"packets sent:         {result.metrics.packets_sent}")
    print(f"packets per message:  {result.metrics.per_message_packets:.2f}")
    print(f"peak nonce storage:   {result.metrics.storage_peak_bits} bits")

    # Verify the Section 2.6 conditions: causality, order, no duplication,
    # no replay.  A violation here would be a (probability <= epsilon) event
    # or a bug.
    report = check_all_safety(result.trace)
    for check in report.all_reports:
        print(f"{check.condition:>16}: {'OK' if check.passed else 'VIOLATED'} "
              f"({check.trials} trials)")
    assert report.passed


if __name__ == "__main__":
    main()
