#!/usr/bin/env python3
"""A hostile Monte-Carlo campaign, survived and dissected.

Runs 50 executions of the Section 3 fixed-nonce strawman under a scripted
fault plan (examples/fault_plan.json) that forces, within one campaign:

* a **worker-process death** — run 33 hard-aborts its worker mid-run;
* a **hung run** — run 20 stalls forever and is reaped by the per-run
  wall-clock watchdog;
* a **deterministic safety failure** — run 4 takes the paper's
  crash-then-replay (spaced duplicate burst, then a receiver crash), and
  the 2-bit fixed nonce accepts a replayed data packet.

The supervisor isolates every casualty, aggregates the runs that did
produce data (with the missing mass reported explicitly), and archives
forensics — seed, fault plan, safety verdicts, full trace — for each
non-ok run.  The script then feeds the safety failure to the delta
debugger, which hands back the smallest (messages, fault plan) pair that
still reproduces it.

Run:  python examples/campaign_forensics.py
"""

from __future__ import annotations

import os
import tempfile

from repro.adversary.benign import ReliableAdversary
from repro.baselines import make_naive_handshake_link
from repro.resilience import (
    CampaignConfig,
    FaultPlan,
    RunStatus,
    run_campaign,
    shrink_repro,
)
from repro.sim.runner import RunSpec
from repro.sim.workload import SequentialWorkload

PLAN_PATH = os.path.join(os.path.dirname(__file__), "fault_plan.json")


def strawman_spec(messages: int = 6) -> RunSpec:
    return RunSpec(
        link_factory=lambda seed: make_naive_handshake_link(nonce_bits=2, seed=seed),
        adversary_factory=ReliableAdversary,
        workload_factory=lambda seed: SequentialWorkload(messages),
        max_steps=50_000,
        label="fixed:2",
    )


def main() -> None:
    plan = FaultPlan.load(PLAN_PATH)
    artifacts = tempfile.mkdtemp(prefix="campaign-forensics-")
    config = CampaignConfig(jobs=4, timeout=2.0, retries=0, artifacts_dir=artifacts)

    result = run_campaign(
        strawman_spec(), runs=50, base_seed=0, config=config, fault_plan=plan
    )
    print(result.render())
    print()

    # Run 4 is the scripted crash-then-replay: a no-duplication violation,
    # not one of the strawman's many baseline order failures.
    failure = result.reports[4]
    assert failure.status is RunStatus.SAFETY_FAILED
    print(f"shrinking run {failure.index} (seed {failure.seed}) ...")
    minimal = shrink_repro(
        lambda messages: strawman_spec(messages),
        seed=failure.seed,
        plan=plan,
        messages=6,
        run_index=failure.index,
        timeout=5.0,
    )
    print(f"minimal repro: {minimal.messages} messages, "
          f"{len(minimal.plan.events)} fault events "
          f"({minimal.probes} probes)")
    print(minimal.plan.to_json())
    print(f"\nforensics archived under {artifacts}")


if __name__ == "__main__":
    main()
