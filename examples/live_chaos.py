#!/usr/bin/env python3
"""Live wire: the protocol over real UDP through a chaos proxy.

Deploys the transmitter and receiver automata as concurrent asyncio
datagram endpoints on the loopback interface and routes every datagram
through an in-path chaos proxy (docs/PROTOCOL.md §11) that injects:

* stochastic wire faults — 8% drop, 5% duplication, 5% reordering, plus
  1–3 ms of one-way latency;
* two scripted amnesia crashes from a campaign-style fault plan: the
  transmitter dies at wire turn 30, the receiver at wire turn 80, each
  cold-restarting with empty volatile state;

then prints the streaming checkers' Section 2.6 verdicts for the live
trace, followed by a black-hole run showing the bounded give-up path
(UNRECONCILABLE as graceful degradation — never a hang).

Run:  python examples/live_chaos.py
"""

from __future__ import annotations

from repro.live import BackoffPolicy, LinkProfile, LiveScenario, run_live_scenario
from repro.resilience.faultplan import CrashAt, FaultPlan

POLL = BackoffPolicy(base=0.005, factor=2.0, cap=0.1, jitter=0.5)


def chaos_delivery() -> None:
    report = run_live_scenario(LiveScenario(
        messages=50,
        seed=42,
        profile=LinkProfile(
            drop=0.08, duplicate=0.05, reorder=0.05, delay=0.001, jitter=0.002
        ),
        plan=FaultPlan.of(
            CrashAt(step=30, station="T"),
            CrashAt(step=80, station="R"),
            label="one amnesia crash per station",
        ),
        poll=POLL,
        budget=45.0,
        give_up_idle=6.0,
        label="chaos delivery",
    ))
    print(report.render())
    print()
    verdict = "all conditions satisfied" if report.ok else "CHECKS FAILED"
    print(f"=> {verdict} over a real lossy link with two live crashes\n")


def bounded_give_up() -> None:
    report = run_live_scenario(LiveScenario(
        messages=5,
        seed=3,
        profile=LinkProfile(drop=1.0),  # a black hole: nothing gets through
        poll=POLL,
        budget=15.0,
        give_up_idle=1.0,
        label="black hole",
    ))
    print(report.render())
    print()
    print(f"=> gave up explicitly after {report.wall_seconds:.1f}s: "
          f"{report.reason}")


if __name__ == "__main__":
    chaos_delivery()
    print("=" * 72)
    print()
    bounded_give_up()
