#!/usr/bin/env python3
"""Crash recovery: what [LMF88] says is impossible deterministically.

Subjects four protocols to the same crash storm — random memory-erasing
crashes of both stations while messages flow — and reports which of the
paper's correctness conditions each protocol violates:

* the paper's randomized protocol survives cleanly;
* the alternating-bit protocol duplicates and replays (receiver crashes)
  and emits spurious OKs (transmitter crashes);
* stop-and-wait restarts its counters and repeats history;
* the [BS88]-style nonvolatile-bit variant fixes the receiver side but a
  one-bit deterministic ack still cannot protect the in-flight message
  across a transmitter crash.

Run:  python examples/crash_recovery.py
"""

from __future__ import annotations

from repro import SequentialWorkload, Simulator, check_all_safety, make_data_link
from repro.adversary import CrashStormAdversary
from repro.baselines import (
    make_abp_link,
    make_nonvolatile_bit_link,
    make_stop_and_wait_link,
)

RUNS = 10
MESSAGES = 15
CRASH_RATE = 0.02


def storm(build_link, label: str) -> None:
    totals = {"order": 0, "no-duplication": 0, "no-replay": 0}
    clean_runs = 0
    for seed in range(RUNS):
        link = build_link(seed)
        adversary = CrashStormAdversary(crash_rate=CRASH_RATE, max_crashes=8)
        simulator = Simulator(
            link, adversary, SequentialWorkload(MESSAGES), seed=seed,
            max_steps=100_000,
        )
        result = simulator.run()
        report = check_all_safety(result.trace)
        clean_runs += report.passed
        for check in report.all_reports:
            if check.condition in totals:
                totals[check.condition] += check.failure_count
    print(f"{label:>20}: clean runs {clean_runs}/{RUNS}   "
          f"order={totals['order']} dup={totals['no-duplication']} "
          f"replay={totals['no-replay']}")


def main() -> None:
    print(f"crash storm: rate {CRASH_RATE}/turn on both stations, "
          f"{MESSAGES} messages per run\n")
    storm(lambda s: make_data_link(epsilon=2.0 ** -12, seed=s), "paper protocol")
    storm(lambda s: make_abp_link(), "alternating bit")
    storm(lambda s: make_stop_and_wait_link(16), "stop-and-wait")
    storm(lambda s: make_nonvolatile_bit_link(), "nonvolatile bit")


if __name__ == "__main__":
    main()
