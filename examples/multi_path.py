#!/usr/bin/env python3
"""Multi-path striping: two vertex-disjoint routes through a faulty ring.

The fabric normally pushes the whole window down one shortest path.
``FabricSpec(paths=2)`` discovers vertex-disjoint routes (greedy
shortest-first — on a ring, the two arcs) and stripes window frames
round-robin across them.  Disjointness is the point: no relay serves
both routes, so a fault on one arc cannot touch the other, and the
per-path frame load halves, so the window drains in fewer protocol
rounds.

Three runs on the same pinned seed, all on the kernel hop engine:

1. a quiet ring, single path — the baseline protocol time;
2. the same ring with ``paths=2`` — same stream, measurably fewer
   fabric ticks to completion (the ratio the bench gates as
   ``relay_stripe_speedup``);
3. ``paths=2`` with one arc partitioned mid-stream — the disjoint
   sibling keeps the stream moving and the end-to-end verdict
   converges back to CLEAN.

Run:  python examples/multi_path.py
"""

from __future__ import annotations

from repro.resilience.faultplan import FaultPlan, LinkDownWindow
from repro.transport import FabricRun, FabricSpec
from repro.transport.network import disjoint_routes, ring_network

SEED = 0
MESSAGES = 60

QUIET = FaultPlan.of(label="quiet")
PARTITION = FaultPlan.of(
    LinkDownWindow(start=25, end=60, link=(0, 1)),
    label="one-arc-partition",
)


def run_fabric(title: str, paths: int, plan: FaultPlan) -> FabricRun:
    spec = FabricSpec(
        topology="ring", size=8, messages=MESSAGES, window=16,
        steps_per_tick=4, engine="kernel", paths=paths,
    )
    run = FabricRun(spec, plan.for_run(0).events, seed=SEED)
    outcome = run.run()
    print(f"--- {title} ---")
    print(f"  delivered:      {outcome.metrics.messages_ok}/{MESSAGES} "
          f"in {run.ticks} ticks")
    print(f"  retransmits:    {run.retransmits}"
          f"   dup frames dropped: {run.dup_drops}")
    print(f"  drops:          {run.drop_report()}")
    print(f"  stream verdict: {run.verdict()}")
    print()
    return run


def main() -> None:
    net = ring_network(8)
    routes = disjoint_routes(net.graph, net.source, net.destination, 2)
    print("ring-8 vertex-disjoint routes "
          f"({net.source} -> {net.destination}):")
    for route in routes:
        print(f"  {' - '.join(str(n) for n in route)}")
    print()

    single = run_fabric("single path, quiet ring", 1, QUIET)
    striped = run_fabric("two disjoint paths, quiet ring", 2, QUIET)
    print(f"protocol-time speedup from striping: "
          f"{single.ticks / striped.ticks:.2f}x "
          f"({single.ticks} -> {striped.ticks} ticks)\n")

    faulted = run_fabric(
        "two disjoint paths, one arc partitioned (ticks 25-60)",
        2, PARTITION,
    )
    assert faulted.verdict().startswith("CLEAN"), "striping must mask the fault"
    print("the partitioned arc's frames rerouted over its disjoint sibling;")
    print("the stream stayed exactly-once and the verdict is CLEAN.")


if __name__ == "__main__":
    main()
