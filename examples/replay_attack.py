#!/usr/bin/env python3
"""The Section 3 replay attack, live.

Stages the paper's motivating scenario against two protocols:

1. the "first modification" strawman — a three-packet handshake with one
   fixed-size random string (here 5 bits, so the effect is visible in a
   small run); and
2. the real protocol, whose adaptive nonce extension defeats the attack.

The attacker is *oblivious*: it sees only packet identifiers and lengths.
It lets the link run long enough to archive many old data packets, crashes
both stations, then floods the receiver with the archive.  Against the
fixed nonce, some archived packet usually carries the receiver's fresh
challenge; against the extending nonce, a couple of misses make the
challenge outgrow every packet ever sent.

Run:  python examples/replay_attack.py
"""

from __future__ import annotations

from repro import SequentialWorkload, Simulator, check_all_safety, make_data_link
from repro.adversary import ReplayAttacker
from repro.analysis import fixed_nonce_replay_probability
from repro.baselines import make_naive_handshake_link

RUNS = 10
HARVEST = 80


def attack(build_link, label: str) -> None:
    broken = 0
    for seed in range(RUNS):
        link = build_link(seed)
        attacker = ReplayAttacker(harvest_messages=HARVEST, replay_rounds=6)
        simulator = Simulator(
            link, attacker, SequentialWorkload(240), seed=seed, max_steps=40_000
        )
        result = simulator.run()
        report = check_all_safety(result.trace)
        if not (report.no_replay.passed and report.no_duplication.passed):
            broken += 1
    print(f"{label:>24}: uniqueness broken in {broken}/{RUNS} runs")


def main() -> None:
    predicted = fixed_nonce_replay_probability(5, HARVEST)
    print(f"archive size {HARVEST}, 5-bit fixed nonce -> predicted "
          f"attack success {predicted:.0%}\n")

    attack(
        lambda seed: make_naive_handshake_link(nonce_bits=5, seed=seed),
        "fixed 5-bit nonce",
    )
    attack(
        lambda seed: make_data_link(epsilon=2.0 ** -12, seed=seed),
        "paper protocol",
    )

    print("\nThe fixed-nonce handshake replays old messages; the adaptive")
    print("extension (num/bound/size machinery of Appendix A) never does.")


if __name__ == "__main__":
    main()
