#!/usr/bin/env python3
"""Liveness (Theorem 9): progress against the most grudging fair adversary.

An adversary that never volunteers anything, wrapped in the Axiom-3
fairness enforcer, yields the slowest schedule any *fair* adversary can
impose: nothing moves until fairness forces a single delivery, and the
enforcer always forces the newest packet — old ones may be starved forever.

Theorem 9 says the handshake still completes.  This demo also shows the
contrast: with fairness enforcement disabled (an adversary the theorems
say nothing about), the same schedule blocks forever.

Run:  python examples/liveness_demo.py
"""

from __future__ import annotations

from repro import SequentialWorkload, Simulator, make_data_link, progress_gaps
from repro.adversary import FairnessEnforcer, StallingAdversary


def fair_run(patience: int) -> None:
    link = make_data_link(epsilon=2.0 ** -16, seed=1)
    adversary = FairnessEnforcer(StallingAdversary(), patience=patience)
    simulator = Simulator(
        link, adversary, SequentialWorkload(8), seed=1, max_steps=300_000
    )
    result = simulator.run()
    gaps = progress_gaps(result.trace)
    print(f"  patience {patience:>3}: completed={result.completed}  "
          f"forced deliveries={adversary.forced_deliveries}  "
          f"worst wait={gaps.worst} events  mean={gaps.mean:.0f}")


def unfair_run() -> None:
    link = make_data_link(epsilon=2.0 ** -16, seed=1)
    simulator = Simulator(
        link,
        StallingAdversary(),
        SequentialWorkload(8),
        seed=1,
        enforce_fairness=False,
        max_steps=5_000,
    )
    result = simulator.run()
    print(f"  no Axiom 3:   completed={result.completed}  "
          f"(OKs: {result.metrics.messages_ok}) — as expected, nothing moves")


def main() -> None:
    print("Stalling adversary under Axiom-3 fairness enforcement:")
    for patience in (4, 16, 64):
        fair_run(patience)
    print("\nSame adversary with fairness enforcement disabled:")
    unfair_run()
    print("\nLiveness is exactly as strong as the fairness axiom — and no")
    print("stronger: the theorems promise nothing to unfair schedules.")


if __name__ == "__main__":
    main()
