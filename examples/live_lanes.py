#!/usr/bin/env python3
"""Live striping: K protocol lanes pipelined over one UDP socket pair.

Axiom 1 makes every data link stop-and-wait — one message per ~2-RTT
handshake — so a single live link's throughput is pinned by latency, not
bandwidth.  This example deploys the laned endpoints of
`repro.live.lanes` (docs/PROTOCOL.md §12):

* a throughput sweep over a lossless 2 ms wire at 1, 4, and 8 lanes,
  showing wall-clock rate scaling with K while every lane still earns
  its own Section 2.6 verdicts;
* a 4-lane run through 8% drop + duplication + reordering with one
  scripted transmitter-lane crash and one receiver-lane crash — only
  the lane the trigger datagram rode on dies, its siblings keep their
  handshakes, and the shared resequencer drops the crash-resubmitted
  duplicate so the global stream is delivered exactly once, in order.

Run:  python examples/live_lanes.py
"""

from __future__ import annotations

from repro.live import BackoffPolicy, LinkProfile, LiveScenario, run_live_scenario
from repro.resilience.faultplan import CrashAt, FaultPlan

POLL = BackoffPolicy(base=0.004, factor=2.0, cap=0.05, jitter=0.25)


def lane_sweep() -> None:
    print("== throughput sweep: one socket pair, K protocol lanes ==\n")
    baseline = None
    for lanes in (1, 4, 8):
        report = run_live_scenario(LiveScenario(
            messages=40,
            seed=7,
            lanes=lanes,
            profile=LinkProfile(delay=0.002),  # a realistic-RTT clean wire
            poll=POLL,
            budget=45.0,
            give_up_idle=5.0,
            label=f"sweep-{lanes}",
        ))
        assert report.ok, report.reason
        rate = report.oks / report.wall_seconds
        if baseline is None:
            baseline = rate
        print(
            f"  {lanes} lane(s): {rate:7.1f} msg/s  "
            f"({rate / baseline:4.2f}x vs stop-and-wait, "
            f"reseq high-water {report.resequencer_high_water})"
        )
    print("\n=> same automata, same wire; pipelining is pure lane count\n")


def laned_chaos() -> None:
    print("== 4 lanes through chaos, one crash per station ==\n")
    report = run_live_scenario(LiveScenario(
        messages=50,
        seed=11,
        lanes=4,
        profile=LinkProfile(
            drop=0.08, duplicate=0.08, reorder=0.08, delay=0.002
        ),
        plan=FaultPlan.of(
            CrashAt(step=9, station="T"),
            CrashAt(step=31, station="R"),
            label="one amnesia crash per station, lane-targeted",
        ),
        poll=POLL,
        budget=45.0,
        give_up_idle=6.0,
        label="laned chaos",
    ))
    print(report.render())
    print()
    in_order = report.delivered_stream == [
        b"live-%05d" % i for i in range(50)
    ]
    verdict = (
        "all 50 delivered exactly once, in order, per-lane verdicts clean"
        if report.ok and in_order
        else "CHECKS FAILED"
    )
    print(f"=> {verdict}\n")


if __name__ == "__main__":
    lane_sweep()
    laned_chaos()
