#!/usr/bin/env python3
"""The relay fabric: source-to-destination streams over hostile topologies.

Section 1 frames the data link as the bottom layer of a transport stack.
This demo deploys the complementary top layer: a 4-hop line where *every
directed edge* runs its own complete TM/RM protocol instance, interior
nodes are bounded store-and-forward relays, and the Section 2.6
conditions are verdicted for the source→destination stream as a whole
(per Dolev–Spielrein, per-hop verdicts cannot substitute).

Three runs, all on the same pinned seed:

1. a quiet line — the baseline;
2. the scenario from examples/relay_faults.json — relay 2 crashes with
   total amnesia at tick 40 (its queued frames are destroyed), then the
   link 1-2 partitions for ticks 48-130, longer than the end-to-end
   retransmission timeout — the stream must still arrive exactly once;
3. the same scenario with destination dedup ablated (--no-dedup in the
   CLI): every hop still individually CLEAN, but the stream verdict
   drops to VIOLATED, the executable form of "per-hop safety does not
   compose end to end".

Run:  python examples/multi_hop.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.resilience.faultplan import FaultPlan, LinkDownWindow, RelayCrashAt
from repro.transport import FabricRun, FabricSpec

SEED = 11
MESSAGES = 50

PLAN = FaultPlan.of(
    RelayCrashAt(step=40, node=2),
    LinkDownWindow(start=48, end=130, link=(1, 2)),
    label="relay-crash-partition",
)


def run_fabric(title: str, spec: FabricSpec, plan: FaultPlan) -> FabricRun:
    run = FabricRun(spec, plan.for_run(0).events, seed=SEED)
    outcome = run.run()
    safety = run.monitor.safety_report()
    print(f"--- {title} ---")
    print(f"  delivered:        {outcome.metrics.messages_ok}/{MESSAGES} "
          f"in {run.ticks} ticks")
    print(f"  relay crashes:    {run.relay_crashes}"
          f"   e2e retransmits: {run.retransmits}"
          f"   dup frames dropped: {run.dup_drops}")
    print(f"  queue drops:      {run.queue_drops}"
          f"   reroutes: {run.reroutes}")
    print(f"  stream verdict:   {run.verdict()}")
    if not safety.passed:
        failed = [r.condition for r in safety.all_reports if not r.passed]
        print(f"  violated:         {', '.join(failed)}")
    print()
    return run


def main() -> None:
    spec = FabricSpec(topology="line", size=4, messages=MESSAGES)

    quiet = run_fabric("quiet 4-hop line", spec, FaultPlan.of())
    assert quiet.verdict() == "CLEAN"

    faulted = run_fabric("relay crash + partition (relay_faults.json)",
                         spec, PLAN)
    assert faulted.verdict() == "CLEAN"
    assert faulted.ticks > quiet.ticks

    ablated = run_fabric("same faults, destination dedup ablated",
                         replace(spec, exactly_once=False), PLAN)
    assert ablated.verdict() == "VIOLATED"

    print("Every hop ran the same [GHM89] link protocol in all three runs;")
    print("only the destination's dedup/resequencing buffer separates the")
    print("CLEAN stream from the VIOLATED one.")


if __name__ == "__main__":
    main()
