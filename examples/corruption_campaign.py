#!/usr/bin/env python3
"""Self-stabilizing mode: arbitrary-state corruption with convergence verdicts.

Crash-amnesia wipes a station back to its initial state; corruption is
the harder fault — a station's live volatile memory (nonces, counters,
stored challenges) is scrambled to an arbitrary value mid-run and the
automaton just keeps going from garbage.  The GHM handshake
self-stabilizes: the transmitter echoes the challenge carried by the
*current* poll, so one completed round trip re-synchronizes both ends no
matter what they held.  This demo measures that claim twice
(docs/PROTOCOL.md §13):

1. a Monte-Carlo campaign where every step corrupts each station with
   probability 1%, with the streaming checkers in stabilization mode —
   each corruption suspends the Section 2.6 verdicts until they hold
   clean for a full probation window, and the campaign table reports
   convergence-time percentiles and the stabilized fraction;

2. a live UDP scenario (real sockets, lossy chaos proxy) where each
   station is scrambled mid-run by a scripted, seed-pinned `corrupt`
   event — the supervisor must report STABILIZED, the strictly stronger
   form of DELIVERED.

Run:  python examples/corruption_campaign.py
"""

from __future__ import annotations

from repro.adversary import FaultProfile, RandomFaultAdversary
from repro.adversary.corruption import StateCorruptionAdversary
from repro.live import BackoffPolicy, LinkProfile, LiveScenario, run_live_scenario
from repro.resilience.faultplan import CorruptAt, FaultPlan
from repro.resilience.supervisor import CampaignConfig, run_campaign
from repro.sim.runner import RunSpec

CORRUPT_RATE = 0.01  # per-station, per-step scramble probability


def corruption_campaign() -> None:
    spec = RunSpec.default(
        messages=25,
        label="corruption-campaign",
        stabilization=True,
        stabilization_window=8,
    )
    spec.adversary_factory = lambda: StateCorruptionAdversary(
        rate_t=CORRUPT_RATE,
        rate_r=CORRUPT_RATE,
        inner=RandomFaultAdversary(FaultProfile(loss=0.1, duplicate=0.1)),
    )
    result = run_campaign(spec, 40, base_seed=2024, config=CampaignConfig(jobs=4))
    print(result.render())
    print()
    print(
        f"=> {result.corruptions_injected} corruptions across "
        f"{result.corrupted_runs} runs; "
        f"{result.stabilized_rate:.1%} of corrupted runs re-stabilized "
        f"(convergence p99: {result.convergence_events_p99:.0f} events)\n"
    )


def corrupted_live_run() -> None:
    report = run_live_scenario(LiveScenario(
        messages=40,
        seed=7,
        profile=LinkProfile(drop=0.05, duplicate=0.05, delay=0.001),
        plan=FaultPlan.of(
            CorruptAt(step=12, station="T", seed=9001),
            CorruptAt(step=30, station="R", seed=9002),
            label="one scramble per station",
        ),
        poll=BackoffPolicy(base=0.005, factor=2.0, cap=0.1, jitter=0.5),
        budget=45.0,
        give_up_idle=6.0,
        stabilization_window=8,
        label="corrupted live run",
    ))
    print(report.render())
    print()
    verdict = (
        "STABILIZED: delivered AND every corruption converged"
        if report.status.value == "stabilized"
        else f"status {report.status.value} (expected stabilized)"
    )
    print(f"=> {verdict}\n")


if __name__ == "__main__":
    corruption_campaign()
    corrupted_live_run()
