"""E4 — storage: nonce length tracks *current-message* faults and resets.

The paper's storage argument (Section 1): counters and nonces reset after
every successful message and crash, so memory depends only on the number
of errors during the *present* message — not on history.  Two
measurements:

* sweep the fault rate: the peak footprint grows with per-message fault
  pressure, but is **stationary across the run** (second-half peak equals
  first-half peak) — an unbounded-counter protocol would grow
  monotonically with history;
* compare against the analytic growth curve ``nonce_bits_after_errors``.
"""

from __future__ import annotations

from conftest import emit

from repro.adversary.random_faults import DuplicateFloodAdversary, FaultProfile, RandomFaultAdversary
from repro.analysis.bounds import nonce_bits_after_errors
from repro.core.params import SoundPolicy
from repro.core.protocol import make_data_link
from repro.sim.experiment import Sweep
from repro.sim.runner import RunSpec
from repro.sim.workload import SequentialWorkload
from repro.util.tables import render_table

EPSILON = 2.0 ** -10
FLOODS = [0.0, 0.4, 0.8, 0.95]
RUNS_PER_POINT = 12


def _half_peaks(mc, half):
    """Mean over runs of the peak footprint within one half of the run."""
    totals = 0.0
    for outcome in mc.outcomes:
        samples = outcome.metrics.storage_samples
        middle = len(samples) // 2
        window = samples[:middle] if half == 0 else samples[middle:]
        totals += max(window or [0])
    return totals / len(mc.outcomes)


def run_sweep():
    sweep = Sweep(
        axis_name="flood",
        spec_for=lambda flood: RunSpec(
            link_factory=lambda seed: make_data_link(epsilon=EPSILON, seed=seed),
            adversary_factory=lambda: DuplicateFloodAdversary(
                flood=flood, flood_t_to_r_only=True
            )
            if flood
            else RandomFaultAdversary(FaultProfile()),
            workload_factory=lambda seed: SequentialWorkload(20),
            max_steps=80_000,
            # Poll rate below drain capacity (see E3).
            retry_every=max(4, int(4 / (1.0 - flood)) if flood < 1 else 4),
        ),
        row_for=lambda flood, mc: {
            "peak-bits": mc.mean_storage_peak_bits,
            "1st-half-peak": _half_peaks(mc, 0),
            "2nd-half-peak": _half_peaks(mc, 1),
            "extensions": sum(
                o.metrics.receiver_extensions + o.metrics.transmitter_extensions
                for o in mc.outcomes
            ),
            "errors-counted": sum(
                o.metrics.receiver_errors_counted
                + o.metrics.transmitter_errors_counted
                for o in mc.outcomes
            ),
        },
        runs_per_point=RUNS_PER_POINT,
        title="E4: storage vs fault intensity (stationary across the run)",
    )
    return sweep.run(FLOODS)


def analytic_rows():
    policy = SoundPolicy()
    return [
        [errors, nonce_bits_after_errors(policy, EPSILON, errors)]
        for errors in (0, 2, 6, 14, 30, 62)
    ]


def test_bench_storage_resets(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(result.render())
    emit(
        render_table(
            ["errors-on-message", "nonce-bits (analytic)"],
            analytic_rows(),
            title="E4b: analytic nonce growth per current-message errors",
        )
    )
    peaks = result.column("peak-bits")
    # Peak grows with fault pressure — storage is a function of the
    # current message's error count...
    assert peaks[-1] >= peaks[0]
    # ...but never of history: the footprint is stationary across the run
    # (no accumulation message over message), because every delivery and
    # OK resets the nonces.  An unbounded-counter protocol would show the
    # second-half peak strictly dominating the first at every fault level.
    for first, second in zip(
        result.column("1st-half-peak"), result.column("2nd-half-peak")
    ):
        assert second <= max(first, 1.0) * 1.5
