"""E10 — the Section 5 open problem, measured: forgery breaks liveness only.

Drops the causality axiom (the channel may deliver packets never sent) and
measures the paper's conjecture — "our protocol satisfies all the
correctness conditions except liveness" — across three forgery regimes:

* random noise at fixed rate: safety holds AND liveness survives (the
  doubling bound outpaces any rate-limited forger);
* the adaptive generation-chasing attacker: liveness falls (zero OKs) at
  exponentially growing cost, safety still holds;
* the retry-counter flood: liveness falls for one forged packet per
  ~10^6 turns, safety still holds.
"""

from __future__ import annotations

from conftest import emit

from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.extensions.forgery import (
    ForgeryLivenessAttacker,
    ForgingSimulator,
    RandomNoiseForger,
    RetryFloodAttacker,
)
from repro.sim.workload import SequentialWorkload
from repro.util.tables import render_table

RUNS = 8
MESSAGES = 5
MAX_STEPS = 40_000


def run_regime(name, attacker_factory, enforce_fairness):
    completions = oks = 0
    safe = True
    forgeries = 0
    for seed in range(RUNS):
        link = make_data_link(epsilon=2.0 ** -14, seed=seed)
        attacker = attacker_factory(link)
        sim = ForgingSimulator(
            link,
            attacker,
            SequentialWorkload(MESSAGES),
            seed=seed,
            max_steps=MAX_STEPS,
            enforce_fairness=enforce_fairness,
        )
        result = sim.run()
        completions += result.completed
        oks += result.metrics.messages_ok
        safe = safe and check_all_safety(result.trace).passed
        forgeries += sim.forged_deliveries
    return [name, completions / RUNS, oks / RUNS, forgeries / RUNS, safe]


def run_experiment():
    return [
        run_regime(
            "noise(rate=0.3)",
            lambda link: RandomNoiseForger(link.params, forge_rate=0.3),
            enforce_fairness=True,
        ),
        run_regime(
            "generation-chaser",
            lambda link: ForgeryLivenessAttacker(link.params),
            enforce_fairness=False,
        ),
        run_regime(
            "retry-flood",
            lambda link: RetryFloodAttacker(stall=10 ** 6, reforge_every=2_000),
            enforce_fairness=False,
        ),
    ]


def test_bench_forgery_model(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        render_table(
            ["forgery regime", "completion", "oks/run", "forgeries/run", "safety"],
            rows,
            title="E10: without the causality axiom (Section 5)",
        )
    )
    by_name = {row[0]: row for row in rows}
    # Safety survives forgery in every regime — the paper's conjecture.
    assert all(row[4] for row in rows)
    # Rate-limited noise cannot stop the protocol...
    assert by_name["noise(rate=0.3)"][1] == 1.0
    # ...but the adaptive attacks kill liveness outright.
    assert by_name["generation-chaser"][2] == 0.0
    assert by_name["retry-flood"][2] == 0.0
