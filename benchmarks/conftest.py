"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from EXPERIMENTS.md (the
executable form of the paper's claims), prints its table, and asserts the
claim's *shape* — who wins, what is bounded by what, where the curve bends.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def emit(table_text: str) -> None:
    """Print an experiment table (visible with pytest -s)."""
    print()
    print(table_text)
    print()
