"""E1 — Theorem 3 (order): per-message error probability is at most ε.

Sweeps the security parameter ε under a hostile schedule (loss +
duplication + reordering + crashes + replay flooding) and measures the
rate of order violations per OK'd message.  The paper's claim: the rate is
bounded by ε for every ε.  Expected observation: zero violations, with the
Wilson interval's lower bound consistent with ε.
"""

from __future__ import annotations

from conftest import emit

from repro.adversary.composite import MixtureAdversary
from repro.adversary.random_faults import (
    DuplicateFloodAdversary,
    FaultProfile,
    RandomFaultAdversary,
)
from repro.core.protocol import make_data_link
from repro.sim.experiment import Sweep
from repro.sim.runner import RunSpec
from repro.sim.workload import SequentialWorkload

EPSILONS = [2.0 ** -4, 2.0 ** -6, 2.0 ** -8, 2.0 ** -10]
RUNS_PER_POINT = 15
MESSAGES = 15


def hostile_adversary():
    """Loss + dup + reorder + crashes, mixed with a duplicate flooder."""
    return MixtureAdversary(
        [
            (
                RandomFaultAdversary(
                    FaultProfile(
                        loss=0.25,
                        duplicate=0.35,
                        reorder=0.5,
                        crash_t=0.002,
                        crash_r=0.002,
                    )
                ),
                0.7,
            ),
            # Data-direction flooding is the Section 3 pressure; flooding
            # old polls as well mostly exercises the (legitimate) retry-
            # watermark slowdown, which the liveness benches cover.
            (DuplicateFloodAdversary(flood=0.8, flood_t_to_r_only=True), 0.3),
        ]
    )


def run_sweep():
    sweep = Sweep(
        axis_name="epsilon",
        spec_for=lambda eps: RunSpec(
            link_factory=lambda seed: make_data_link(epsilon=eps, seed=seed),
            adversary_factory=hostile_adversary,
            workload_factory=lambda seed: SequentialWorkload(MESSAGES),
            max_steps=60_000,
        ),
        row_for=lambda eps, mc: {
            "order-violations": mc.order_violation_rate.successes,
            "trials": mc.order_violation_rate.trials,
            "rate": mc.order_violation_rate.point,
            "wilson-high": mc.order_violation_rate.high,
            "consistent<=eps": mc.order_violation_rate.consistent_with_bound(eps),
            "completion": mc.completion_rate,
        },
        runs_per_point=RUNS_PER_POINT,
        title="E1: order condition (Theorem 3) vs epsilon",
    )
    return sweep.run(EPSILONS)


def test_bench_order_vs_epsilon(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(result.render())
    # Paper claim: violation rate <= epsilon at every epsilon.  (Observed
    # violations are allowed — the theorem budgets them — as long as the
    # measured rate stays consistent with the bound.)
    for eps, consistent in zip(EPSILONS, result.column("consistent<=eps")):
        assert consistent, f"order violations inconsistent with eps={eps}"
    # At the tight epsilons (2^-8 and below, ~200 trials) even one
    # violation would be a >10-sigma surprise; expect literally zero.
    assert sum(result.column("order-violations")[2:]) == 0
    # Liveness alongside: the hostile-but-fair schedule still completes.
    assert all(c >= 0.9 for c in result.column("completion"))
