"""E7 — communication efficiency vs loss rate, against the baselines.

Over loss-only FIFO schedules (where every protocol is correct), sweep the
loss rate and measure packets per delivered message.  Claims reproduced:

* fault-free, the paper's handshake costs ~3 packets cold / 2 steady —
  competitive with the deterministic baselines (2 frames);
* cost grows with the error count roughly as ``k/(1 − loss)`` (the paper:
  "communication complexity increases linearly with the number of
  errors"), tracking the analytic first-order model.
"""

from __future__ import annotations

from conftest import emit

from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.analysis.bounds import expected_handshake_packets
from repro.baselines.alternating_bit import make_abp_link
from repro.baselines.stop_and_wait import make_stop_and_wait_link
from repro.core.protocol import make_data_link
from repro.sim.runner import RunSpec, monte_carlo
from repro.sim.workload import SequentialWorkload
from repro.util.tables import render_table

LOSS_RATES = [0.0, 0.2, 0.4, 0.6]
RUNS = 10
MESSAGES = 30

PROTOCOLS = [
    ("paper-protocol", lambda seed: make_data_link(epsilon=2.0 ** -12, seed=seed)),
    ("alternating-bit", lambda seed: make_abp_link()),
    ("stop-and-wait-16b", lambda seed: make_stop_and_wait_link(16)),
]


def cost_at(factory, loss):
    spec = RunSpec(
        link_factory=factory,
        adversary_factory=lambda: RandomFaultAdversary(FaultProfile(loss=loss)),
        workload_factory=lambda seed: SequentialWorkload(MESSAGES),
        max_steps=200_000,
        # A loss-only adversary with loss < 1 is already fair; the
        # enforcer would resurrect dropped packets out of order, silently
        # breaking the FIFO premise this experiment depends on.
        enforce_fairness=False,
    )
    mc = monte_carlo(spec, runs=RUNS, base_seed=int(loss * 100))
    assert mc.completion_rate == 1.0, f"incomplete at loss={loss}"
    assert not mc.any_safety_violation, f"violations at loss={loss} (FIFO+loss!)"
    return mc.mean_packets_per_message


def run_experiment():
    rows = []
    for loss in LOSS_RATES:
        row = [loss]
        for __, factory in PROTOCOLS:
            row.append(cost_at(factory, loss))
        row.append(expected_handshake_packets(loss))
        rows.append(row)
    return rows


def test_bench_baseline_costs(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    headers = ["loss"] + [name for name, __ in PROTOCOLS] + ["analytic(2/(1-p))"]
    emit(
        render_table(
            headers, rows, title="E7: packets per message vs loss (FIFO, loss-only)"
        )
    )
    paper = [row[1] for row in rows]
    # Fault-free: the amortised handshake sits in [2, 4] packets/message.
    assert 2.0 <= paper[0] <= 4.0
    # Cost increases with the error rate...
    assert paper == sorted(paper)
    # ...and stays within a small constant of the first-order model.
    for row in rows:
        assert row[1] <= row[-1] * 3.0
    # The randomized protocol is never more than ~2x the deterministic
    # baselines despite carrying nonces instead of one bit.
    for row in rows:
        assert row[1] <= min(row[2], row[3]) * 2.5
