"""E5 — Theorem 9 (liveness): progress under any fair adversary.

The minimal fair adversary is pure stalling wrapped in Axiom-3
enforcement: nothing is delivered until fairness forces it.  Sweeping the
enforcement patience measures how waiting time scales with how grudging
the adversary is — Theorem 9 says completion always happens, and the gaps
stay finite (linear in patience for this schedule).
"""

from __future__ import annotations

from conftest import emit

from repro.adversary.fairness import StallingAdversary
from repro.checkers.liveness import progress_gaps
from repro.core.protocol import make_data_link
from repro.sim.runner import RunSpec, monte_carlo
from repro.sim.workload import SequentialWorkload
from repro.util.tables import render_table

PATIENCE_LEVELS = [4, 8, 16, 32, 64]
RUNS = 10


def run_experiment():
    rows = []
    for patience in PATIENCE_LEVELS:
        spec = RunSpec(
            link_factory=lambda seed: make_data_link(epsilon=2.0 ** -16, seed=seed),
            adversary_factory=StallingAdversary,
            workload_factory=lambda seed: SequentialWorkload(8),
            fairness_patience=patience,
            max_steps=300_000,
        )
        mc = monte_carlo(spec, runs=RUNS, base_seed=patience)
        gaps = [progress_gaps(o.result.trace) for o in mc.outcomes]
        rows.append(
            [
                patience,
                mc.completion_rate,
                sum(g.worst for g in gaps) / len(gaps),
                sum(g.mean for g in gaps) / len(gaps),
                sum(o.metrics.retries for o in mc.outcomes) / RUNS,
            ]
        )
    return rows


def test_bench_liveness_vs_patience(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        render_table(
            ["patience", "completion", "worst-gap", "mean-gap", "retries/run"],
            rows,
            title="E5: liveness (Theorem 9) under minimal fair adversary",
        )
    )
    # Theorem 9: every fair schedule completes.
    assert all(row[1] == 1.0 for row in rows)
    # Waiting time scales with the adversary's grudge, but stays finite.
    worst_gaps = [row[2] for row in rows]
    assert worst_gaps[-1] > worst_gaps[0]
