"""E9 — the transport-layer application of Section 1.

Runs the data link end-to-end over multi-hop networks with failing links,
under both semi-reliable relays the paper names: flooding ("a trivial
implementation") and [HK89]-style path maintenance.  Claims reproduced:

* both compositions satisfy the Section 2.6 conditions end-to-end — the
  data link absorbs the relays' loss, duplication and reordering;
* flooding costs Θ(|E|) transmissions per packet; path maintenance costs
  ~path-length when quiet, degrading only when links fail (the paper's
  "optimal when no errors" observation).
"""

from __future__ import annotations

from conftest import emit

from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload
from repro.transport.endtoend import NetworkRelay
from repro.transport.network import mesh_network, ring_network
from repro.transport.routing import FloodingRelay, PathRelay
from repro.util.tables import render_table

MESSAGES = 10
RUNS = 6

SCENARIOS = [
    ("ring8/flood/stable", lambda: ring_network(8), FloodingRelay),
    ("ring8/path/stable", lambda: ring_network(8), PathRelay),
    ("mesh4/flood/stable", lambda: mesh_network(4), FloodingRelay),
    ("mesh4/path/stable", lambda: mesh_network(4), PathRelay),
    (
        "mesh4/flood/failing",
        lambda: mesh_network(4, fail_rate=0.03, repair_rate=0.3),
        FloodingRelay,
    ),
    (
        "mesh4/path/failing",
        lambda: mesh_network(4, fail_rate=0.03, repair_rate=0.3),
        PathRelay,
    ),
]


def run_scenario(name, net_factory, relay_cls):
    transmissions = 0
    messages_ok = 0
    completed = 0
    safe = True
    packets = 0
    for seed in range(RUNS):
        net = net_factory()
        relay = relay_cls(net)
        adversary = NetworkRelay(net, relay)
        link = make_data_link(epsilon=2.0 ** -12, seed=seed)
        sim = Simulator(
            link, adversary, SequentialWorkload(MESSAGES), seed=seed,
            max_steps=120_000,
        )
        result = sim.run()
        completed += result.completed
        messages_ok += result.metrics.messages_ok
        transmissions += relay.transmissions
        packets += result.metrics.packets_sent
        safe = safe and check_all_safety(result.trace).passed
    return [
        name,
        completed / RUNS,
        messages_ok / RUNS,
        transmissions / max(messages_ok, 1),
        packets / max(messages_ok, 1),
        safe,
    ]


def run_experiment():
    return [run_scenario(*scenario) for scenario in SCENARIOS]


def test_bench_transport_layer(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        render_table(
            ["scenario", "completion", "ok/run", "hops/msg", "pkts/msg", "safe"],
            rows,
            title="E9: data link over semi-reliable relays (Section 1)",
        )
    )
    by_name = {row[0]: row for row in rows}
    # End-to-end safety everywhere.
    assert all(row[5] for row in rows)
    # All stable scenarios complete fully.
    for name in ("ring8/flood/stable", "ring8/path/stable", "mesh4/path/stable"):
        assert by_name[name][1] == 1.0
    # Flooding pays Theta(|E|) per message; path maintenance is far cheaper
    # on the same topology.
    assert by_name["mesh4/path/stable"][3] * 3 < by_name["mesh4/flood/stable"][3]
    # Failures make the path relay work harder, not fail.
    assert by_name["mesh4/path/failing"][1] >= 0.8
