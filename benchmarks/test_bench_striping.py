"""E11 — striping: wall-clock throughput beyond Axiom 1's window.

Axiom 1 makes the link stop-and-wait at the message level, so on a
latency-bound channel throughput is one message per round trip.  Striping
the stream over K independent link instances (each individually satisfying
the paper's conditions) buys back pipelining; the resequencer restores
global order.  Sweep K and measure messages per wall-clock round.
"""

from __future__ import annotations

from conftest import emit

from repro.adversary.benign import DelayedFifoAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.extensions.striping import StripedLink, StripedSimulator
from repro.util.tables import render_table

LANES = [1, 2, 4, 8]
MESSAGES = 32
DELAY = 6


def run_lanes(lanes, adversary_factory, seed=5):
    payloads = [b"msg-%04d" % i for i in range(MESSAGES)]
    striped = StripedLink(lanes=lanes, seed=seed)
    simulator = StripedSimulator(striped, payloads, adversary_factory, seed=seed)
    return simulator.run()


def run_experiment():
    rows = []
    for lanes in LANES:
        latency = run_lanes(lanes, lambda: DelayedFifoAdversary(delay_turns=DELAY))
        faulty = run_lanes(
            lanes,
            lambda: RandomFaultAdversary(
                FaultProfile(loss=0.25, duplicate=0.25, reorder=0.4)
            ),
        )
        assert latency.completed and faulty.completed
        assert latency.delivered == faulty.delivered  # in order, both
        rows.append(
            [
                lanes,
                latency.rounds,
                latency.messages_per_round,
                faulty.rounds,
                faulty.messages_per_round,
                max(latency.max_reorder_buffer, faulty.max_reorder_buffer),
                latency.all_safe and faulty.all_safe,
            ]
        )
    return rows


def test_bench_striping_throughput(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        render_table(
            [
                "lanes",
                "rounds(latency)",
                "msgs/round",
                "rounds(faulty)",
                "msgs/round ",
                "max-buffer",
                "safe",
            ],
            rows,
            title=f"E11: striping over K links (delay={DELAY}, {MESSAGES} messages)",
        )
    )
    assert all(row[6] for row in rows)
    throughput = [row[2] for row in rows]
    # Monotone speedup with lane count...
    assert throughput == sorted(throughput)
    # ...and at least 2.5x from 1 to 8 lanes on the latency-bound channel.
    assert throughput[-1] > 2.5 * throughput[0]
