#!/usr/bin/env python
"""Entry point for the engine performance benchmarks.

Thin wrapper over ``repro bench`` (see ``repro.perf.bench`` for the
measurement code and README.md here for what the numbers mean), kept so
the perf harness is discoverable next to the experiment benchmarks.
"""

from __future__ import annotations

import sys


def main() -> int:
    from repro.cli import main as repro_main

    return repro_main(["bench", *sys.argv[1:]])


if __name__ == "__main__":
    raise SystemExit(main())
