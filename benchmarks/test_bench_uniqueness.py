"""E3 — Theorems 7 & 8 (uniqueness): no duplication, no replay, under
unbounded duplication pressure.

Sweeps the duplicate-flood intensity — the model's "a packet may be
delivered any number of times" clause at full strength — and measures the
per-delivery rates of duplication and replay violations.  Paper claim:
both stay below ε regardless of the flood.
"""

from __future__ import annotations

from conftest import emit

from repro.adversary.random_faults import DuplicateFloodAdversary
from repro.core.protocol import make_data_link
from repro.sim.experiment import Sweep
from repro.sim.runner import RunSpec
from repro.sim.workload import SequentialWorkload

EPSILON = 2.0 ** -10
FLOODS = [0.2, 0.5, 0.8, 0.95]
RUNS_PER_POINT = 15


def run_sweep():
    sweep = Sweep(
        axis_name="flood",
        spec_for=lambda flood: RunSpec(
            link_factory=lambda seed: make_data_link(epsilon=EPSILON, seed=seed),
            adversary_factory=lambda: DuplicateFloodAdversary(
                flood=flood, flood_t_to_r_only=True
            ),
            workload_factory=lambda seed: SequentialWorkload(15),
            max_steps=80_000,
            # Keep the poll rate below the channel's drain capacity: at
            # flood f only (1-f) of moves deliver fresh packets, so a
            # fixed cadence would diverge the queue at high f.
            retry_every=max(4, int(4 / (1.0 - flood))),
        ),
        row_for=lambda flood, mc: {
            "dup-violations": mc.duplication_violation_rate.successes,
            "replay-violations": mc.replay_violation_rate.successes,
            "deliveries": mc.duplication_violation_rate.trials,
            "dup-rate-high": mc.duplication_violation_rate.high,
            "completion": mc.completion_rate,
        },
        runs_per_point=RUNS_PER_POINT,
        title="E3: uniqueness (Theorems 7+8) vs duplication flood",
    )
    return sweep.run(FLOODS)


def test_bench_uniqueness_under_duplication(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(result.render())
    # Paper claim: zero observed uniqueness violations at every intensity.
    assert sum(result.column("dup-violations")) == 0
    assert sum(result.column("replay-violations")) == 0
    # And the flood cannot stop progress (fair schedule).
    assert all(c >= 0.9 for c in result.column("completion"))
