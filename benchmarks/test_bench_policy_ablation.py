"""E8 — the Section 5 open problem: choosing size/bound functions.

Ablates the size/bound policy under an identical hostile schedule and
reports the trade the paper leaves open: wire cost (bits/message), nonce
growth (peak storage), extension count, and safety.  The printed-TR
constants work in practice over short horizons (their flaw is asymptotic);
the aggressive policy buys fewer extensions with longer nonces.
"""

from __future__ import annotations

from conftest import emit

from repro.adversary.random_faults import DuplicateFloodAdversary
from repro.core.params import (
    AggressivePolicy,
    PrintedPaperPolicy,
    SizeBoundPolicy,
    SoundPolicy,
)
from repro.core.protocol import make_data_link
from repro.sim.runner import RunSpec, monte_carlo
from repro.sim.workload import SequentialWorkload
from repro.util.tables import render_table

EPSILON = 2.0 ** -10
RUNS = 12
POLICIES = [SoundPolicy(), PrintedPaperPolicy(), AggressivePolicy()]


def run_policy(policy: SizeBoundPolicy):
    spec = RunSpec(
        link_factory=lambda seed: make_data_link(
            epsilon=EPSILON, seed=seed, policy=policy, require_sound_policy=False
        ),
        adversary_factory=lambda: DuplicateFloodAdversary(
            flood=0.85, flood_t_to_r_only=True
        ),
        workload_factory=lambda seed: SequentialWorkload(15),
        max_steps=100_000,
        retry_every=32,  # poll rate below the flooded channel's capacity
    )
    mc = monte_carlo(spec, runs=RUNS, base_seed=7)
    extensions = sum(
        o.metrics.receiver_extensions + o.metrics.transmitter_extensions
        for o in mc.outcomes
    )
    bits = sum(o.metrics.bits_sent for o in mc.outcomes) / sum(
        max(o.metrics.messages_ok, 1) for o in mc.outcomes
    )
    return [
        policy.name,
        policy.is_sound(EPSILON),
        policy.size(1, EPSILON),
        extensions / RUNS,
        mc.mean_storage_peak_bits,
        bits,
        mc.any_safety_violation,
        mc.completion_rate,
    ]


def run_experiment():
    return [run_policy(policy) for policy in POLICIES]


def test_bench_policy_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        render_table(
            [
                "policy",
                "sound",
                "size(1)",
                "extensions/run",
                "peak-bits",
                "bits/msg",
                "violated",
                "completion",
            ],
            rows,
            title="E8: size/bound policy ablation under duplicate flooding",
        )
    )
    by_name = {row[0]: row for row in rows}
    # All three stay safe over this (finite) horizon.
    assert not any(row[6] for row in rows)
    assert all(row[7] == 1.0 for row in rows)
    # The trade-off shape: aggressive extends less often than sound...
    assert by_name["aggressive"][3] <= by_name["sound"][3]
    # ...but pays with longer nonces when it does extend.
    assert by_name["aggressive"][2] > by_name["printed"][2]
