"""E2 — the Section 3 replay attack: strawman falls, paper protocol stands.

Reproduces the paper's motivating scenario head-to-head: the fixed-nonce
handshake versus the adaptive-extension protocol, both under the identical
oblivious crash-then-replay adversary.  Also prints the analytic success
curve ``1 − (1 − 2^−b)^n`` the measurements should track.
"""

from __future__ import annotations

from conftest import emit

from repro.adversary.replay import ReplayAttacker
from repro.analysis.bounds import fixed_nonce_replay_probability
from repro.baselines.naive_handshake import make_naive_handshake_link
from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload
from repro.util.stats import wilson_interval
from repro.util.tables import render_table

NONCE_BITS = [4, 6, 8, 12]
RUNS = 15
HARVEST = 80


def attack(link, seed):
    attacker = ReplayAttacker(harvest_messages=HARVEST, replay_rounds=6)
    sim = Simulator(
        link, attacker, SequentialWorkload(240), seed=seed, max_steps=40_000
    )
    result = sim.run()
    report = check_all_safety(result.trace)
    return not (report.no_replay.passed and report.no_duplication.passed)


def run_experiment():
    rows = []
    for bits in NONCE_BITS:
        broken = sum(
            attack(make_naive_handshake_link(nonce_bits=bits, seed=s), s)
            for s in range(RUNS)
        )
        estimate = wilson_interval(broken, RUNS)
        rows.append(
            [
                f"fixed-{bits}b",
                broken,
                RUNS,
                estimate.point,
                fixed_nonce_replay_probability(bits, HARVEST),
            ]
        )
    paper_broken = sum(
        attack(make_data_link(epsilon=2.0 ** -12, seed=s), s) for s in range(RUNS)
    )
    rows.append(
        ["paper-protocol", paper_broken, RUNS, paper_broken / RUNS, 2.0 ** -12]
    )
    return rows


def test_bench_replay_attack(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        render_table(
            ["protocol", "broken", "runs", "measured", "predicted"],
            rows,
            title="E2: Section 3 crash-then-replay attack",
        )
    )
    by_name = {row[0]: row for row in rows}
    # The strawman with a small nonce falls in most runs...
    assert by_name["fixed-4b"][1] >= RUNS * 0.6
    # ...monotonically less often as the nonce grows...
    broken_counts = [by_name[f"fixed-{b}b"][1] for b in NONCE_BITS]
    assert broken_counts[0] >= broken_counts[-1]
    # ...and the paper's protocol never falls.
    assert by_name["paper-protocol"][1] == 0
