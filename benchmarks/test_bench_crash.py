"""E6 — crash resilience: the paper's protocol vs every deterministic rung.

The reason this paper exists: [LMF88] proved deterministic protocols
cannot survive crashes.  This experiment crashes all four protocols under
the identical schedule and counts Section 2.6 violations:

* paper protocol — zero violations at any crash rate;
* ABP — order + replay violations (both stations vulnerable);
* stop-and-wait — same fate, wider counters notwithstanding;
* nonvolatile-bit ABP — receiver crashes survived (the [BS88] fix), but
  transmitter crashes still leak order violations.
"""

from __future__ import annotations

from conftest import emit

from repro.adversary.crash import CrashStormAdversary
from repro.baselines.alternating_bit import make_abp_link
from repro.baselines.nonvolatile_bit import make_nonvolatile_bit_link
from repro.baselines.stop_and_wait import make_stop_and_wait_link
from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload
from repro.util.tables import render_table

CRASH_RATE = 0.015
RUNS = 12
MESSAGES = 15

PROTOCOLS = [
    ("paper-protocol", lambda seed: make_data_link(epsilon=2.0 ** -12, seed=seed)),
    ("alternating-bit", lambda seed: make_abp_link()),
    ("stop-and-wait-16b", lambda seed: make_stop_and_wait_link(16)),
    ("nonvolatile-bit", lambda seed: make_nonvolatile_bit_link()),
]


def run_protocol(name, factory):
    violated_runs = 0
    deadlocked_runs = 0
    violations_by_condition = {"order": 0, "no-duplication": 0, "no-replay": 0}
    for seed in range(RUNS):
        link = factory(seed)
        adversary = CrashStormAdversary(crash_rate=CRASH_RATE, max_crashes=8)
        sim = Simulator(
            link, adversary, SequentialWorkload(MESSAGES), seed=seed,
            max_steps=40_000,
        )
        result = sim.run()
        report = check_all_safety(result.trace)
        if not report.passed:
            violated_runs += 1
        elif not result.completed:
            # Deterministic protocols that avoid the violation often do so
            # by desynchronising into a deadlock: the other horn of the
            # [LMF88] impossibility.
            deadlocked_runs += 1
        for check in report.all_reports:
            if check.condition in violations_by_condition:
                violations_by_condition[check.condition] += check.failure_count
    return [
        name,
        violated_runs,
        deadlocked_runs,
        RUNS,
        violations_by_condition["order"],
        violations_by_condition["no-duplication"],
        violations_by_condition["no-replay"],
    ]


def run_experiment():
    return [run_protocol(name, factory) for name, factory in PROTOCOLS]


def test_bench_crash_resilience(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(
        render_table(
            ["protocol", "violated", "deadlocked", "runs", "order", "dup", "replay"],
            rows,
            title=f"E6: crash storms (rate={CRASH_RATE}, both stations)",
        )
    )
    by_name = {row[0]: row for row in rows}
    # The paper's protocol is the only one that is fully clean: no safety
    # violation AND no deadlock in any run.
    assert by_name["paper-protocol"][1] == 0
    assert by_name["paper-protocol"][2] == 0
    # Every deterministic baseline loses safety or liveness ([LMF88]).
    for name in ("alternating-bit", "stop-and-wait-16b", "nonvolatile-bit"):
        assert by_name[name][1] + by_name[name][2] > 0, name
    # The stable bit eliminates duplications (pure receiver-state loss);
    # order/replay leakage from transmitter crashes remains possible.
    assert by_name["nonvolatile-bit"][5] == 0  # no duplications
