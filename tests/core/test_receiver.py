"""Unit tests for the Receiver automaton (Appendix A, Figure 5)."""

from __future__ import annotations

import pytest

from repro.core.bitstrings import TAU_CRASH, TAU_PRIME_CRASH, BitString
from repro.core.events import EmitPacket, EmitReceiveMsg
from repro.core.exceptions import ProtocolError
from repro.core.packets import DataPacket, PollPacket
from repro.core.params import ProtocolParams
from repro.core.random_source import RandomSource
from repro.core.receiver import Receiver


EPS = 2.0 ** -16
PARAMS = ProtocolParams(epsilon=EPS)


@pytest.fixture
def rm() -> Receiver:
    return Receiver(PARAMS, RandomSource(2))


def fresh_tau(suffix="0110"):
    """A live transmitter-style nonce (tau'_crash prefixed)."""
    return TAU_PRIME_CRASH.concat(BitString(suffix))


def deliver(rm: Receiver, message=b"m1", tau=None):
    """Feed a matching data packet; returns the outputs."""
    tau = tau if tau is not None else fresh_tau()
    packet = DataPacket(message=message, rho=rm.rho, tau=tau)
    return rm.on_receive_pkt(packet)


class TestInitialState:
    def test_tau_is_crash_sentinel(self, rm):
        assert rm.tau == TAU_CRASH

    def test_rho_has_generation1_size(self, rm):
        assert len(rm.rho) == PARAMS.size(1)

    def test_counters(self, rm):
        assert rm.generation == 1
        assert rm.error_count == 0
        assert rm.retry_counter == 1
        assert rm.messages_accepted == 0

    def test_initial_reset_not_counted_as_crash(self, rm):
        assert rm.stats.crashes == 0


class TestRetry:
    def test_retry_emits_current_poll(self, rm):
        outputs = rm.retry()
        assert len(outputs) == 1
        poll = outputs[0].packet
        assert isinstance(poll, PollPacket)
        assert poll.rho == rm.rho
        assert poll.tau == TAU_CRASH
        assert poll.retry == 1

    def test_retry_counter_increments(self, rm):
        for expected in (1, 2, 3, 4):
            outputs = rm.retry()
            assert outputs[0].packet.retry == expected
        assert rm.retry_counter == 5

    def test_retry_counter_resets_on_delivery(self, rm):
        rm.retry()
        rm.retry()
        deliver(rm)
        assert rm.retry_counter == 1


class TestDelivery:
    def test_matching_challenge_and_new_tau_delivers(self, rm):
        outputs = deliver(rm, b"hello")
        deliveries = [o for o in outputs if isinstance(o, EmitReceiveMsg)]
        assert len(deliveries) == 1
        assert deliveries[0].message == b"hello"
        assert rm.messages_accepted == 1

    def test_delivery_adopts_packet_tau(self, rm):
        tau = fresh_tau("0011")
        deliver(rm, tau=tau)
        assert rm.tau == tau

    def test_delivery_draws_fresh_challenge(self, rm):
        old_rho = rm.rho
        deliver(rm)
        assert rm.rho != old_rho
        assert len(rm.rho) == PARAMS.size(1)

    def test_delivery_resets_counters(self, rm):
        # Burn some error budget first.
        wrong = BitString("1" * len(rm.rho)) if rm.rho != BitString("1" * len(rm.rho)) else BitString("0" * len(rm.rho))
        rm.on_receive_pkt(DataPacket(message=b"x", rho=wrong, tau=fresh_tau()))
        deliver(rm)
        assert rm.error_count == 0
        assert rm.generation == 1

    def test_wrong_challenge_no_delivery(self, rm):
        flipped = rm.rho.prefix(len(rm.rho) - 1).concat(
            BitString("0" if rm.rho[-1] else "1")
        )
        outputs = rm.on_receive_pkt(
            DataPacket(message=b"x", rho=flipped, tau=fresh_tau())
        )
        assert outputs == []
        assert rm.messages_accepted == 0

    def test_wrong_packet_type_rejected(self, rm):
        with pytest.raises(ProtocolError):
            rm.on_receive_pkt(PollPacket(rho=BitString("0"), tau=BitString("1"), retry=1))


class TestSameHandshakeTauHandling:
    def test_duplicate_of_accepted_packet_ignored(self, rm):
        tau = fresh_tau()
        deliver(rm, b"m1", tau=tau)
        old_rho_packet = DataPacket(message=b"m1", rho=rm.rho, tau=tau)
        # Same rho (the fresh one) with the same tau: tau^R prefix of tau,
        # equal — no redelivery.
        outputs = rm.on_receive_pkt(old_rho_packet)
        assert not any(isinstance(o, EmitReceiveMsg) for o in outputs)
        assert rm.messages_accepted == 1

    def test_extension_of_accepted_tau_updates_without_redelivery(self, rm):
        tau = fresh_tau()
        deliver(rm, b"m1", tau=tau)
        extended = tau.concat(BitString("1101"))
        outputs = rm.on_receive_pkt(
            DataPacket(message=b"m1", rho=rm.rho, tau=extended)
        )
        assert not any(isinstance(o, EmitReceiveMsg) for o in outputs)
        assert rm.tau == extended
        assert rm.stats.tau_updates == 1

    def test_updated_tau_appears_in_polls(self, rm):
        tau = fresh_tau()
        deliver(rm, tau=tau)
        extended = tau.concat(BitString("11"))
        rm.on_receive_pkt(DataPacket(message=b"m1", rho=rm.rho, tau=extended))
        poll = rm.retry()[0].packet
        assert poll.tau == extended

    def test_proper_prefix_of_accepted_tau_is_stale(self, rm):
        tau = fresh_tau("001100")
        deliver(rm, b"m1", tau=tau)
        stale = tau.prefix(len(tau) - 2)
        outputs = rm.on_receive_pkt(
            DataPacket(message=b"old", rho=rm.rho, tau=stale)
        )
        assert outputs == []
        assert rm.stats.stale_ignored == 1
        assert rm.tau == tau

    def test_incomparable_tau_is_new_message(self, rm):
        deliver(rm, b"m1", tau=fresh_tau("0000"))
        outputs = rm.on_receive_pkt(
            DataPacket(message=b"m2", rho=rm.rho, tau=fresh_tau("1111"))
        )
        assert any(
            isinstance(o, EmitReceiveMsg) and o.message == b"m2" for o in outputs
        )
        assert rm.messages_accepted == 2


class TestErrorCountingAndExtension:
    @staticmethod
    def _wrong_rho(rm, salt=0):
        """Same-length challenge differing from rho^R."""
        bits = rm.rho.to01()
        flipped = ("1" if bits[salt % len(bits)] == "0" else "0")
        return BitString(bits[: salt % len(bits)] + flipped + bits[salt % len(bits) + 1 :])

    def test_same_length_mismatch_counts(self, rm):
        rm.on_receive_pkt(
            DataPacket(message=b"x", rho=self._wrong_rho(rm), tau=fresh_tau())
        )
        assert rm.error_count == 1

    def test_shorter_rho_not_counted(self, rm):
        rm.on_receive_pkt(
            DataPacket(message=b"x", rho=BitString("01"), tau=fresh_tau())
        )
        assert rm.error_count == 0

    def test_longer_rho_not_counted(self, rm):
        rm.on_receive_pkt(
            DataPacket(
                message=b"x",
                rho=BitString("0" * (len(rm.rho) + 2)),
                tau=fresh_tau(),
            )
        )
        assert rm.error_count == 0

    def test_extension_at_bound(self, rm):
        old_rho = rm.rho
        for i in range(PARAMS.bound(1)):
            rm.on_receive_pkt(
                DataPacket(message=b"x", rho=self._wrong_rho(rm, i), tau=fresh_tau())
            )
        assert rm.generation == 2
        assert rm.error_count == 0
        assert old_rho.is_proper_prefix_of(rm.rho)
        assert len(rm.rho) == PARAMS.size(1) + PARAMS.size(2)
        assert rm.stats.extensions == 1

    def test_old_length_packets_harmless_after_extension(self, rm):
        short_rho = rm.rho
        for i in range(PARAMS.bound(1)):
            rm.on_receive_pkt(
                DataPacket(message=b"x", rho=self._wrong_rho(rm, i), tau=fresh_tau())
            )
        # Replaying generation-1-length packets now has no effect at all.
        before = rm.error_count
        rm.on_receive_pkt(DataPacket(message=b"x", rho=short_rho, tau=fresh_tau()))
        assert rm.error_count == before
        assert rm.messages_accepted == 0

    def test_previous_handshake_rho_not_counted(self, rm):
        deliver(rm, b"m1")
        prev_rho_packet = DataPacket(
            message=b"m1",
            rho=BitString("0" * len(rm.rho)),
            tau=fresh_tau("1111"),
        )
        # Craft the previous-rho case precisely: use the actual previous rho.
        # (The receiver records it internally; we reconstruct via state.)
        # A same-length packet with the previous rho must not count.
        # Note: rm._prev_rho is private; we exercise via the public effect.
        assert rm.error_count == 0

    def test_delivery_after_extension_uses_full_rho(self, rm):
        for i in range(PARAMS.bound(1)):
            rm.on_receive_pkt(
                DataPacket(message=b"x", rho=self._wrong_rho(rm, i), tau=fresh_tau())
            )
        outputs = rm.on_receive_pkt(
            DataPacket(message=b"m1", rho=rm.rho, tau=fresh_tau())
        )
        assert any(isinstance(o, EmitReceiveMsg) for o in outputs)


class TestCrash:
    def test_crash_resets_to_initial_shape(self, rm):
        deliver(rm, b"m1")
        rm.crash()
        assert rm.tau == TAU_CRASH
        assert rm.generation == 1
        assert rm.error_count == 0
        assert rm.retry_counter == 1
        assert rm.messages_accepted == 0
        assert rm.stats.crashes == 1

    def test_crash_draws_fresh_challenge(self, rm):
        old = rm.rho
        rm.crash()
        assert rm.rho != old

    def test_no_message_lost_across_receiver_crash(self, rm):
        # After crash^R the sentinel guarantees the next live data packet
        # (tau'_crash-prefixed) is recognised as new.
        rm.crash()
        outputs = rm.on_receive_pkt(
            DataPacket(message=b"m1", rho=rm.rho, tau=fresh_tau())
        )
        assert any(isinstance(o, EmitReceiveMsg) for o in outputs)

    def test_storage_accounting(self, rm):
        base = rm.storage_bits
        assert base >= len(rm.rho) + len(rm.tau)
        deliver(rm)
        assert rm.storage_bits >= len(rm.rho) + len(rm.tau)
