"""Unit tests for the BitString value type (Figure 3 operations)."""

from __future__ import annotations

import pytest

from repro.core.bitstrings import EMPTY, TAU_CRASH, TAU_PRIME_CRASH, BitString


class TestConstruction:
    def test_from_string(self):
        s = BitString("0101")
        assert len(s) == 4
        assert s.to01() == "0101"

    def test_empty(self):
        assert len(BitString("")) == 0
        assert BitString("").to01() == ""
        assert len(BitString()) == 0

    def test_leading_zeros_preserved(self):
        assert BitString("0001").to01() == "0001"
        assert BitString("0001") != BitString("1")

    def test_copy_constructor(self):
        s = BitString("101")
        assert BitString(s) == s

    def test_rejects_non_binary_characters(self):
        with pytest.raises(ValueError):
            BitString("012")

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            BitString(5)  # type: ignore[arg-type]

    def test_from_int(self):
        assert BitString.from_int(5, 4).to01() == "0101"
        assert BitString.from_int(0, 3).to01() == "000"

    def test_from_int_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitString.from_int(8, 3)

    def test_from_int_rejects_negative(self):
        with pytest.raises(ValueError):
            BitString.from_int(-1, 3)
        with pytest.raises(ValueError):
            BitString.from_int(0, -1)


class TestConcat:
    def test_basic(self):
        assert BitString("01").concat(BitString("10")).to01() == "0110"

    def test_with_empty(self):
        s = BitString("101")
        assert s.concat(EMPTY) == s
        assert EMPTY.concat(s) == s

    def test_operator(self):
        assert (BitString("1") + BitString("0")).to01() == "10"

    def test_preserves_leading_zeros(self):
        assert BitString("00").concat(BitString("01")).to01() == "0001"

    def test_rejects_non_bitstring(self):
        with pytest.raises(TypeError):
            BitString("1").concat("0")  # type: ignore[arg-type]


class TestPrefix:
    def test_self_prefix(self):
        s = BitString("0110")
        assert s.is_prefix_of(s)

    def test_empty_prefixes_everything(self):
        assert EMPTY.is_prefix_of(BitString("1"))
        assert EMPTY.is_prefix_of(EMPTY)

    def test_proper_prefix(self):
        assert BitString("01").is_prefix_of(BitString("0110"))
        assert BitString("01").is_proper_prefix_of(BitString("0110"))
        assert not BitString("0110").is_proper_prefix_of(BitString("0110"))

    def test_non_prefix(self):
        assert not BitString("10").is_prefix_of(BitString("0110"))
        assert not BitString("01101").is_prefix_of(BitString("0110"))

    def test_leading_zero_discrimination(self):
        assert not BitString("00").is_prefix_of(BitString("01"))

    def test_comparable(self):
        assert BitString("01").is_comparable_with(BitString("0110"))
        assert BitString("0110").is_comparable_with(BitString("01"))
        assert not BitString("10").is_comparable_with(BitString("0110"))

    def test_tau_crash_never_prefix_of_live_nonce(self):
        # The Figure 3 invariant: tau'_crash-led strings never extend tau_crash.
        live = TAU_PRIME_CRASH.concat(BitString("0000"))
        assert not TAU_CRASH.is_prefix_of(live)
        assert not live.is_prefix_of(TAU_CRASH)


class TestSlices:
    def test_prefix_method(self):
        assert BitString("0110").prefix(2).to01() == "01"
        assert BitString("0110").prefix(0) == EMPTY
        assert BitString("0110").prefix(4).to01() == "0110"

    def test_suffix_method(self):
        assert BitString("0110").suffix(2).to01() == "10"
        assert BitString("0110").suffix(0) == EMPTY
        assert BitString("0110").suffix(4).to01() == "0110"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            BitString("01").prefix(3)
        with pytest.raises(ValueError):
            BitString("01").suffix(3)

    def test_indexing(self):
        s = BitString("0110")
        assert [s[i] for i in range(4)] == [0, 1, 1, 0]
        assert s[-1] == 0
        assert s[-3] == 1
        with pytest.raises(IndexError):
            s[4]

    def test_slicing_rejected(self):
        with pytest.raises(TypeError):
            BitString("0110")[1:2]  # type: ignore[index]

    def test_bits_iterator(self):
        assert list(BitString("0110").bits()) == [0, 1, 1, 0]


class TestEqualityHash:
    def test_equal_same_bits(self):
        assert BitString("0110") == BitString("0110")
        assert hash(BitString("0110")) == hash(BitString("0110"))

    def test_unequal_different_lengths(self):
        assert BitString("01") != BitString("010")

    def test_not_equal_to_strings(self):
        assert BitString("01") != "01"

    def test_bool(self):
        assert not EMPTY
        assert BitString("0")

    def test_repr_truncates_long_strings(self):
        long = BitString("01" * 50)
        assert "..." in repr(long)
        assert "len=100" in repr(long)
