"""Unit tests for packet types and the wire codec."""

from __future__ import annotations

import pytest

from repro.core.bitstrings import BitString
from repro.core.exceptions import CodecError
from repro.core.packets import DataPacket, PollPacket, decode_packet, encode_packet


def data(m=b"hello", rho="0101", tau="110"):
    return DataPacket(message=m, rho=BitString(rho), tau=BitString(tau))


def poll(rho="0101", tau="110", i=3):
    return PollPacket(rho=BitString(rho), tau=BitString(tau), retry=i)


class TestDataPacket:
    def test_roundtrip(self):
        p = data()
        assert decode_packet(p.encode()) == p

    def test_roundtrip_empty_fields(self):
        p = data(m=b"", rho="", tau="")
        assert decode_packet(p.encode()) == p

    def test_roundtrip_large_message(self):
        p = data(m=bytes(range(256)) * 10)
        assert decode_packet(p.encode()) == p

    def test_roundtrip_long_nonces(self):
        p = data(rho="10" * 300, tau="01" * 500)
        assert decode_packet(p.encode()) == p

    def test_wire_length_counts_bits(self):
        p = data()
        assert p.wire_length_bits == len(p.encode()) * 8

    def test_message_must_be_bytes(self):
        with pytest.raises(TypeError):
            DataPacket(message="str", rho=BitString("0"), tau=BitString("1"))  # type: ignore[arg-type]

    def test_frozen(self):
        p = data()
        with pytest.raises(AttributeError):
            p.message = b"other"  # type: ignore[misc]

    def test_length_reveals_size_not_content(self):
        # Two same-shape packets with different contents: identical lengths.
        a = data(m=b"aaaa", rho="0000", tau="111")
        b = data(m=b"bbbb", rho="1111", tau="000")
        assert a.wire_length_bits == b.wire_length_bits


class TestPollPacket:
    def test_roundtrip(self):
        p = poll()
        assert decode_packet(p.encode()) == p

    def test_roundtrip_zero_retry(self):
        p = poll(i=0)
        assert decode_packet(p.encode()) == p

    def test_roundtrip_huge_retry(self):
        p = poll(i=2 ** 60)
        assert decode_packet(p.encode()) == p

    def test_negative_retry_rejected(self):
        with pytest.raises(ValueError):
            PollPacket(rho=BitString("0"), tau=BitString("1"), retry=-1)

    def test_wire_length_counts_bits(self):
        p = poll()
        assert p.wire_length_bits == len(p.encode()) * 8


class TestCodecErrors:
    def test_empty(self):
        with pytest.raises(CodecError):
            decode_packet(b"")

    def test_unknown_kind(self):
        with pytest.raises(CodecError):
            decode_packet(b"\x00somedata")

    def test_truncated_data(self):
        encoded = data().encode()
        for cut in (1, 3, len(encoded) // 2, len(encoded) - 1):
            with pytest.raises(CodecError):
                decode_packet(encoded[:cut])

    def test_truncated_poll(self):
        encoded = poll().encode()
        with pytest.raises(CodecError):
            decode_packet(encoded[: len(encoded) - 2])

    def test_trailing_garbage(self):
        with pytest.raises(CodecError):
            decode_packet(data().encode() + b"\x00")
        with pytest.raises(CodecError):
            decode_packet(poll().encode() + b"\x00")

    def test_encode_rejects_foreign_objects(self):
        with pytest.raises(CodecError):
            encode_packet("not a packet")  # type: ignore[arg-type]


class TestKindDiscrimination:
    def test_kinds_do_not_collide(self):
        d, p = data(), poll()
        assert d.encode()[0] != p.encode()[0]
        assert isinstance(decode_packet(d.encode()), DataPacket)
        assert isinstance(decode_packet(p.encode()), PollPacket)
