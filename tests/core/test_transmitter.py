"""Unit tests for the Transmitter automaton (reconstructed Figure 2)."""

from __future__ import annotations

import pytest

from repro.core.bitstrings import TAU_CRASH, TAU_PRIME_CRASH, BitString
from repro.core.events import EmitOk, EmitPacket
from repro.core.exceptions import ProtocolError
from repro.core.packets import DataPacket, PollPacket
from repro.core.params import ProtocolParams
from repro.core.random_source import RandomSource
from repro.core.transmitter import Transmitter


EPS = 2.0 ** -16


@pytest.fixture
def tm() -> Transmitter:
    return Transmitter(ProtocolParams(epsilon=EPS), RandomSource(1))


def arm(tm: Transmitter, rho="0101", message=b"m1"):
    """Make the transmitter busy with a message and aware of a challenge.

    Returns the data-packet outputs of the first poll reply.
    """
    tm.send_msg(message)
    return tm.on_receive_pkt(
        PollPacket(rho=BitString(rho), tau=TAU_CRASH, retry=1)
    )


def complete(tm: Transmitter, message=b"m1", next_rho="1010"):
    """Run a full fault-free handshake; leaves the transmitter idle with
    ``next_rho`` remembered as the receiver's current challenge."""
    arm(tm, message=message)
    outputs = tm.on_receive_pkt(
        PollPacket(rho=BitString(next_rho), tau=tm.tau, retry=2)
    )
    assert any(isinstance(o, EmitOk) for o in outputs)


class TestInitialState:
    def test_idle_initially(self, tm):
        assert not tm.busy
        assert tm.pending_message is None

    def test_tau_starts_with_tau_prime_crash(self, tm):
        assert TAU_PRIME_CRASH.is_prefix_of(tm.tau)
        assert not TAU_CRASH.is_prefix_of(tm.tau)

    def test_generation_starts_at_one(self, tm):
        assert tm.generation == 1
        assert tm.error_count == 0

    def test_initial_reset_not_counted_as_crash(self, tm):
        assert tm.stats.crashes == 0


class TestSendMsg:
    def test_without_known_challenge_stays_silent(self, tm):
        outputs = tm.send_msg(b"m1")
        assert outputs == []
        assert tm.busy
        assert tm.pending_message == b"m1"

    def test_initial_polls_with_foreign_tau_do_not_arm(self, tm):
        # An idle fresh transmitter ignores polls whose tau is not its own;
        # the first message therefore opens silently.
        tm.on_receive_pkt(PollPacket(rho=BitString("0101"), tau=TAU_CRASH, retry=1))
        assert tm.send_msg(b"m1") == []

    def test_second_message_opens_with_data(self, tm):
        complete(tm, next_rho="1010")
        outputs = tm.send_msg(b"m2")
        assert len(outputs) == 1
        packet = outputs[0].packet
        assert isinstance(packet, DataPacket)
        assert packet.message == b"m2"
        assert packet.rho == BitString("1010")
        assert packet.tau == tm.tau

    def test_fresh_tau_per_message(self, tm):
        tau_before = tm.tau
        tm.send_msg(b"m1")
        assert tm.tau != tau_before
        assert TAU_PRIME_CRASH.is_prefix_of(tm.tau)

    def test_send_while_busy_violates_axiom1(self, tm):
        tm.send_msg(b"m1")
        with pytest.raises(ProtocolError):
            tm.send_msg(b"m2")

    def test_non_bytes_rejected(self, tm):
        with pytest.raises(TypeError):
            tm.send_msg("text")  # type: ignore[arg-type]

    def test_counters_reset_per_message(self, tm):
        complete(tm)
        tm.send_msg(b"m2")
        assert tm.generation == 1
        assert tm.error_count == 0


class TestOkPath:
    def test_exact_tau_ack_yields_ok(self, tm):
        arm(tm)
        ack = PollPacket(rho=BitString("1111"), tau=tm.tau, retry=2)
        outputs = tm.on_receive_pkt(ack)
        assert any(isinstance(o, EmitOk) for o in outputs)
        assert not tm.busy
        assert tm.stats.oks == 1

    def test_ok_resets_retry_watermark(self, tm):
        arm(tm)
        tm.on_receive_pkt(PollPacket(rho=BitString("1"), tau=tm.tau, retry=9))
        assert tm.last_retry_seen == 0

    def test_extension_of_tau_also_acks(self, tm):
        # Theorem 3's proof bounds P(prefix(tau_0, tau_0^R)): a poll whose
        # tau extends tau^T must trigger OK.
        arm(tm)
        extended = tm.tau.concat(BitString("101"))
        outputs = tm.on_receive_pkt(
            PollPacket(rho=BitString("1"), tau=extended, retry=2)
        )
        assert any(isinstance(o, EmitOk) for o in outputs)

    def test_ok_remembers_new_challenge(self, tm):
        complete(tm, next_rho="1010")
        outputs = tm.send_msg(b"m2")
        assert outputs[0].packet.rho == BitString("1010")

    def test_proper_prefix_of_tau_does_not_ack(self, tm):
        arm(tm)
        stale = tm.tau.prefix(len(tm.tau) - 1)
        outputs = tm.on_receive_pkt(
            PollPacket(rho=BitString("1"), tau=stale, retry=2)
        )
        assert not any(isinstance(o, EmitOk) for o in outputs)
        assert tm.busy


class TestPollReplies:
    def test_fresh_poll_gets_data_reply(self, tm):
        tm.send_msg(b"m1")
        poll = PollPacket(rho=BitString("0011"), tau=TAU_CRASH, retry=1)
        outputs = tm.on_receive_pkt(poll)
        assert len(outputs) == 1
        packet = outputs[0].packet
        assert packet.message == b"m1"
        assert packet.rho == BitString("0011")  # echoes the poll's challenge
        assert packet.tau == tm.tau

    def test_reply_tracks_latest_challenge(self, tm):
        tm.send_msg(b"m1")
        tm.on_receive_pkt(PollPacket(rho=BitString("0011"), tau=TAU_CRASH, retry=1))
        outputs = tm.on_receive_pkt(
            PollPacket(rho=BitString("1100"), tau=TAU_CRASH, retry=2)
        )
        assert outputs[0].packet.rho == BitString("1100")

    def test_duplicate_retry_counter_ignored(self, tm):
        tm.send_msg(b"m1")
        tm.on_receive_pkt(PollPacket(rho=BitString("0011"), tau=TAU_CRASH, retry=5))
        outputs = tm.on_receive_pkt(
            PollPacket(rho=BitString("0011"), tau=TAU_CRASH, retry=5)
        )
        assert outputs == []
        assert tm.stats.polls_ignored >= 1

    def test_retry_watermark_strictly_increasing(self, tm):
        tm.send_msg(b"m1")
        tm.on_receive_pkt(PollPacket(rho=BitString("0011"), tau=TAU_CRASH, retry=5))
        assert tm.last_retry_seen == 5
        assert tm.on_receive_pkt(
            PollPacket(rho=BitString("0011"), tau=TAU_CRASH, retry=4)
        ) == []
        assert len(tm.on_receive_pkt(
            PollPacket(rho=BitString("0011"), tau=TAU_CRASH, retry=6)
        )) == 1

    def test_wrong_packet_type_rejected(self, tm):
        with pytest.raises(ProtocolError):
            tm.on_receive_pkt(
                DataPacket(message=b"x", rho=BitString("0"), tau=BitString("1"))
            )


class TestErrorCountingAndExtension:
    @staticmethod
    def _junk_poll(tm, retry):
        """Poll with same-length tau differing from tau^T in the last bit."""
        flipped = tm.tau.prefix(len(tm.tau) - 1).concat(
            BitString("0" if tm.tau[-1] else "1")
        )
        return PollPacket(rho=BitString("1"), tau=flipped, retry=retry)

    def test_same_length_mismatch_counts(self, tm):
        tm.send_msg(b"m1")
        tm.on_receive_pkt(self._junk_poll(tm, 1))
        assert tm.error_count == 1
        assert tm.stats.errors_counted == 1

    def test_shorter_tau_not_counted(self, tm):
        tm.send_msg(b"m1")
        tm.on_receive_pkt(PollPacket(rho=BitString("1"), tau=TAU_CRASH, retry=1))
        assert tm.error_count == 0

    def test_longer_non_extension_tau_not_counted(self, tm):
        tm.send_msg(b"m1")
        longer = BitString("0" * (len(tm.tau) + 3))
        tm.on_receive_pkt(PollPacket(rho=BitString("1"), tau=longer, retry=1))
        assert tm.error_count == 0

    def test_extension_at_bound(self, tm):
        tm.send_msg(b"m1")
        params = ProtocolParams(epsilon=EPS)
        old_tau = tm.tau
        old_len = len(tm.tau)
        for i in range(params.bound(1)):
            tm.on_receive_pkt(self._junk_poll(tm, i + 1))
        assert tm.generation == 2
        assert tm.error_count == 0
        assert old_tau.is_proper_prefix_of(tm.tau)
        assert len(tm.tau) == old_len + params.size(2)
        assert tm.stats.extensions == 1

    def test_extended_tau_used_in_replies(self, tm):
        tm.send_msg(b"m1")
        params = ProtocolParams(epsilon=EPS)
        for i in range(params.bound(1)):
            tm.on_receive_pkt(self._junk_poll(tm, i + 1))
        outputs = tm.on_receive_pkt(
            PollPacket(rho=BitString("0011"), tau=TAU_CRASH, retry=100)
        )
        assert outputs[0].packet.tau == tm.tau

    def test_ack_still_works_after_extension(self, tm):
        tm.send_msg(b"m1")
        params = ProtocolParams(epsilon=EPS)
        for i in range(params.bound(1)):
            tm.on_receive_pkt(self._junk_poll(tm, i + 1))
        outputs = tm.on_receive_pkt(
            PollPacket(rho=BitString("1"), tau=tm.tau, retry=200)
        )
        assert any(isinstance(o, EmitOk) for o in outputs)


class TestCrash:
    def test_crash_erases_everything(self, tm):
        arm(tm)
        old_tau = tm.tau
        tm.crash()
        assert not tm.busy
        assert tm.pending_message is None
        assert tm.tau != old_tau
        assert tm.generation == 1
        assert tm.error_count == 0
        assert tm.last_retry_seen == 0
        assert tm.stats.crashes == 1

    def test_post_crash_tau_avoids_tau_crash(self, tm):
        for __ in range(20):
            tm.crash()
            assert not TAU_CRASH.is_prefix_of(tm.tau)

    def test_post_crash_send_has_no_challenge(self, tm):
        complete(tm)
        tm.crash()
        assert tm.send_msg(b"m2") == []

    def test_pre_crash_ack_does_nothing_after_crash(self, tm):
        arm(tm)
        old_tau = tm.tau
        tm.crash()
        outputs = tm.on_receive_pkt(
            PollPacket(rho=BitString("1"), tau=old_tau, retry=1)
        )
        assert not any(isinstance(o, EmitOk) for o in outputs)


class TestIdleBehaviour:
    def test_idle_updates_challenge_on_matching_tau(self, tm):
        complete(tm, next_rho="1010")
        tm.on_receive_pkt(PollPacket(rho=BitString("0110"), tau=tm.tau, retry=2))
        outputs = tm.send_msg(b"m2")
        assert outputs[0].packet.rho == BitString("0110")

    def test_idle_ignores_foreign_tau(self, tm):
        complete(tm, next_rho="1010")
        tm.on_receive_pkt(
            PollPacket(rho=BitString("0000"), tau=BitString("10101010"), retry=9)
        )
        outputs = tm.send_msg(b"m2")
        assert outputs[0].packet.rho == BitString("1010")

    def test_idle_respects_retry_watermark(self, tm):
        complete(tm, next_rho="1010")
        tm.on_receive_pkt(PollPacket(rho=BitString("0110"), tau=tm.tau, retry=3))
        # A replayed older poll (same tau, lower retry) must not regress.
        tm.on_receive_pkt(PollPacket(rho=BitString("1111"), tau=tm.tau, retry=2))
        outputs = tm.send_msg(b"m2")
        assert outputs[0].packet.rho == BitString("0110")

    def test_storage_accounting(self, tm):
        assert tm.storage_bits >= len(tm.tau)
