"""Property-based tests for BitString: the prefix algebra's laws.

The protocol's correctness hangs on prefix/concat interacting properly
(Figure 5's decision tree and the transmitter's OK test are all prefix
comparisons), so the algebraic laws get hypothesis coverage.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.bitstrings import EMPTY, BitString

bits = st.text(alphabet="01", max_size=64)
nonempty_bits = st.text(alphabet="01", min_size=1, max_size=64)


@given(bits)
def test_to01_roundtrip(s):
    assert BitString(s).to01() == s


@given(bits, bits)
def test_concat_length(a, b):
    assert len(BitString(a).concat(BitString(b))) == len(a) + len(b)


@given(bits, bits, bits)
def test_concat_associative(a, b, c):
    x, y, z = BitString(a), BitString(b), BitString(c)
    assert (x + y) + z == x + (y + z)


@given(bits)
def test_empty_is_identity(a):
    x = BitString(a)
    assert x + EMPTY == x
    assert EMPTY + x == x


@given(bits, bits)
def test_left_operand_prefixes_concat(a, b):
    x, y = BitString(a), BitString(b)
    assert x.is_prefix_of(x + y)


@given(bits, bits)
def test_prefix_iff_string_startswith(a, b):
    assert BitString(a).is_prefix_of(BitString(b)) == b.startswith(a)


@given(bits, bits, bits)
def test_prefix_transitive(a, b, c):
    x, y, z = BitString(a), BitString(b), BitString(c)
    if x.is_prefix_of(y) and y.is_prefix_of(z):
        assert x.is_prefix_of(z)


@given(bits, bits)
def test_mutual_prefix_means_equal(a, b):
    x, y = BitString(a), BitString(b)
    if x.is_prefix_of(y) and y.is_prefix_of(x):
        assert x == y


@given(bits, bits)
def test_comparable_symmetric(a, b):
    x, y = BitString(a), BitString(b)
    assert x.is_comparable_with(y) == y.is_comparable_with(x)


@given(bits, st.data())
def test_prefix_suffix_partition(s, data):
    x = BitString(s)
    k = data.draw(st.integers(min_value=0, max_value=len(x)))
    assert x.prefix(k) + x.suffix(len(x) - k) == x


@given(bits)
def test_from_int_roundtrip(s):
    x = BitString(s)
    assert BitString.from_int(x.value, len(x)) == x


@given(bits)
def test_hash_consistent_with_eq(s):
    assert hash(BitString(s)) == hash(BitString(s))


@given(bits)
def test_bits_iterator_matches_indexing(s):
    x = BitString(s)
    assert list(x.bits()) == [x[i] for i in range(len(x))]
