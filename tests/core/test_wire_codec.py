"""Wire-codec hardening: fuzzed roundtrips, truncation, and the peek view.

The live deployment (docs/PROTOCOL.md §11) exposes the codec to a real
socket, where datagrams arrive truncated, duplicated mid-flush, or from
foreign senders.  These tests pin down the properties the endpoints and
the chaos proxy rely on:

* encode/decode is a perfect roundtrip through the module-level functions
  the endpoints use, including extreme ρ/τ bit-string lengths;
* **every** strict prefix of a valid encoding is rejected with
  :class:`CodecError` — a truncated datagram can never decode to a
  different valid packet;
* :func:`peek_wire_info` agrees with the full decode on kind and length
  while revealing nothing else, and rejects foreign traffic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitstrings import BitString
from repro.core.exceptions import CodecError
from repro.core.packets import (
    MAX_LANES,
    DataPacket,
    PollEncoder,
    PollPacket,
    decode_lane_frame,
    decode_packet,
    encode_lane_frame,
    encode_packet,
    encode_packet_into,
    lane_prefix,
    packet_wire_bytes,
    peek_wire_info,
)

_KIND_BYTES = {0xD1, 0xA5}


@st.composite
def long_bitstrings(draw, max_bits: int = 4096) -> BitString:
    """Bit strings up to ``max_bits`` — far beyond any protocol nonce."""
    n = draw(st.integers(min_value=0, max_value=max_bits))
    value = draw(st.integers(min_value=0, max_value=(1 << n) - 1)) if n else 0
    return BitString.from_int(value, n)


bitstrings = st.text(alphabet="01", max_size=200).map(BitString)
messages = st.binary(max_size=500)
retries = st.integers(min_value=0, max_value=2 ** 63 - 1)

data_packets = st.builds(DataPacket, message=messages, rho=bitstrings,
                         tau=bitstrings)
poll_packets = st.builds(PollPacket, rho=bitstrings, tau=bitstrings,
                         retry=retries)
packets = st.one_of(data_packets, poll_packets)


# -- roundtrips ------------------------------------------------------------------


@given(packets)
def test_module_level_roundtrip(packet):
    assert decode_packet(encode_packet(packet)) == packet


@settings(max_examples=25)
@given(messages, long_bitstrings(), long_bitstrings())
def test_data_roundtrip_with_max_length_nonces(m, rho, tau):
    packet = DataPacket(message=m, rho=rho, tau=tau)
    wire = encode_packet(packet)
    assert decode_packet(wire) == packet
    assert packet.wire_length_bits == len(wire) * 8


@settings(max_examples=25)
@given(long_bitstrings(), long_bitstrings(), retries)
def test_poll_roundtrip_with_max_length_nonces(rho, tau, retry):
    packet = PollPacket(rho=rho, tau=tau, retry=retry)
    wire = encode_packet(packet)
    assert decode_packet(wire) == packet
    assert packet.wire_length_bits == len(wire) * 8


# -- truncation ------------------------------------------------------------------


@settings(max_examples=50)
@given(packets)
def test_every_strict_prefix_is_rejected(packet):
    # The live endpoints count on this: a datagram cut anywhere cannot
    # silently decode into a different valid packet.
    wire = encode_packet(packet)
    for cut in range(len(wire)):
        with pytest.raises(CodecError):
            decode_packet(wire[:cut])


@given(packets, st.binary(min_size=1, max_size=16))
def test_trailing_bytes_are_rejected(packet, extra):
    with pytest.raises(CodecError):
        decode_packet(encode_packet(packet) + extra)


@given(packets, st.integers(min_value=0, max_value=255))
def test_foreign_kind_byte_is_rejected(packet, kind):
    wire = encode_packet(packet)
    if kind in _KIND_BYTES:
        return
    with pytest.raises(CodecError):
        decode_packet(bytes([kind]) + wire[1:])


def test_empty_datagram_is_rejected():
    with pytest.raises(CodecError):
        decode_packet(b"")
    with pytest.raises(CodecError):
        peek_wire_info(b"")


# -- the adversary's peek --------------------------------------------------------


@given(packets)
def test_peek_agrees_with_decode(packet):
    wire = encode_packet(packet)
    info = peek_wire_info(wire)
    assert info.kind_byte == wire[0]
    assert info.kind == ("data" if isinstance(packet, DataPacket) else "poll")
    assert info.length_bits == len(wire) * 8 == packet.wire_length_bits


@given(packets)
def test_peek_works_on_any_nonempty_prefix(packet):
    # The proxy peeks before anything validates the datagram; the peek
    # must never require more than the identifier octet.
    wire = encode_packet(packet)
    for cut in range(1, len(wire) + 1):
        info = peek_wire_info(wire[:cut])
        assert info.kind_byte == wire[0]
        assert info.length_bits == cut * 8


@given(st.binary(min_size=1, max_size=64))
def test_peek_rejects_foreign_identifiers(data):
    if data[0] in _KIND_BYTES:
        return
    if data[0] < MAX_LANES and len(data) >= 2 and data[1] in _KIND_BYTES:
        return  # a well-formed laned frame — peeked, not rejected
    with pytest.raises(CodecError):
        peek_wire_info(data)


def test_encode_packet_rejects_non_packets():
    with pytest.raises(CodecError):
        encode_packet("not a packet")


# -- lane frames (multi-lane live wire) ------------------------------------------


lanes = st.integers(min_value=0, max_value=MAX_LANES - 1)


@given(packets, lanes)
def test_lane_frame_roundtrip(packet, lane):
    wire = encode_packet(packet)
    framed = encode_lane_frame(lane, wire)
    assert framed == bytes([lane]) + wire
    got_lane, body = decode_lane_frame(framed)
    assert got_lane == lane
    assert decode_packet(body) == packet


@given(packets, lanes)
def test_peek_reports_lane_and_kind(packet, lane):
    # Section 2.3 visibility on a laned wire: lane id + identifier octet +
    # datagram length, nothing else.
    framed = encode_lane_frame(lane, encode_packet(packet))
    info = peek_wire_info(framed)
    assert info.lane == lane
    assert info.kind == ("data" if isinstance(packet, DataPacket) else "poll")
    assert info.kind_byte == framed[1]
    assert info.length_bits == len(framed) * 8
    # An unlaned frame reports no lane.
    assert peek_wire_info(encode_packet(packet)).lane is None


@given(packets, st.integers(min_value=MAX_LANES, max_value=255))
def test_foreign_lane_ids_are_rejected(packet, lane):
    framed = bytes([lane]) + encode_packet(packet)
    if lane in _KIND_BYTES:
        return  # collides with a kind byte: parsed as an unlaned frame
    with pytest.raises(CodecError):
        decode_lane_frame(framed)
    with pytest.raises(CodecError):
        peek_wire_info(framed)


def test_lane_prefix_validates_and_interns():
    with pytest.raises(CodecError):
        lane_prefix(-1)
    with pytest.raises(CodecError):
        lane_prefix(MAX_LANES)
    assert lane_prefix(3) == b"\x03"
    assert lane_prefix(3) is lane_prefix(3)  # interned, no per-send alloc


def test_truncated_lane_frames_are_rejected():
    with pytest.raises(CodecError):
        decode_lane_frame(b"")
    with pytest.raises(CodecError):
        decode_lane_frame(b"\x00")  # lane byte alone, no body


@settings(max_examples=25)
@given(packets, lanes)
def test_every_strict_prefix_of_a_laned_frame_is_rejected(packet, lane):
    # The strict-prefix property must survive lane framing: a laned
    # datagram cut anywhere can never decode into a valid (lane, packet).
    framed = encode_lane_frame(lane, encode_packet(packet))
    for cut in range(len(framed)):
        prefix = framed[:cut]
        try:
            __, body = decode_lane_frame(prefix)
        except CodecError:
            continue
        with pytest.raises(CodecError):
            decode_packet(body)


# -- zero-copy parity (batched wire path, docs/PROTOCOL.md §15) ------------------
#
# The batched datagram layer hands the codec memoryview slices of reused
# receive buffers and encodes outbound packets straight into pooled
# bytearrays.  Everything the bytes path decides — values, rejections,
# peeks — must be bit-identical through views, or the batched wire would
# silently change protocol behavior.


@settings(max_examples=25)
@given(messages, long_bitstrings(), long_bitstrings(), retries)
def test_memoryview_decode_matches_bytes_decode(m, rho, tau, retry):
    for packet in (DataPacket(message=m, rho=rho, tau=tau),
                   PollPacket(rho=rho, tau=tau, retry=retry)):
        wire = encode_packet(packet)
        # Non-zero offset into a larger buffer: the view's own indices,
        # not the backing buffer's, must drive the decode.
        backing = bytearray(b"\xff" * 7 + wire + b"\xff" * 3)
        view = memoryview(backing)[7:7 + len(wire)]
        assert decode_packet(view) == decode_packet(wire) == packet


@settings(max_examples=25)
@given(packets)
def test_memoryview_prefixes_rejected_like_bytes(packet):
    # The strict-prefix property through views: every cut that the bytes
    # path rejects, the view path rejects too (same error class).
    wire = encode_packet(packet)
    backing = bytearray(wire)
    view = memoryview(backing)
    for cut in range(len(wire)):
        with pytest.raises(CodecError):
            decode_packet(view[:cut])


@given(packets, lanes)
def test_peek_wire_info_memoryview_parity(packet, lane):
    for frame in (encode_packet(packet),
                  encode_lane_frame(lane, encode_packet(packet))):
        view = memoryview(bytearray(frame))
        assert peek_wire_info(view) == peek_wire_info(frame)
        for cut in range(1, len(frame) + 1):
            # Some cuts are themselves invalid (a laned frame cut to its
            # lane byte alone); the view path must agree either way.
            try:
                expected = peek_wire_info(frame[:cut])
            except CodecError:
                with pytest.raises(CodecError):
                    peek_wire_info(view[:cut])
            else:
                assert peek_wire_info(view[:cut]) == expected


@given(st.binary(min_size=1, max_size=64))
def test_peek_rejects_foreign_identifiers_through_views(data):
    view = memoryview(bytearray(data))
    try:
        expected = peek_wire_info(data)
    except CodecError:
        with pytest.raises(CodecError):
            peek_wire_info(view)
    else:
        assert peek_wire_info(view) == expected


@settings(max_examples=25)
@given(messages, long_bitstrings(), long_bitstrings(), retries, lanes)
def test_encode_into_matches_encode(m, rho, tau, retry, lane):
    # The pooled send path: encode into the middle of an oversized reused
    # buffer, with a lane prefix written as a slice assignment — exactly
    # what the batched endpoints do — and get the canonical bytes.
    for packet in (DataPacket(message=m, rho=rho, tau=tau),
                   PollPacket(rho=rho, tau=tau, retry=retry)):
        wire = encode_packet(packet)
        nbytes = packet_wire_bytes(packet)
        assert nbytes == len(wire)
        buf = bytearray(b"\xee" * (nbytes + 16))
        end = encode_packet_into(buf, 1, packet)
        assert end == 1 + nbytes
        assert bytes(buf[1:end]) == wire
        assert buf[0] == 0xEE and buf[end] == 0xEE  # neighbors untouched
        buf[0:1] = lane_prefix(lane)
        assert bytes(buf[:end]) == encode_lane_frame(lane, wire)


@given(poll_packets, lanes)
def test_poll_encoder_encode_into_matches_encode(packet, lane):
    encoder = PollEncoder(lane)
    framed = encoder.encode(packet)
    buf = bytearray(b"\xee" * (len(framed) + 8))
    end = encoder.encode_into(buf, 3, packet)
    assert end == 3 + len(framed)
    assert bytes(buf[3:end]) == framed
    assert buf[2] == 0xEE and buf[end] == 0xEE


# -- the cached poll encoder -----------------------------------------------------


@given(poll_packets)
def test_poll_encoder_matches_canonical_encoding(packet):
    assert PollEncoder().encode(packet) == encode_packet(packet)


@given(poll_packets, lanes)
def test_laned_poll_encoder_matches_lane_frame(packet, lane):
    expected = encode_lane_frame(lane, encode_packet(packet))
    assert PollEncoder(lane).encode(packet) == expected


@given(long_bitstrings(max_bits=64), long_bitstrings(max_bits=64))
def test_poll_encoder_cache_tracks_retry_counter(rho, tau):
    # The RM's backoff loop re-sends the same (rho, tau) with an advancing
    # retry counter: the cached prefix must never freeze the counter.
    encoder = PollEncoder()
    for retry in (0, 1, 7, 2 ** 40):
        packet = PollPacket(rho=rho, tau=tau, retry=retry)
        assert encoder.encode(packet) == encode_packet(packet)


def test_poll_encoder_refreshes_on_new_objects():
    # Equal-but-distinct BitStrings merely re-encode; changed values
    # re-encode correctly (identity is a freshness test, not a trap).
    a, b = BitString("1010"), BitString("0110")
    encoder = PollEncoder()
    first = PollPacket(rho=a, tau=b, retry=0)
    assert encoder.encode(first) == encode_packet(first)
    same_values = PollPacket(rho=BitString("1010"), tau=BitString("0110"), retry=1)
    assert encoder.encode(same_values) == encode_packet(same_values)
    changed = PollPacket(rho=b, tau=a, retry=2)
    assert encoder.encode(changed) == encode_packet(changed)
