"""Unit tests for the DataLink facade and hand-driven handshakes."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.params import PrintedPaperPolicy, SoundPolicy
from repro.core.protocol import make_data_link

from tests.conftest import drive_handshake


class TestFactory:
    def test_defaults(self):
        link = make_data_link(seed=1)
        assert link.epsilon == 2.0 ** -20
        assert isinstance(link.params.policy, SoundPolicy)

    def test_seeded_links_reproducible(self):
        a = make_data_link(seed=9)
        b = make_data_link(seed=9)
        assert a.receiver.rho == b.receiver.rho
        assert a.transmitter.tau == b.transmitter.tau

    def test_stations_have_independent_tapes(self):
        link = make_data_link(seed=9)
        # Receiver challenge and transmitter nonce come from different
        # forks; with 24+ random bits each a collision means shared tapes.
        assert link.receiver.rho.to01() != link.transmitter.tau.to01()

    def test_unsound_policy_rejected_by_default(self):
        with pytest.raises(ConfigurationError):
            make_data_link(epsilon=2.0 ** -8, policy=PrintedPaperPolicy())

    def test_unsound_policy_opt_in(self):
        link = make_data_link(
            epsilon=2.0 ** -8,
            policy=PrintedPaperPolicy(),
            require_sound_policy=False,
        )
        assert link.params.policy.name == "printed"

    def test_total_storage(self):
        link = make_data_link(seed=1)
        assert link.total_storage_bits() == (
            link.transmitter.storage_bits + link.receiver.storage_bits
        )


class TestHandDrivenHandshake:
    def test_single_message(self):
        link = make_data_link(seed=4)
        delivered, ok = drive_handshake(link, b"payload")
        assert delivered == b"payload"
        assert ok

    def test_sequence_of_messages(self):
        link = make_data_link(seed=5)
        for i in range(10):
            message = b"msg-%d" % i
            delivered, ok = drive_handshake(link, message)
            assert delivered == message
            assert ok

    def test_storage_resets_between_messages(self):
        link = make_data_link(seed=6)
        drive_handshake(link, b"a")
        baseline = link.total_storage_bits()
        for i in range(5):
            drive_handshake(link, b"x%d" % i)
        # Fault-free messages never grow the nonces.
        assert link.total_storage_bits() == baseline

    def test_first_message_is_three_packets(self):
        # The cold-start handshake is the paper's three-packet exchange:
        # poll, data, ack-poll.
        link = make_data_link(seed=7)
        drive_handshake(link, b"first")
        sent = (
            link.transmitter.stats.packets_sent + link.receiver.stats.packets_sent
        )
        assert sent == 3

    def test_steady_state_is_two_packets(self):
        # After the first handshake, the transmitter knows the receiver's
        # challenge: one data + one ack-poll per message (Section 3's
        # three-packet exchange, amortised).
        link = make_data_link(seed=7)
        drive_handshake(link, b"warmup")
        sent_before = (
            link.transmitter.stats.packets_sent + link.receiver.stats.packets_sent
        )
        drive_handshake(link, b"steady")
        sent_after = (
            link.transmitter.stats.packets_sent + link.receiver.stats.packets_sent
        )
        assert sent_after - sent_before == 2
