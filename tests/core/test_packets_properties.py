"""Property-based codec tests: encode/decode is a perfect roundtrip."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.bitstrings import BitString
from repro.core.packets import DataPacket, PollPacket, decode_packet

bitstrings = st.text(alphabet="01", max_size=200).map(BitString)
messages = st.binary(max_size=500)
retries = st.integers(min_value=0, max_value=2 ** 63 - 1)


@given(messages, bitstrings, bitstrings)
def test_data_packet_roundtrip(m, rho, tau):
    packet = DataPacket(message=m, rho=rho, tau=tau)
    assert decode_packet(packet.encode()) == packet


@given(bitstrings, bitstrings, retries)
def test_poll_packet_roundtrip(rho, tau, retry):
    packet = PollPacket(rho=rho, tau=tau, retry=retry)
    assert decode_packet(packet.encode()) == packet


@given(messages, bitstrings, bitstrings)
def test_wire_length_is_encoding_length(m, rho, tau):
    packet = DataPacket(message=m, rho=rho, tau=tau)
    assert packet.wire_length_bits == len(packet.encode()) * 8


@given(messages, messages, bitstrings, bitstrings)
def test_length_depends_only_on_shapes(m1, m2, rho, tau):
    # The adversary sees lengths; equal-shape packets must be equal-length
    # (the oblivious-adversary assumption of Section 2.5).
    a = DataPacket(message=m1, rho=rho, tau=tau)
    b = DataPacket(message=m2, rho=rho, tau=tau)
    if len(m1) == len(m2):
        assert a.wire_length_bits == b.wire_length_bits


@given(bitstrings, bitstrings, retries)
def test_poll_encoding_deterministic(rho, tau, retry):
    a = PollPacket(rho=rho, tau=tau, retry=retry)
    b = PollPacket(rho=rho, tau=tau, retry=retry)
    assert a.encode() == b.encode()
