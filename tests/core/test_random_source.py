"""Unit tests for RandomSource: determinism, forking, sampling."""

from __future__ import annotations

import pytest

from repro.core.bitstrings import BitString
from repro.core.random_source import RandomSource, split_seed


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = RandomSource(42), RandomSource(42)
        assert [a.random_bits(8) for __ in range(10)] == [
            b.random_bits(8) for __ in range(10)
        ]

    def test_different_seeds_differ(self):
        a, b = RandomSource(1), RandomSource(2)
        draws_a = [a.random_bits(32) for __ in range(4)]
        draws_b = [b.random_bits(32) for __ in range(4)]
        assert draws_a != draws_b

    def test_seed_property(self):
        assert RandomSource(7).seed == 7
        assert RandomSource().seed is None


class TestRandomBits:
    def test_length(self):
        rng = RandomSource(0)
        for n in (0, 1, 7, 64, 1000):
            assert len(rng.random_bits(n)) == n

    def test_returns_bitstring(self):
        assert isinstance(RandomSource(0).random_bits(5), BitString)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).random_bits(-1)

    def test_bits_drawn_accounting(self):
        rng = RandomSource(0)
        rng.random_bits(10)
        rng.random_bits(5)
        assert rng.bits_drawn == 15

    def test_roughly_uniform(self):
        # 1000 single bits should not be wildly unbalanced.
        rng = RandomSource(9)
        ones = sum(rng.random_bits(1)[0] for __ in range(1000))
        assert 400 < ones < 600


class TestFork:
    def test_fork_is_deterministic(self):
        a = RandomSource(5).fork("child")
        b = RandomSource(5).fork("child")
        assert a.random_bits(64) == b.random_bits(64)

    def test_fork_labels_distinguish(self):
        a = RandomSource(5).fork("x")
        b = RandomSource(5).fork("y")
        assert a.random_bits(64) != b.random_bits(64)

    def test_fork_does_not_disturb_parent(self):
        parent = RandomSource(5)
        reference = RandomSource(5)
        parent.fork("child")
        assert parent.random_bits(64) == reference.random_bits(64)


class TestSplitSeed:
    def test_deterministic(self):
        assert split_seed(1, "a", 2) == split_seed(1, "a", 2)

    def test_labels_matter(self):
        assert split_seed(1, "a") != split_seed(1, "b")
        assert split_seed(1, "a") != split_seed(2, "a")


class TestSampling:
    def test_bernoulli_bounds(self):
        rng = RandomSource(0)
        assert not rng.bernoulli(0.0)
        assert rng.bernoulli(1.0) or True  # p=1 returns True with prob 1 - eps
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_bernoulli_rate(self):
        rng = RandomSource(3)
        hits = sum(rng.bernoulli(0.3) for __ in range(2000))
        assert 500 < hits < 700

    def test_randint_in_range(self):
        rng = RandomSource(0)
        values = [rng.randint(2, 5) for __ in range(100)]
        assert all(2 <= v <= 5 for v in values)
        assert set(values) == {2, 3, 4, 5}

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).choice([])

    def test_choice_member(self):
        rng = RandomSource(0)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for __ in range(20))

    def test_sample_distinct(self):
        picked = RandomSource(0).sample(range(10), 5)
        assert len(picked) == 5
        assert len(set(picked)) == 5

    def test_shuffle_permutation(self):
        rng = RandomSource(0)
        items = list(range(20))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_geometric_positive(self):
        rng = RandomSource(0)
        assert all(rng.geometric(0.5) >= 1 for __ in range(50))
        with pytest.raises(ValueError):
            rng.geometric(0.0)

    def test_geometric_mean(self):
        rng = RandomSource(4)
        draws = [rng.geometric(0.25) for __ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 3.5 < mean < 4.5  # E[geometric(1/4)] = 4

    def test_geometric_fast_positive_and_validated(self):
        rng = RandomSource(0)
        assert all(rng.geometric_fast(0.5) >= 1 for __ in range(50))
        with pytest.raises(ValueError):
            rng.geometric_fast(0.0)
        with pytest.raises(ValueError):
            rng.geometric_fast(1.5)

    def test_geometric_fast_mean_matches_distribution(self):
        rng = RandomSource(4)
        draws = [rng.geometric_fast(0.25) for __ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 3.5 < mean < 4.5  # E[geometric(1/4)] = 4

    def test_geometric_fast_certain_success(self):
        rng = RandomSource(0)
        assert all(rng.geometric_fast(1.0) == 1 for __ in range(10))

    def test_geometric_fast_single_draw(self):
        # The whole point of the inverse-CDF form: exactly ONE uniform per
        # sample, however small p is (geometric(0.01) averages ~100).  The
        # next float after a sample must match a fresh tape that made
        # exactly one draw — including in the p=1.0 fast path.
        for p in (0.01, 0.5, 1.0):
            rng = RandomSource(9)
            rng.geometric_fast(p)
            reference = RandomSource(9)
            reference.random_float()
            assert rng.random_float() == reference.random_float()

    def test_geometric_fast_tail_heavier_for_small_p(self):
        rng = RandomSource(7)
        small_p = [rng.geometric_fast(0.01) for __ in range(2000)]
        mean = sum(small_p) / len(small_p)
        assert 80 < mean < 125  # E[geometric(0.01)] = 100


class TestScrambleBits:
    def test_deterministic_across_split_seed(self):
        # The replay contract: the same derived seed must produce the same
        # scramble, run after run, process after process.
        value = BitString("10110010")
        seed = split_seed(77, "corrupt", 3)
        a = RandomSource(seed).scramble_bits(value)
        b = RandomSource(seed).scramble_bits(value)
        assert a == b
        assert RandomSource(split_seed(77, "corrupt", 4)).scramble_bits(value) != a or True

    def test_preserves_length(self):
        rng = RandomSource(0)
        for n in (1, 7, 64, 200):
            bits = RandomSource(n).random_bits(n)
            assert len(rng.scramble_bits(bits)) == n

    def test_zero_width_is_identity_and_consumes_no_tape(self):
        rng = RandomSource(5)
        empty = BitString("")
        assert rng.scramble_bits(empty) == empty
        # No tape consumed: the next draw matches a fresh source.
        assert rng.random_bits(64) == RandomSource(5).random_bits(64)

    def test_consumes_exactly_length_bits(self):
        rng = RandomSource(5)
        rng.scramble_bits(RandomSource(0).random_bits(10))
        assert rng.bits_drawn == 10

    def test_is_xor_with_the_tape_mask(self):
        # scramble(bits) == bits XOR random_bits(len) off the same tape, so
        # scrambling twice with identical tapes round-trips.
        bits = RandomSource(1).random_bits(32)
        once = RandomSource(9).scramble_bits(bits)
        twice = RandomSource(9).scramble_bits(once)
        assert twice == bits
        assert once != bits  # 2^-32 failure probability, seed-pinned anyway

    def test_roughly_uniform_output(self):
        # Scrambling all-zeros yields the mask itself: about half ones.
        zeros = BitString("0" * 1000)
        ones = sum(RandomSource(11).scramble_bits(zeros).bits())
        assert 400 < ones < 600
