"""Unit tests for size/bound policies and ProtocolParams."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.params import (
    AggressivePolicy,
    FixedPolicy,
    PrintedPaperPolicy,
    ProtocolParams,
    SoundPolicy,
    log2_inverse,
)


class TestLog2Inverse:
    def test_powers_of_two(self):
        assert log2_inverse(0.5) == 1
        assert log2_inverse(2.0 ** -10) == 10

    def test_rounds_up(self):
        assert log2_inverse(0.3) == 2  # 1/0.3 ~ 3.33 -> ceil(log2) = 2

    def test_rejects_out_of_range(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ConfigurationError):
                log2_inverse(bad)


class TestSoundPolicy:
    def test_size_formula(self):
        policy = SoundPolicy()
        eps = 2.0 ** -8
        assert policy.size(1, eps) == 2 + 4 + 8
        assert policy.size(3, eps) == 6 + 4 + 8

    def test_bound_doubles(self):
        policy = SoundPolicy()
        assert [policy.bound(t) for t in (1, 2, 3, 4)] == [2, 4, 8, 16]

    def test_generations_are_one_based(self):
        policy = SoundPolicy()
        with pytest.raises(ValueError):
            policy.size(0, 0.5)
        with pytest.raises(ValueError):
            policy.bound(0)

    def test_union_bound_telescopes(self):
        policy = SoundPolicy()
        for eps in (2.0 ** -4, 2.0 ** -10, 2.0 ** -20):
            assert policy.is_sound(eps)
            assert policy.total_failure_mass(eps) <= eps / 8

    def test_cumulative_size_monotone(self):
        policy = SoundPolicy()
        eps = 2.0 ** -8
        sizes = [policy.cumulative_size(t, eps) for t in range(1, 6)]
        assert sizes == sorted(sizes)
        assert sizes[0] == policy.size(1, eps)


class TestPrintedPaperPolicy:
    def test_size_formula_matches_tr(self):
        policy = PrintedPaperPolicy()
        eps = 2.0 ** -8
        assert policy.size(1, eps) == 1 + 4 + 8

    def test_bound_never_zero(self):
        policy = PrintedPaperPolicy()
        assert policy.bound(1) == 1
        assert policy.bound(4) == 4

    def test_union_bound_does_not_telescope(self):
        # Each generation contributes a constant mass, so over a long
        # horizon the sum exceeds epsilon/4 — the documented flaw.
        policy = PrintedPaperPolicy()
        assert not policy.is_sound(2.0 ** -8, horizon=64)


class TestAggressivePolicy:
    def test_sound(self):
        assert AggressivePolicy().is_sound(2.0 ** -8)

    def test_bound_grows_fast(self):
        policy = AggressivePolicy()
        assert policy.bound(3) == 64


class TestFixedPolicy:
    def test_single_generation_only(self):
        policy = FixedPolicy(nonce_bits=6)
        assert policy.size(1, 0.5) == 6
        assert policy.size(2, 0.5) == 0

    def test_bound_effectively_infinite(self):
        assert FixedPolicy().bound(1) > 10 ** 15

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            FixedPolicy(nonce_bits=0)


class TestProtocolParams:
    def test_defaults_validate(self):
        params = ProtocolParams()
        assert params.size(1) > 0
        assert params.bound(1) >= 1

    def test_rejects_bad_epsilon(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                ProtocolParams(epsilon=bad)

    def test_rejects_unsound_policy_by_default(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(epsilon=2.0 ** -8, policy=PrintedPaperPolicy())

    def test_unsound_policy_allowed_when_opted_in(self):
        params = ProtocolParams(
            epsilon=2.0 ** -8,
            policy=PrintedPaperPolicy(),
            require_sound_policy=False,
        )
        assert params.policy.name == "printed"

    def test_size_bound_delegate(self):
        params = ProtocolParams(epsilon=2.0 ** -8)
        assert params.size(2) == params.policy.size(2, params.epsilon)
        assert params.bound(2) == params.policy.bound(2)

    def test_frozen(self):
        params = ProtocolParams()
        with pytest.raises(AttributeError):
            params.epsilon = 0.5  # type: ignore[misc]
