"""Forcing the ε-probability failure branches with scripted randomness.

Theorem 3 tolerates failure with probability ε because specific nonce
collisions *can* happen.  These tests rig the stations' random tapes to
make those collisions certain, and verify that (a) the implementation then
fails in exactly the way the analysis predicts, and (b) the Section 2.6
checkers flag it.  This is mutation-style validation: if the protocol or a
checker drifted, a forced collision failing to produce the predicted
violation would expose it.
"""

from __future__ import annotations

from typing import Deque, List
from collections import deque

from repro.core.bitstrings import BitString, TAU_CRASH
from repro.core.events import EmitOk, EmitPacket, EmitReceiveMsg
from repro.core.packets import DataPacket, PollPacket
from repro.core.params import ProtocolParams
from repro.core.random_source import RandomSource
from repro.core.receiver import Receiver
from repro.core.transmitter import Transmitter
from repro.checkers.safety import check_no_duplication, check_no_replay, check_order
from repro.checkers.trace import Trace
from repro.core.events import Ok, ReceiveMsg, SendMsg


PARAMS = ProtocolParams(epsilon=2.0 ** -16)


class ScriptedRandomSource(RandomSource):
    """A RandomSource whose next draws can be forced to specific values.

    Scripted values are consumed first (lengths must match the request);
    once the script is exhausted, genuine randomness resumes.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._script: Deque[BitString] = deque()

    def force_next(self, bits: BitString) -> None:
        self._script.append(bits)

    def random_bits(self, length: int) -> BitString:
        if self._script:
            forced = self._script.popleft()
            if len(forced) != length:
                raise AssertionError(
                    f"script mismatch: forced {len(forced)} bits, asked {length}"
                )
            return forced
        return super().random_bits(length)


def pump_handshake(tm: Transmitter, rm: Receiver, trace: Trace, message: bytes) -> None:
    """Drive one message through a perfect channel, recording the trace."""
    trace.append(SendMsg(message=message))
    outputs = tm.send_msg(message)
    _route_to_receiver(outputs, rm, trace)
    for __ in range(6):
        poll_outputs = rm.retry()
        poll = next(o.packet for o in poll_outputs if isinstance(o, EmitPacket))
        t_outputs = tm.on_receive_pkt(poll)
        done = False
        for output in t_outputs:
            if isinstance(output, EmitOk):
                trace.append(Ok())
                done = True
            elif isinstance(output, EmitPacket):
                _route_to_receiver([output], rm, trace)
        if done:
            return
    raise AssertionError("handshake did not complete on a perfect channel")


def _route_to_receiver(outputs, rm: Receiver, trace: Trace) -> None:
    for output in outputs:
        if isinstance(output, EmitPacket):
            for r_output in rm.on_receive_pkt(output.packet):
                if isinstance(r_output, EmitReceiveMsg):
                    trace.append(ReceiveMsg(message=r_output.message))


class TestForcedTauCollisionBreaksOrder:
    """Lemma 5 / Theorem 3's ε-event: the fresh τ collides with τ^R."""

    def test_spurious_ok_without_delivery(self):
        tm_rng = ScriptedRandomSource(1)
        tm = Transmitter(PARAMS, tm_rng)
        rm = Receiver(PARAMS, RandomSource(2))
        trace = Trace()

        # Message 1 completes normally; the receiver remembers tau_1.
        pump_handshake(tm, rm, trace, b"m1")
        tau_1 = rm.tau

        # Rig message 2's fresh nonce to equal tau_1 (probability 2^-size
        # in reality; certainty here).  The transmitter draws size(1) bits
        # after the fixed tau'_crash prefix.
        assert tau_1[0] == 1  # live nonces start with tau'_crash
        tm_rng.force_next(tau_1.suffix(len(tau_1) - 1))

        trace.append(SendMsg(message=b"m2"))
        tm.send_msg(b"m2")
        assert tm.tau == tau_1  # the collision is armed

        # The receiver's ordinary poll acks tau_1 — which now LOOKS like
        # an ack for m2.  The transmitter emits OK; m2 was never delivered.
        poll = next(
            o.packet for o in rm.retry() if isinstance(o, EmitPacket)
        )
        outputs = tm.on_receive_pkt(poll)
        assert any(isinstance(o, EmitOk) for o in outputs)
        trace.append(Ok())

        report = check_order(trace)
        assert not report.passed
        assert report.failure_count == 1

    def test_unrigged_tape_does_not_collide(self):
        # Control: with genuine randomness the same schedule is clean.
        tm = Transmitter(PARAMS, RandomSource(1))
        rm = Receiver(PARAMS, RandomSource(2))
        trace = Trace()
        pump_handshake(tm, rm, trace, b"m1")
        pump_handshake(tm, rm, trace, b"m2")
        assert check_order(trace).passed


class TestForcedRhoCollisionBreaksNoReplay:
    """Lemma 4 / Theorem 7's ε-event: a fresh ρ equals a historical one."""

    def test_replayed_message_accepted(self):
        rm_rng = ScriptedRandomSource(3)
        tm = Transmitter(PARAMS, RandomSource(4))
        rm = Receiver(PARAMS, rm_rng)
        trace = Trace()

        # Message 1: capture the challenge it was delivered against and
        # the data packet that carried it (the adversary's archive).
        rho_0 = rm.rho
        trace.append(SendMsg(message=b"m1"))
        tm.send_msg(b"m1")
        poll = next(o.packet for o in rm.retry() if isinstance(o, EmitPacket))
        data_outputs = tm.on_receive_pkt(poll)
        archived = next(
            o.packet for o in data_outputs if isinstance(o, EmitPacket)
        )
        assert archived.rho == rho_0

        # Deliver m1, rigging the next TWO challenge draws to repeat rho_0
        # (once after m1's delivery, once after m2's).
        rm_rng.force_next(rho_0)
        rm_rng.force_next(rho_0)
        for r_output in rm.on_receive_pkt(archived):
            if isinstance(r_output, EmitReceiveMsg):
                trace.append(ReceiveMsg(message=r_output.message))
        ack = next(o.packet for o in rm.retry() if isinstance(o, EmitPacket))
        for output in tm.on_receive_pkt(ack):
            if isinstance(output, EmitOk):
                trace.append(Ok())
        assert rm.rho == rho_0  # the collision is armed

        # Message 2 completes normally (against the repeated challenge),
        # creating the receive boundary Theorem 7 quantifies over.
        pump_handshake(tm, rm, trace, b"m2")
        assert rm.rho == rho_0  # armed again

        # The adversary replays m1's archived data packet: its rho matches
        # the (rigged) fresh challenge and its tau is incomparable with
        # tau^R (which is now m2's nonce) — the receiver re-accepts a
        # message resolved two handshakes ago.
        outputs = rm.on_receive_pkt(archived)
        replayed = [o for o in outputs if isinstance(o, EmitReceiveMsg)]
        assert len(replayed) == 1  # the protocol was fooled, as analysed
        trace.append(ReceiveMsg(message=replayed[0].message))

        report = check_no_replay(trace)
        assert not report.passed

    def test_single_boundary_collision_is_duplication(self):
        # The same collision one handshake earlier is, by the formal
        # definitions, a *duplication* (Theorem 8), not a replay: the OK
        # falls inside the receive-extension, so m is not yet in M_alpha.
        rm_rng = ScriptedRandomSource(8)
        tm = Transmitter(PARAMS, RandomSource(9))
        rm = Receiver(PARAMS, rm_rng)
        trace = Trace()

        rho_0 = rm.rho
        trace.append(SendMsg(message=b"m1"))
        tm.send_msg(b"m1")
        poll = next(o.packet for o in rm.retry() if isinstance(o, EmitPacket))
        archived = next(
            o.packet
            for o in tm.on_receive_pkt(poll)
            if isinstance(o, EmitPacket)
        )
        rm_rng.force_next(rho_0)
        for r_output in rm.on_receive_pkt(archived):
            if isinstance(r_output, EmitReceiveMsg):
                trace.append(ReceiveMsg(message=r_output.message))
        ack = next(o.packet for o in rm.retry() if isinstance(o, EmitPacket))
        for output in tm.on_receive_pkt(ack):
            if isinstance(output, EmitOk):
                trace.append(Ok())

        older = DataPacket(
            message=b"m1",
            rho=rho_0,
            tau=BitString("1").concat(
                RandomSource(99).random_bits(PARAMS.size(1))
            ),
        )
        outputs = rm.on_receive_pkt(older)
        assert any(isinstance(o, EmitReceiveMsg) for o in outputs)
        trace.append(ReceiveMsg(message=b"m1"))

        assert not check_no_duplication(trace).passed
        assert check_no_replay(trace).passed  # the definitions differ here

    def test_unrigged_tape_rejects_replay(self):
        tm = Transmitter(PARAMS, RandomSource(4))
        rm = Receiver(PARAMS, RandomSource(5))
        trace = Trace()
        pump_handshake(tm, rm, trace, b"m1")
        # Replay an old-style packet against the genuine fresh challenge.
        older = DataPacket(
            message=b"m1",
            rho=RandomSource(6).random_bits(PARAMS.size(1)),
            tau=BitString("1").concat(RandomSource(7).random_bits(PARAMS.size(1))),
        )
        outputs = rm.on_receive_pkt(older)
        assert not any(isinstance(o, EmitReceiveMsg) for o in outputs)
        assert check_no_replay(trace).passed
