"""Unit tests for the trusted fast constructors."""

from __future__ import annotations

import sys
from dataclasses import FrozenInstanceError, dataclass

import pytest

from repro.core.events import PktSent, SendMsg, make_pkt_sent, make_send_msg
from repro.core.events import ChannelId
from repro.util.hotpath import trusted_constructor

_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **_SLOTS)
class Point:
    x: int
    y: int

    def __post_init__(self) -> None:
        if self.x < 0:
            raise ValueError("x must be non-negative")


make_point = trusted_constructor(Point, "x", "y")


def test_trusted_instance_equals_init_built_twin():
    assert make_point(1, 2) == Point(x=1, y=2)
    assert isinstance(make_point(1, 2), Point)
    assert hash(make_point(1, 2)) == hash(Point(x=1, y=2))


def test_trusted_instance_is_still_frozen():
    point = make_point(1, 2)
    with pytest.raises((FrozenInstanceError, AttributeError)):
        point.x = 9  # type: ignore[misc]


def test_trusted_constructor_skips_post_init_validation():
    # The whole point: callers guarantee invariants, so no validation runs.
    rogue = make_point(-1, 0)
    assert rogue.x == -1
    with pytest.raises(ValueError):
        Point(x=-1, y=0)


def test_trusted_constructor_argument_errors():
    with pytest.raises(ValueError):
        trusted_constructor(Point)
    with pytest.raises(ValueError):
        trusted_constructor(Point, "x; import os", "y")


def test_event_fast_constructors_match_dataclass_init():
    assert make_send_msg(b"m") == SendMsg(message=b"m")
    assert make_pkt_sent(ChannelId.T_TO_R, 7, 128) == PktSent(
        channel=ChannelId.T_TO_R, packet_id=7, length_bits=128
    )
