"""Unit tests for the statistics helpers."""

from __future__ import annotations

import pytest

from repro.util.stats import summarize, wilson_interval


class TestWilsonInterval:
    def test_zero_successes_has_zero_point(self):
        est = wilson_interval(0, 100)
        assert est.point == 0.0
        assert est.low == 0.0
        assert est.high > 0.0  # zero observed is not zero proven

    def test_interval_contains_point(self):
        est = wilson_interval(7, 50)
        assert est.low <= est.point <= est.high

    def test_more_trials_tighter_interval(self):
        narrow = wilson_interval(50, 1000)
        wide = wilson_interval(5, 100)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_zero_trials_is_vacuous(self):
        est = wilson_interval(0, 0)
        assert est.low == 0.0 and est.high == 1.0

    def test_all_successes(self):
        est = wilson_interval(20, 20)
        assert est.point == 1.0
        assert est.high == 1.0
        assert est.low < 1.0

    def test_consistency_check_semantics(self):
        # 0/1000 observed is consistent with a 1e-3 bound; 500/1000 is not.
        assert wilson_interval(0, 1000).consistent_with_bound(1e-3)
        assert not wilson_interval(500, 1000).consistent_with_bound(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_confidence_widens_interval(self):
        loose = wilson_interval(10, 100, confidence=0.80)
        tight = wilson_interval(10, 100, confidence=0.99)
        assert (tight.high - tight.low) > (loose.high - loose.low)

    def test_str_shows_counts(self):
        assert "7/50" in str(wilson_interval(7, 50))


class TestSummarize:
    def test_basic(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0

    def test_percentile_interpolation(self):
        summary = summarize([0.0, 10.0])
        assert summary.p50 == 5.0

    def test_p95_near_top(self):
        summary = summarize(list(range(101)))
        assert summary.p95 == pytest.approx(95.0)

    def test_single_value(self):
        summary = summarize([42])
        assert summary.p50 == summary.p95 == 42.0

    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0
