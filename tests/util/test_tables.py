"""Unit tests for the fixed-width table renderer."""

from __future__ import annotations

import pytest

from repro.util.tables import format_cell, render_table


class TestFormatCell:
    def test_bools(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_small_floats_scientific(self):
        assert "e" in format_cell(0.0000123)

    def test_large_floats_scientific(self):
        assert "e" in format_cell(1234567.0)

    def test_moderate_floats_compact(self):
        assert format_cell(3.14159) == "3.142"

    def test_zero_and_specials(self):
        assert format_cell(0.0) == "0"
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("nan")) == "nan"

    def test_strings_pass_through(self):
        assert format_cell("abc") == "abc"

    def test_ints(self):
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table\n========")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_body(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_docstring_example(self):
        text = render_table(["a", "b"], [[1, 2.5]])
        assert text == "a | b\n--+----\n1 | 2.5"
