"""Properties of the kernel's int-coded nonce representation.

The step kernel (src/repro/kernel/engine.py) carries every nonce as a
``(value, length)`` pair of plain ints instead of a :class:`BitString`
object, and re-implements the Figure 3 prefix algebra as shift/compare
expressions on those pairs.  These tests pin the correspondence: the int
coding must be a lossless round-trip of the object representation, and
every inline int formula the kernel uses (prefix test, concatenation,
suffix extraction) must agree with the BitString method it replaces —
including the awkward corners (leading-zero nonces, empty strings, and
values far longer than any protocol run produces).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.bitstrings import BitString


@st.composite
def int_nonces(draw, max_bits: int = 256):
    """A (value, length) pair as the kernel codes nonces."""
    length = draw(st.integers(min_value=0, max_value=max_bits))
    value = draw(st.integers(min_value=0, max_value=(1 << length) - 1)) if length else 0
    return value, length


@st.composite
def huge_nonces(draw):
    """4096-bit pairs — far beyond any adaptive-extension run."""
    length = draw(st.integers(min_value=3500, max_value=4096))
    value = draw(st.integers(min_value=0, max_value=(1 << length) - 1))
    return value, length


# -- round-trip: (value, length) <-> BitString -----------------------------------


@given(int_nonces())
def test_pair_to_bitstring_round_trip(pair):
    value, length = pair
    bs = BitString.from_int(value, length)
    assert (bs.value, len(bs)) == (value, length)
    # The kernel's unchecked constructor builds the identical object.
    assert BitString._trusted(value, length) == bs


@given(st.text(alphabet="01", max_size=200))
def test_bitstring_to_pair_round_trip(bits):
    bs = BitString(bits)
    assert BitString.from_int(bs.value, len(bs)).to01() == bits


@given(int_nonces())
def test_length_tag_disambiguates_leading_zeros(pair):
    value, length = pair
    padded = BitString.from_int(value, length + 3)
    plain = BitString.from_int(value, length)
    # Same value, different length tag: distinct strings, never equal.
    assert padded != plain
    assert padded.to01() == "000" + plain.to01()


def test_all_zero_nonce_keeps_its_length():
    # value.bit_length() == 0 but the nonce is 64 bits of zeros, not empty.
    bs = BitString.from_int(0, 64)
    assert len(bs) == 64
    assert bs.value == 0
    assert bs.to01() == "0" * 64


@settings(max_examples=10)
@given(huge_nonces())
def test_round_trip_survives_4096_bit_values(pair):
    value, length = pair
    bs = BitString.from_int(value, length)
    assert (bs.value, len(bs)) == (value, length)
    assert len(bs.to01()) == length


# -- the kernel's inline prefix test ---------------------------------------------


def kernel_is_prefix(v1, l1, v2, l2):
    """The exact int formula the step kernel inlines for Figure 3 prefix."""
    return l1 <= l2 and (v2 >> (l2 - l1)) == v1


@given(int_nonces(), int_nonces())
def test_prefix_formula_matches_bitstring_on_random_pairs(a, b):
    (v1, l1), (v2, l2) = a, b
    expected = BitString.from_int(v1, l1).is_prefix_of(BitString.from_int(v2, l2))
    assert kernel_is_prefix(v1, l1, v2, l2) == expected


@given(int_nonces(), st.data())
def test_prefix_formula_accepts_actual_prefixes(pair, data):
    value, length = pair
    cut = data.draw(st.integers(min_value=0, max_value=length))
    prefix = BitString.from_int(value, length).prefix(cut)
    assert kernel_is_prefix(prefix.value, len(prefix), value, length)


@given(int_nonces())
def test_prefix_formula_is_reflexive_and_accepts_empty(pair):
    value, length = pair
    assert kernel_is_prefix(value, length, value, length)
    assert kernel_is_prefix(0, 0, value, length)


@settings(max_examples=10)
@given(huge_nonces(), st.data())
def test_prefix_formula_at_4096_bits(pair, data):
    value, length = pair
    cut = data.draw(st.integers(min_value=0, max_value=length))
    pv, pl = value >> (length - cut), cut
    assert kernel_is_prefix(pv, pl, value, length)
    assert BitString._trusted(pv, pl).is_prefix_of(BitString._trusted(value, length))


@given(int_nonces(), int_nonces())
def test_comparability_formula_matches_bitstring(a, b):
    (v1, l1), (v2, l2) = a, b
    expected = BitString.from_int(v1, l1).is_comparable_with(
        BitString.from_int(v2, l2)
    )
    got = kernel_is_prefix(v1, l1, v2, l2) or kernel_is_prefix(v2, l2, v1, l1)
    assert got == expected


# -- concatenation and suffix (adaptive nonce extension) -------------------------


@given(int_nonces(), int_nonces())
def test_concat_formula_matches_bitstring(a, b):
    (v1, l1), (v2, l2) = a, b
    cv, cl = (v1 << l2) | v2, l1 + l2
    assert BitString.from_int(v1, l1).concat(BitString.from_int(v2, l2)) == (
        BitString.from_int(cv, cl)
    )
    # Extension preserves the prefix relation the protocol relies on.
    assert kernel_is_prefix(v1, l1, cv, cl)


@given(int_nonces(), st.data())
def test_suffix_mask_matches_bitstring(pair, data):
    value, length = pair
    cut = data.draw(st.integers(min_value=0, max_value=length))
    sv = value & ((1 << cut) - 1)
    assert BitString.from_int(value, length).suffix(cut) == BitString.from_int(sv, cut)
