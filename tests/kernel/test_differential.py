"""Differential pinning: kernel engine == object engine, event for event.

Every test runs the same spec under the same seed on both engines and
requires the two executions to be *identical*: the full trace (under
``retain="full"`` every event of the run is recorded), the Section 2.6
verdicts, the frozen metrics (minus wall-clock fields), the stations'
final state, the channels' counters, the adversary's bookkeeping, and the
stations' RNG tape positions.  The zoo spans the model's whole fault
vocabulary — reliable FIFO, random loss/duplication/reordering, station
crashes, scripted drop/dup/stall/crash/corrupt plans, arbitrary-state
corruption with the stabilization monitor attached — plus both fairness
settings and truncated (max_steps-bounded) runs.
"""

import pytest

from repro.adversary.benign import DelayedFifoAdversary, ReliableAdversary
from repro.adversary.corruption import StateCorruptionAdversary
from repro.adversary.fairness import StallingAdversary
from repro.adversary.random_faults import (
    DuplicateFloodAdversary,
    FaultProfile,
    RandomFaultAdversary,
    ReorderAdversary,
)
from repro.resilience.faultplan import (
    CorruptAt,
    CrashAt,
    DropWindow,
    DuplicateBurst,
    FaultPlan,
    StallWindow,
    apply_fault_plan,
)
from repro.sim.runner import RunSpec, run_once

SEEDS = [0, 1, 7, 42, 1234]


def build_spec(adversary_factory, engine, **overrides):
    options = dict(
        epsilon=2.0 ** -8,
        adversary_factory=adversary_factory,
        messages=25,
        retain="full",
        max_steps=60_000,
        engine=engine,
    )
    options.update(overrides)
    plan = options.pop("fault_plan", None)
    spec = RunSpec.default(**options)
    if plan is not None:
        spec = apply_fault_plan(spec, plan)
    return spec


def metrics_key(metrics):
    """Everything deterministic in the frozen metrics (wall-clock excluded)."""
    wire = metrics.to_wire()
    return wire[:16] + wire[18:] + (tuple(metrics.storage_samples),)


def stabilization_key(report):
    if report is None:
        return None
    return (
        report.corruptions,
        report.converged,
        report.window,
        tuple(
            (r.station, tuple(r.fields), r.seed, r.events, r.datagrams)
            for r in report.records
        ),
    )


def safety_key(safety):
    return tuple(
        (r.condition, r.passed, r.failure_count, r.trials)
        for r in safety.all_reports
    )


def assert_equivalent(adversary_factory, seed, **overrides):
    object_outcome = run_once(
        build_spec(adversary_factory, "object", **overrides), seed
    )
    obj = snapshot(object_outcome)
    kernel_outcome = run_once(
        build_spec(adversary_factory, "kernel", **overrides), seed
    )
    ker = snapshot(kernel_outcome)
    assert obj["events"] == ker["events"]
    for key in obj:
        assert obj[key] == ker[key], f"engines diverge on {key}"


def snapshot(outcome):
    """Extract every deterministic observable of one finished run."""
    result = outcome.result
    link = result.link
    t, r = link.transmitter, link.receiver
    adversary = result.adversary
    adv_state = {
        "moves_made": adversary.moves_made,
        "type": type(adversary).__name__,
    }
    for name in ("forced_deliveries", "dropped", "duplicated",
                 "crashes_injected", "redeliveries"):
        if hasattr(adversary, name):
            adv_state[name] = getattr(adversary, name)
    inner = getattr(adversary, "inner", None)
    if inner is not None:
        adv_state["inner_type"] = type(inner).__name__
        adv_state["inner_moves"] = inner.moves_made
        for name in ("dropped", "duplicated", "crashes_injected"):
            if hasattr(inner, name):
                adv_state["inner_" + name] = getattr(inner, name)
    trace = result.trace
    return {
        "events": list(trace.events),
        "counts": (trace.packets_sent(), trace.packets_delivered(),
                   trace.retries(), trace.ok_count(), trace.crash_count()),
        "completed": result.completed,
        "steps": result.steps,
        "metrics": metrics_key(result.metrics),
        "safety": safety_key(outcome.safety),
        "liveness": outcome.liveness_passed,
        "stabilization": stabilization_key(outcome.stabilization),
        "transmitter": repr(t),
        "receiver": repr(r),
        "t_bits_drawn": t._rng.bits_drawn,
        "r_bits_drawn": r._rng.bits_drawn,
        "t_stats": vars(t.stats).copy(),
        "r_stats": vars(r.stats).copy(),
        "adversary": adv_state,
    }


class TestReliable:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fair_reliable(self, seed):
        assert_equivalent(ReliableAdversary, seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bare_reliable(self, seed):
        assert_equivalent(ReliableAdversary, seed, enforce_fairness=False)

    def test_truncated_run(self):
        # max_steps exhaustion: both engines stop mid-flight identically.
        assert_equivalent(ReliableAdversary, 3, max_steps=37)

    def test_single_step_budget(self):
        assert_equivalent(ReliableAdversary, 5, max_steps=1)

    def test_empty_workload(self):
        assert_equivalent(ReliableAdversary, 9, messages=0)


class TestRandomFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lossy(self, seed):
        factory = lambda: RandomFaultAdversary(
            FaultProfile(loss=0.15, duplicate=0.1)
        )
        assert_equivalent(factory, seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_fault_class(self, seed):
        factory = lambda: RandomFaultAdversary(
            FaultProfile(
                loss=0.2, duplicate=0.1, reorder=0.15,
                crash_t=0.002, crash_r=0.002,
            )
        )
        assert_equivalent(factory, seed, max_steps=30_000)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_high_loss_low_patience_forces_deliveries(self, seed):
        # Dropped packets linger in the enforcer's pending sets, so a high
        # loss rate plus a short patience exercises forced (resurrected)
        # deliveries on both engines.
        factory = lambda: RandomFaultAdversary(FaultProfile(loss=0.5))
        assert_equivalent(factory, seed, fairness_patience=4)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_bare_random(self, seed):
        factory = lambda: RandomFaultAdversary(
            FaultProfile(loss=0.1, duplicate=0.15, reorder=0.1)
        )
        assert_equivalent(factory, seed, enforce_fairness=False)


class TestGenericAdversaries:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_stalling_under_enforcer(self, seed):
        assert_equivalent(StallingAdversary, seed, messages=8)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_delayed_fifo(self, seed):
        assert_equivalent(lambda: DelayedFifoAdversary(delay_turns=3), seed)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_reorder(self, seed):
        assert_equivalent(lambda: ReorderAdversary(window=8), seed)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_duplicate_flood(self, seed):
        assert_equivalent(
            lambda: DuplicateFloodAdversary(flood=0.4), seed, messages=10
        )


class TestFaultPlans:
    """Scripted drop/dup/stall/crash/corrupt plans (the zoo of ISSUE 7)."""

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_drop_window(self, seed):
        plan = FaultPlan.of(
            DropWindow(start=5, end=25),
            DropWindow(start=40, end=55, channel="T->R"),
        )
        assert_equivalent(ReliableAdversary, seed, fault_plan=plan)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_duplicate_burst(self, seed):
        plan = FaultPlan.of(
            DuplicateBurst(step=12, copies=3, spacing=1),
            DuplicateBurst(step=30, copies=2, spacing=7),
        )
        assert_equivalent(ReliableAdversary, seed, fault_plan=plan)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_stall_window(self, seed):
        plan = FaultPlan.of(StallWindow(start=10, end=80))
        assert_equivalent(
            ReliableAdversary, seed, fault_plan=plan, fairness_patience=16
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_crashes(self, seed):
        plan = FaultPlan.of(
            CrashAt(step=15, station="T"),
            CrashAt(step=45, station="R"),
        )
        assert_equivalent(ReliableAdversary, seed, fault_plan=plan)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_corrupt_scramble_and_wipe(self, seed):
        plan = FaultPlan.of(
            CorruptAt(step=12, station="T", seed=401),
            CorruptAt(step=28, station="R", seed=402),
            CorruptAt(step=44, station="T", seed=403, mode="wipe"),
            CorruptAt(step=60, station="R", fields=("tau", "rho"), seed=404),
        )
        assert_equivalent(
            ReliableAdversary, seed, fault_plan=plan, stabilization=True
        )

    def test_combined_plan_over_lossy_inner(self):
        plan = FaultPlan.of(
            DropWindow(start=8, end=20),
            CrashAt(step=33, station="T"),
            DuplicateBurst(step=50, copies=2, spacing=3),
            StallWindow(start=70, end=90),
            CorruptAt(step=110, station="R", seed=77),
        )
        factory = lambda: RandomFaultAdversary(
            FaultProfile(loss=0.1, duplicate=0.05)
        )
        assert_equivalent(factory, 21, fault_plan=plan, stabilization=True)


class TestStateCorruption:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_random_corruption_with_stabilization(self, seed):
        factory = lambda: StateCorruptionAdversary(rate_t=0.01, rate_r=0.01)
        assert_equivalent(
            factory, seed, stabilization=True, max_steps=30_000
        )

    def test_wipe_mode(self):
        factory = lambda: StateCorruptionAdversary(
            rate_t=0.005, rate_r=0.005, wipe=True
        )
        assert_equivalent(factory, 2, stabilization=True, max_steps=30_000)


def streaming_snapshot(outcome):
    """Observables available under ``retain="none"`` (no stored events)."""
    result = outcome.result
    link = result.link
    t, r = link.transmitter, link.receiver
    trace = result.trace
    checks = result.checks
    return {
        "counts": (trace.packets_sent(), trace.packets_delivered(),
                   trace.retries(), trace.ok_count(), trace.crash_count()),
        "total_events": trace.total_events,
        "events_seen": checks.events_seen,
        "completed": result.completed,
        "steps": result.steps,
        "metrics": metrics_key(result.metrics),
        "safety": safety_key(outcome.safety),
        "liveness": outcome.liveness_passed,
        "transmitter": repr(t),
        "receiver": repr(r),
        "t_bits_drawn": t._rng.bits_drawn,
        "r_bits_drawn": r._rng.bits_drawn,
        "t_stats": vars(t.stats).copy(),
        "r_stats": vars(r.stats).copy(),
    }


class TestStreamingFastPath:
    """retain="none" runs take the kernel's direct checker-dispatch path;
    the settled trace/checker counters must match the object engine's."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fair_reliable_none_retention(self, seed):
        obj = streaming_snapshot(
            run_once(build_spec(ReliableAdversary, "object", retain="none"),
                     seed)
        )
        ker = streaming_snapshot(
            run_once(build_spec(ReliableAdversary, "kernel", retain="none"),
                     seed)
        )
        assert obj == ker

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lossy_none_retention(self, seed):
        factory = lambda: RandomFaultAdversary(
            FaultProfile(loss=0.2, duplicate=0.1, crash_t=0.001,
                         crash_r=0.001)
        )
        obj = streaming_snapshot(
            run_once(build_spec(factory, "object", retain="none",
                                max_steps=30_000), seed)
        )
        ker = streaming_snapshot(
            run_once(build_spec(factory, "kernel", retain="none",
                                max_steps=30_000), seed)
        )
        assert obj == ker

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_bare_random_none_retention(self, seed):
        factory = lambda: RandomFaultAdversary(
            FaultProfile(loss=0.1, reorder=0.1, duplicate=0.05)
        )
        obj = streaming_snapshot(
            run_once(build_spec(factory, "object", retain="none",
                                enforce_fairness=False), seed)
        )
        ker = streaming_snapshot(
            run_once(build_spec(factory, "kernel", retain="none",
                                enforce_fairness=False), seed)
        )
        assert obj == ker


class TestVeneerSync:
    """The kernel must leave the object graph exactly as the object engine
    does — a second (object-engine) inspection pass sees the same world."""

    def test_channel_state_synced(self):
        spec_obj = build_spec(ReliableAdversary, "object")
        spec_ker = build_spec(ReliableAdversary, "kernel")
        out_obj = run_once(spec_obj, 11)
        out_ker = run_once(spec_ker, 11)
        sim_channels = {}
        for label, outcome in (("object", out_obj), ("kernel", out_ker)):
            link = outcome.result.link
            sim_channels[label] = (
                link.transmitter.storage_bits,
                link.receiver.storage_bits,
                link.total_storage_bits(),
            )
        assert sim_channels["object"] == sim_channels["kernel"]

    def test_kernel_engine_rejected_values(self):
        with pytest.raises(ValueError):
            run_once(build_spec(ReliableAdversary, "vectorized"), 0)
        run_once(build_spec(ReliableAdversary, "kernel"), 0)
