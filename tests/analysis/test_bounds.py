"""Unit tests for the analytic formulas of Section 4."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    expected_handshake_packets,
    fixed_nonce_replay_probability,
    generation_after_errors,
    nonce_bits_after_errors,
    replay_attack_curve,
    theorem3_budget,
    union_bound,
)
from repro.core.params import PrintedPaperPolicy, SoundPolicy


class TestTheorem3Budget:
    def test_four_equal_quarters(self):
        budget = theorem3_budget(2.0 ** -10)
        assert budget.duplicate_delivery == budget.epsilon / 4
        assert budget.total == pytest.approx(budget.epsilon)


class TestUnionBound:
    def test_sound_policy_under_quarter(self):
        eps = 2.0 ** -10
        assert union_bound(SoundPolicy(), eps) <= eps / 4

    def test_printed_policy_exceeds_quarter_over_long_horizon(self):
        eps = 2.0 ** -10
        assert union_bound(PrintedPaperPolicy(), eps, horizon=64) > eps / 4

    def test_matches_policy_method(self):
        eps = 2.0 ** -8
        policy = SoundPolicy()
        assert union_bound(policy, eps) == policy.total_failure_mass(eps)


class TestGenerationGrowth:
    def test_zero_errors_stay_generation_one(self):
        assert generation_after_errors(SoundPolicy(), 0) == 1

    def test_below_bound_stays(self):
        policy = SoundPolicy()  # bound(1) = 2
        assert generation_after_errors(policy, 1) == 1

    def test_at_bound_advances(self):
        policy = SoundPolicy()
        assert generation_after_errors(policy, 2) == 2
        # bound(1)+bound(2) = 6 errors exhaust generation 2.
        assert generation_after_errors(policy, 6) == 3

    def test_growth_is_logarithmic(self):
        policy = SoundPolicy()
        # 2+4+...+2^t absorbs ~2^(t+1) errors: 1000 errors < generation 10.
        assert generation_after_errors(policy, 1000) <= 10

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            generation_after_errors(SoundPolicy(), -1)

    def test_nonce_bits_monotone_in_errors(self):
        eps = 2.0 ** -10
        policy = SoundPolicy()
        sizes = [nonce_bits_after_errors(policy, eps, n) for n in (0, 2, 6, 14, 30)]
        assert sizes == sorted(sizes)
        assert sizes[0] == policy.size(1, eps)


class TestHandshakeCost:
    def test_lossless(self):
        assert expected_handshake_packets(0.0) == 2.0
        assert expected_handshake_packets(0.0, steady_state=False) == 3.0

    def test_half_loss_doubles(self):
        assert expected_handshake_packets(0.5) == 4.0

    def test_monotone_in_loss(self):
        costs = [expected_handshake_packets(p) for p in (0.0, 0.2, 0.5, 0.8)]
        assert costs == sorted(costs)

    def test_rejects_certain_loss(self):
        with pytest.raises(ValueError):
            expected_handshake_packets(1.0)


class TestReplayProbability:
    def test_empty_archive_never_wins(self):
        assert fixed_nonce_replay_probability(8, 0) == 0.0

    def test_monotone_in_archive(self):
        probs = replay_attack_curve(6, [0, 16, 64, 256])
        assert probs == sorted(probs)

    def test_approaches_one(self):
        assert fixed_nonce_replay_probability(4, 1000) > 0.99

    def test_larger_nonce_is_safer(self):
        assert fixed_nonce_replay_probability(16, 64) < fixed_nonce_replay_probability(
            4, 64
        )

    def test_single_packet_single_guess(self):
        assert fixed_nonce_replay_probability(8, 1) == pytest.approx(2.0 ** -8)

    def test_validation(self):
        with pytest.raises(ValueError):
            fixed_nonce_replay_probability(0, 5)
        with pytest.raises(ValueError):
            fixed_nonce_replay_probability(8, -1)
