"""Unit and behavioural tests for the alternating-bit baseline."""

from __future__ import annotations

import pytest

from repro.adversary.benign import ReliableAdversary
from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.baselines.alternating_bit import AbpReceiver, AbpTransmitter, make_abp_link
from repro.baselines.base import AckFrame, Frame
from repro.checkers.safety import check_all_safety
from repro.core.events import EmitOk, EmitPacket, EmitReceiveMsg
from repro.core.exceptions import ProtocolError
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


class TestTransmitterUnit:
    def test_sends_frame_with_current_bit(self):
        tm = AbpTransmitter()
        outputs = tm.send_msg(b"m1")
        assert outputs[0].packet == Frame(seq=0, message=b"m1")

    def test_matching_ack_flips_bit(self):
        tm = AbpTransmitter()
        tm.send_msg(b"m1")
        outputs = tm.on_receive_pkt(AckFrame(seq=0))
        assert any(isinstance(o, EmitOk) for o in outputs)
        assert tm.send_msg(b"m2")[0].packet.seq == 1

    def test_stale_ack_triggers_retransmit(self):
        tm = AbpTransmitter()
        tm.send_msg(b"m1")
        outputs = tm.on_receive_pkt(AckFrame(seq=1))
        assert isinstance(outputs[0], EmitPacket)
        assert outputs[0].packet == Frame(seq=0, message=b"m1")

    def test_axiom1_enforced(self):
        tm = AbpTransmitter()
        tm.send_msg(b"m1")
        with pytest.raises(ProtocolError):
            tm.send_msg(b"m2")

    def test_crash_resets_bit(self):
        tm = AbpTransmitter()
        tm.send_msg(b"m1")
        tm.on_receive_pkt(AckFrame(seq=0))
        tm.crash()
        assert tm.send_msg(b"m2")[0].packet.seq == 0  # volatile bit lost

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError):
            AbpTransmitter().on_receive_pkt(Frame(seq=0, message=b"m"))


class TestReceiverUnit:
    def test_accepts_expected_bit(self):
        rm = AbpReceiver()
        outputs = rm.on_receive_pkt(Frame(seq=0, message=b"m1"))
        assert any(
            isinstance(o, EmitReceiveMsg) and o.message == b"m1" for o in outputs
        )

    def test_rejects_duplicate_silently(self):
        # Duplicates are not re-acked per packet (self-flooding); the
        # periodic RETRY carries the re-ack instead.
        rm = AbpReceiver()
        rm.on_receive_pkt(Frame(seq=0, message=b"m1"))
        outputs = rm.on_receive_pkt(Frame(seq=0, message=b"m1"))
        assert outputs == []
        retry_outputs = rm.retry()
        assert retry_outputs[0].packet == AckFrame(seq=0)

    def test_retry_before_first_accept_uses_sentinel(self):
        # Nothing accepted yet: the ack carries a sentinel that clocks
        # retransmission without risking a spurious OK.
        rm = AbpReceiver()
        outputs = rm.retry()
        assert outputs[0].packet == AckFrame(seq=-1)

    def test_retry_resends_previous_ack(self):
        rm = AbpReceiver()
        rm.on_receive_pkt(Frame(seq=0, message=b"m1"))
        outputs = rm.retry()
        assert outputs[0].packet == AckFrame(seq=0)

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError):
            AbpReceiver().on_receive_pkt(AckFrame(seq=0))


class TestAbpBehaviour:
    def _run(self, adversary, messages=12, seed=0, max_steps=30_000, **kwargs):
        sim = Simulator(
            make_abp_link(), adversary, SequentialWorkload(messages),
            seed=seed, max_steps=max_steps, **kwargs,
        )
        return sim.run()

    def test_correct_over_reliable_fifo(self):
        result = self._run(ReliableAdversary())
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_correct_under_loss_only(self):
        # Fairness enforcement off: the enforcer resurrects dropped packets
        # out of order, which would violate the FIFO premise ABP needs.  A
        # loss-only adversary with loss < 1 is fair on its own.
        result = self._run(
            RandomFaultAdversary(FaultProfile(loss=0.35)),
            enforce_fairness=False,
        )
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_breaks_under_duplication(self):
        # The paper's setting (duplicating channels) defeats ABP.
        violated = 0
        for seed in range(8):
            result = self._run(
                RandomFaultAdversary(FaultProfile(duplicate=0.5, reorder=0.5)),
                seed=seed,
            )
            if not check_all_safety(result.trace).passed:
                violated += 1
        assert violated > 0

    def test_breaks_under_receiver_crash(self):
        # [BS88]'s observation: classical FIFO protocols are not
        # crash-resilient.  Depending on where the crash lands relative to
        # the alternating bit, ABP either misbehaves (safety) or
        # desynchronises into a deadlock (liveness) — it never keeps both.
        broken = 0
        for seed in range(8):
            result = self._run(
                ScheduledCrashAdversary([(20 + seed, "R"), (45 + seed, "R")]),
                seed=seed,
            )
            if not check_all_safety(result.trace).passed or not result.completed:
                broken += 1
        assert broken > 0
