"""Tests for the Section 3 fixed-nonce strawman."""

from __future__ import annotations

from repro.adversary.benign import ReliableAdversary
from repro.adversary.replay import ReplayAttacker
from repro.baselines.naive_handshake import make_naive_handshake_link
from repro.checkers.safety import check_all_safety
from repro.core.params import FixedPolicy
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


class TestConstruction:
    def test_uses_fixed_policy(self):
        link = make_naive_handshake_link(nonce_bits=6, seed=1)
        assert isinstance(link.params.policy, FixedPolicy)
        assert link.params.policy.nonce_bits == 6

    def test_receiver_challenge_has_fixed_size(self):
        link = make_naive_handshake_link(nonce_bits=6, seed=1)
        assert len(link.receiver.rho) == 6


class TestBehaviour:
    def test_correct_under_benign_conditions(self):
        link = make_naive_handshake_link(nonce_bits=8, seed=2)
        sim = Simulator(link, ReliableAdversary(), SequentialWorkload(20), seed=2)
        result = sim.run()
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_never_extends_nonce(self):
        link = make_naive_handshake_link(nonce_bits=8, seed=3)
        sim = Simulator(
            link,
            ReplayAttacker(harvest_messages=30, replay_rounds=3),
            SequentialWorkload(100),
            seed=3,
            max_steps=30_000,
        )
        sim.run()
        assert link.receiver.stats.extensions == 0

    def test_replay_attack_usually_succeeds_on_small_nonce(self):
        # The Section 3 scenario: with a 5-bit fixed challenge and an
        # archive of ~80 packets, most runs end in a no-replay violation.
        violated = 0
        for seed in range(12):
            link = make_naive_handshake_link(nonce_bits=5, seed=seed)
            attacker = ReplayAttacker(harvest_messages=80, replay_rounds=6)
            sim = Simulator(
                link, attacker, SequentialWorkload(200), seed=seed, max_steps=30_000
            )
            result = sim.run()
            report = check_all_safety(result.trace)
            if not (report.no_replay.passed and report.no_duplication.passed):
                violated += 1
        assert violated >= 6  # overwhelmingly broken

    def test_attack_weakens_with_nonce_size(self):
        def violation_count(bits):
            violated = 0
            for seed in range(10):
                link = make_naive_handshake_link(nonce_bits=bits, seed=seed)
                attacker = ReplayAttacker(harvest_messages=60, replay_rounds=4)
                sim = Simulator(
                    link, attacker, SequentialWorkload(150), seed=seed,
                    max_steps=30_000,
                )
                result = sim.run()
                report = check_all_safety(result.trace)
                if not (report.no_replay.passed and report.no_duplication.passed):
                    violated += 1
            return violated

        assert violation_count(4) > violation_count(12)
