"""Tests for the stop-and-wait (modular sequence) baseline."""

from __future__ import annotations

import pytest

from repro.adversary.benign import ReliableAdversary
from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.baselines.base import AckFrame, Frame
from repro.baselines.stop_and_wait import (
    StopAndWaitReceiver,
    StopAndWaitTransmitter,
    make_stop_and_wait_link,
)
from repro.checkers.safety import check_all_safety
from repro.core.events import EmitOk, EmitReceiveMsg
from repro.core.exceptions import ProtocolError
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


class TestUnits:
    def test_sequence_increments_per_message(self):
        tm = StopAndWaitTransmitter()
        assert tm.send_msg(b"a")[0].packet.seq == 1
        tm.on_receive_pkt(AckFrame(seq=1))
        assert tm.send_msg(b"b")[0].packet.seq == 2

    def test_matching_ack_oks(self):
        tm = StopAndWaitTransmitter()
        tm.send_msg(b"a")
        assert any(isinstance(o, EmitOk) for o in tm.on_receive_pkt(AckFrame(seq=1)))

    def test_stale_ack_retransmits(self):
        tm = StopAndWaitTransmitter()
        tm.send_msg(b"a")
        outputs = tm.on_receive_pkt(AckFrame(seq=0))
        assert outputs[0].packet == Frame(seq=1, message=b"a")

    def test_sequence_wraps_at_modulus(self):
        tm = StopAndWaitTransmitter(seq_bits=2)
        for expected in (1, 2, 3, 0, 1):
            frame = tm.send_msg(b"m%d" % expected)[0].packet
            assert frame.seq == expected
            tm.on_receive_pkt(AckFrame(seq=expected))

    def test_receiver_accepts_new_rejects_repeat(self):
        rm = StopAndWaitReceiver()
        first = rm.on_receive_pkt(Frame(seq=1, message=b"a"))
        again = rm.on_receive_pkt(Frame(seq=1, message=b"a"))
        assert any(isinstance(o, EmitReceiveMsg) for o in first)
        assert not any(isinstance(o, EmitReceiveMsg) for o in again)

    def test_crash_resets_counters(self):
        tm = StopAndWaitTransmitter()
        tm.send_msg(b"a")
        tm.crash()
        assert not tm.busy
        assert tm.send_msg(b"b")[0].packet.seq == 1  # counter restarted

    def test_axiom1(self):
        tm = StopAndWaitTransmitter()
        tm.send_msg(b"a")
        with pytest.raises(ProtocolError):
            tm.send_msg(b"b")

    def test_validation(self):
        with pytest.raises(ValueError):
            StopAndWaitTransmitter(seq_bits=0)


class TestBehaviour:
    def _run(self, adversary, seq_bits=16, messages=12, seed=0):
        sim = Simulator(
            make_stop_and_wait_link(seq_bits=seq_bits),
            adversary,
            SequentialWorkload(messages),
            seed=seed,
            max_steps=30_000,
        )
        return sim.run()

    def test_correct_over_reliable_fifo(self):
        result = self._run(ReliableAdversary())
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_wide_counter_survives_moderate_reorder_dup(self):
        # Unlike ABP, a 16-bit counter distinguishes frames many messages
        # apart, so moderate duplication/reordering does not confuse it.
        result = self._run(
            RandomFaultAdversary(FaultProfile(duplicate=0.3, reorder=0.4)), seed=1
        )
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_breaks_under_crashes(self):
        # Deterministic counters restart at zero after a crash.  Depending
        # on where the crash lands, the protocol either repeats history (a
        # safety violation) or the desynchronised counters deadlock (a
        # liveness loss) — [LMF88] says one of the two is unavoidable.
        broken = 0
        for seed in range(8):
            result = self._run(
                ScheduledCrashAdversary(
                    [(15 + seed, "T"), (30 + seed, "R"), (45 + seed, "T")]
                ),
                seed=seed,
            )
            safety = check_all_safety(result.trace).passed
            if not safety or not result.completed:
                broken += 1
        assert broken > 0
