"""Tests for the [BS88]-style nonvolatile-bit baseline."""

from __future__ import annotations

from repro.adversary.benign import ReliableAdversary
from repro.adversary.crash import CrashStormAdversary, ScheduledCrashAdversary
from repro.baselines.base import AckFrame, Frame
from repro.baselines.nonvolatile_bit import (
    NonvolatileBitReceiver,
    NonvolatileBitTransmitter,
    make_nonvolatile_bit_link,
)
from repro.checkers.safety import check_all_safety
from repro.core.events import EmitReceiveMsg
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


class TestStableStorageSemantics:
    def test_transmitter_bit_survives_crash(self):
        tm = NonvolatileBitTransmitter()
        tm.send_msg(b"a")
        tm.on_receive_pkt(AckFrame(seq=0))  # bit flips to 1
        tm.crash()
        assert tm.nonvolatile_bit == 1
        assert tm.send_msg(b"b")[0].packet.seq == 1

    def test_transmitter_message_is_volatile(self):
        tm = NonvolatileBitTransmitter()
        tm.send_msg(b"a")
        tm.crash()
        assert not tm.busy  # the in-flight message died with the memory

    def test_receiver_expectation_survives_crash(self):
        rm = NonvolatileBitReceiver()
        rm.on_receive_pkt(Frame(seq=0, message=b"a"))
        rm.crash()
        outputs = rm.on_receive_pkt(Frame(seq=0, message=b"a"))
        assert not any(isinstance(o, EmitReceiveMsg) for o in outputs)


class TestBehaviour:
    def _run(self, adversary, messages=12, seed=0):
        sim = Simulator(
            make_nonvolatile_bit_link(),
            adversary,
            SequentialWorkload(messages),
            seed=seed,
            max_steps=30_000,
        )
        return sim.run()

    def test_correct_over_reliable_fifo(self):
        result = self._run(ReliableAdversary())
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_receiver_crashes_fully_tolerated(self):
        # The headline [BS88] property: the stable bit prevents the
        # duplication/replay failures plain ABP shows under crash^R.
        for seed in range(8):
            result = self._run(
                CrashStormAdversary(
                    crash_rate=0.03, target_transmitter=False, max_crashes=6
                ),
                seed=seed,
            )
            assert check_all_safety(result.trace).passed

    def test_transmitter_crashes_still_leak_order_violations(self):
        # The residual weakness: a one-bit deterministic ack cannot
        # distinguish the pre-crash message from its successor.
        violated = 0
        for seed in range(10):
            result = self._run(
                CrashStormAdversary(
                    crash_rate=0.03, target_receiver=False, max_crashes=6
                ),
                seed=seed,
            )
            report = check_all_safety(result.trace)
            if not report.order.passed:
                violated += 1
            # But never duplication or replay — those need receiver state loss.
            assert report.no_duplication.passed
        assert violated > 0
