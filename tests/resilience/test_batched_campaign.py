"""Batched campaign engine: sharding, wire codec, session reuse, determinism.

The engine's contract is that batching is *pure scheduling*: for a fixed
``(spec, runs, base_seed)`` the terminal reports are bit-identical for any
``jobs``/``chunk_size`` combination, including the in-process path.  These
tests pin that contract down, plus the pieces it stands on — the compact
wire codec round-trips losslessly, and a reused :class:`RunSession` (and
the :meth:`Simulator.reset` underneath it) reproduces per-run construction
exactly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.core.protocol import make_data_link
from repro.resilience.faultplan import AbortAt, FaultPlan
from repro.resilience.supervisor import (
    CampaignConfig,
    RunReport,
    RunStatus,
    decode_report,
    derive_run_seed,
    encode_report,
    execute_attempt,
    run_campaign,
)
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import RunSession, RunSpec, monte_carlo, run_once
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload
from tests.resilience.conftest import make_paper_spec


def make_lossy_spec(messages: int = 2) -> RunSpec:
    """The real protocol under random loss — short runs, non-trivial tapes."""
    return RunSpec(
        link_factory=lambda seed: make_data_link(epsilon=2.0 ** -16, seed=seed),
        adversary_factory=lambda: RandomFaultAdversary(FaultProfile(loss=0.2)),
        workload_factory=lambda seed: SequentialWorkload(messages),
        max_steps=50_000,
        label="lossy",
        retain="none",
    )


# -- shard determinism -------------------------------------------------------------


def test_fingerprint_identical_across_jobs_and_chunk_sizes():
    # The headline determinism claim: every scheduling shape reproduces the
    # in-process campaign bit for bit.
    spec = make_lossy_spec()
    baseline = run_campaign(
        spec, 6, base_seed=11, config=CampaignConfig(in_process=True)
    ).fingerprint()
    for jobs in (1, 2):
        for chunk_size in (1, 2, None):
            config = CampaignConfig(jobs=jobs, chunk_size=chunk_size)
            result = run_campaign(spec, 6, base_seed=11, config=config)
            assert result.fingerprint() == baseline, (
                f"jobs={jobs} chunk_size={chunk_size} diverged from in-process"
            )


def test_mid_campaign_retry_keeps_other_shard_runs_intact():
    # A crash inside a shard retries as a single-run shard; its shard-mates
    # must still match the serial campaign.
    spec = make_paper_spec()
    plan = FaultPlan.of(AbortAt(step=3, run=2))
    config = CampaignConfig(jobs=2, chunk_size=4, retries=1,
                            backoff_base=0.0, backoff_cap=0.0)
    serial = run_campaign(
        spec, 6, base_seed=0, fault_plan=plan,
        config=CampaignConfig(in_process=True, retries=1,
                              backoff_base=0.0, backoff_cap=0.0),
    )
    sharded = run_campaign(spec, 6, base_seed=0, config=config, fault_plan=plan)
    assert sharded.fingerprint() == serial.fingerprint()
    assert sharded.reports[2].attempts == 2
    assert sharded.reports[2].seed == derive_run_seed(0, 2, 1)


def test_resolve_chunk_size_auto_and_explicit():
    # Auto mode: ~4 shards per worker, capped at 32; explicit wins outright.
    assert CampaignConfig(jobs=1).resolve_chunk_size(16) == 4
    assert CampaignConfig(jobs=2).resolve_chunk_size(16) == 2
    assert CampaignConfig(jobs=1).resolve_chunk_size(1024) == 32
    assert CampaignConfig(jobs=1).resolve_chunk_size(1) == 1
    assert CampaignConfig(jobs=4, chunk_size=7).resolve_chunk_size(1024) == 7


# -- wire codec --------------------------------------------------------------------


def test_encode_decode_round_trips_a_real_ok_report():
    spec = make_lossy_spec()
    report = execute_attempt(
        spec, None, 3, derive_run_seed(9, 3, 0), None, capture_trace=False
    )
    assert report.status is RunStatus.OK
    assert decode_report(encode_report(report)) == report


def test_encode_decode_round_trips_a_failure_with_forensics():
    report = RunReport(
        index=5,
        seed=123,
        status=RunStatus.SAFETY_FAILED,
        completed=True,
        steps=77,
        duration=0.25,
        liveness_passed=False,
        metrics=None,
        safety_summary={"no-duplication": (2, 40), "order": (0, 12)},
        violations=("no-duplication",),
        trace_jsonl='{"type": "deliver_pkt"}\n',
        error="safety violated: no-duplication",
        trace_dropped_events=3,
    )
    decoded = decode_report(encode_report(report))
    assert decoded == report
    assert decoded.fingerprint() == report.fingerprint()


def test_wire_excludes_parent_stamped_fields():
    # attempts/worker_deaths are classification state owned by the parent;
    # a worker-side encoding must come back with the defaults, whatever the
    # in-memory report said.
    report = RunReport(index=0, seed=1, status=RunStatus.OK,
                       attempts=3, worker_deaths=2)
    decoded = decode_report(encode_report(report))
    assert decoded.attempts == 1
    assert decoded.worker_deaths == 0


def test_metrics_wire_round_trip_from_a_real_run():
    outcome = run_once(make_lossy_spec(), seed=42)
    metrics = outcome.metrics
    rebuilt = SimulationMetrics.from_wire(metrics.to_wire())
    # Everything except the deliberately dropped storage series survives.
    assert rebuilt == dataclasses.replace(metrics, storage_samples=[])


# -- session reuse / Simulator.reset ----------------------------------------------


def outcome_fingerprint(outcome) -> tuple:
    """Deterministic identity of a RunOutcome (no wall-clock fields)."""
    wire = outcome.metrics.to_wire()
    return (
        outcome.seed,
        outcome.result.completed,
        outcome.result.steps,
        outcome.liveness_passed,
        tuple(
            (r.condition, r.failure_count, r.trials)
            for r in outcome.safety.all_reports
        ),
        wire[:16] + (wire[18],),  # drop wall_seconds / checker_seconds
    )


def test_session_reuse_matches_fresh_construction_per_seed():
    spec = make_lossy_spec()
    session = RunSession(spec)
    for index in range(5):
        seed = derive_run_seed(7, index, 0)
        reused = outcome_fingerprint(session.run(seed))
        fresh = outcome_fingerprint(run_once(spec, seed))
        assert reused == fresh, f"session diverged from fresh harness at {seed}"


def test_simulator_reset_identical_to_fresh_after_crash_fault_run():
    # The reset property the batch engine leans on, exercised directly at
    # the Simulator level: a run full of station crashes, then a reset —
    # the recycled harness must replay a fresh simulator bit for bit.
    def components(seed):
        return (
            make_data_link(epsilon=2.0 ** -16, seed=seed),
            SequentialWorkload(4),
        )

    crashy_link, crashy_workload = components(101)
    crashy = ScheduledCrashAdversary([(6, "R"), (14, "T")])
    sim = Simulator(crashy_link, crashy, crashy_workload, seed=5, max_steps=50_000)
    first = sim.run()
    assert first.metrics.crashes_t + first.metrics.crashes_r > 0

    link_a, workload_a = components(202)
    sim.reset(link_a, RandomFaultAdversary(FaultProfile(loss=0.3)),
              workload_a, seed=9)
    recycled = sim.run()

    link_b, workload_b = components(202)
    fresh = Simulator(
        link_b, RandomFaultAdversary(FaultProfile(loss=0.3)), workload_b,
        seed=9, max_steps=50_000,
    ).run()
    assert recycled.steps == fresh.steps
    assert recycled.completed == fresh.completed
    assert recycled.trace.events == fresh.trace.events
    assert recycled.metrics.to_wire()[:16] == fresh.metrics.to_wire()[:16]


def test_session_invalidates_after_in_run_exception():
    spec = make_paper_spec()
    session = RunSession(spec)
    seed = derive_run_seed(1, 0, 0)
    session.run(seed)
    plan = FaultPlan.of(AbortAt(step=3))
    report = execute_attempt(spec, plan, 0, seed, None, capture_trace=False,
                             session=session)
    assert report.status is RunStatus.CRASHED
    # The crashed run dropped the recycled harness; the next run rebuilds
    # clean and still matches per-run construction.
    after = outcome_fingerprint(session.run(seed))
    assert after == outcome_fingerprint(run_once(spec, seed))


# -- monte_carlo parity ------------------------------------------------------------


def test_monte_carlo_serial_vs_parallel_identical_per_seed_verdicts():
    # The parallel path must forward retention and factories through the
    # batched engine: same seeds, same statuses, same per-condition counts.
    spec = make_lossy_spec()
    spec.retain = "tail"
    spec.tail_size = 32
    serial = monte_carlo(spec, runs=5, base_seed=13)
    parallel = monte_carlo(spec, runs=5, base_seed=13, parallel=True,
                           jobs=2, chunk_size=2)
    assert parallel.status_counts["ok"] == 5
    for outcome, report in zip(serial.outcomes, parallel.reports):
        assert report.seed == outcome.seed
        assert report.completed == outcome.result.completed
        assert report.steps == outcome.result.steps
        assert report.safety_summary == {
            r.condition: (r.failure_count, r.trials)
            for r in outcome.safety.all_reports
        }
    assert parallel.order_violation_rate.trials == (
        serial.order_violation_rate.trials
    )


# -- throughput reporting ----------------------------------------------------------


def test_wall_and_cpu_throughput_are_both_reported():
    spec = make_lossy_spec()
    result = run_campaign(
        spec, 4, base_seed=3, config=CampaignConfig(in_process=True)
    )
    assert result.wall_seconds > 0.0
    assert result.wall_steps_per_second > 0.0
    assert result.steps_per_second > 0.0
    # In-process the campaign wall clock contains every run's wall clock
    # plus dispatch, so the wall rate can never exceed the aggregate-CPU
    # rate.
    assert result.wall_steps_per_second <= result.steps_per_second


def test_fingerprint_excludes_campaign_wall_clock():
    spec = make_paper_spec()
    result = run_campaign(
        spec, 2, base_seed=0, config=CampaignConfig(in_process=True)
    )
    slower = dataclasses.replace(result, wall_seconds=result.wall_seconds * 10)
    assert slower.fingerprint() == result.fingerprint()
