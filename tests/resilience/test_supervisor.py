"""Supervisor tests: statuses, retries, timeouts, crash isolation, determinism."""

from __future__ import annotations

import dataclasses

import pytest

from repro.resilience.faultplan import AbortAt, FaultPlan, HangAt
from repro.resilience.supervisor import (
    CampaignConfig,
    RunReport,
    RunStatus,
    derive_run_seed,
    execute_attempt,
    run_campaign,
)
from repro.sim.runner import monte_carlo
from tests.resilience.conftest import (
    REPRO_BASE_SEED,
    REPRO_RUN_INDEX,
    crash_then_replay_plan,
    make_paper_spec,
    make_strawman_spec,
)


def test_derive_run_seed_is_pure_and_attempt_sensitive():
    assert derive_run_seed(7, 3, 0) == derive_run_seed(7, 3, 0)
    assert derive_run_seed(7, 3, 0) != derive_run_seed(7, 3, 1)
    assert derive_run_seed(7, 3, 0) != derive_run_seed(7, 4, 0)


def test_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(jobs=0)
    with pytest.raises(ValueError):
        CampaignConfig(retries=-1)
    with pytest.raises(ValueError):
        CampaignConfig(timeout=0.0)


def test_report_fingerprint_ignores_wall_clock():
    report = RunReport(index=0, seed=1, status=RunStatus.OK, duration=0.5)
    slower = dataclasses.replace(report, duration=9.9)
    assert report.fingerprint() == slower.fingerprint()


def test_execute_attempt_ok_and_safety_summary(paper_spec):
    report = execute_attempt(
        paper_spec, None, 0, derive_run_seed(0, 0, 0), None, capture_trace=False
    )
    assert report.status is RunStatus.OK
    assert report.has_data
    assert report.completed
    assert set(report.safety_summary) == {
        "causality", "order", "no-duplication", "no-replay"
    }


def test_execute_attempt_classifies_scripted_crash(paper_spec):
    plan = FaultPlan.of(AbortAt(step=3))
    report = execute_attempt(
        paper_spec, plan, 0, derive_run_seed(0, 0, 0), None, capture_trace=False
    )
    assert report.status is RunStatus.CRASHED
    assert not report.has_data
    assert "FaultInjectionAbort" in report.error


def test_execute_attempt_times_out_on_scripted_hang(paper_spec):
    plan = FaultPlan.of(HangAt(step=3))
    report = execute_attempt(
        paper_spec, plan, 0, derive_run_seed(0, 0, 0), 0.3, capture_trace=False
    )
    assert report.status is RunStatus.TIMEOUT
    assert "wall-clock" in report.error


def test_in_process_campaign_all_ok(paper_spec):
    config = CampaignConfig(in_process=True)
    result = run_campaign(paper_spec, 3, base_seed=1, config=config)
    assert result.status_counts == {
        "ok": 3, "safety_failed": 0, "timeout": 0, "crashed": 0,
        "exhausted_retries": 0,
    }
    assert result.missing_data == 0
    assert result.completion_rate == 1.0
    assert not result.any_safety_violation


def test_scripted_safety_failure_is_reported(strawman_spec):
    plan = crash_then_replay_plan(run=REPRO_RUN_INDEX)
    config = CampaignConfig(in_process=True, capture_traces=False)
    result = run_campaign(
        strawman_spec, REPRO_RUN_INDEX + 1, base_seed=REPRO_BASE_SEED,
        config=config, fault_plan=plan,
    )
    report = result.reports[REPRO_RUN_INDEX]
    assert report.status is RunStatus.SAFETY_FAILED
    assert report.safety_summary["no-duplication"][0] > 0
    assert report.violations
    assert result.any_safety_violation


def test_retries_exhausted_converts_status(paper_spec):
    plan = FaultPlan.of(AbortAt(step=3, run=0))
    config = CampaignConfig(
        in_process=True, retries=2, backoff_base=0.0, backoff_cap=0.0
    )
    result = run_campaign(paper_spec, 2, base_seed=0, config=config, fault_plan=plan)
    failed, healthy = result.reports
    assert failed.status is RunStatus.EXHAUSTED_RETRIES
    assert failed.attempts == 3
    assert "retries exhausted" in failed.error
    assert healthy.status is RunStatus.OK
    assert healthy.attempts == 1


def test_no_retries_keeps_raw_status(paper_spec):
    plan = FaultPlan.of(AbortAt(step=3, run=0))
    config = CampaignConfig(in_process=True)
    result = run_campaign(paper_spec, 1, base_seed=0, config=config, fault_plan=plan)
    assert result.reports[0].status is RunStatus.CRASHED


def test_retry_attempts_use_fresh_seeds(paper_spec):
    plan = FaultPlan.of(AbortAt(step=3, run=0))
    config = CampaignConfig(
        in_process=True, retries=1, backoff_base=0.0, backoff_cap=0.0
    )
    result = run_campaign(paper_spec, 1, base_seed=5, config=config, fault_plan=plan)
    report = result.reports[0]
    # The terminal attempt carried attempt index 1, not 0.
    assert report.seed == derive_run_seed(5, 0, 1)


def test_pool_campaign_matches_in_process_fingerprint(paper_spec):
    config_pool = CampaignConfig(jobs=2)
    config_serial = CampaignConfig(in_process=True)
    pool = run_campaign(paper_spec, 4, base_seed=3, config=config_pool)
    serial = run_campaign(paper_spec, 4, base_seed=3, config=config_serial)
    assert pool.fingerprint() == serial.fingerprint()


def test_worker_crash_is_isolated_and_blamed(paper_spec):
    plan = FaultPlan.of(AbortAt(step=3, hard=True, run=1))
    config = CampaignConfig(jobs=2)
    result = run_campaign(paper_spec, 4, base_seed=0, config=config, fault_plan=plan)
    counts = result.status_counts
    assert counts["crashed"] == 1
    assert counts["ok"] == 3
    crashed = result.reports[1]
    assert crashed.status is RunStatus.CRASHED
    assert crashed.worker_deaths >= 1
    assert "worker process died" in crashed.error


def test_pool_timeout_interrupts_hung_worker(paper_spec):
    plan = FaultPlan.of(HangAt(step=3, run=0))
    config = CampaignConfig(jobs=2, timeout=0.5)
    result = run_campaign(paper_spec, 2, base_seed=0, config=config, fault_plan=plan)
    assert result.reports[0].status is RunStatus.TIMEOUT
    assert result.reports[1].status is RunStatus.OK


def test_monte_carlo_parallel_returns_campaign_aggregates(paper_spec):
    result = monte_carlo(paper_spec, runs=3, base_seed=2, parallel=True, jobs=2)
    assert result.completion_rate == 1.0
    assert result.order_violation_rate.trials > 0
    assert not result.any_safety_violation
    assert result.status_counts["ok"] == 3


def test_render_lists_every_status_and_label(strawman_spec):
    plan = FaultPlan.of(AbortAt(step=3, run=0))
    config = CampaignConfig(in_process=True, capture_traces=False)
    result = run_campaign(strawman_spec, 2, base_seed=0, config=config, fault_plan=plan)
    text = result.render()
    for status in RunStatus:
        assert status.value in text
    assert "strawman" in text
    assert "non-ok runs" in text


def test_shared_memory_transport_matches_pickled_fingerprint(paper_spec):
    config_shm = CampaignConfig(jobs=2)
    config_pickle = CampaignConfig(jobs=2, shared_memory=False)
    config_serial = CampaignConfig(in_process=True)
    shm = run_campaign(paper_spec, 4, base_seed=3, config=config_shm)
    pickled = run_campaign(paper_spec, 4, base_seed=3, config=config_pickle)
    serial = run_campaign(paper_spec, 4, base_seed=3, config=config_serial)
    assert shm.fingerprint() == pickled.fingerprint() == serial.fingerprint()


def test_shard_pack_unpack_round_trip(paper_spec):
    from repro.resilience.supervisor import (
        _SHM_TAG,
        _pack_shard_reports,
        _unpack_shard_result,
        decode_report,
        encode_report,
    )

    clean = [
        execute_attempt(
            paper_spec, None, i, derive_run_seed(0, i, 0), None, capture_trace=False
        )
        for i in range(3)
    ]
    messy = dataclasses.replace(
        clean[0],
        index=3,
        status=RunStatus.SAFETY_FAILED,
        violations=("order",),
    )
    reports = clean + [messy]
    packed = _pack_shard_reports(reports)
    if packed is None:
        pytest.skip("shared memory unavailable on this host")
    assert packed[0] == _SHM_TAG
    assert packed[2] == 3  # clean reports ride the segment
    assert len(packed[4]) == 1  # the messy one rides the pickle path
    round_tripped = _unpack_shard_result(packed)
    # The shm transport must be observationally identical to the legacy
    # pickled wire codec (both omit attempts/deaths; the parent stamps those).
    assert [r.fingerprint() for r in round_tripped] == [
        decode_report(encode_report(r)).fingerprint() for r in reports
    ]
    # Fields outside the fingerprint survive too.
    assert round_tripped[0].metrics is not None
    assert round_tripped[0].metrics.to_wire() == clean[0].metrics.to_wire()
    assert round_tripped[0].duration == clean[0].duration
    assert round_tripped[3].violations == ("order",)


def test_shard_pack_declines_irregular_shards():
    from repro.resilience.supervisor import _pack_shard_reports

    crashed = RunReport(index=0, seed=1, status=RunStatus.CRASHED, error="boom")
    assert _pack_shard_reports([crashed]) is None
