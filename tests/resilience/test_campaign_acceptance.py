"""End-to-end acceptance: a hostile 50-run campaign completes gracefully.

The scripted plan forces, within one campaign: a worker-process death
(hard abort), a hung run reaped by the wall-clock watchdog, and a
deterministic safety failure — while the remaining runs produce normal
data.  The supervisor must come back with a full set of terminal reports,
explicit per-status counts, partial aggregates, and one forensics
directory per non-ok run; and the whole thing must be bit-identical
between ``jobs=1`` and ``jobs=4``.
"""

from __future__ import annotations

import os

import pytest

from repro.resilience.faultplan import AbortAt, FaultPlan, HangAt
from repro.resilience.supervisor import (
    CampaignConfig,
    RunStatus,
    run_campaign,
)
from tests.resilience.conftest import (
    REPRO_BASE_SEED,
    REPRO_RUN_INDEX,
    crash_then_replay_plan,
    make_strawman_spec,
)

RUNS = 50


def hostile_plan() -> FaultPlan:
    return FaultPlan.of(
        *crash_then_replay_plan(run=REPRO_RUN_INDEX).events,
        HangAt(step=5, run=20),
        AbortAt(step=5, hard=True, run=33),
        label="hostile-campaign",
    )


@pytest.mark.slow
def test_hostile_campaign_completes_with_partial_aggregates(tmp_path):
    config = CampaignConfig(jobs=4, timeout=1.0, artifacts_dir=str(tmp_path))
    result = run_campaign(
        make_strawman_spec(), RUNS, base_seed=REPRO_BASE_SEED,
        config=config, fault_plan=hostile_plan(),
    )

    # Every run reached a terminal status, in order.
    assert [r.index for r in result.reports] == list(range(RUNS))
    counts = result.status_counts
    assert sum(counts.values()) == RUNS

    # The scripted faults all landed.
    assert counts["timeout"] >= 1
    assert counts["crashed"] >= 1
    assert counts["safety_failed"] >= 1
    assert result.reports[20].status is RunStatus.TIMEOUT
    assert result.reports[33].status is RunStatus.CRASHED
    assert result.reports[33].worker_deaths >= 1
    assert result.reports[REPRO_RUN_INDEX].status is RunStatus.SAFETY_FAILED

    # Partial aggregation: data-producing runs only, missing mass explicit.
    assert result.missing_data == counts["timeout"] + counts["crashed"]
    assert len(result.data_reports) == RUNS - result.missing_data
    assert result.order_violation_rate.trials > 0
    assert 0.0 < result.completion_rate <= 1.0

    # Forensics: one artifact directory per non-ok run.
    non_ok = [r for r in result.reports if r.status is not RunStatus.OK]
    run_dirs = [
        entry for entry in os.listdir(result.artifacts_path)
        if entry.startswith("run-")
    ]
    assert len(run_dirs) == len(non_ok)

    # The summary renders without blowing up and names every status.
    text = result.render()
    for status in RunStatus:
        assert status.value in text


@pytest.mark.slow
def test_campaign_is_deterministic_across_job_counts():
    plan = hostile_plan()
    spec = make_strawman_spec()
    config_serial = CampaignConfig(jobs=1, timeout=1.0)
    config_parallel = CampaignConfig(jobs=4, timeout=1.0)
    serial = run_campaign(
        spec, RUNS, base_seed=REPRO_BASE_SEED, config=config_serial,
        fault_plan=plan,
    )
    parallel = run_campaign(
        spec, RUNS, base_seed=REPRO_BASE_SEED, config=config_parallel,
        fault_plan=plan,
    )
    assert serial.fingerprint() == parallel.fingerprint()
