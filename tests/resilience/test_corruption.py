"""The corruption fault family end to end (docs/PROTOCOL.md §13).

Four contracts pinned here:

* **wipe ≡ crash** — a wipe-mode ``CorruptAt`` compiles to the very crash
  move a ``CrashAt`` produces, so the two plans yield *identical traces*
  for identical seeds (crash-amnesia is corruption's special case);
* **seed-pinned replay** — a scramble consumes its own pinned tape, so
  the same plan and seeds reproduce the same corrupted run bit for bit,
  and forensics meta embeds enough (seed + field list) to re-scramble;
* **schema errors are actionable** — fuzzing mixed corrupt/crash/stall
  plans through the JSON parser only ever raises ``ValueError`` with a
  message naming the offending field;
* **campaign plumbing** — the stabilization report survives the compact
  worker wire format and campaign aggregates report convergence.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.base import Corrupt, CrashTransmitter
from repro.adversary.corruption import StateCorruptionAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.checkers.stabilization import ConvergenceRecord, StabilizationReport
from repro.core.events import Corruption
from repro.core.random_source import RandomSource, split_seed
from repro.core.receiver import Receiver
from repro.core.transmitter import Transmitter
from repro.resilience.artifacts import write_run_artifact
from repro.resilience.faultplan import (
    CorruptAt,
    CrashAt,
    FaultPlan,
    ScriptedAdversary,
    StallWindow,
    apply_fault_plan,
    event_from_dict,
)
from repro.resilience.supervisor import (
    CampaignConfig,
    RunReport,
    RunStatus,
    decode_report,
    encode_report,
    run_campaign,
)
from repro.sim.runner import RunSpec, run_once

from tests.resilience.conftest import make_paper_spec


def trace_events(spec: RunSpec, plan: FaultPlan, seed: int = 3):
    outcome = run_once(apply_fault_plan(spec, plan), seed)
    return list(outcome.result.trace.events)


# -- wipe ≡ crash -------------------------------------------------------------------


def test_wipe_mode_plan_is_trace_identical_to_crash_plan():
    spec = make_paper_spec(messages=3)
    wipe = FaultPlan.of(
        CorruptAt(step=5, station="T", mode="wipe"),
        CorruptAt(step=9, station="R", mode="wipe"),
    )
    crash = FaultPlan.of(
        CrashAt(step=5, station="T"),
        CrashAt(step=9, station="R"),
    )
    for seed in (0, 7, 42):
        assert trace_events(spec, wipe, seed) == trace_events(spec, crash, seed)


def test_scripted_wipe_compiles_to_the_crash_move():
    adversary = ScriptedAdversary(
        FaultPlan.of(CorruptAt(step=2, station="T", mode="wipe"))
    )
    adversary.bind(RandomSource(0))
    moves = [adversary.next_move() for __ in range(2)]
    assert isinstance(moves[1], CrashTransmitter)


def test_scripted_scramble_compiles_to_a_corrupt_move():
    adversary = ScriptedAdversary(
        FaultPlan.of(
            CorruptAt(step=3, station="R", fields=("rho",), seed=77)
        )
    )
    adversary.bind(RandomSource(0))
    moves = [adversary.next_move() for __ in range(3)]
    move = moves[2]
    assert isinstance(move, Corrupt)
    assert move.station == "R"
    assert move.fields == ("rho",)
    assert move.seed == 77


# -- seed-pinned replay -------------------------------------------------------------


def test_scrambled_runs_replay_bit_identically():
    spec = make_paper_spec(messages=4)
    plan = FaultPlan.of(
        CorruptAt(step=6, station="T", seed=9001),
        CorruptAt(step=14, station="R", seed=9002, fields=("rho", "tau")),
    )
    first = trace_events(spec, plan, seed=11)
    second = trace_events(spec, plan, seed=11)
    assert first == second
    corruptions = [e for e in first if isinstance(e, Corruption)]
    assert [c.seed for c in corruptions] == [9001, 9002]
    assert all(c.fields for c in corruptions)


def test_station_corrupt_is_deterministic_per_seed():
    def fresh_pair():
        from repro.core.protocol import make_data_link

        link = make_data_link(epsilon=2.0 ** -16, seed=5)
        return link.transmitter, link.receiver

    seed = split_seed(0, "corrupt-test")
    tm_a, rm_a = fresh_pair()
    tm_b, rm_b = fresh_pair()
    assert tm_a.corrupt(RandomSource(seed)) == tm_b.corrupt(RandomSource(seed))
    assert rm_a.corrupt(RandomSource(seed)) == rm_b.corrupt(RandomSource(seed))
    for name in Receiver.CORRUPTIBLE_FIELDS:
        private = f"_{name}"
        value_a = getattr(rm_a, private, None) or getattr(rm_a, name, None)
        value_b = getattr(rm_b, private, None) or getattr(rm_b, name, None)
        assert value_a == value_b


def test_station_corrupt_reports_known_fields_only():
    from repro.core.protocol import make_data_link

    link = make_data_link(epsilon=2.0 ** -16, seed=1)
    scrambled = link.receiver.corrupt(RandomSource(3))
    assert set(scrambled) <= set(Receiver.CORRUPTIBLE_FIELDS)
    with pytest.raises(ValueError):
        link.receiver.corrupt(RandomSource(3), fields=("no_such_slot",))
    with pytest.raises(ValueError):
        link.transmitter.corrupt(RandomSource(3), fields=("rho",))


# -- shrinker -----------------------------------------------------------------------


def test_scramble_shrinks_toward_wipe_and_field_halves():
    event = CorruptAt(step=4, station="T", seed=5)
    candidates = event.shrink_candidates()
    modes = [c.mode for c in candidates]
    assert "wipe" in modes
    halves = [c.fields for c in candidates if c.mode == "scramble"]
    full = Transmitter.CORRUPTIBLE_FIELDS
    assert all(h is not None and 0 < len(h) < len(full) for h in halves)
    # A wipe is already minimal: nothing below it.
    assert CorruptAt(step=4, station="T", mode="wipe").shrink_candidates() == ()


# -- schema fuzz --------------------------------------------------------------------


@pytest.mark.parametrize(
    "payload, needle",
    [
        ({"kind": "corrupt", "step": 0, "station": "T"}, "step"),
        ({"kind": "corrupt", "step": 1, "station": "Q"}, "station"),
        ({"kind": "corrupt", "step": 1, "station": "T", "mode": "melt"}, "mode"),
        ({"kind": "corrupt", "step": 1, "station": "T", "seed": -1}, "seed"),
        ({"kind": "corrupt", "step": 1, "station": "T", "fields": []}, "fields"),
        (
            {"kind": "corrupt", "step": 1, "station": "T", "fields": ["rho"]},
            "corruptible",
        ),
    ],
)
def test_corrupt_schema_errors_name_the_offending_field(payload, needle):
    with pytest.raises(ValueError) as err:
        event_from_dict(payload)
    assert needle in str(err.value)


_FUZZ_DICTS = st.fixed_dictionaries(
    {"kind": st.sampled_from(["corrupt", "crash", "stall"])},
    optional={
        "step": st.integers(min_value=-2, max_value=5),
        "start": st.integers(min_value=-2, max_value=5),
        "end": st.integers(min_value=-2, max_value=5),
        "station": st.sampled_from(["T", "R", "X", ""]),
        "mode": st.sampled_from(["scramble", "wipe", "melt"]),
        "seed": st.integers(min_value=-3, max_value=3),
        "fields": st.lists(
            st.sampled_from(["rho", "tau", "busy", "bogus"]), max_size=3
        ),
        "run": st.integers(min_value=-1, max_value=2),
    },
)


@settings(max_examples=300, deadline=None)
@given(payload=_FUZZ_DICTS)
def test_fuzzed_mixed_plans_parse_or_raise_value_error(payload):
    """Malformed plans must fail as schema errors, never as tracebacks."""
    try:
        event = event_from_dict(dict(payload))
    except (ValueError, TypeError) as err:
        assert str(err), "schema errors must carry a message"
    else:
        # Whatever parsed must survive a JSON round trip unchanged.
        rebuilt = event_from_dict(json.loads(json.dumps(event.to_dict())))
        assert rebuilt == event


def test_mixed_plan_json_round_trip(tmp_path):
    plan = FaultPlan.of(
        CorruptAt(step=3, station="T", seed=1),
        CorruptAt(step=8, station="R", fields=("rho",), seed=2, mode="scramble"),
        CorruptAt(step=11, station="T", mode="wipe"),
        CrashAt(step=15, station="R"),
        StallWindow(start=4, end=6),
        label="mixed",
    )
    path = os.path.join(tmp_path, "plan.json")
    plan.save(path)
    assert FaultPlan.load(path) == plan


# -- wire + artifacts ---------------------------------------------------------------


def _stabilization_report() -> StabilizationReport:
    return StabilizationReport(
        corruptions=2,
        converged=2,
        window=8,
        records=(
            ConvergenceRecord(
                station="T", fields=("tau", "num"), seed=9001,
                events=31, datagrams=9, wall_seconds=0.02,
            ),
            ConvergenceRecord(
                station="R", fields=(), seed=9002,
                events=12, datagrams=4, wall_seconds=0.01,
            ),
        ),
    )


def test_worker_wire_round_trips_stabilization():
    report = RunReport(
        index=3,
        seed=17,
        status=RunStatus.OK,
        completed=True,
        steps=120,
        liveness_passed=True,
        safety_summary={"order": (0, 5)},
        stabilization=_stabilization_report(),
    )
    decoded = decode_report(encode_report(report))
    assert decoded.stabilization == report.stabilization
    assert decoded.fingerprint() == report.fingerprint()
    # And None stays None (plain campaigns ship no stabilization payload).
    plain = RunReport(index=0, seed=1, status=RunStatus.OK)
    assert decode_report(encode_report(plain)).stabilization is None


def test_run_artifact_meta_embeds_scramble_seeds(tmp_path):
    report = RunReport(
        index=4,
        seed=99,
        status=RunStatus.SAFETY_FAILED,
        completed=True,
        safety_summary={"order": (1, 5)},
        stabilization=_stabilization_report(),
    )
    run_dir = write_run_artifact(str(tmp_path), report)
    with open(os.path.join(run_dir, "meta.json"), "r", encoding="utf-8") as f:
        meta = json.load(f)
    block = meta["stabilization"]
    assert block["corruptions"] == 2
    assert block["stabilized"] is True
    assert [r["seed"] for r in block["records"]] == [9001, 9002]
    assert block["records"][0]["fields"] == ["tau", "num"]


# -- campaign aggregates ------------------------------------------------------------


def test_corrupting_campaign_reports_convergence():
    spec = make_paper_spec(messages=10, label="corrupting")
    spec = RunSpec(
        link_factory=spec.link_factory,
        adversary_factory=lambda: StateCorruptionAdversary(
            rate_t=0.01,
            rate_r=0.01,
            inner=RandomFaultAdversary(FaultProfile(loss=0.1)),
        ),
        workload_factory=spec.workload_factory,
        max_steps=spec.max_steps,
        label=spec.label,
        stabilization=True,
        stabilization_window=8,
    )
    result = run_campaign(spec, 12, base_seed=5, config=CampaignConfig(jobs=1))
    assert result.corruptions_injected > 0
    assert result.corrupted_runs > 0
    # The acceptance bar: corrupted runs re-stabilize with clean verdicts.
    assert result.stabilized_rate >= 0.95
    assert all(r.status is RunStatus.OK for r in result.reports)
    assert result.convergence_events_p99 >= result.convergence_events_p50 > 0
    rendered = result.render()
    assert "stabilization" in rendered
    assert "stabilized" in rendered
