"""Unit tests for the topology fault events (PR 9's fault-plan extension)."""

from __future__ import annotations

import pytest

from repro.core.random_source import RandomSource
from repro.resilience.faultplan import (
    CrashAt,
    FaultPlan,
    LinkDownWindow,
    LinkUpWindow,
    RelayCrashAt,
    RouteFlapAt,
    ScriptedAdversary,
    event_from_dict,
)


# -- validation ---------------------------------------------------------------------


@pytest.mark.parametrize(
    "build",
    [
        lambda: LinkDownWindow(start=0, end=3, link=(0, 1)),
        lambda: LinkDownWindow(start=5, end=2, link=(0, 1)),
        lambda: LinkDownWindow(start=1, end=2, link=(1, 1)),
        lambda: LinkDownWindow(start=1, end=2, link=(1,)),
        lambda: LinkDownWindow(start=1, end=2, link="0-1"),
        lambda: LinkUpWindow(start=4, end=1, link=(0, 1)),
        lambda: LinkUpWindow(start=1, end=2, link=(2, 2)),
        lambda: RelayCrashAt(step=0, node=1),
        lambda: RouteFlapAt(step=0),
    ],
)
def test_invalid_topology_events_are_rejected(build):
    with pytest.raises(ValueError):
        build()


def test_unknown_field_rejected_on_topology_kinds():
    with pytest.raises(ValueError, match="unknown fields"):
        event_from_dict(
            {"kind": "link_down", "start": 1, "end": 2, "link": [0, 1], "hops": 3}
        )
    with pytest.raises(ValueError, match="unknown fields"):
        event_from_dict({"kind": "relay_crash", "step": 4, "node": 2, "wipe": True})


def test_unknown_kind_still_rejected():
    with pytest.raises(ValueError, match="unknown fault event kind"):
        event_from_dict({"kind": "link_sideways", "start": 1, "end": 2})


# -- (de)serialization --------------------------------------------------------------


def test_topology_plan_json_round_trip(tmp_path):
    plan = FaultPlan.of(
        LinkDownWindow(start=4, end=9, link=(1, 2)),
        LinkUpWindow(start=10, end=12, link=(0, 1), run=1),
        RelayCrashAt(step=7, node=2),
        RouteFlapAt(step=11, run=0),
        label="topology-sink",
    )
    assert FaultPlan.from_json(plan.to_json()) == plan

    path = tmp_path / "plan.json"
    plan.save(str(path))
    assert FaultPlan.load(str(path)) == plan


def test_mesh_tuple_nodes_survive_json():
    # JSON has no tuples: mesh node coordinates arrive as lists and must
    # normalize back to the tuples networkx grid graphs use as node ids.
    plan = FaultPlan.of(
        LinkDownWindow(start=2, end=5, link=((0, 0), (0, 1))),
        RelayCrashAt(step=3, node=(1, 1)),
    )
    restored = FaultPlan.from_json(plan.to_json())
    assert restored == plan
    down, crash = restored.events
    assert down.link == ((0, 0), (0, 1))
    assert crash.node == (1, 1)


def test_for_run_projects_topology_events():
    plan = FaultPlan.of(
        RelayCrashAt(step=3, node=2),
        LinkDownWindow(start=1, end=4, link=(0, 1), run=1),
    )
    assert len(plan.for_run(0).events) == 1
    assert len(plan.for_run(1).events) == 2


# -- shrinking ----------------------------------------------------------------------


def test_window_events_shrink_by_halving():
    event = LinkDownWindow(start=10, end=50, link=(1, 2))
    (candidate,) = event.shrink_candidates()
    assert isinstance(candidate, LinkDownWindow)
    assert candidate.start == 10
    assert candidate.end == 30
    assert candidate.link == (1, 2)
    point = LinkDownWindow(start=10, end=10, link=(1, 2))
    assert point.shrink_candidates() == ()


def test_point_topology_events_have_no_shrink_candidates():
    assert RelayCrashAt(step=5, node=2).shrink_candidates() == ()
    assert RouteFlapAt(step=5).shrink_candidates() == ()


# -- interpretation boundary --------------------------------------------------------


def test_scripted_adversary_rejects_topology_events():
    plan = FaultPlan.of(
        CrashAt(step=2, station="T"),
        LinkDownWindow(start=1, end=4, link=(0, 1)),
    )
    with pytest.raises(ValueError, match="relay-fabric"):
        adversary = ScriptedAdversary(plan)
        adversary.bind(RandomSource(0))
