"""The fail_rate × topology sweep over the relay fabric."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.resilience.relay_sweep import (
    RelaySweepConfig,
    RelaySweepResult,
    SweepCell,
    run_relay_sweep,
)
from repro.resilience.supervisor import CampaignConfig

# Small grid, in-process campaign pool: fast enough for tier-1.
_SMALL = RelaySweepConfig(
    topologies=("line", "ring"),
    fail_rates=(0.0, 0.05),
    runs=3,
    messages=8,
    window=4,
)
_CAMPAIGN = CampaignConfig(jobs=1)


@pytest.fixture(scope="module")
def small_sweep():
    return run_relay_sweep(_SMALL, campaign=_CAMPAIGN)


class TestConfig:
    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            RelaySweepConfig(topologies=())
        with pytest.raises(ConfigurationError):
            RelaySweepConfig(fail_rates=())

    def test_bad_fail_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            RelaySweepConfig(fail_rates=(1.5,))

    def test_runs_floor(self):
        with pytest.raises(ConfigurationError):
            RelaySweepConfig(runs=0)

    def test_spec_carries_engine_paths_and_label(self):
        config = RelaySweepConfig(engine="kernel", paths=2, sizes={"ring": 8})
        spec = config.spec_for("ring", 0.05)
        assert spec.engine == "kernel"
        assert spec.paths == 2
        assert spec.size == 8
        assert spec.label == "ring@0.05"


class TestSweep:
    def test_grid_order_and_shape(self, small_sweep):
        keys = [(c.topology, c.fail_rate) for c in small_sweep.cells]
        assert keys == [
            ("line", 0.0), ("line", 0.05), ("ring", 0.0), ("ring", 0.05),
        ]
        assert all(c.runs == 3 for c in small_sweep.cells)

    def test_fault_free_cells_deliver_everything(self, small_sweep):
        for cell in small_sweep.cells:
            if cell.fail_rate == 0.0:
                assert cell.delivery_rate == 1.0
                assert cell.completion_rate == 1.0
                assert cell.clean_rate == 1.0
                assert cell.dropped_down == 0

    def test_cell_fields_sane(self, small_sweep):
        for cell in small_sweep.cells:
            assert 0.0 <= cell.delivery_rate <= 1.0
            assert 0.0 <= cell.clean_rate <= 1.0
            assert cell.ticks_p50 <= cell.ticks_p99
            assert cell.dropped_overflow >= 0
            assert cell.dropped_down >= 0

    def test_deterministic(self, small_sweep):
        again = run_relay_sweep(_SMALL, campaign=_CAMPAIGN)
        assert again.cells == small_sweep.cells

    def test_render_and_markdown(self, small_sweep):
        rendered = small_sweep.render()
        assert "relay sweep" in rendered
        assert "line-4" in rendered
        markdown = small_sweep.to_markdown()
        lines = markdown.splitlines()
        # Header + separator + one row per cell.
        assert len(lines) == 2 + len(small_sweep.cells)
        assert lines[0].startswith("| topology |")

    def test_keep_campaigns(self):
        tiny = RelaySweepConfig(
            topologies=("line",), fail_rates=(0.0,), runs=2, messages=4
        )
        result = run_relay_sweep(tiny, campaign=_CAMPAIGN, keep_campaigns=True)
        assert len(result.campaigns) == 1
        assert result.campaigns[0].runs == 2

    def test_cells_use_distinct_seed_blocks(self, monkeypatch):
        # No two grid cells may replay the same seed sequence.
        import repro.resilience.relay_sweep as module

        seeds = []
        real = module.run_campaign

        def spy(spec, runs, base_seed, config):
            seeds.append(base_seed)
            return real(spec, runs=runs, base_seed=base_seed, config=config)

        monkeypatch.setattr(module, "run_campaign", spy)
        config = RelaySweepConfig(
            topologies=("line",), fail_rates=(0.0, 0.05), runs=3,
            messages=4, window=4, base_seed=100,
        )
        run_relay_sweep(config, campaign=_CAMPAIGN)
        assert seeds == [100, 103]
