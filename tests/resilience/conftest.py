"""Shared specs for the resilience suite.

The scripted safety-failure scenario reuses the paper's Section 3 attack
surface: the fixed-nonce strawman accepts a replayed DATA packet whenever
its short challenge collides, so a scripted crash-then-replay (a
``DuplicateBurst`` whose spaced copies land after a ``CrashAt('R')``)
forces a no-duplication violation deterministically for a known seed.
"""

from __future__ import annotations

import pytest

from repro.adversary.benign import ReliableAdversary
from repro.baselines.naive_handshake import make_naive_handshake_link
from repro.core.protocol import make_data_link
from repro.sim.runner import RunSpec
from repro.sim.workload import SequentialWorkload


def make_strawman_spec(messages: int = 6, label: str = "strawman") -> RunSpec:
    """Fixed-nonce (2-bit) handshake under a benign FIFO schedule."""
    return RunSpec(
        link_factory=lambda seed: make_naive_handshake_link(nonce_bits=2, seed=seed),
        adversary_factory=ReliableAdversary,
        workload_factory=lambda seed: SequentialWorkload(messages),
        max_steps=50_000,
        label=label,
    )


def make_paper_spec(messages: int = 3, label: str = "paper") -> RunSpec:
    """The real protocol under a benign schedule (never fails safety)."""
    return RunSpec(
        link_factory=lambda seed: make_data_link(epsilon=2.0 ** -16, seed=seed),
        adversary_factory=ReliableAdversary,
        workload_factory=lambda seed: SequentialWorkload(messages),
        max_steps=50_000,
        label=label,
    )


# A verified scripted repro: with base_seed=0 the strawman run at index 4
# passes all checks under the benign schedule, and fails no-duplication
# under the crash-then-replay script below.
REPRO_BASE_SEED = 0
REPRO_RUN_INDEX = 4


def crash_then_replay_plan(run=None):
    from repro.resilience.faultplan import CrashAt, DuplicateBurst, FaultPlan

    return FaultPlan.of(
        DuplicateBurst(step=10, copies=8, spacing=3, run=run),
        CrashAt(step=11, station="R", run=run),
        label="crash-then-replay",
    )


@pytest.fixture
def strawman_spec() -> RunSpec:
    return make_strawman_spec()


@pytest.fixture
def paper_spec() -> RunSpec:
    return make_paper_spec()
