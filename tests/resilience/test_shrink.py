"""Delta-debugging tests: the minimizer keeps the failure, sheds the rest."""

from __future__ import annotations

import pytest

from repro.resilience.faultplan import FaultPlan, HangAt
from repro.resilience.shrink import shrink_repro, status_matcher
from repro.resilience.supervisor import (
    RunReport,
    RunStatus,
    derive_run_seed,
    execute_attempt,
)
from tests.resilience.conftest import (
    REPRO_BASE_SEED,
    REPRO_RUN_INDEX,
    crash_then_replay_plan,
    make_paper_spec,
    make_strawman_spec,
)


def test_status_matcher_refuses_ok_reference():
    report = RunReport(index=0, seed=1, status=RunStatus.OK)
    with pytest.raises(ValueError, match="nothing to shrink"):
        status_matcher(report)


def test_status_matcher_requires_same_safety_conditions():
    reference = RunReport(
        index=0, seed=1, status=RunStatus.SAFETY_FAILED,
        safety_summary={"no-duplication": (2, 5), "order": (0, 5)},
    )
    matches = status_matcher(reference)
    same = RunReport(
        index=0, seed=2, status=RunStatus.SAFETY_FAILED,
        safety_summary={"no-duplication": (1, 3), "order": (0, 3)},
    )
    different = RunReport(
        index=0, seed=2, status=RunStatus.SAFETY_FAILED,
        safety_summary={"no-duplication": (0, 3), "order": (2, 3)},
    )
    assert matches(same)
    assert not matches(different)
    assert not matches(RunReport(index=0, seed=2, status=RunStatus.CRASHED))


def test_shrink_rejects_ok_configuration(paper_spec):
    plan = FaultPlan()
    with pytest.raises(ValueError, match="nothing to shrink"):
        shrink_repro(
            lambda messages: make_paper_spec(messages=messages),
            seed=derive_run_seed(0, 0, 0),
            plan=plan,
            messages=3,
        )


def test_shrink_produces_smaller_still_failing_repro():
    # At 16 messages this seed's strawman run fails safety on its own, so
    # the minimizer has genuine slack: the workload shrinks and the (now
    # irrelevant) scripted events fall away.
    seed = derive_run_seed(REPRO_BASE_SEED, REPRO_RUN_INDEX, 0)
    plan = crash_then_replay_plan(run=REPRO_RUN_INDEX)
    result = shrink_repro(
        lambda messages: make_strawman_spec(messages=messages),
        seed=seed,
        plan=plan,
        messages=16,
        run_index=REPRO_RUN_INDEX,
        timeout=5.0,
    )
    assert result.status is RunStatus.SAFETY_FAILED
    assert result.shrank
    assert result.messages < 16
    # The minimal configuration still reproduces the same failure.
    replay = execute_attempt(
        make_strawman_spec(messages=result.messages),
        result.plan,
        REPRO_RUN_INDEX,
        seed,
        5.0,
        capture_trace=False,
    )
    assert replay.status is RunStatus.SAFETY_FAILED


def test_shrink_keeps_load_bearing_events():
    # At 6 messages the baseline run is clean and only the scripted
    # crash-then-replay makes it fail: the minimizer must not drop the
    # script, and must hand back a configuration that still fails.
    seed = derive_run_seed(REPRO_BASE_SEED, REPRO_RUN_INDEX, 0)
    plan = crash_then_replay_plan(run=REPRO_RUN_INDEX)
    result = shrink_repro(
        lambda messages: make_strawman_spec(messages=messages),
        seed=seed,
        plan=plan,
        messages=6,
        run_index=REPRO_RUN_INDEX,
        timeout=5.0,
    )
    assert result.status is RunStatus.SAFETY_FAILED
    assert len(result.plan.events) >= 1
    replay = execute_attempt(
        make_strawman_spec(messages=result.messages),
        result.plan,
        REPRO_RUN_INDEX,
        seed,
        5.0,
        capture_trace=False,
    )
    assert replay.status is RunStatus.SAFETY_FAILED
    assert replay.safety_summary["no-duplication"][0] > 0


def test_shrink_respects_probe_budget():
    seed = derive_run_seed(REPRO_BASE_SEED, REPRO_RUN_INDEX, 0)
    plan = crash_then_replay_plan(run=REPRO_RUN_INDEX)
    result = shrink_repro(
        lambda messages: make_strawman_spec(messages=messages),
        seed=seed,
        plan=plan,
        messages=6,
        run_index=REPRO_RUN_INDEX,
        max_probes=3,
    )
    assert result.probes <= 3


def test_shrink_projects_other_runs_events_away():
    seed = derive_run_seed(REPRO_BASE_SEED, REPRO_RUN_INDEX, 0)
    events = crash_then_replay_plan(run=REPRO_RUN_INDEX).events
    noisy = FaultPlan.of(*events, HangAt(step=2, run=17))
    result = shrink_repro(
        lambda messages: make_strawman_spec(messages=messages),
        seed=seed,
        plan=noisy,
        messages=6,
        run_index=REPRO_RUN_INDEX,
    )
    # The other run's hang never counted as shrinkable weight.
    assert result.original_events == 2
    assert all(e.run in (None, REPRO_RUN_INDEX) for e in result.plan.events)


def test_shrink_result_serializes():
    seed = derive_run_seed(REPRO_BASE_SEED, REPRO_RUN_INDEX, 0)
    plan = crash_then_replay_plan(run=REPRO_RUN_INDEX)
    result = shrink_repro(
        lambda messages: make_strawman_spec(messages=messages),
        seed=seed,
        plan=plan,
        messages=6,
        run_index=REPRO_RUN_INDEX,
        max_probes=10,
    )
    data = result.to_dict()
    assert data["seed"] == seed
    assert data["original"] == {"messages": 6, "events": 2}
    assert FaultPlan.from_dict(data["fault_plan"]).events == result.plan.events
