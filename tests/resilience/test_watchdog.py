"""The `_deadline` guard off the main thread: watchdog-thread fallback.

SIGALRM — the supervisor's preferred per-run timeout mechanism — is only
legal on the main thread of the main interpreter.  Before the fallback
existed, a campaign driven from a worker thread (embedders, thread-pool
test harnesses) silently ran *unguarded*: a hung run hung the campaign.
These tests pin the fallback's contract: it interrupts a wedged run from
any thread, leaves no pending async exception behind on a clean exit, and
gives `run_campaign(in_process=True)` the same TIMEOUT semantics off the
main thread as on it.
"""

from __future__ import annotations

import threading
import time

from repro.resilience.faultplan import FaultPlan, HangAt
from repro.resilience.supervisor import (
    CampaignConfig,
    RunStatus,
    _AttemptTimeout,
    _can_use_sigalrm,
    _deadline,
    run_campaign,
)
from tests.resilience.conftest import make_paper_spec


def _run_in_thread(target, timeout: float = 30.0):
    """Run ``target`` on a fresh worker thread; return its result or raise."""
    box = {}

    def _wrapped():
        try:
            box["result"] = target()
        except BaseException as error:  # noqa: BLE001 - relayed to the test
            box["error"] = error

    thread = threading.Thread(target=_wrapped)
    thread.start()
    thread.join(timeout)
    assert not thread.is_alive(), "worker thread wedged: the guard never fired"
    if "error" in box:
        raise box["error"]
    return box.get("result")


def test_sigalrm_detection_is_thread_aware():
    assert _run_in_thread(_can_use_sigalrm) is False


def test_deadline_interrupts_busy_loop_off_main_thread():
    def _busy():
        started = time.monotonic()
        try:
            with _deadline(0.2):
                while time.monotonic() - started < 20.0:
                    pass
            return "not interrupted"
        except _AttemptTimeout:
            return time.monotonic() - started

    elapsed = _run_in_thread(_busy)
    assert isinstance(elapsed, float), elapsed
    assert elapsed < 5.0


def test_deadline_clean_exit_leaves_no_pending_exception():
    # A guard that fires *after* its block exits must not detonate later:
    # the disarm/clear handshake in the fallback's finally covers both the
    # never-fired and the fired-but-not-yet-raised cases.
    def _quick():
        for _ in range(50):
            with _deadline(30.0):
                pass
        # Give any leaked timer an opportunity to misfire into this thread.
        time.sleep(0.05)
        return "clean"

    assert _run_in_thread(_quick) == "clean"


def test_deadline_none_is_noop_off_main_thread():
    def _unguarded():
        with _deadline(None):
            return threading.active_count()

    assert _run_in_thread(_unguarded) is not None


def test_in_process_campaign_times_out_off_main_thread():
    # The regression this file exists for: a hung run inside
    # run_campaign(in_process=True) driven from a non-main thread must be
    # classified TIMEOUT, not hang the whole campaign.
    spec = make_paper_spec(messages=4)
    plan = FaultPlan.of(HangAt(step=3, run=0))
    config = CampaignConfig(in_process=True, timeout=1.0, capture_traces=False)

    def _campaign():
        return run_campaign(spec, 2, base_seed=0, config=config, fault_plan=plan)

    result = _run_in_thread(_campaign, timeout=60.0)
    statuses = {report.index: report.status for report in result.reports}
    assert statuses[0] is RunStatus.TIMEOUT
    assert statuses[1] is RunStatus.OK
