"""Unit tests for fault plans and the scripted adversary."""

from __future__ import annotations

import pytest

from repro.adversary.base import (
    CrashReceiver,
    CrashTransmitter,
    Deliver,
    Pass,
)
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.core.random_source import RandomSource
from repro.resilience.faultplan import (
    AbortAt,
    CrashAt,
    DropWindow,
    DuplicateBurst,
    FaultInjectionAbort,
    FaultPlan,
    HangAt,
    ScriptedAdversary,
    StallWindow,
    apply_fault_plan,
    event_from_dict,
)
from tests.resilience.conftest import make_paper_spec


def _info(packet_id: int, channel: ChannelId = ChannelId.T_TO_R) -> PacketInfo:
    return PacketInfo(channel=channel, packet_id=packet_id, length_bits=64)


def _bound(adversary: ScriptedAdversary) -> ScriptedAdversary:
    adversary.bind(RandomSource(0))
    return adversary


# -- event validation ---------------------------------------------------------------


@pytest.mark.parametrize(
    "build",
    [
        lambda: CrashAt(step=0, station="T"),
        lambda: CrashAt(step=1, station="X"),
        lambda: DropWindow(start=0, end=3),
        lambda: DropWindow(start=5, end=2),
        lambda: DropWindow(start=1, end=2, channel="sideways"),
        lambda: DuplicateBurst(step=1, copies=0),
        lambda: DuplicateBurst(step=1, spacing=0),
        lambda: StallWindow(start=3, end=1),
        lambda: HangAt(step=1, seconds=-1.0),
        lambda: AbortAt(step=0),
    ],
)
def test_invalid_events_are_rejected(build):
    with pytest.raises(ValueError):
        build()


def test_unknown_event_kind_is_rejected():
    with pytest.raises(ValueError, match="unknown fault event kind"):
        event_from_dict({"kind": "meteor", "step": 1})


def test_unknown_event_field_is_rejected():
    with pytest.raises(ValueError, match="unknown fields"):
        event_from_dict({"kind": "crash", "step": 1, "station": "T", "blast": 9})


# -- (de)serialization --------------------------------------------------------------


def test_plan_json_round_trip_covers_every_event_kind(tmp_path):
    plan = FaultPlan.of(
        CrashAt(step=3, station="T"),
        CrashAt(step=9, station="R", run=2),
        DropWindow(start=4, end=8, channel="T->R"),
        DuplicateBurst(step=5, copies=4, spacing=3),
        StallWindow(start=10, end=20, run=0),
        HangAt(step=7, seconds=0.5),
        AbortAt(step=11, hard=True),
        label="kitchen-sink",
    )
    assert FaultPlan.from_json(plan.to_json()) == plan

    path = tmp_path / "plan.json"
    plan.save(str(path))
    assert FaultPlan.load(str(path)) == plan


def test_for_run_projects_selective_events():
    plan = FaultPlan.of(
        CrashAt(step=3, station="T"),          # every run
        HangAt(step=5, run=1),
        AbortAt(step=5, run=2),
    )
    assert len(plan.for_run(0).events) == 1
    assert {type(e) for e in plan.for_run(1).events} == {CrashAt, HangAt}
    assert {type(e) for e in plan.for_run(2).events} == {CrashAt, AbortAt}


def test_without_and_replace_event():
    plan = FaultPlan.of(CrashAt(step=1, station="T"), HangAt(step=2))
    assert [type(e) for e in plan.without_event(0).events] == [HangAt]
    swapped = plan.replace_event(1, AbortAt(step=9))
    assert [type(e) for e in swapped.events] == [CrashAt, AbortAt]


def test_duplicate_burst_shrink_candidates_shrink_copies_and_spacing():
    event = DuplicateBurst(step=4, copies=8, spacing=4)
    candidates = event.shrink_candidates()
    assert DuplicateBurst(step=4, copies=4, spacing=4) in candidates
    assert DuplicateBurst(step=4, copies=8, spacing=2) in candidates
    assert DuplicateBurst(step=4, copies=1, spacing=1).shrink_candidates() == ()


# -- scripted adversary -------------------------------------------------------------


def test_crash_events_fire_at_their_exact_turn():
    plan = FaultPlan.of(
        CrashAt(step=2, station="T"), CrashAt(step=4, station="R")
    )
    adversary = _bound(ScriptedAdversary(plan))
    moves = [adversary.next_move() for _ in range(4)]
    assert isinstance(moves[1], CrashTransmitter)
    assert isinstance(moves[3], CrashReceiver)


def test_drop_window_swallows_announcements():
    plan = FaultPlan.of(DropWindow(start=1, end=2))
    adversary = _bound(ScriptedAdversary(plan))
    adversary.on_new_pkt(_info(1))  # upcoming turn 1: dropped
    assert isinstance(adversary.next_move(), Pass)
    adversary.on_new_pkt(_info(2))  # upcoming turn 2: dropped
    assert isinstance(adversary.next_move(), Pass)
    adversary.on_new_pkt(_info(3))  # window over: kept
    move = adversary.next_move()
    assert isinstance(move, Deliver) and move.packet_id == 3
    assert adversary.dropped == 2


def test_drop_window_can_be_direction_selective():
    plan = FaultPlan.of(DropWindow(start=1, end=10, channel="T->R"))
    adversary = _bound(ScriptedAdversary(plan))
    adversary.on_new_pkt(_info(1, ChannelId.T_TO_R))
    adversary.on_new_pkt(_info(2, ChannelId.R_TO_T))
    move = adversary.next_move()
    assert isinstance(move, Deliver) and move.packet_id == 2
    assert adversary.dropped == 1


def test_stall_window_produces_passes_then_resumes():
    plan = FaultPlan.of(StallWindow(start=1, end=3))
    adversary = _bound(ScriptedAdversary(plan))
    adversary.on_new_pkt(_info(7))
    moves = [adversary.next_move() for _ in range(4)]
    assert all(isinstance(m, Pass) for m in moves[:3])
    assert isinstance(moves[3], Deliver)


def test_duplicate_burst_spaces_copies_across_turns():
    plan = FaultPlan.of(DuplicateBurst(step=1, copies=2, spacing=3))
    adversary = _bound(ScriptedAdversary(plan))
    adversary.on_new_pkt(_info(5))
    # Copy due dates: turns 1 and 4; the original FIFO delivery fills in.
    kinds = []
    for _ in range(4):
        move = adversary.next_move()
        kinds.append(move.packet_id if isinstance(move, Deliver) else None)
    assert kinds[0] == 5          # first copy, on time
    assert kinds[1] == 5          # the original (own FIFO)
    assert kinds[2] is None       # nothing due
    assert kinds[3] == 5          # second copy, spaced by 3
    assert adversary.duplicated == 2


def test_soft_abort_raises_outside_workers():
    plan = FaultPlan.of(AbortAt(step=1, hard=True))
    adversary = _bound(ScriptedAdversary(plan))
    # hard=True degrades to the exception form unless a worker enabled it.
    with pytest.raises(FaultInjectionAbort):
        adversary.next_move()


def test_inner_adversary_supplies_baseline_schedule():
    from repro.adversary.benign import ReliableAdversary

    plan = FaultPlan.of(CrashAt(step=2, station="T"))
    adversary = _bound(ScriptedAdversary(plan, inner=ReliableAdversary()))
    adversary.on_new_pkt(_info(1))
    first = adversary.next_move()
    assert isinstance(first, Deliver) and first.packet_id == 1
    assert isinstance(adversary.next_move(), CrashTransmitter)


def test_apply_fault_plan_is_identity_for_empty_projection():
    spec = make_paper_spec()
    plan = FaultPlan.of(HangAt(step=5, run=3))
    assert apply_fault_plan(spec, plan, run_index=0) is spec
    wrapped = apply_fault_plan(spec, plan, run_index=3)
    assert wrapped is not spec
    adversary = wrapped.adversary_factory()
    assert isinstance(adversary, ScriptedAdversary)
    assert len(adversary.plan.events) == 1
