"""Forensics artifact tests: every non-ok run archived, round-trippable."""

from __future__ import annotations

import json
import os

from repro.checkers.safety import check_all_safety
from repro.resilience.artifacts import campaign_dir_name, load_run_artifact
from repro.resilience.faultplan import AbortAt, FaultPlan
from repro.resilience.supervisor import CampaignConfig, RunStatus, run_campaign
from tests.resilience.conftest import (
    REPRO_BASE_SEED,
    REPRO_RUN_INDEX,
    crash_then_replay_plan,
    make_strawman_spec,
)


def test_campaign_dir_name_is_sortable_and_distinct():
    early = campaign_dir_name(1_700_000_000.25)
    late = campaign_dir_name(1_700_000_001.75)
    assert early != late
    assert early.startswith("campaign-")
    assert sorted([late, early]) == [early, late]


def _run_archived_campaign(tmp_path):
    plan = FaultPlan.of(
        *crash_then_replay_plan(run=REPRO_RUN_INDEX).events,
        AbortAt(step=3, run=1),
        label="forensics",
    )
    config = CampaignConfig(in_process=True, artifacts_dir=str(tmp_path))
    spec = make_strawman_spec()
    return run_campaign(
        spec, REPRO_RUN_INDEX + 1, base_seed=REPRO_BASE_SEED,
        config=config, fault_plan=plan,
    )


def test_every_non_ok_run_gets_an_artifact_directory(tmp_path):
    result = _run_archived_campaign(tmp_path)
    assert result.artifacts_path is not None
    entries = sorted(os.listdir(result.artifacts_path))
    assert "campaign.json" in entries
    non_ok = [r for r in result.reports if r.status is not RunStatus.OK]
    assert non_ok  # the scripted faults guarantee failures
    run_dirs = [e for e in entries if e.startswith("run-")]
    assert len(run_dirs) == len(non_ok)
    for report in non_ok:
        assert f"run-{report.index:05d}-{report.status.value}" in run_dirs
    # ok runs are not archived
    ok_indices = {r.index for r in result.reports if r.status is RunStatus.OK}
    for index in ok_indices:
        assert not any(d.startswith(f"run-{index:05d}-") for d in run_dirs)


def test_campaign_manifest_echoes_counts_and_plan(tmp_path):
    result = _run_archived_campaign(tmp_path)
    with open(os.path.join(result.artifacts_path, "campaign.json")) as stream:
        manifest = json.load(stream)
    assert manifest["status_counts"] == dict(result.status_counts)
    assert manifest["base_seed"] == REPRO_BASE_SEED
    assert manifest["fault_plan"]["label"] == "forensics"
    assert manifest["missing_data"] == result.missing_data


def test_safety_failure_artifact_round_trips_with_trace(tmp_path):
    result = _run_archived_campaign(tmp_path)
    report = result.reports[REPRO_RUN_INDEX]
    assert report.status is RunStatus.SAFETY_FAILED
    run_dir = os.path.join(
        result.artifacts_path,
        f"run-{report.index:05d}-{report.status.value}",
    )
    artifact = load_run_artifact(run_dir)
    assert artifact["meta"]["seed"] == report.seed
    assert artifact["meta"]["status"] == "safety_failed"
    assert artifact["meta"]["spec_label"] == "strawman"
    assert artifact["safety"]["violations"]
    # The archived fault plan is projected onto this run only.
    archived_plan = artifact["fault_plan"]
    assert all(e.run in (None, report.index) for e in archived_plan.events)
    assert len(archived_plan.events) == 2
    # The archived trace re-checks to the same verdict.
    verdict = check_all_safety(artifact["trace"])
    assert not verdict.passed
    assert verdict.no_duplication.failure_count > 0


def test_crashed_run_artifact_has_meta_but_no_trace(tmp_path):
    result = _run_archived_campaign(tmp_path)
    report = result.reports[1]
    assert report.status is RunStatus.CRASHED
    run_dir = os.path.join(
        result.artifacts_path,
        f"run-{report.index:05d}-{report.status.value}",
    )
    artifact = load_run_artifact(run_dir)
    assert artifact["meta"]["error"]
    assert "trace" not in artifact
    assert "safety" not in artifact
