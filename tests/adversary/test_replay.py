"""Unit tests for the Section 3 replay attacker's staging."""

from __future__ import annotations

import pytest

from repro.adversary.base import (
    CrashReceiver,
    CrashTransmitter,
    Deliver,
    TriggerRetry,
)
from repro.adversary.replay import AttackPhase, ReplayAttacker
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.core.random_source import RandomSource


def info(pid, channel=ChannelId.T_TO_R):
    return PacketInfo(channel=channel, packet_id=pid, length_bits=64)


def make(harvest=3, rounds=2, polls=0):
    adv = ReplayAttacker(
        harvest_messages=harvest,
        replay_rounds=rounds,
        polls_between_replays=polls,
    )
    adv.bind(RandomSource(0))
    return adv


class TestHarvestPhase:
    def test_starts_harvesting(self):
        adv = make()
        assert adv.phase == AttackPhase.HARVEST

    def test_faithful_fifo_during_harvest(self):
        adv = make(harvest=10)
        adv.on_new_pkt(info(0))
        adv.on_new_pkt(info(1, ChannelId.R_TO_T))
        first, second = adv.next_move(), adv.next_move()
        assert isinstance(first, Deliver) and first.packet_id == 0
        assert isinstance(second, Deliver) and second.channel == ChannelId.R_TO_T

    def test_archives_only_data_direction(self):
        adv = make(harvest=10)
        adv.on_new_pkt(info(0, ChannelId.T_TO_R))
        adv.on_new_pkt(info(1, ChannelId.R_TO_T))
        assert adv.archive_size == 1


class TestCrashPhase:
    def test_crashes_both_stations_after_harvest(self):
        adv = make(harvest=2)
        adv.on_new_pkt(info(0))
        adv.on_new_pkt(info(1))
        adv.next_move()  # harvest notices target reached, still faithful
        moves = [adv.next_move() for __ in range(3)]
        assert any(isinstance(m, CrashTransmitter) for m in moves)
        assert any(isinstance(m, CrashReceiver) for m in moves)
        crash_t_index = next(
            i for i, m in enumerate(moves) if isinstance(m, CrashTransmitter)
        )
        crash_r_index = next(
            i for i, m in enumerate(moves) if isinstance(m, CrashReceiver)
        )
        assert crash_t_index < crash_r_index  # "crash^T followed by crash^R"


class TestReplayPhase:
    def _drive_to_replay(self, adv, archived=2):
        for pid in range(archived):
            adv.on_new_pkt(info(pid))
        while adv.phase != AttackPhase.REPLAY:
            adv.next_move()

    def test_replays_archive_cyclically(self):
        adv = make(harvest=2, rounds=2)
        self._drive_to_replay(adv)
        replayed = []
        for __ in range(4):
            move = adv.next_move()
            assert isinstance(move, Deliver)
            replayed.append(move.packet_id)
        assert replayed == [0, 1, 0, 1]
        assert adv.replays_sent == 4

    def test_interleaves_polls_when_configured(self):
        adv = make(harvest=1, rounds=2, polls=2)
        self._drive_to_replay(adv, archived=1)
        moves = [adv.next_move() for __ in range(6)]
        retries = sum(isinstance(m, TriggerRetry) for m in moves)
        delivers = sum(isinstance(m, Deliver) for m in moves)
        assert retries == 4 and delivers == 2

    def test_drains_to_faithful(self):
        adv = make(harvest=1, rounds=1)
        self._drive_to_replay(adv, archived=1)
        adv.next_move()  # the single replay
        adv.next_move()
        assert adv.phase == AttackPhase.DRAINED


class TestValidation:
    def test_rejects_degenerate_configs(self):
        with pytest.raises(ValueError):
            ReplayAttacker(harvest_messages=0)
        with pytest.raises(ValueError):
            ReplayAttacker(replay_rounds=0)

    def test_describe_reports_phase(self):
        adv = make()
        assert "harvest" in adv.describe()
