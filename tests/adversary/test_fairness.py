"""Unit tests for fairness enforcement (Axiom 3) and stalling."""

from __future__ import annotations

import pytest

from repro.adversary.base import Deliver, Pass
from repro.adversary.benign import ReliableAdversary
from repro.adversary.fairness import FairnessEnforcer, StallingAdversary
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.core.random_source import RandomSource


def info(pid):
    return PacketInfo(channel=ChannelId.T_TO_R, packet_id=pid, length_bits=64)


class TestStallingAdversary:
    def test_always_passes(self):
        adv = StallingAdversary()
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        assert all(isinstance(adv.next_move(), Pass) for __ in range(10))


class TestFairnessEnforcer:
    def test_forces_delivery_after_patience(self):
        adv = FairnessEnforcer(StallingAdversary(), patience=5)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        moves = [adv.next_move() for __ in range(5)]
        assert isinstance(moves[-1], Deliver)
        assert all(isinstance(m, Pass) for m in moves[:-1])
        assert adv.forced_deliveries == 1

    def test_forces_most_recent_packet(self):
        # The weakest fair choice: the newest pending packet goes through,
        # older ones may be starved forever.
        adv = FairnessEnforcer(StallingAdversary(), patience=3)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        adv.on_new_pkt(info(1))
        forced = None
        for __ in range(3):
            move = adv.next_move()
            if isinstance(move, Deliver):
                forced = move
        assert forced is not None and forced.packet_id == 1

    def test_passthrough_when_inner_delivers(self):
        adv = FairnessEnforcer(ReliableAdversary(), patience=5)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        move = adv.next_move()
        assert isinstance(move, Deliver)
        assert adv.forced_deliveries == 0

    def test_no_forcing_without_pending_packets(self):
        adv = FairnessEnforcer(StallingAdversary(), patience=2)
        adv.bind(RandomSource(0))
        moves = [adv.next_move() for __ in range(10)]
        assert all(isinstance(m, Pass) for m in moves)

    def test_patience_resets_after_delivery(self):
        adv = FairnessEnforcer(StallingAdversary(), patience=4)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        adv.on_new_pkt(info(1))
        deliveries = []
        for turn in range(8):
            move = adv.next_move()
            if isinstance(move, Deliver):
                deliveries.append(turn)
        assert deliveries == [3, 7]  # one per patience window

    def test_forced_packet_not_redelivered(self):
        adv = FairnessEnforcer(StallingAdversary(), patience=2)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        delivered = []
        for __ in range(10):
            move = adv.next_move()
            if isinstance(move, Deliver):
                delivered.append(move.packet_id)
        assert delivered == [0]  # forced once, then nothing left to force

    def test_rejects_bad_patience(self):
        with pytest.raises(ValueError):
            FairnessEnforcer(StallingAdversary(), patience=0)

    def test_inner_tape_bound(self):
        adv = FairnessEnforcer(ReliableAdversary(), patience=2)
        adv.bind(RandomSource(0))
        assert adv.inner.rng is not None

    def test_describe_nests(self):
        adv = FairnessEnforcer(StallingAdversary(), patience=3)
        assert "StallingAdversary" in adv.describe()


class _DeliverAtTurn(ReliableAdversary):
    """Inner adversary that delivers its oldest packet at one chosen turn."""

    def __init__(self, turn: int) -> None:
        super().__init__()
        self._turn = turn

    def _decide(self):
        if self.moves_made == self._turn:
            return super()._decide()
        return Pass()


class TestPatienceBoundary:
    def test_patience_one_forces_on_first_starved_turn(self):
        adv = FairnessEnforcer(StallingAdversary(), patience=1)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        assert isinstance(adv.next_move(), Deliver)
        assert adv.forced_deliveries == 1

    def test_no_force_one_turn_before_the_boundary(self):
        adv = FairnessEnforcer(StallingAdversary(), patience=6)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        moves = [adv.next_move() for __ in range(5)]
        assert all(isinstance(m, Pass) for m in moves)
        assert adv.forced_deliveries == 0
        # ... and exactly at the boundary the delivery is forced.
        assert isinstance(adv.next_move(), Deliver)

    def test_inner_delivery_just_before_boundary_resets_the_clock(self):
        # The inner adversary delivers on turn 2 (patience 3): the window
        # restarts, so the second packet is forced three turns later, not
        # on the original schedule.
        adv = FairnessEnforcer(_DeliverAtTurn(2), patience=3)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        adv.on_new_pkt(info(1))
        deliveries = {}
        for turn in range(1, 7):
            move = adv.next_move()
            if isinstance(move, Deliver):
                deliveries[turn] = move.packet_id
        assert deliveries == {2: 0, 5: 1}
        assert adv.forced_deliveries == 1

    def test_channels_starve_independently(self):
        # Forcing the data channel resets only its own clock: the reverse
        # channel's starvation has been accruing all along and trips the
        # boundary on the very next turn.
        adv = FairnessEnforcer(StallingAdversary(), patience=3)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        adv.on_new_pkt(
            PacketInfo(channel=ChannelId.R_TO_T, packet_id=9, length_bits=64)
        )
        forced = {}
        for turn in range(1, 5):
            move = adv.next_move()
            if isinstance(move, Deliver):
                forced[turn] = move.channel
        assert forced == {3: ChannelId.T_TO_R, 4: ChannelId.R_TO_T}
