"""Unit tests for the benign adversaries."""

from __future__ import annotations

from repro.adversary.base import Deliver, Pass, TriggerRetry
from repro.adversary.benign import DelayedFifoAdversary, ReliableAdversary
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.core.random_source import RandomSource


def info(pid, channel=ChannelId.T_TO_R, length=64):
    return PacketInfo(channel=channel, packet_id=pid, length_bits=length)


class TestReliableAdversary:
    def test_fifo_exactly_once(self):
        adv = ReliableAdversary()
        adv.bind(RandomSource(0))
        for pid in range(3):
            adv.on_new_pkt(info(pid))
        moves = [adv.next_move() for __ in range(4)]
        assert [m.packet_id for m in moves[:3]] == [0, 1, 2]
        assert isinstance(moves[3], Pass)

    def test_interleaves_channels_in_arrival_order(self):
        adv = ReliableAdversary()
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0, ChannelId.T_TO_R))
        adv.on_new_pkt(info(0, ChannelId.R_TO_T))
        first, second = adv.next_move(), adv.next_move()
        assert first.channel == ChannelId.T_TO_R
        assert second.channel == ChannelId.R_TO_T

    def test_passes_when_idle(self):
        adv = ReliableAdversary()
        adv.bind(RandomSource(0))
        assert isinstance(adv.next_move(), Pass)

    def test_moves_counter(self):
        adv = ReliableAdversary()
        adv.bind(RandomSource(0))
        adv.next_move()
        adv.next_move()
        assert adv.moves_made == 2


class TestDelayedFifoAdversary:
    def test_holds_packets_for_delay(self):
        adv = DelayedFifoAdversary(delay_turns=3)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        kinds = []
        for __ in range(6):
            kinds.append(adv.next_move())
        delivered_at = next(
            i for i, m in enumerate(kinds) if isinstance(m, Deliver)
        )
        assert delivered_at >= 2  # not before the delay matured

    def test_zero_delay_behaves_like_fifo(self):
        adv = DelayedFifoAdversary(delay_turns=0)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(7))
        move = adv.next_move()
        assert isinstance(move, Deliver)
        assert move.packet_id == 7

    def test_requests_retry_while_waiting(self):
        adv = DelayedFifoAdversary(delay_turns=10)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        assert isinstance(adv.next_move(), TriggerRetry)

    def test_preserves_order(self):
        adv = DelayedFifoAdversary(delay_turns=1)
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        adv.on_new_pkt(info(1))
        delivered = []
        for __ in range(10):
            move = adv.next_move()
            if isinstance(move, Deliver):
                delivered.append(move.packet_id)
        assert delivered == [0, 1]

    def test_rejects_negative_delay(self):
        import pytest

        with pytest.raises(ValueError):
            DelayedFifoAdversary(delay_turns=-1)
