"""Unit tests for phased and mixture adversary composition."""

from __future__ import annotations

import pytest

from repro.adversary.base import Deliver, Pass
from repro.adversary.benign import ReliableAdversary
from repro.adversary.composite import MixtureAdversary, PhasedAdversary
from repro.adversary.fairness import StallingAdversary
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.core.random_source import RandomSource


def info(pid):
    return PacketInfo(channel=ChannelId.T_TO_R, packet_id=pid, length_bits=64)


class TestPhasedAdversary:
    def test_switches_after_budget(self):
        adv = PhasedAdversary([(StallingAdversary(), 3), (ReliableAdversary(), 1)])
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        moves = [adv.next_move() for __ in range(5)]
        assert all(isinstance(m, Pass) for m in moves[:3])
        assert any(isinstance(m, Deliver) for m in moves[3:])

    def test_all_phases_observe_new_pkts(self):
        # A packet announced during phase 1 must be deliverable by phase 2.
        adv = PhasedAdversary([(StallingAdversary(), 2), (ReliableAdversary(), 1)])
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(42))
        adv.next_move()
        adv.next_move()
        move = adv.next_move()
        assert isinstance(move, Deliver)
        assert move.packet_id == 42

    def test_final_phase_runs_forever(self):
        adv = PhasedAdversary([(ReliableAdversary(), 1)])
        adv.bind(RandomSource(0))
        for __ in range(50):
            adv.next_move()
        assert adv.current_phase is adv._phases[0][0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedAdversary([])
        with pytest.raises(ValueError):
            PhasedAdversary([(StallingAdversary(), 0), (ReliableAdversary(), 1)])

    def test_describe_chains(self):
        adv = PhasedAdversary([(StallingAdversary(), 1), (ReliableAdversary(), 1)])
        assert "->" in adv.describe()


class TestMixtureAdversary:
    def test_single_component_is_passthrough(self):
        adv = MixtureAdversary([(ReliableAdversary(), 1.0)])
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        assert isinstance(adv.next_move(), Deliver)

    def test_weights_normalised(self):
        stall = StallingAdversary()
        deliver = ReliableAdversary()
        adv = MixtureAdversary([(stall, 3.0), (deliver, 1.0)])
        adv.bind(RandomSource(1))
        for pid in range(1000):
            adv.on_new_pkt(info(pid))
        passes = sum(isinstance(adv.next_move(), Pass) for __ in range(1000))
        assert 650 < passes < 850  # ~75% stalling

    def test_validation(self):
        with pytest.raises(ValueError):
            MixtureAdversary([])
        with pytest.raises(ValueError):
            MixtureAdversary([(StallingAdversary(), 0.0)])

    def test_describe_lists_weights(self):
        adv = MixtureAdversary([(StallingAdversary(), 1.0)])
        assert "1.00" in adv.describe()
