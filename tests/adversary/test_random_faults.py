"""Unit tests for randomized fault adversaries."""

from __future__ import annotations

import pytest

from repro.adversary.base import CrashReceiver, CrashTransmitter, Deliver, Pass
from repro.adversary.random_faults import (
    DuplicateFloodAdversary,
    FaultProfile,
    RandomFaultAdversary,
    ReorderAdversary,
)
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.core.random_source import RandomSource


def info(pid, channel=ChannelId.T_TO_R):
    return PacketInfo(channel=channel, packet_id=pid, length_bits=64)


class TestFaultProfile:
    def test_validates_probabilities(self):
        with pytest.raises(ValueError):
            FaultProfile(loss=1.5)
        with pytest.raises(ValueError):
            FaultProfile(duplicate=-0.1)

    def test_total_loss_rejected(self):
        # loss=1 disconnects the stations, violating Axiom 3.
        with pytest.raises(ValueError):
            FaultProfile(loss=1.0)

    def test_defaults_are_faultless(self):
        profile = FaultProfile()
        assert profile.loss == 0.0
        assert profile.crash_t == 0.0


class TestRandomFaultAdversary:
    def test_faultless_profile_is_reliable(self):
        adv = RandomFaultAdversary(FaultProfile())
        adv.bind(RandomSource(1))
        for pid in range(4):
            adv.on_new_pkt(info(pid))
        delivered = [adv.next_move().packet_id for __ in range(4)]
        assert delivered == [0, 1, 2, 3]

    def test_loss_rate_approximate(self):
        adv = RandomFaultAdversary(FaultProfile(loss=0.5))
        adv.bind(RandomSource(2))
        for pid in range(2000):
            adv.on_new_pkt(info(pid))
        assert 850 < adv.dropped < 1150

    def test_duplication_requeues(self):
        adv = RandomFaultAdversary(FaultProfile(duplicate=0.9))
        adv.bind(RandomSource(3))
        adv.on_new_pkt(info(0))
        deliveries = 0
        for __ in range(50):
            if isinstance(adv.next_move(), Deliver):
                deliveries += 1
        assert deliveries > 1  # the same packet delivered repeatedly
        assert adv.duplicated > 0

    def test_crash_rates(self):
        adv = RandomFaultAdversary(FaultProfile(crash_t=0.5, crash_r=0.5))
        adv.bind(RandomSource(4))
        moves = [adv.next_move() for __ in range(100)]
        assert any(isinstance(m, CrashTransmitter) for m in moves)
        assert any(isinstance(m, CrashReceiver) for m in moves)

    def test_passes_when_empty(self):
        adv = RandomFaultAdversary(FaultProfile())
        adv.bind(RandomSource(5))
        assert isinstance(adv.next_move(), Pass)

    def test_describe_mentions_rates(self):
        adv = RandomFaultAdversary(FaultProfile(loss=0.25))
        assert "0.25" in adv.describe()


class TestReorderAdversary:
    def test_delivers_each_exactly_once(self):
        adv = ReorderAdversary(window=8)
        adv.bind(RandomSource(6))
        for pid in range(20):
            adv.on_new_pkt(info(pid))
        delivered = []
        for __ in range(20):
            move = adv.next_move()
            assert isinstance(move, Deliver)
            delivered.append(move.packet_id)
        assert sorted(delivered) == list(range(20))

    def test_actually_reorders(self):
        adv = ReorderAdversary(window=8)
        adv.bind(RandomSource(7))
        for pid in range(20):
            adv.on_new_pkt(info(pid))
        delivered = [adv.next_move().packet_id for __ in range(20)]
        assert delivered != sorted(delivered)

    def test_window_bounds_starvation(self):
        adv = ReorderAdversary(window=2)
        adv.bind(RandomSource(8))
        for pid in range(50):
            adv.on_new_pkt(info(pid))
        delivered = [adv.next_move().packet_id for __ in range(50)]
        # With window 2, packet k is delivered within k+2 deliveries.
        for position, pid in enumerate(delivered):
            assert pid <= position + 2

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ReorderAdversary(window=0)


class TestDuplicateFloodAdversary:
    def test_first_pass_delivers_everything(self):
        adv = DuplicateFloodAdversary(flood=0.0)
        adv.bind(RandomSource(9))
        for pid in range(5):
            adv.on_new_pkt(info(pid))
        delivered = [adv.next_move().packet_id for __ in range(5)]
        assert delivered == [0, 1, 2, 3, 4]

    def test_floods_archive(self):
        adv = DuplicateFloodAdversary(flood=1.0)
        adv.bind(RandomSource(10))
        adv.on_new_pkt(info(0))
        first = adv.next_move()
        assert isinstance(first, Deliver)
        for __ in range(10):
            move = adv.next_move()
            assert isinstance(move, Deliver)
            assert move.packet_id == 0
        assert adv.redeliveries == 10

    def test_channel_bias(self):
        adv = DuplicateFloodAdversary(flood=1.0, flood_t_to_r_only=True)
        adv.bind(RandomSource(11))
        adv.on_new_pkt(info(0, ChannelId.T_TO_R))
        adv.on_new_pkt(info(0, ChannelId.R_TO_T))
        adv.next_move()
        adv.next_move()
        floods = [adv.next_move() for __ in range(20)]
        assert all(m.channel == ChannelId.T_TO_R for m in floods)

    def test_rejects_bad_flood(self):
        with pytest.raises(ValueError):
            DuplicateFloodAdversary(flood=1.5)
