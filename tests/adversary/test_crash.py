"""Unit tests for crash-injecting adversaries."""

from __future__ import annotations

import pytest

from repro.adversary.base import CrashReceiver, CrashTransmitter, Deliver
from repro.adversary.crash import CrashStormAdversary, ScheduledCrashAdversary
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.core.random_source import RandomSource


def info(pid):
    return PacketInfo(channel=ChannelId.T_TO_R, packet_id=pid, length_bits=64)


class TestCrashStorm:
    def test_injects_crashes_at_rate(self):
        adv = CrashStormAdversary(crash_rate=0.3)
        adv.bind(RandomSource(1))
        moves = [adv.next_move() for __ in range(200)]
        crashes = sum(
            isinstance(m, (CrashTransmitter, CrashReceiver)) for m in moves
        )
        assert 30 < crashes < 90
        assert adv.crashes_injected == crashes

    def test_respects_station_targeting(self):
        adv = CrashStormAdversary(crash_rate=0.5, target_receiver=False)
        adv.bind(RandomSource(2))
        moves = [adv.next_move() for __ in range(100)]
        assert any(isinstance(m, CrashTransmitter) for m in moves)
        assert not any(isinstance(m, CrashReceiver) for m in moves)

    def test_max_crashes_cap(self):
        adv = CrashStormAdversary(crash_rate=0.9, max_crashes=3)
        adv.bind(RandomSource(3))
        for __ in range(100):
            adv.next_move()
        assert adv.crashes_injected == 3

    def test_still_delivers_between_crashes(self):
        adv = CrashStormAdversary(crash_rate=0.2)
        adv.bind(RandomSource(4))
        adv.on_new_pkt(info(0))
        moves = [adv.next_move() for __ in range(30)]
        assert any(isinstance(m, Deliver) for m in moves)

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashStormAdversary(crash_rate=2.0)
        with pytest.raises(ValueError):
            CrashStormAdversary(target_transmitter=False, target_receiver=False)


class TestScheduledCrash:
    def test_fires_at_exact_turns(self):
        adv = ScheduledCrashAdversary([(2, "T"), (5, "R")])
        adv.bind(RandomSource(0))
        moves = [adv.next_move() for __ in range(8)]
        assert isinstance(moves[2], CrashTransmitter)
        assert isinstance(moves[5], CrashReceiver)
        assert adv.crashes_injected == 2

    def test_schedule_sorted_regardless_of_input_order(self):
        adv = ScheduledCrashAdversary([(5, "R"), (2, "T")])
        adv.bind(RandomSource(0))
        moves = [adv.next_move() for __ in range(8)]
        assert isinstance(moves[2], CrashTransmitter)

    def test_delivers_fifo_otherwise(self):
        adv = ScheduledCrashAdversary([(10, "T")])
        adv.bind(RandomSource(0))
        adv.on_new_pkt(info(0))
        move = adv.next_move()
        assert isinstance(move, Deliver)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduledCrashAdversary([(1, "X")])
        with pytest.raises(ValueError):
            ScheduledCrashAdversary([(-1, "T")])
