"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams, SoundPolicy
from repro.core.protocol import DataLink, make_data_link
from repro.core.random_source import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic random source."""
    return RandomSource(12345)


@pytest.fixture
def params() -> ProtocolParams:
    """Standard protocol parameters with a moderate epsilon."""
    return ProtocolParams(epsilon=2.0 ** -16, policy=SoundPolicy())


@pytest.fixture
def link() -> DataLink:
    """A seeded, ready-to-run data link."""
    return make_data_link(epsilon=2.0 ** -16, seed=777)


def drive_handshake(link: DataLink, message: bytes):
    """Run one complete fault-free handshake by hand (no simulator).

    Returns (delivered_message, ok_seen).  Used by unit tests that need a
    completed message without pulling in the harness.
    """
    from repro.core.events import EmitOk, EmitPacket, EmitReceiveMsg

    transmitter, receiver = link.transmitter, link.receiver

    delivered = None
    ok = False
    for output in transmitter.send_msg(message):
        # In steady state the transmitter opens with a data packet.
        if isinstance(output, EmitPacket):
            for r_output in receiver.on_receive_pkt(output.packet):
                if isinstance(r_output, EmitReceiveMsg):
                    delivered = r_output.message
    for __ in range(8):  # a fault-free handshake needs at most a few rounds
        poll_outputs = receiver.retry()
        poll = next(
            o.packet for o in poll_outputs if isinstance(o, EmitPacket)
        )
        t_outputs = transmitter.on_receive_pkt(poll)
        for output in t_outputs:
            if isinstance(output, EmitOk):
                ok = True
            elif isinstance(output, EmitPacket):
                r_outputs = receiver.on_receive_pkt(output.packet)
                for r_output in r_outputs:
                    if isinstance(r_output, EmitReceiveMsg):
                        delivered = r_output.message
        if ok:
            break
    return delivered, ok
