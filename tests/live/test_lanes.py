"""Multi-lane live deployment: differential equivalence, chaos, hygiene.

The tentpole claims of the laned deployment are pinned here:

* **differential** — a K-lane live run over a clean wire delivers the
  exact resequenced stream :class:`StripedSimulator` produces for the
  same workload and the same per-lane link seeds (the scenario derives
  lane seeds with the identical ``split_seed`` recipe);
* **acceptance** — 4 lanes under 8% drop + duplication + reordering with
  one transmitter-lane crash and one receiver-lane crash still deliver
  all 50 messages in order, with clean per-lane Section 2.6 verdicts;
* **visibility** — the chaos proxy handles laned traffic without ever
  decoding payload bytes (checked structurally *and* by booby-trapping
  the codec);
* **timer hygiene** — crashing an endpoint mid-backoff cancels the
  pending poll outright (the stale-callback regression), lane crashes
  cancel only their own lane's timers, and teardown leaves nothing
  scheduled on the caller's loop.
"""

from __future__ import annotations

import asyncio

import repro.core.packets as packets
import repro.live.proxy as proxy_module
from repro.checkers.live import LiveEventLog
from repro.core.bitstrings import BitString
from repro.core.events import ChannelId
from repro.core.packets import (
    DataPacket,
    PollPacket,
    encode_lane_frame,
    encode_packet,
)
from repro.core.protocol import make_data_link
from repro.core.random_source import RandomSource, split_seed
from repro.extensions.striping import StripedLink, StripedSimulator
from repro.adversary.benign import ReliableAdversary
from repro.live import (
    AdaptiveBackoff,
    BackoffPolicy,
    ChaosProxy,
    LanedReceiverEndpoint,
    LanedTransmitterEndpoint,
    LinkProfile,
    LiveScenario,
    LiveStatus,
    ReceiverEndpoint,
    run_live_scenario,
)
from repro.resilience.faultplan import CrashAt, FaultPlan

_FAST_POLL = BackoffPolicy(base=0.004, factor=2.0, cap=0.05, jitter=0.25)
#: Slow enough that a scheduled poll is still pending whenever we look.
_SLOW_POLL = BackoffPolicy(base=10.0, factor=2.0, cap=20.0, jitter=0.0)

#: A sink address for endpoints driven by hand (nothing listens there).
_NOWHERE = ("127.0.0.1", 9)


def _payloads(n: int) -> list:
    # Must match the workload run_live_scenario generates internally.
    return [b"live-%05d" % i for i in range(n)]


# -- differential: live lanes == simulated striping ------------------------------


def test_differential_live_stream_matches_striped_simulator():
    # Same workload, same per-lane link seeds: the scenario derives lane
    # seeds as split_seed(split_seed(seed, "live-link"), "lane", i), which
    # is exactly StripedLink(lanes, ε, seed=split_seed(seed, "live-link")).
    seed, lanes, messages = 7, 3, 18
    payloads = _payloads(messages)

    report = run_live_scenario(LiveScenario(
        messages=messages, seed=seed, lanes=lanes, poll=_FAST_POLL,
        budget=30.0, give_up_idle=4.0, label="differential",
    ))
    assert report.ok, report.reason
    assert report.in_order_delivered == messages

    striped = StripedLink(lanes=lanes, seed=split_seed(seed, "live-link"))
    result = StripedSimulator(
        striped, payloads, ReliableAdversary, seed=seed
    ).run()
    assert result.completed and result.all_safe

    assert report.delivered_stream == result.delivered == payloads


# -- acceptance: 4 lanes, lossy wire, one crash per station ----------------------


def test_four_lane_chaos_acceptance():
    messages = 50
    report = run_live_scenario(LiveScenario(
        messages=messages,
        seed=11,
        lanes=4,
        profile=LinkProfile(
            drop=0.08, duplicate=0.08, reorder=0.08, delay=0.002
        ),
        plan=FaultPlan.of(
            CrashAt(step=9, station="T"), CrashAt(step=31, station="R")
        ),
        poll=_FAST_POLL,
        budget=45.0,
        give_up_idle=6.0,
        label="laned-chaos",
    ))
    assert report.status is LiveStatus.DELIVERED, report.reason
    assert report.oks == messages
    # The resequenced global stream is complete and exactly in order.
    assert report.delivered_stream == _payloads(messages)
    assert report.in_order_delivered == messages
    # Per-lane verdicts: every lane's trace satisfies every condition.
    assert report.safety.passed, report.safety
    assert report.liveness_passed
    assert report.ok
    # Exactly one lane on each side took the scripted crash; siblings
    # never noticed (crash isolation is per lane, not per host).
    assert report.crashes_t == 1 and report.crashes_r == 1
    assert sorted(m.crashes_t for m in report.lane_metrics) == [0, 0, 0, 1]
    assert sorted(m.crashes_r for m in report.lane_metrics) == [0, 0, 0, 1]
    # The chaos actually happened, and every lane carried traffic that the
    # proxy classified structurally (lane id + identifier, no decode).
    assert report.proxy.dropped > 0
    assert report.proxy.duplicated > 0
    assert set(report.proxy.by_lane) == {0, 1, 2, 3}
    # Satellite: per-lane counters surface in the rendered summary.
    assert "per-lane metrics" in report.render()
    assert report.wall_seconds < 45.0


# -- adversary visibility: the proxy never decodes payload bytes ----------------


def test_proxy_never_decodes_payload_bytes(monkeypatch):
    # Structural check first: the proxy module does not even import the
    # decoding half of the codec.
    assert not hasattr(proxy_module, "decode_packet")
    assert not hasattr(proxy_module, "_decode_bitstring")

    # Booby-trap the codec's decode paths; any content inspection beyond
    # peek_wire_info now explodes.
    def _boom(*args, **kwargs):
        raise AssertionError("proxy decoded payload bytes")

    monkeypatch.setattr(packets, "decode_packet", _boom)
    monkeypatch.setattr(packets, "_decode_bitstring", _boom)

    proxy = ChaosProxy(rng=RandomSource(3))
    sent = []
    monkeypatch.setattr(
        proxy, "_send_now", lambda channel, data: sent.append((channel, data))
    )

    data = encode_packet(
        DataPacket(message=b"secret", rho=BitString("01"), tau=BitString("1"))
    )
    poll = encode_packet(
        PollPacket(rho=BitString("01"), tau=BitString("10"), retry=4)
    )
    laned = encode_lane_frame(3, data)

    proxy._on_datagram(ChannelId.T_TO_R, laned)  # laned data packet
    proxy._on_datagram(ChannelId.R_TO_T, poll)  # classic unlaned poll
    proxy._on_datagram(ChannelId.T_TO_R, b"\xff\xff")  # foreign identifier

    # Both well-formed datagrams were forwarded byte-identically — the
    # proxy never needed (and could not have used) a decode.
    assert [frame for __, frame in sent] == [laned, poll]
    assert proxy.stats.observed == 2
    assert proxy.stats.foreign == 1
    assert proxy.stats.by_kind == {"data": 1, "poll": 1}
    assert proxy.stats.by_lane == {3: 1}


# -- timer hygiene: crash mid-backoff, lane isolation, teardown ------------------


def test_crash_mid_backoff_cancels_pending_poll():
    # Regression: a poll scheduled before a crash must never fire into the
    # cold-restarted automaton.  With a 10s backoff the pending poll is
    # guaranteed to still be scheduled when the crash lands.
    async def _run():
        link = make_data_link(epsilon=2.0 ** -16, seed=5)
        rm = ReceiverEndpoint(
            link.receiver, LiveEventLog(), _NOWHERE,
            AdaptiveBackoff(_SLOW_POLL, RandomSource(5).fork("poll")),
            restart_delay=0.01,
        )
        await rm.start()
        # The chain is live: first poll sent, next one pending 10s out.
        assert rm.pending_timer_count == 1

        rm.crash()
        assert rm.dead
        # The pending poll died with the volatile state; the only timer
        # left is the restart.
        assert rm._poll_handle is None
        assert rm.pending_timer_count == 1

        await asyncio.sleep(0.05)
        # Cold restart: automaton back, backoff reset, fresh poll chain.
        assert not rm.dead
        assert rm.pending_timer_count == 1
        assert rm.backoff.attempts_without_progress <= 1

        # Teardown sweeps everything — nothing left on the caller's loop.
        rm.close()
        assert rm.pending_timer_count == 0

        # Crash-then-close before the restart fires: the restart callback
        # is cancelled too, so the endpoint stays down for good.
        link2 = make_data_link(epsilon=2.0 ** -16, seed=6)
        rm2 = ReceiverEndpoint(
            link2.receiver, LiveEventLog(), _NOWHERE,
            AdaptiveBackoff(_SLOW_POLL, RandomSource(6).fork("poll")),
            restart_delay=0.01,
        )
        await rm2.start()
        rm2.crash()
        rm2.close()
        assert rm2.pending_timer_count == 0
        await asyncio.sleep(0.05)
        assert rm2.dead

    asyncio.run(_run())


def test_lane_crash_cancels_only_that_lanes_timers():
    async def _run():
        links = [make_data_link(epsilon=2.0 ** -16, seed=i) for i in (1, 2)]
        logs = [LiveEventLog(), LiveEventLog()]
        root = RandomSource(9)
        rm = LanedReceiverEndpoint(
            links, logs, _NOWHERE,
            [AdaptiveBackoff(_SLOW_POLL, root.fork("poll", i)) for i in (0, 1)],
            restart_delay=0.02,
        )
        await rm.start()
        # One pending poll per lane.
        assert rm.pending_timer_count == 2

        rm.crash_lane(0)
        # Lane 0: poll cancelled, restart scheduled.  Lane 1: untouched.
        assert rm._lanes[0].dead and rm._lanes[0].poll_handle is None
        assert not rm._lanes[1].dead and rm._lanes[1].poll_handle is not None
        assert rm.pending_timer_count == 2
        assert rm.crashes == 1

        await asyncio.sleep(0.06)
        assert not rm._lanes[0].dead  # restarted, polling again
        assert rm.pending_timer_count == 2

        rm.close()
        assert rm.pending_timer_count == 0

    asyncio.run(_run())


def test_laned_endpoint_counts_foreign_and_malformed_traffic():
    # Dispatch is pure bookkeeping until a frame validates, so this needs
    # no socket: feed raw datagrams straight into the splitter.
    links = [make_data_link(epsilon=2.0 ** -16, seed=i) for i in (1, 2)]
    logs = [LiveEventLog(), LiveEventLog()]
    tm = LanedTransmitterEndpoint(links, logs, _NOWHERE, [b"a", b"b"])

    poll = encode_packet(
        PollPacket(rho=BitString("0"), tau=BitString("1"), retry=0)
    )
    data = encode_packet(
        DataPacket(message=b"x", rho=BitString("0"), tau=BitString("1"))
    )
    tm._on_datagram(b"")  # too short for any frame
    tm._on_datagram(bytes([5]) + poll)  # lane id outside [0, 2)
    tm._on_datagram(poll)  # unlaned traffic on a laned wire
    tm._on_datagram(b"\x01\xff\xff")  # lane ok, body fails the codec
    tm._on_datagram(b"\x00" + data)  # decodes, but a TM expects polls
    assert tm.foreign_lanes == 3
    assert tm.malformed == 2
