"""Crash-amnesia invariants on the live wire.

A station crash wipes volatile state (the paper's model: memory dies, the
entropy source survives).  These tests kill each station at every early
wire turn — the first handful of proxy-observed datagrams covers every
phase of a handshake: initial poll, data packet, acknowledging poll, and
the start of the next handshake — and assert that:

* no message is ever delivered twice and no stale packet is replayed into
  a later handshake (the streaming safety verdicts, which already encode
  the crash-aware resets of Section 2.6);
* the link eventually re-syncs and the full workload is delivered, or the
  run ends in an *explicit* give-up — never a hang (the budget/give-up
  teardown is part of the invariant);
* a transmitter crash mid-handshake re-queues the in-flight slot under a
  fresh attempt suffix — a distinct value, preserving Axiom 2.
"""

from __future__ import annotations

import pytest

from repro.live import BackoffPolicy, LiveScenario, LiveStatus, run_live_scenario
from repro.live.endpoints import _Slot
from repro.resilience.faultplan import CrashAt, FaultPlan

# Fast schedule so twelve scenarios stay cheap; tight but real budgets so
# a regression shows up as an explicit failure, not a wedged test session.
_FAST_POLL = BackoffPolicy(base=0.002, factor=2.0, cap=0.05, jitter=0.25)

MESSAGES = 6
# Wire turns 1..8 span several complete handshakes of a 6-message workload.
CRASH_TURNS = range(1, 9)


def _run_with_crash(station: str, turn: int, seed: int = 5):
    scenario = LiveScenario(
        messages=MESSAGES,
        seed=seed,
        plan=FaultPlan.of(CrashAt(step=turn, station=station)),
        poll=_FAST_POLL,
        budget=20.0,
        give_up_idle=4.0,
        restart_delay=0.01,
        label=f"crash-{station}@{turn}",
    )
    return run_live_scenario(scenario)


@pytest.mark.parametrize("turn", CRASH_TURNS)
@pytest.mark.parametrize("station", ["T", "R"])
def test_crash_at_every_phase_recovers_safely(station, turn):
    report = _run_with_crash(station, turn)
    # Safety holds unconditionally: no duplicate delivery, no replay.
    assert report.safety.passed, report.safety
    # Termination is explicit: re-sync and deliver, or declared give-up.
    assert report.status in (LiveStatus.DELIVERED, LiveStatus.UNRECONCILABLE)
    # On a clean link a single amnesia crash must always be survivable.
    assert report.status is LiveStatus.DELIVERED, report.reason
    assert report.oks == MESSAGES
    assert (report.crashes_t, report.crashes_r) == (
        (1, 0) if station == "T" else (0, 1)
    )


@pytest.mark.parametrize("turn", [2, 4, 6])
def test_transmitter_crash_resubmits_under_fresh_value(turn):
    # The TM is mid-handshake at every early wire turn (the next slot is
    # submitted synchronously with each OK), so an amnesia crash always
    # strands one in-flight slot; it must come back as a distinct value.
    report = _run_with_crash("T", turn)
    assert report.resubmissions == 1
    assert report.status is LiveStatus.DELIVERED
    assert report.safety.passed
    # The RM delivered the resubmitted incarnation too, so deliveries may
    # exceed OKs by at most the resubmission count.
    assert report.oks <= report.deliveries <= report.oks + report.resubmissions


def test_both_stations_crash_in_one_run():
    scenario = LiveScenario(
        messages=MESSAGES,
        seed=9,
        plan=FaultPlan.of(
            CrashAt(step=3, station="T"), CrashAt(step=10, station="R")
        ),
        poll=_FAST_POLL,
        budget=20.0,
        give_up_idle=4.0,
        restart_delay=0.01,
        label="double-crash",
    )
    report = run_live_scenario(scenario)
    assert report.safety.passed
    assert report.status is LiveStatus.DELIVERED, report.reason
    assert report.crashes_t == 1 and report.crashes_r == 1
    assert report.oks == MESSAGES


def test_slot_attempt_suffixes_are_distinct():
    values = {_Slot(b"msg", attempt).value() for attempt in range(4)}
    assert len(values) == 4
    assert _Slot(b"msg", 0).value() == b"msg"


def test_crash_turn_never_reached_is_benign():
    # A plan whose crash turn lies beyond the run's wire activity must not
    # block completion (the proxy simply never fires it).
    report = _run_with_crash("R", 10_000)
    assert report.status is LiveStatus.DELIVERED
    assert report.crashes_r == 0
