"""End-to-end live scenarios: chaos delivery, give-up, and wire hygiene.

``test_acceptance_chaos_scenario`` is the PR's acceptance gate: a
50-message workload over real UDP through ≥5% stochastic drop plus
duplication and reordering, with one transmitter crash and one receiver
crash scripted mid-run — delivered completely, with every Section 2.6
condition reported satisfied by the streaming checkers, under a hard
wall-clock budget and with zero hangs.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.checkers.live import LiveEventLog
from repro.core.protocol import make_data_link
from repro.core.random_source import RandomSource
from repro.live import (
    AdaptiveBackoff,
    BackoffPolicy,
    ChaosProxy,
    LinkProfile,
    LiveScenario,
    LiveStatus,
    ReceiverEndpoint,
    TransmitterEndpoint,
    run_live_scenario,
)
from repro.resilience.faultplan import CrashAt, DropWindow, FaultPlan

_FAST_POLL = BackoffPolicy(base=0.002, factor=2.0, cap=0.05, jitter=0.25)


def test_clean_live_run_delivers_everything():
    report = run_live_scenario(LiveScenario(
        messages=10, seed=1, poll=_FAST_POLL,
        budget=20.0, give_up_idle=3.0, label="clean",
    ))
    assert report.ok
    assert report.oks == report.deliveries == 10
    assert report.crashes_t == report.crashes_r == 0
    assert report.proxy.dropped == report.proxy.duplicated == 0


def test_acceptance_chaos_scenario():
    report = run_live_scenario(LiveScenario(
        messages=50,
        seed=42,
        profile=LinkProfile(
            drop=0.08, duplicate=0.05, reorder=0.05, delay=0.001, jitter=0.002
        ),
        plan=FaultPlan.of(
            CrashAt(step=30, station="T"), CrashAt(step=80, station="R")
        ),
        poll=_FAST_POLL,
        budget=45.0,
        give_up_idle=6.0,
        label="acceptance-chaos",
    ))
    assert report.status is LiveStatus.DELIVERED, report.reason
    assert report.oks == 50
    assert report.crashes_t == 1 and report.crashes_r == 1
    # Every Section 2.6 condition satisfied on the live trace.
    assert report.safety.passed, report.safety
    assert report.liveness_passed
    assert report.ok
    # The chaos actually happened (sanity against a silently clean link).
    assert report.proxy.dropped > 0
    assert report.proxy.duplicated > 0
    assert report.wall_seconds < 45.0


def test_give_up_is_explicit_and_bounded():
    # A fully black-holed link must surface UNRECONCILABLE well inside the
    # budget — graceful degradation, not a hang.
    report = run_live_scenario(LiveScenario(
        messages=5, seed=3,
        profile=LinkProfile(drop=1.0),
        poll=_FAST_POLL,
        budget=15.0, give_up_idle=0.6, label="black-hole",
    ))
    assert report.status is LiveStatus.UNRECONCILABLE
    assert "no progress" in report.reason
    assert report.wall_seconds < 10.0
    assert report.oks == 0
    # Nothing was delivered, so safety is vacuously intact and the
    # forensic tail is preserved for the post-mortem.
    assert report.safety.passed
    assert not report.liveness_passed
    assert report.forensic_tail


def test_poll_count_give_up_policy():
    report = run_live_scenario(LiveScenario(
        messages=5, seed=3,
        profile=LinkProfile(drop=1.0),
        poll=_FAST_POLL,
        budget=15.0, give_up_idle=5.0, give_up_polls=12, label="poll-bound",
    ))
    assert report.status is LiveStatus.UNRECONCILABLE
    assert "polls without progress" in report.reason
    assert report.wall_seconds < 10.0


def test_scripted_partition_heals_and_delivers():
    # DropWindow(channel=None) is a full partition in wire terms; polls
    # keep the turn clock advancing, so the window closes and the
    # handshake resumes where the automata left off.
    report = run_live_scenario(LiveScenario(
        messages=6, seed=4,
        plan=FaultPlan.of(DropWindow(start=3, end=25, channel=None)),
        poll=_FAST_POLL,
        budget=20.0, give_up_idle=4.0, label="partition-heal",
    ))
    assert report.status is LiveStatus.DELIVERED, report.reason
    assert report.safety.passed
    assert report.proxy.dropped >= 20  # the window really dropped traffic


def test_scenario_validation():
    with pytest.raises(ValueError):
        LiveScenario(messages=0)
    with pytest.raises(ValueError):
        LiveScenario(budget=0.0)
    with pytest.raises(ValueError):
        LiveScenario(give_up_polls=-1)


def test_malformed_datagrams_are_counted_not_fatal():
    # A live port sees whatever bytes arrive.  Spray garbage at both the
    # proxy (foreign identifier -> rejected by the peek) and the receiver
    # directly (valid identifier, rotten body -> rejected by the decode)
    # while a real workload runs; everything still delivers.
    async def _run():
        log = LiveEventLog()
        link = make_data_link(epsilon=2.0 ** -16, seed=21)
        root = RandomSource(21)
        done = asyncio.Event()

        proxy = ChaosProxy(rng=root.fork("chaos"))
        await proxy.start()
        tm = TransmitterEndpoint(
            link.transmitter, log, proxy.t_facing_address,
            [b"m-%d" % i for i in range(5)],
            on_done=done.set,
        )
        rm = ReceiverEndpoint(
            link.receiver, log, proxy.r_facing_address,
            AdaptiveBackoff(_FAST_POLL, root.fork("poll")),
        )
        try:
            await tm.start()
            await rm.start()
            proxy.connect(tm.local_address, rm.local_address)

            garbage = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                for _ in range(20):
                    # Foreign identifier: the proxy's peek rejects it.
                    garbage.sendto(b"\x00not-a-packet", proxy.t_facing_address)
                    # Valid data-packet identifier, truncated body: forwarded
                    # by the proxy (peek passes), rejected by the RM's codec.
                    garbage.sendto(b"\xd1\xff\xff", proxy.t_facing_address)
                    # Straight at the receiver, bypassing the proxy.
                    garbage.sendto(b"\xa5junk", rm.local_address)
                await asyncio.wait_for(done.wait(), timeout=15.0)
            finally:
                garbage.close()
        finally:
            rm.close()
            tm.close()
            proxy.close()
            await asyncio.sleep(0)
        return proxy.stats, tm, rm, log

    stats, tm, rm, log = asyncio.run(_run())
    assert tm.oks == 5
    assert stats.foreign >= 20  # \x00-headed garbage died at the proxy
    assert rm.malformed >= 20  # the rest died at the receiver's codec
    assert log.safety_report().passed


# -- self-stabilizing mode (docs/PROTOCOL.md §13) -----------------------------------


def test_corrupted_scenario_reports_stabilized():
    from repro.resilience.faultplan import CorruptAt

    report = run_live_scenario(LiveScenario(
        messages=25,
        seed=7,
        profile=LinkProfile(drop=0.05, duplicate=0.05, delay=0.001),
        plan=FaultPlan.of(
            CorruptAt(step=12, station="T", seed=9001),
            CorruptAt(step=30, station="R", seed=9002),
        ),
        poll=_FAST_POLL,
        budget=30.0,
        give_up_idle=6.0,
        stabilization_window=8,
        label="live-corrupt",
    ))
    assert report.status is LiveStatus.STABILIZED
    assert report.completed
    assert report.ok
    assert report.corruptions_t == 1
    assert report.corruptions_r == 1
    stabilization = report.stabilization
    assert stabilization is not None
    assert stabilization.stabilized
    assert stabilization.corruptions == stabilization.converged == 2
    assert sorted(r.seed for r in stabilization.records) == [9001, 9002]
    assert "stabilization" in report.render()


def test_corrupted_laned_scenario_stabilizes_per_lane():
    from repro.resilience.faultplan import CorruptAt

    report = run_live_scenario(LiveScenario(
        messages=24,
        seed=19,
        lanes=3,
        profile=LinkProfile(drop=0.05, delay=0.001),
        plan=FaultPlan.of(
            CorruptAt(step=10, station="T", seed=401),
            CorruptAt(step=25, station="R", seed=402),
        ),
        poll=_FAST_POLL,
        budget=30.0,
        give_up_idle=6.0,
        stabilization_window=6,
        label="live-corrupt-lanes",
    ))
    assert report.status is LiveStatus.STABILIZED
    assert report.ok
    assert report.corruptions_t + report.corruptions_r == 2
    assert report.stabilization is not None
    assert report.stabilization.stabilized


def test_live_wipe_mode_rides_the_crash_path():
    from repro.resilience.faultplan import CorruptAt

    report = run_live_scenario(LiveScenario(
        messages=15,
        seed=23,
        plan=FaultPlan.of(CorruptAt(step=10, station="T", mode="wipe")),
        poll=_FAST_POLL,
        budget=30.0,
        give_up_idle=6.0,
        label="live-wipe",
    ))
    # A wipe is a crash: no corruption counters, no stabilization report,
    # plain DELIVERED, and the crash tally shows the amnesia restart.
    assert report.status is LiveStatus.DELIVERED
    assert report.ok
    assert report.crashes_t == 1
    assert report.corruptions_t == report.corruptions_r == 0
    assert report.stabilization is None
