"""The batched datagram layer: drain/flush mechanics, parity, hygiene.

Three layers of pinning for docs/PROTOCOL.md §15:

* **unit** — :class:`BatchedDatagramIO` against real loopback sockets,
  on both the recvmmsg/sendmmsg fast path and the portable fallback:
  multi-chunk drains, zero-copy forwards across a flush group, short
  datagrams, connected-peer mode, and buffer-pool accounting;
* **differential** — the same pinned-seed live scenarios run over the
  classic and batched wires must produce identical verdicts and an
  identical delivered byte stream (the wire moves datagrams; it must
  never move the protocol), including scripted crash turns — the chaos
  proxy's turn clock counts observed datagrams one at a time regardless
  of how the wire batches them;
* **hygiene** — every pooled send buffer is back in the pool when a run
  ends, including runs where both stations cold-restart mid-flight with
  total amnesia (in-flight buffers must not leak across the restart).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.live import BackoffPolicy, LinkProfile, LiveScenario, LiveStatus
from repro.live.pump import run_wire_pump
from repro.live.scenario import run_live_scenario
from repro.live.wire import (
    BatchedDatagramIO,
    BufferPool,
    link_flush_group,
    mmsg_available,
)
from repro.resilience.faultplan import CrashAt, FaultPlan

_FAST_POLL = BackoffPolicy(base=0.002, factor=2.0, cap=0.05, jitter=0.25)

# Every unit test runs on whatever fast path the host has AND the
# portable fallback, so CI on any platform exercises both code paths.
_MODES = [pytest.param(False, id="fallback")]
if mmsg_available():
    _MODES.append(pytest.param(True, id="mmsg"))


async def _idle(seconds: float = 0.05) -> None:
    await asyncio.sleep(seconds)


# -- unit: drain/flush mechanics -------------------------------------------------


@pytest.mark.parametrize("use_mmsg", _MODES)
def test_multi_chunk_drain_delivers_everything_in_order(use_mmsg):
    # More datagrams than one BATCH, with sizes from 1 byte to well past
    # a chunk's typical frame — the drain loop must hand every one to the
    # callback, complete and in kernel-queue order, across chunks.
    count = 3 * 32 + 7
    payloads = [bytes([i & 0xFF]) * (1 + (i * 37) % 900) for i in range(count)]

    async def scenario():
        got = []
        rx = BatchedDatagramIO(lambda view: got.append(bytes(view)),
                               use_mmsg=use_mmsg)
        tx = BatchedDatagramIO(lambda view: None, use_mmsg=use_mmsg)
        await rx.open()
        await tx.open()
        dest = rx.local_address
        for payload in payloads:
            tx.send(payload, dest)
        for _ in range(40):
            await _idle(0.01)
            if len(got) == count:
                break
        tx.close()
        rx.close()
        return got, rx.stats, tx.stats

    got, rx_stats, tx_stats = asyncio.run(scenario())
    assert got == payloads  # loopback UDP preserves order; nothing lost
    assert rx_stats.datagrams_received == count
    assert tx_stats.datagrams_sent == count
    assert rx_stats.mmsg is (use_mmsg and mmsg_available())
    if use_mmsg:
        # The point of the batch layer: far fewer wakeups than datagrams.
        assert rx_stats.recv_batches < count


@pytest.mark.parametrize("use_mmsg", _MODES)
def test_forwarded_views_cross_the_flush_group_intact(use_mmsg):
    # The proxy pattern: a datagram drained on one socket is forwarded
    # out a *different* socket as the receive-buffer view itself (zero
    # copy).  The group flush must consume it before the buffer is
    # reused, so the far end sees the exact bytes.
    count = 80
    payloads = [b"%03d" % i + b"x" * (i % 50) for i in range(count)]

    async def scenario():
        got = []
        sink = BatchedDatagramIO(lambda view: got.append(bytes(view)),
                                 use_mmsg=use_mmsg)
        out = BatchedDatagramIO(lambda view: None, use_mmsg=use_mmsg)
        relay = BatchedDatagramIO(
            lambda view: out.send(view, sink_addr), use_mmsg=use_mmsg)
        tx = BatchedDatagramIO(lambda view: None, use_mmsg=use_mmsg)
        for io in (sink, out, relay, tx):
            await io.open()
        link_flush_group([sink, out, relay, tx])
        sink_addr = sink.local_address
        for payload in payloads:
            tx.send(payload, relay.local_address)
        for _ in range(40):
            await _idle(0.01)
            if len(got) == count:
                break
        for io in (sink, out, relay, tx):
            io.close()
        return got

    got = asyncio.run(scenario())
    assert sorted(got) == sorted(payloads)
    assert got == payloads  # and loopback order survived the forward


@pytest.mark.parametrize("use_mmsg", _MODES)
def test_pooled_sends_return_every_buffer(use_mmsg):
    count = 100

    async def scenario():
        pool = BufferPool()
        got = []
        rx = BatchedDatagramIO(lambda view: got.append(bytes(view)),
                               pool=pool, use_mmsg=use_mmsg)
        tx = BatchedDatagramIO(lambda view: None, pool=pool,
                               use_mmsg=use_mmsg)
        await rx.open()
        await tx.open()
        dest = rx.local_address
        for i in range(count):
            buf = pool.acquire(64)
            buf[0:8] = i.to_bytes(8, "big")
            tx.send_pooled(buf, 8, dest)
        for _ in range(40):
            await _idle(0.01)
            if len(got) == count:
                break
        tx.close()
        rx.close()
        return got, pool

    got, pool = asyncio.run(scenario())
    assert [int.from_bytes(g, "big") for g in got] == list(range(count))
    assert pool.outstanding == 0  # every buffer came home
    assert pool.allocated <= pool.max_free + pool.high_water


@pytest.mark.parametrize("use_mmsg", _MODES)
def test_connected_mode_pins_the_peer(use_mmsg):
    async def scenario():
        got = []
        rx = BatchedDatagramIO(lambda view: got.append(bytes(view)),
                               use_mmsg=use_mmsg)
        tx = BatchedDatagramIO(lambda view: None, use_mmsg=use_mmsg)
        await rx.open()
        await tx.open()
        dest = rx.local_address
        tx.connect(dest)
        for i in range(50):
            tx.send(b"c%02d" % i, dest)
        with pytest.raises(ValueError):
            tx.send(b"stray", ("127.0.0.1", 1))
        pool_buf = tx.pool.acquire(8)
        with pytest.raises(ValueError):
            tx.send_pooled(pool_buf, 4, ("127.0.0.1", 1))
        outstanding = tx.pool.outstanding  # rejected buffer was released
        for _ in range(40):
            await _idle(0.01)
            if len(got) == 50:
                break
        tx.close()
        rx.close()
        return got, outstanding

    got, outstanding = asyncio.run(scenario())
    assert got == [b"c%02d" % i for i in range(50)]
    assert outstanding == 0


def test_use_mmsg_flag_is_explicit():
    io = BatchedDatagramIO(lambda view: None, use_mmsg=False)
    assert io.stats.mmsg is False
    if not mmsg_available():
        with pytest.raises(OSError):
            BatchedDatagramIO(lambda view: None, use_mmsg=True)


def test_buffer_pool_accounting():
    pool = BufferPool(default_size=32, max_free=2)
    a = pool.acquire()
    b = pool.acquire(100)
    assert len(a) == 32 and len(b) == 100
    assert pool.outstanding == 2 and pool.high_water == 2
    pool.release(a)
    pool.release(b)
    assert pool.outstanding == 0 and pool.free_count == 2
    c = pool.acquire()
    pool.release(c)
    assert pool.allocated == 2  # recycled, not regrown
    # The free list is bounded: a burst beyond max_free is dropped.
    burst = [pool.acquire() for _ in range(5)]
    for buf in burst:
        pool.release(buf)
    assert pool.free_count == 2
    # A too-small recycled buffer is replaced, never handed out short.
    big = pool.acquire(4096)
    assert len(big) >= 4096


# -- differential: the wire must never move the protocol -------------------------


def _scenario(wire: str, **overrides) -> LiveScenario:
    base = dict(
        messages=16,
        seed=2026,
        lanes=4,
        poll=_FAST_POLL,
        budget=30.0,
        give_up_idle=5.0,
        wire=wire,
        label=f"wire-diff-{wire}",
    )
    base.update(overrides)
    return LiveScenario(**base)


def _verdict_fingerprint(report):
    """Everything the wire layer must not change, in one comparable value."""
    return (
        report.status,
        report.oks,
        report.deliveries,
        tuple((r.condition, r.passed) for r in report.safety.all_reports),
        report.liveness_passed,
        report.in_order_delivered,
        tuple(report.delivered_stream),
    )


def test_clean_run_verdicts_are_wire_independent():
    classic = run_live_scenario(_scenario("classic"))
    batched = run_live_scenario(_scenario("batched"))
    assert classic.ok and batched.ok
    assert _verdict_fingerprint(classic) == _verdict_fingerprint(batched)
    assert batched.pool_outstanding == 0


def test_chaos_run_verdicts_are_wire_independent():
    # Stochastic faults plus scripted crashes: trajectories may differ in
    # timing, but both wires must deliver the whole workload with clean
    # Section 2.6 verdicts and the identical reassembled byte stream —
    # and the scripted turn clock must fire the crashes on both wires
    # (the proxy counts datagrams one at a time even when drained in
    # batches).
    chaos = dict(
        profile=LinkProfile(drop=0.05, duplicate=0.04, reorder=0.04,
                            delay=0.001, jitter=0.001),
        plan=FaultPlan.of(CrashAt(step=20, station="T"),
                          CrashAt(step=50, station="R")),
        budget=45.0,
        messages=24,
    )
    classic = run_live_scenario(_scenario("classic", **chaos))
    batched = run_live_scenario(_scenario("batched", **chaos))
    for report in (classic, batched):
        assert report.status is LiveStatus.DELIVERED, report.reason
        assert report.safety.passed
        assert report.liveness_passed
        assert report.crashes_t == 1 and report.crashes_r == 1
    assert classic.delivered_stream == batched.delivered_stream
    assert classic.oks == batched.oks == 24
    assert batched.pool_outstanding == 0
    if mmsg_available():
        assert batched.wire_stats is not None and batched.wire_stats.mmsg


def test_crash_amnesia_does_not_leak_pool_buffers():
    # Both stations cold-restart with total amnesia mid-run; whatever
    # pooled send buffers were in flight at the crash must still come
    # home by teardown.  This is the §15 hygiene invariant.
    report = run_live_scenario(_scenario(
        "batched",
        messages=20,
        plan=FaultPlan.of(CrashAt(step=15, station="T"),
                          CrashAt(step=40, station="R")),
        budget=45.0,
    ))
    assert report.ok, report.reason
    assert report.crashes_t == 1 and report.crashes_r == 1
    assert report.pool_outstanding == 0
    assert report.pool_high_water >= 1  # the pool actually carried traffic


# -- the pump (bench leg) --------------------------------------------------------


@pytest.mark.parametrize("wire", ["classic", "batched"])
def test_wire_pump_delivers_full_workload(wire):
    report = run_wire_pump(wire=wire, messages=600, lanes=4, window=8,
                           timeout=30.0)
    assert report.messages == 600
    assert report.messages_per_second > 0
    if wire == "batched":
        assert report.pool_outstanding == 0
        stats = report.wire_stats
        # Every message crosses four sockets: sender→relay, relay→receiver,
        # and the poll back through both — exact accounting, no loss.
        assert stats.datagrams_received == 4 * 600
        assert stats.datagrams_sent == 4 * 600
        assert stats.send_errors == 0
        assert stats.mmsg is mmsg_available()
