"""Adaptive poll backoff: jitter bounds, cap, reset, and determinism."""

from __future__ import annotations

import pytest

from repro.core.random_source import RandomSource
from repro.live.backoff import AdaptiveBackoff, BackoffPolicy


def test_policy_validation():
    with pytest.raises(ValueError):
        BackoffPolicy(base=0.0)
    with pytest.raises(ValueError):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ValueError):
        BackoffPolicy(base=0.1, cap=0.05)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=-0.1)


def test_jitter_free_schedule_is_exact_doubling():
    policy = BackoffPolicy(base=0.01, factor=2.0, cap=1.0, jitter=0.0)
    backoff = AdaptiveBackoff(policy, RandomSource(0))
    assert [backoff.next_delay() for _ in range(4)] == [0.01, 0.02, 0.04, 0.08]


def test_every_delay_stays_inside_jitter_bounds():
    policy = BackoffPolicy(base=0.01, factor=2.0, cap=0.25, jitter=0.5)
    backoff = AdaptiveBackoff(policy, RandomSource(99))
    expected_raw = [min(policy.cap, policy.base * policy.factor ** n)
                    for n in range(40)]
    for raw in expected_raw:
        delay = backoff.next_delay()
        assert raw * (1.0 - policy.jitter) <= delay
        assert delay < raw * (1.0 + policy.jitter)


def test_cap_bounds_the_unjittered_delay():
    policy = BackoffPolicy(base=0.01, factor=2.0, cap=0.05, jitter=0.0)
    backoff = AdaptiveBackoff(policy, RandomSource(0))
    delays = [backoff.next_delay() for _ in range(10)]
    assert max(delays) == policy.cap
    assert delays[-1] == policy.cap  # stays pinned once reached


def test_progress_resets_the_schedule():
    policy = BackoffPolicy(base=0.01, factor=2.0, cap=1.0, jitter=0.0)
    backoff = AdaptiveBackoff(policy, RandomSource(0))
    for _ in range(5):
        backoff.next_delay()
    assert backoff.attempts_without_progress == 5
    backoff.note_progress()
    assert backoff.attempts_without_progress == 0
    assert backoff.next_delay() == policy.base


def test_crash_reset_matches_progress_reset():
    policy = BackoffPolicy(jitter=0.0)
    backoff = AdaptiveBackoff(policy, RandomSource(0))
    for _ in range(3):
        backoff.next_delay()
    backoff.reset()
    assert backoff.attempts_without_progress == 0
    assert backoff.next_delay() == policy.base


def test_schedule_is_deterministic_for_a_seed():
    policy = BackoffPolicy(jitter=0.5)

    def tape(seed: int, progress_at: int = 4) -> list:
        backoff = AdaptiveBackoff(policy, RandomSource(seed))
        out = []
        for n in range(12):
            if n == progress_at:
                backoff.note_progress()
            out.append(backoff.next_delay())
        return out

    assert tape(7) == tape(7)
    assert tape(7) != tape(8)


def test_attempt_counter_tracks_handouts():
    backoff = AdaptiveBackoff(BackoffPolicy(), RandomSource(1))
    assert backoff.attempts_without_progress == 0
    backoff.next_delay()
    backoff.next_delay()
    assert backoff.attempts_without_progress == 2
