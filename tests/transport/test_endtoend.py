"""End-to-end transport tests: the data link over relayed networks."""

from __future__ import annotations

import pytest

from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload
from repro.transport.endtoend import NetworkRelay
from repro.transport.network import line_network, mesh_network, ring_network
from repro.transport.routing import FloodingRelay, PathRelay


def run(net, relay, messages=8, seed=0, max_steps=60_000):
    adversary = NetworkRelay(net, relay)
    link = make_data_link(epsilon=2.0 ** -16, seed=seed)
    sim = Simulator(
        link, adversary, SequentialWorkload(messages), seed=seed, max_steps=max_steps
    )
    return sim.run(), adversary


class TestConstruction:
    def test_relay_must_match_network(self):
        net_a, net_b = line_network(2), line_network(2)
        with pytest.raises(ValueError):
            NetworkRelay(net_a, FloodingRelay(net_b))


class TestFloodingTransport:
    def test_stable_mesh_completes(self):
        net = mesh_network(3)
        result, __ = run(net, FloodingRelay(net))
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_flooding_duplicates_absorbed_by_data_link(self):
        net = ring_network(6)  # two routes => duplicated deliveries
        result, adversary = run(net, FloodingRelay(net))
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed
        # More copies delivered than distinct packets injected.
        assert adversary.delivered_copies > result.metrics.packets_sent * 0.9

    def test_failing_mesh_still_safe(self):
        net = mesh_network(4, fail_rate=0.03, repair_rate=0.3)
        result, __ = run(net, FloodingRelay(net), seed=4)
        assert result.completed
        assert check_all_safety(result.trace).passed


class TestPathTransport:
    def test_stable_ring_completes(self):
        net = ring_network(8)
        result, __ = run(net, PathRelay(net))
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_failing_ring_repairs_and_completes(self):
        net = ring_network(8, fail_rate=0.04, repair_rate=0.4)
        relay = PathRelay(net)
        result, __ = run(net, relay, seed=7)
        assert result.completed
        assert relay.path_repairs > 1  # it actually exercised repair
        assert check_all_safety(result.trace).passed

    def test_path_relay_cheaper_than_flooding(self):
        net_flood = mesh_network(4)
        flood = FloodingRelay(net_flood)
        run(net_flood, flood, messages=6, seed=9)

        net_path = mesh_network(4)
        path = PathRelay(net_path)
        run(net_path, path, messages=6, seed=9)

        # Section 1's efficiency claim: path maintenance beats flooding's
        # Theta(|E|)-per-packet cost by a wide margin.
        assert path.transmissions * 3 < flood.transmissions


class TestPartitionRecovery:
    def test_temporary_partition_heals(self):
        # Cut the only link of a line mid-run; the fairness of the repair
        # process (repair_rate > 0) restores progress.
        net = line_network(1, fail_rate=0.1, repair_rate=0.5)
        result, __ = run(net, PathRelay(net), messages=5, seed=11)
        assert result.completed
        assert check_all_safety(result.trace).passed


class TestLossAccounting:
    def _drive(self, net, packets=5, turns=30):
        from repro.adversary.base import Deliver, Pass
        from repro.channel.channel import PacketInfo
        from repro.core.events import ChannelId
        from repro.core.random_source import RandomSource

        adversary = NetworkRelay(net, FloodingRelay(net))
        adversary.bind(RandomSource(5))
        for pid in range(packets):
            adversary.on_new_pkt(
                PacketInfo(channel=ChannelId.T_TO_R, packet_id=pid, length_bits=32)
            )
        delivered = sum(
            isinstance(adversary.next_move(), Deliver) for __ in range(turns)
        )
        return adversary, delivered

    def test_partitioned_line_counts_every_packet_lost(self):
        # The only link is down and never repairs: no route, total loss.
        net = line_network(1, repair_rate=0.0)
        net.configure_link(0, 1, up=False)
        adversary, delivered = self._drive(net)
        assert adversary.lost_packets == 5
        assert adversary.delivered_copies == 0
        assert delivered == 0

    def test_healthy_line_loses_nothing(self):
        # A single up route: every packet arrives exactly once.
        net = line_network(2)
        adversary, delivered = self._drive(net, packets=3)
        assert adversary.lost_packets == 0
        assert adversary.delivered_copies == 3
        assert delivered == 3

    def test_partial_partition_is_not_a_loss(self):
        # Cutting one of the ring's two disjoint routes must not count as
        # loss: flooding still reaches the destination the other way.
        net = ring_network(4, repair_rate=0.0)
        net.configure_link(0, 1, up=False)
        adversary, delivered = self._drive(net, packets=4)
        assert adversary.lost_packets == 0
        assert adversary.delivered_copies == delivered == 4
