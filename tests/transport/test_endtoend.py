"""End-to-end transport tests: the data link over relayed networks."""

from __future__ import annotations

import pytest

from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload
from repro.transport.endtoend import NetworkRelay
from repro.transport.network import line_network, mesh_network, ring_network
from repro.transport.routing import FloodingRelay, PathRelay


def run(net, relay, messages=8, seed=0, max_steps=60_000):
    adversary = NetworkRelay(net, relay)
    link = make_data_link(epsilon=2.0 ** -16, seed=seed)
    sim = Simulator(
        link, adversary, SequentialWorkload(messages), seed=seed, max_steps=max_steps
    )
    return sim.run(), adversary


class TestConstruction:
    def test_relay_must_match_network(self):
        net_a, net_b = line_network(2), line_network(2)
        with pytest.raises(ValueError):
            NetworkRelay(net_a, FloodingRelay(net_b))


class TestFloodingTransport:
    def test_stable_mesh_completes(self):
        net = mesh_network(3)
        result, __ = run(net, FloodingRelay(net))
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_flooding_duplicates_absorbed_by_data_link(self):
        net = ring_network(6)  # two routes => duplicated deliveries
        result, adversary = run(net, FloodingRelay(net))
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed
        # More copies delivered than distinct packets injected.
        assert adversary.delivered_copies > result.metrics.packets_sent * 0.9

    def test_failing_mesh_still_safe(self):
        net = mesh_network(4, fail_rate=0.03, repair_rate=0.3)
        result, __ = run(net, FloodingRelay(net), seed=4)
        assert result.completed
        assert check_all_safety(result.trace).passed


class TestPathTransport:
    def test_stable_ring_completes(self):
        net = ring_network(8)
        result, __ = run(net, PathRelay(net))
        assert result.all_messages_ok
        assert check_all_safety(result.trace).passed

    def test_failing_ring_repairs_and_completes(self):
        net = ring_network(8, fail_rate=0.04, repair_rate=0.4)
        relay = PathRelay(net)
        result, __ = run(net, relay, seed=7)
        assert result.completed
        assert relay.path_repairs > 1  # it actually exercised repair
        assert check_all_safety(result.trace).passed

    def test_path_relay_cheaper_than_flooding(self):
        net_flood = mesh_network(4)
        flood = FloodingRelay(net_flood)
        run(net_flood, flood, messages=6, seed=9)

        net_path = mesh_network(4)
        path = PathRelay(net_path)
        run(net_path, path, messages=6, seed=9)

        # Section 1's efficiency claim: path maintenance beats flooding's
        # Theta(|E|)-per-packet cost by a wide margin.
        assert path.transmissions * 3 < flood.transmissions


class TestPartitionRecovery:
    def test_temporary_partition_heals(self):
        # Cut the only link of a line mid-run; the fairness of the repair
        # process (repair_rate > 0) restores progress.
        net = line_network(1, fail_rate=0.1, repair_rate=0.5)
        result, __ = run(net, PathRelay(net), messages=5, seed=11)
        assert result.completed
        assert check_all_safety(result.trace).passed


class TestLossAccounting:
    def _drive(self, net, packets=5, turns=30):
        from repro.adversary.base import Deliver, Pass
        from repro.channel.channel import PacketInfo
        from repro.core.events import ChannelId
        from repro.core.random_source import RandomSource

        adversary = NetworkRelay(net, FloodingRelay(net))
        adversary.bind(RandomSource(5))
        for pid in range(packets):
            adversary.on_new_pkt(
                PacketInfo(channel=ChannelId.T_TO_R, packet_id=pid, length_bits=32)
            )
        delivered = sum(
            isinstance(adversary.next_move(), Deliver) for __ in range(turns)
        )
        return adversary, delivered

    def test_partitioned_line_counts_every_packet_lost(self):
        # The only link is down and never repairs: no route, total loss.
        net = line_network(1, repair_rate=0.0)
        net.configure_link(0, 1, up=False)
        adversary, delivered = self._drive(net)
        assert adversary.lost_packets == 5
        assert adversary.delivered_copies == 0
        assert delivered == 0

    def test_healthy_line_loses_nothing(self):
        # A single up route: every packet arrives exactly once.
        net = line_network(2)
        adversary, delivered = self._drive(net, packets=3)
        assert adversary.lost_packets == 0
        assert adversary.delivered_copies == 3
        assert delivered == 3

    def test_partial_partition_is_not_a_loss(self):
        # Cutting one of the ring's two disjoint routes must not count as
        # loss: flooding still reaches the destination the other way.
        net = ring_network(4, repair_rate=0.0)
        net.configure_link(0, 1, up=False)
        adversary, delivered = self._drive(net, packets=4)
        assert adversary.lost_packets == 0
        assert adversary.delivered_copies == delivered == 4


# -- the relay fabric (PR 9 tentpole) ----------------------------------------------


from repro.checkers.endtoend import EndToEndMonitor
from repro.core.events import make_receive_msg, make_send_msg, OK
from repro.core.exceptions import ConfigurationError
from repro.resilience.faultplan import (
    CrashAt,
    FaultPlan,
    LinkDownWindow,
    RelayCrashAt,
    RouteFlapAt,
)
from repro.transport.fabric import FabricRun, FabricSpec

# The acceptance scenario: one relay crash-amnesia plus one partition/heal
# window longer than the RTO, timed mid-stream so both faults bite (the
# partition forces end-to-end retransmissions that race their own delayed
# acknowledgements).
ACCEPTANCE_EVENTS = (
    RelayCrashAt(step=40, node=2),
    LinkDownWindow(start=48, end=130, link=(1, 2)),
)
ACCEPTANCE_SEED = 11


class TestEndToEndMonitor:
    def _feed(self, monitor, events):
        for index, event in enumerate(events):
            monitor.observe(index, event)

    def test_clean_pipelined_stream(self):
        monitor = EndToEndMonitor()
        sends = [make_send_msg(b"m%d" % i) for i in range(3)]
        self._feed(monitor, [
            sends[0], sends[1], sends[2],
            make_receive_msg(b"m0"), OK,
            make_receive_msg(b"m1"), OK,
            make_receive_msg(b"m2"), OK,
        ])
        assert monitor.safety_report().passed
        assert monitor.verdict(run_completed=True) == "CLEAN"

    def test_replay_after_cumulative_ack_flags(self):
        # Under pipelining the k-th OK resolves the k-th submission; a
        # delivery of an already-acknowledged message is a replay.
        monitor = EndToEndMonitor()
        self._feed(monitor, [
            make_send_msg(b"m0"),
            make_receive_msg(b"m0"), OK,
            make_receive_msg(b"m0"),  # ghost copy after the ack
        ])
        report = monitor.safety_report()
        assert report.no_replay.failure_count == 1
        assert report.no_duplication.failure_count == 1
        assert monitor.verdict() == "VIOLATED"

    def test_out_of_order_delivery_flags_order(self):
        monitor = EndToEndMonitor()
        self._feed(monitor, [
            make_send_msg(b"m0"), make_send_msg(b"m1"),
            make_receive_msg(b"m1"),
        ])
        assert monitor.safety_report().order.failure_count == 1

    def test_pipelined_window_is_not_a_false_positive(self):
        # The per-link no-replay monitor would mis-attribute this shape
        # (ack for m0 lands while m1..m3 are pending); the end-to-end
        # monitor must not.
        monitor = EndToEndMonitor()
        sends = [make_send_msg(b"m%d" % i) for i in range(4)]
        self._feed(monitor, [
            *sends,
            make_receive_msg(b"m0"), OK,
            make_receive_msg(b"m1"),
            make_receive_msg(b"m2"),
            make_receive_msg(b"m3"), OK, OK, OK,
        ])
        assert monitor.safety_report().passed


class TestRelayFabric:
    def test_clean_line_delivers_and_verdicts_clean(self):
        run = FabricRun(FabricSpec(topology="line", size=4, messages=10), (), seed=7)
        outcome = run.run()
        assert outcome.result.completed
        assert run.verdict() == "CLEAN"
        assert outcome.metrics.messages_ok == 10
        assert outcome.metrics.messages_delivered == 10

    def test_acceptance_crash_and_partition_stay_clean(self):
        # The PR-9 acceptance criterion: a pinned-seed 4-hop line delivers
        # 50 messages across one relay crash-amnesia and one healed
        # partition with every Section 2.6 condition holding end to end.
        spec = FabricSpec(topology="line", size=4, messages=50)
        run = FabricRun(spec, ACCEPTANCE_EVENTS, seed=ACCEPTANCE_SEED)
        outcome = run.run()
        assert outcome.result.completed
        assert run.verdict() == "CLEAN"
        assert outcome.safety.passed and outcome.liveness_passed
        assert run.relay_crashes == 1
        assert outcome.metrics.crashes_t > 0  # amnesia hit adjacent stations
        assert outcome.metrics.crashes_r > 0
        assert outcome.metrics.messages_ok == 50

    def test_healed_partition_differential(self):
        # Differential: the same pinned seed with and without the
        # partition/heal window must both converge to CLEAN — the window
        # only costs time (and dedup work), never correctness.
        spec = FabricSpec(topology="line", size=4, messages=50)
        quiet = FabricRun(spec, (), seed=ACCEPTANCE_SEED)
        faulted = FabricRun(spec, ACCEPTANCE_EVENTS, seed=ACCEPTANCE_SEED)
        quiet_outcome, faulted_outcome = quiet.run(), faulted.run()
        assert quiet.verdict() == faulted.verdict() == "CLEAN"
        assert quiet_outcome.result.completed and faulted_outcome.result.completed
        assert faulted.ticks > quiet.ticks  # the faults did bite
        assert faulted.dup_drops > 0  # retransmissions raced their acks

    def test_exactly_once_ablation_violates_no_duplication(self):
        # Same seed, same faults: only the destination's dedup layer
        # differs.  Without it the retransmission races reach the
        # application and the end-to-end no-duplication condition fails.
        clean_spec = FabricSpec(topology="line", size=4, messages=50)
        ablated_spec = FabricSpec(
            topology="line", size=4, messages=50, exactly_once=False
        )
        clean = FabricRun(clean_spec, ACCEPTANCE_EVENTS, seed=ACCEPTANCE_SEED)
        ablated = FabricRun(ablated_spec, ACCEPTANCE_EVENTS, seed=ACCEPTANCE_SEED)
        clean_outcome, ablated_outcome = clean.run(), ablated.run()
        assert clean.verdict() == "CLEAN"
        assert ablated.verdict() == "VIOLATED"
        assert clean_outcome.safety.no_duplication.failure_count == 0
        assert ablated_outcome.safety.no_duplication.failure_count > 0

    def test_ring_reroutes_around_partition(self):
        spec = FabricSpec(topology="ring", size=6, messages=30)
        events = (LinkDownWindow(start=20, end=200, link=(1, 2)),)
        run = FabricRun(spec, events, seed=3)
        outcome = run.run()
        assert outcome.result.completed
        assert run.verdict() == "CLEAN"
        assert run.reroutes >= 1

    def test_mesh_tuple_nodes_route_and_deliver(self):
        spec = FabricSpec(topology="mesh", size=3, messages=12)
        events = (LinkDownWindow(start=10, end=80, link=((0, 0), (0, 1))),)
        run = FabricRun(spec, events, seed=3)
        assert run.run().result.completed
        assert run.verdict() == "CLEAN"

    def test_route_flap_forces_recompute(self):
        spec = FabricSpec(topology="line", size=4, messages=10)
        run = FabricRun(spec, (RouteFlapAt(step=5),), seed=7)
        assert run.run().result.completed
        assert run.reroutes >= 1

    def test_fabric_rejects_bad_plans(self):
        spec = FabricSpec(topology="line", size=4)
        bad_plans = [
            (RelayCrashAt(step=1, node=0),),     # source is not a relay
            (RelayCrashAt(step=1, node=9),),     # unknown node
            (LinkDownWindow(start=1, end=2, link=(0, 2)),),  # not an edge
            (CrashAt(step=1, station="T"),),     # single-link event
        ]
        for events in bad_plans:
            with pytest.raises(ConfigurationError):
                FabricRun(spec, events, seed=0)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FabricSpec(topology="torus")
        with pytest.raises(ConfigurationError):
            FabricSpec(window=0)

    def test_run_supervised_interprets_plan_projection(self):
        spec = FabricSpec(topology="line", size=4, messages=10)
        plan = FaultPlan.of(
            RelayCrashAt(step=15, node=2, run=0),
            RelayCrashAt(step=15, node=3, run=1),
        )
        outcome = spec.run_supervised(plan, 0, seed=7)
        assert outcome.result.completed
        assert outcome.safety.passed


class TestFabricCampaignAndShrink:
    def test_campaign_classifies_fabric_runs(self):
        from repro.resilience.supervisor import CampaignConfig, run_campaign

        plan = FaultPlan.of(*ACCEPTANCE_EVENTS)
        spec = FabricSpec(topology="line", size=4, messages=50, label="fabric")
        result = run_campaign(
            spec, 2, base_seed=ACCEPTANCE_SEED,
            config=CampaignConfig(jobs=1, timeout=120.0), fault_plan=plan,
        )
        assert result.status_counts["ok"] == 2
        assert all(r.completed for r in result.reports)

    def test_shrink_minimizes_seeded_relay_failure(self):
        # The acceptance criterion for the shrinker: a seeded fabric
        # failure (the dedup ablation under the relay-crash plan) must
        # minimize to a smaller workload while still reproducing.
        from repro.resilience.shrink import shrink_repro

        plan = FaultPlan.of(*ACCEPTANCE_EVENTS)

        def build(messages):
            return FabricSpec(
                topology="line", size=4, messages=messages, exactly_once=False
            )

        result = shrink_repro(
            build, seed=ACCEPTANCE_SEED, plan=plan, messages=50,
            run_index=0, timeout=120.0, max_probes=40,
        )
        assert result.status.value == "safety_failed"
        assert result.messages < 50
        assert len(result.plan.events) <= 2
