"""Multi-path striping: disjoint route discovery and striped delivery.

Covers the two layers of the ``paths=K`` feature: the greedy
vertex-disjoint route finder (:func:`disjoint_routes`) and the fabric's
frame striping over those routes, including the end-to-end CLEAN verdict
under link faults and the protocol-time win that the bench gates.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.resilience.faultplan import LinkDownWindow
from repro.transport.fabric import FabricRun, FabricSpec
from repro.transport.network import (
    disjoint_routes,
    line_network,
    mesh_network,
    ring_network,
)


def _interiors(route):
    return set(route[1:-1])


class TestDisjointRoutes:
    def test_k_below_one_rejected(self):
        net = ring_network(6)
        with pytest.raises(ConfigurationError):
            disjoint_routes(net.graph, net.source, net.destination, 0)

    def test_unknown_endpoint_rejected(self):
        net = line_network(3)
        with pytest.raises(ConfigurationError):
            disjoint_routes(net.graph, net.source, "nope", 2)

    def test_line_degrades_to_single_route(self):
        net = line_network(5)
        routes = disjoint_routes(net.graph, net.source, net.destination, 4)
        assert routes == [[0, 1, 2, 3, 4, 5]]

    def test_ring_yields_two_disjoint_arcs(self):
        net = ring_network(8)
        routes = disjoint_routes(net.graph, net.source, net.destination, 4)
        assert len(routes) == 2
        assert not _interiors(routes[0]) & _interiors(routes[1])

    @pytest.mark.parametrize("side", range(3, 9))
    def test_mesh_routes_vertex_disjoint(self, side):
        net = mesh_network(side)
        routes = disjoint_routes(net.graph, net.source, net.destination, 4)
        # Corner-to-corner on a grid: the corner degree (2) caps the count.
        assert len(routes) == 2
        seen = set()
        for route in routes:
            assert route[0] == net.source
            assert route[-1] == net.destination
            interior = _interiors(route)
            assert not interior & seen, "routes share an interior relay"
            seen |= interior
            # Every consecutive pair must be a real edge.
            for a, b in zip(route, route[1:]):
                assert net.graph.has_edge(a, b)

    def test_shortest_route_first(self):
        net = ring_network(8)
        routes = disjoint_routes(net.graph, net.source, net.destination, 2)
        assert len(routes[0]) <= len(routes[1])

    def test_deterministic(self):
        net = mesh_network(4)
        first = disjoint_routes(net.graph, net.source, net.destination, 3)
        second = disjoint_routes(net.graph, net.source, net.destination, 3)
        assert first == second


class TestStripedFabric:
    @pytest.mark.parametrize("engine", ("object", "kernel"))
    def test_two_path_ring_clean(self, engine):
        spec = FabricSpec(
            topology="ring", size=8, messages=20, window=8, paths=2,
            engine=engine,
        )
        run = FabricRun(spec, (), seed=0)
        out = run.run()
        assert out.result.completed
        assert out.liveness_passed
        assert run.verdict().startswith("CLEAN")

    @pytest.mark.parametrize("engine", ("object", "kernel"))
    def test_two_path_ring_clean_under_link_faults(self, engine):
        # Partition one arc mid-stream: the disjoint sibling keeps the
        # stream moving and the verdict converges back to CLEAN.
        events = (LinkDownWindow(start=25, end=60, link=(0, 1)),)
        spec = FabricSpec(
            topology="ring", size=8, messages=20, window=8, paths=2,
            engine=engine,
        )
        run = FabricRun(spec, events, seed=0)
        out = run.run()
        assert out.result.completed
        assert out.liveness_passed
        assert run.verdict().startswith("CLEAN")

    def test_single_path_matches_unstriped(self):
        """``paths=1`` must be bit-identical to the unstriped fabric."""
        fingerprints = []
        for paths in (None, 1):
            kwargs = {} if paths is None else {"paths": paths}
            spec = FabricSpec(
                topology="ring", size=6, messages=12, retain="full", **kwargs
            )
            run = FabricRun(spec, (), seed=7)
            out = run.run()
            fingerprints.append(
                (tuple(out.result.trace.events), run.ticks, run.verdict())
            )
        assert fingerprints[0] == fingerprints[1]

    def test_striping_beats_single_path_protocol_time(self):
        """The bench leg's tick-count win, pinned as a regression test."""
        ticks = {}
        for paths in (1, 2):
            spec = FabricSpec(
                topology="ring", size=8, messages=120, window=16,
                steps_per_tick=4, engine="kernel", paths=paths,
            )
            run = FabricRun(spec, (), seed=0)
            out = run.run()
            assert out.result.completed
            ticks[paths] = run.ticks
        assert ticks[1] / ticks[2] > 1.5

    def test_paths_validation(self):
        with pytest.raises(ConfigurationError):
            FabricSpec(topology="ring", size=6, paths=0)
