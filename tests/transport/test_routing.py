"""Unit tests for the flooding and path-maintenance relays."""

from __future__ import annotations

import pytest

from repro.core.random_source import RandomSource
from repro.transport.network import line_network, mesh_network, ring_network
from repro.transport.routing import FloodingRelay, PathRelay


RNG = RandomSource(0)


class TestFloodingRelay:
    def test_line_delivers_one_copy(self):
        net = line_network(3)
        relay = FloodingRelay(net)
        arrivals = relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert len(arrivals) == 1
        assert arrivals[0].arrive_at == 3  # three unit-latency hops

    def test_ring_delivers_duplicate_copies(self):
        net = ring_network(6)
        relay = FloodingRelay(net)
        arrivals = relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert len(arrivals) == 2  # both ways around the ring

    def test_duplicate_cap(self):
        net = mesh_network(4)
        relay = FloodingRelay(net, max_duplicates=2)
        arrivals = relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert len(arrivals) <= 2

    def test_cost_scales_with_edges(self):
        net = mesh_network(4)
        relay = FloodingRelay(net)
        relay.inject("tok", now=0, direction="fwd", rng=RNG)
        # Flooding touches on the order of |E| links.
        assert relay.transmissions >= net.edge_count - 1

    def test_duplicate_storm_bounded_per_token_edge(self):
        # The PR-9 satellite fix: each link carries at most one copy of a
        # token per inject, so a dense mesh cannot amplify the storm past
        # |E| transmissions — previously every forwarder echoed the token
        # back across the link it arrived on (~2|E|).
        net = mesh_network(5)
        relay = FloodingRelay(net, max_duplicates=3)
        arrivals = relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert relay.transmissions <= net.edge_count
        assert len(arrivals) <= 3
        # Repeated injects stay within the per-inject bound each time.
        relay.inject("tok2", now=1, direction="fwd", rng=RNG)
        assert relay.transmissions <= 2 * net.edge_count

    def test_cut_network_loses_packet(self):
        net = line_network(2)
        net.configure_link(0, 1, up=False)
        relay = FloodingRelay(net)
        assert relay.inject("tok", now=0, direction="fwd", rng=RNG) == []

    def test_reverse_direction(self):
        net = line_network(2)
        relay = FloodingRelay(net)
        arrivals = relay.inject("tok", now=5, direction="rev", rng=RNG)
        assert len(arrivals) == 1
        assert arrivals[0].arrive_at == 7

    def test_direction_validated(self):
        relay = FloodingRelay(line_network(2))
        with pytest.raises(ValueError):
            relay.inject("tok", now=0, direction="sideways", rng=RNG)

    def test_max_duplicates_validated(self):
        with pytest.raises(ValueError):
            FloodingRelay(line_network(2), max_duplicates=0)


class TestPathRelay:
    def test_delivers_along_shortest_path(self):
        net = ring_network(8)
        relay = PathRelay(net)
        arrivals = relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert len(arrivals) == 1
        assert arrivals[0].arrive_at == 4  # 0 -> 4 is four hops

    def test_cost_is_path_length(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert relay.transmissions == 4

    def test_path_cached_between_packets(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("a", now=0, direction="fwd", rng=RNG)
        repairs_after_first = relay.path_repairs
        relay.inject("b", now=1, direction="fwd", rng=RNG)
        assert relay.path_repairs == repairs_after_first  # no recompute

    def test_stale_path_reroutes_without_losing_packet(self):
        # The PR-9 satellite fix: a link on the cached route going down
        # mid-stream must trigger a recompute *before* the next send, not
        # cost a packet to discover the failure.
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("a", now=0, direction="fwd", rng=RNG)
        path = relay.current_path("fwd")
        net.configure_link(path[0], path[1], up=False)
        arrivals = relay.inject("b", now=1, direction="fwd", rng=RNG)
        assert len(arrivals) == 1  # delivered via the fresh path
        assert relay.losses == 0
        assert relay.reroutes == 1
        # The repaired path avoids the dead link.
        new_path = relay.current_path("fwd")
        assert new_path is not None
        assert (path[0], path[1]) not in zip(new_path, new_path[1:])

    def test_on_link_down_invalidates_eagerly(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("a", now=0, direction="fwd", rng=RNG)
        path = relay.current_path("fwd")
        net.configure_link(path[1], path[2], up=False)
        relay.on_link_down(path[1], path[2])
        assert relay.current_path("fwd") is None
        assert relay.reroutes == 1
        # An unrelated link's failure leaves the (re)computed cache alone.
        arrivals = relay.inject("b", now=1, direction="fwd", rng=RNG)
        assert len(arrivals) == 1
        before = relay.reroutes
        other = relay.current_path("rev")  # None — not affected either
        relay.on_link_down(path[1], path[2])
        assert relay.reroutes == before
        assert other is None

    def test_recovered_path_delivers(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("a", now=0, direction="fwd", rng=RNG)
        path = relay.current_path("fwd")
        net.configure_link(path[0], path[1], up=False)
        relay.inject("b", now=1, direction="fwd", rng=RNG)  # reroutes
        arrivals = relay.inject("c", now=2, direction="fwd", rng=RNG)
        assert len(arrivals) == 1

    def test_fully_cut_network(self):
        net = line_network(2)
        net.configure_link(0, 1, up=False)
        relay = PathRelay(net)
        assert relay.inject("a", now=0, direction="fwd", rng=RNG) == []
        assert relay.losses == 1

    def test_directions_have_independent_paths(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("a", now=0, direction="fwd", rng=RNG)
        assert relay.current_path("rev") is None
        relay.inject("b", now=0, direction="rev", rng=RNG)
        assert relay.current_path("rev") is not None
