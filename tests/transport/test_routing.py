"""Unit tests for the flooding and path-maintenance relays."""

from __future__ import annotations

import pytest

from repro.core.random_source import RandomSource
from repro.transport.network import line_network, mesh_network, ring_network
from repro.transport.routing import FloodingRelay, PathRelay


RNG = RandomSource(0)


class TestFloodingRelay:
    def test_line_delivers_one_copy(self):
        net = line_network(3)
        relay = FloodingRelay(net)
        arrivals = relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert len(arrivals) == 1
        assert arrivals[0].arrive_at == 3  # three unit-latency hops

    def test_ring_delivers_duplicate_copies(self):
        net = ring_network(6)
        relay = FloodingRelay(net)
        arrivals = relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert len(arrivals) == 2  # both ways around the ring

    def test_duplicate_cap(self):
        net = mesh_network(4)
        relay = FloodingRelay(net, max_duplicates=2)
        arrivals = relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert len(arrivals) <= 2

    def test_cost_scales_with_edges(self):
        net = mesh_network(4)
        relay = FloodingRelay(net)
        relay.inject("tok", now=0, direction="fwd", rng=RNG)
        # Flooding touches on the order of |E| links (both directions).
        assert relay.transmissions >= net.edge_count

    def test_cut_network_loses_packet(self):
        net = line_network(2)
        net.configure_link(0, 1, up=False)
        relay = FloodingRelay(net)
        assert relay.inject("tok", now=0, direction="fwd", rng=RNG) == []

    def test_reverse_direction(self):
        net = line_network(2)
        relay = FloodingRelay(net)
        arrivals = relay.inject("tok", now=5, direction="rev", rng=RNG)
        assert len(arrivals) == 1
        assert arrivals[0].arrive_at == 7

    def test_direction_validated(self):
        relay = FloodingRelay(line_network(2))
        with pytest.raises(ValueError):
            relay.inject("tok", now=0, direction="sideways", rng=RNG)

    def test_max_duplicates_validated(self):
        with pytest.raises(ValueError):
            FloodingRelay(line_network(2), max_duplicates=0)


class TestPathRelay:
    def test_delivers_along_shortest_path(self):
        net = ring_network(8)
        relay = PathRelay(net)
        arrivals = relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert len(arrivals) == 1
        assert arrivals[0].arrive_at == 4  # 0 -> 4 is four hops

    def test_cost_is_path_length(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("tok", now=0, direction="fwd", rng=RNG)
        assert relay.transmissions == 4

    def test_path_cached_between_packets(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("a", now=0, direction="fwd", rng=RNG)
        repairs_after_first = relay.path_repairs
        relay.inject("b", now=1, direction="fwd", rng=RNG)
        assert relay.path_repairs == repairs_after_first  # no recompute

    def test_broken_hop_loses_packet_and_repairs(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("a", now=0, direction="fwd", rng=RNG)
        path = relay.current_path("fwd")
        net.configure_link(path[0], path[1], up=False)
        arrivals = relay.inject("b", now=1, direction="fwd", rng=RNG)
        assert arrivals == []
        assert relay.losses == 1
        # The repaired path avoids the dead link.
        new_path = relay.current_path("fwd")
        assert new_path is not None
        assert (path[0], path[1]) not in zip(new_path, new_path[1:])

    def test_recovered_path_delivers(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("a", now=0, direction="fwd", rng=RNG)
        path = relay.current_path("fwd")
        net.configure_link(path[0], path[1], up=False)
        relay.inject("b", now=1, direction="fwd", rng=RNG)  # lost, repairs
        arrivals = relay.inject("c", now=2, direction="fwd", rng=RNG)
        assert len(arrivals) == 1

    def test_fully_cut_network(self):
        net = line_network(2)
        net.configure_link(0, 1, up=False)
        relay = PathRelay(net)
        assert relay.inject("a", now=0, direction="fwd", rng=RNG) == []
        assert relay.losses == 1

    def test_directions_have_independent_paths(self):
        net = ring_network(8)
        relay = PathRelay(net)
        relay.inject("a", now=0, direction="fwd", rng=RNG)
        assert relay.current_path("rev") is None
        relay.inject("b", now=0, direction="rev", rng=RNG)
        assert relay.current_path("rev") is not None
