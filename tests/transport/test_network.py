"""Unit tests for the network model and topologies."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.random_source import RandomSource
from repro.transport.network import (
    LinkState,
    Network,
    line_network,
    mesh_network,
    ring_network,
)


class TestLinkState:
    def test_stays_up_without_failures(self):
        state = LinkState(fail_rate=0.0)
        rng = RandomSource(0)
        for __ in range(100):
            state.tick(rng)
        assert state.up

    def test_fails_and_repairs(self):
        state = LinkState(fail_rate=0.5, repair_rate=0.5)
        rng = RandomSource(1)
        saw_down = saw_up_again = False
        for __ in range(200):
            was_up = state.up
            state.tick(rng)
            if was_up and not state.up:
                saw_down = True
            if saw_down and state.up:
                saw_up_again = True
        assert saw_down and saw_up_again


class TestTopologies:
    def test_line(self):
        net = line_network(4)
        assert net.source == 0 and net.destination == 4
        assert net.edge_count == 4

    def test_ring(self):
        net = ring_network(8)
        assert net.edge_count == 8
        assert len(net.shortest_up_path()) == 5  # 0..4 along the cycle

    def test_mesh(self):
        net = mesh_network(3)
        assert net.source == (0, 0) and net.destination == (2, 2)
        assert net.edge_count == 12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_network(0)
        with pytest.raises(ConfigurationError):
            ring_network(2)
        with pytest.raises(ConfigurationError):
            mesh_network(1)


class TestNetwork:
    def test_rejects_disconnected_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        with pytest.raises(ConfigurationError):
            Network(graph, source=0, destination=2)

    def test_rejects_same_endpoints(self):
        with pytest.raises(ConfigurationError):
            Network(nx.path_graph(3), source=1, destination=1)

    def test_rejects_foreign_endpoints(self):
        with pytest.raises(ConfigurationError):
            Network(nx.path_graph(3), source=0, destination=99)

    def test_link_lookup_and_configure(self):
        net = line_network(3)
        net.configure_link(0, 1, latency=5, fail_rate=0.1)
        assert net.link(0, 1).latency == 5
        assert net.link(1, 0).latency == 5  # undirected
        with pytest.raises(ConfigurationError):
            net.link(0, 3)
        with pytest.raises(ConfigurationError):
            net.configure_link(0, 1, nonsense=1)

    def test_up_subgraph_excludes_down_links(self):
        net = line_network(3)
        net.configure_link(1, 2, up=False)
        assert not net.link_up(1, 2)
        assert net.shortest_up_path() is None  # the line is cut

    def test_ring_survives_single_cut(self):
        net = ring_network(6)
        net.configure_link(0, 1, up=False)
        path = net.shortest_up_path()
        assert path is not None  # the other way around survives
        assert path[0] == 0 and path[-1] == 3

    def test_tick_advances_all_links(self):
        net = line_network(5, fail_rate=1.0, repair_rate=0.0)
        net.tick(RandomSource(0))
        assert all(not net.link_up(i, i + 1) for i in range(5))
