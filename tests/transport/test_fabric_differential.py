"""Differential pinning: the kernel hop engine vs the object engine.

The fabric's ``engine="kernel"`` executor reimplements the per-hop
protocol step loop over flat local state (with idle fast-forward); these
tests pin it bit-for-bit against the object engine.  Every observable —
the full event trace, the verdict string, the fabric diagnostics, the
aggregated metrics wire and the liveness verdict — must be identical for
the same spec at the same seed, across every topology shape and under
scripted topology faults.  Any divergence is a kernel bug by definition.
"""

from __future__ import annotations

import pytest

from repro.resilience.faultplan import (
    LinkDownWindow,
    RelayCrashAt,
    RouteFlapAt,
)
from repro.transport.fabric import FabricRun, FabricSpec

SEEDS = (0, 1, 7, 42, 1234)

TOPOLOGIES = (
    ("line", 4),
    ("ring", 6),
    ("mesh", 3),
)

# Per-topology fault targets: an edge adjacent to the source and an
# interior relay node (mesh nodes are (row, col) grid coordinates).
_EDGE = {"line": (0, 1), "ring": (0, 1), "mesh": ((0, 0), (0, 1))}
_RELAY = {"line": 1, "ring": 1, "mesh": (0, 1)}


def _fingerprint(spec: FabricSpec, events, seed: int):
    """Every observable of one fabric run, wall-clock terms excluded."""
    run = FabricRun(spec, events, seed)
    out = run.run()
    metrics_wire = run._aggregate_metrics(1.0).to_wire()
    return {
        "trace": tuple(out.result.trace.events),
        "verdict": run.verdict(),
        "diagnostics": {
            "ticks": run.ticks,
            "completed": out.result.completed,
            "reroutes": run.reroutes,
            "queue_drops": run.queue_drops,
            "dup_drops": run.dup_drops,
            "retransmits": run.retransmits,
            "misrouted": run.misrouted,
            "dropped_overflow": run.dropped_overflow,
            "dropped_down": run.dropped_down,
        },
        # Positions 16-17 carry wall seconds / checker overhead -- the
        # only host-dependent fields in the wire tuple.
        "metrics": metrics_wire[:16] + metrics_wire[18:],
        "liveness": out.liveness_passed,
    }


def _assert_engines_match(topology: str, size: int, events=(), **overrides):
    overrides.setdefault("messages", 12)
    for seed in SEEDS:
        prints = {}
        for engine in ("object", "kernel"):
            spec = FabricSpec(
                topology=topology,
                size=size,
                retain="full",
                engine=engine,
                **overrides,
            )
            prints[engine] = _fingerprint(spec, events, seed)
        assert prints["kernel"] == prints["object"], (
            f"kernel/object divergence: topology={topology} seed={seed}"
        )


class TestCleanTopologies:
    @pytest.mark.parametrize("topology,size", TOPOLOGIES)
    def test_engines_identical(self, topology, size):
        _assert_engines_match(topology, size)

    @pytest.mark.parametrize("steps_per_tick", (2, 4, 8, 12))
    def test_engines_identical_across_burst_sizes(self, steps_per_tick):
        _assert_engines_match("line", 4, steps_per_tick=steps_per_tick)

    def test_engines_identical_lossy_links(self):
        _assert_engines_match("ring", 6, fail_rate=0.05)


class TestFaultedTopologies:
    @pytest.mark.parametrize("topology,size", TOPOLOGIES)
    def test_link_down_window(self, topology, size):
        events = (LinkDownWindow(start=5, end=25, link=_EDGE[topology]),)
        _assert_engines_match(topology, size, events)

    @pytest.mark.parametrize("topology,size", TOPOLOGIES)
    def test_relay_crash(self, topology, size):
        events = (RelayCrashAt(step=10, node=_RELAY[topology]),)
        _assert_engines_match(topology, size, events)

    @pytest.mark.parametrize("topology,size", TOPOLOGIES)
    def test_route_flap(self, topology, size):
        events = (RouteFlapAt(step=8),)
        _assert_engines_match(topology, size, events)

    def test_compound_fault_script(self):
        events = (
            LinkDownWindow(start=4, end=18, link=((0, 0), (0, 1))),
            RouteFlapAt(step=6),
            RelayCrashAt(step=22, node=(1, 1)),
        )
        _assert_engines_match("mesh", 3, events)


class TestStripedDifferential:
    def test_two_path_ring_engines_identical(self):
        _assert_engines_match("ring", 6, paths=2)

    def test_two_path_ring_under_link_faults(self):
        events = (LinkDownWindow(start=5, end=30, link=(0, 1)),)
        _assert_engines_match("ring", 6, events, paths=2)
