"""Unit tests for the communication channel (Section 2.3 semantics)."""

from __future__ import annotations

import pytest

from repro.channel.channel import Channel, ChannelPair, PacketInfo
from repro.core.bitstrings import BitString
from repro.core.events import ChannelId
from repro.core.exceptions import UnknownPacketError
from repro.core.packets import DataPacket, PollPacket


def data(m=b"x"):
    return DataPacket(message=m, rho=BitString("01"), tau=BitString("10"))


class TestSend:
    def test_ids_unique_and_sequential(self):
        channel = Channel(ChannelId.T_TO_R)
        infos = [channel.send_pkt(data(b"%d" % i)) for i in range(5)]
        assert [i.packet_id for i in infos] == [0, 1, 2, 3, 4]

    def test_new_pkt_announcement(self):
        seen = []
        channel = Channel(ChannelId.T_TO_R, on_new_pkt=seen.append)
        packet = data(b"hello")
        info = channel.send_pkt(packet)
        assert seen == [info]
        assert info.channel == ChannelId.T_TO_R
        assert info.length_bits == packet.wire_length_bits

    def test_announcement_reveals_only_id_and_length(self):
        seen = []
        channel = Channel(ChannelId.T_TO_R, on_new_pkt=seen.append)
        channel.send_pkt(data(b"secret"))
        info = seen[0]
        assert isinstance(info, PacketInfo)
        assert set(info.__dataclass_fields__) == {
            "channel",
            "packet_id",
            "length_bits",
        }

    def test_counters(self):
        channel = Channel(ChannelId.R_TO_T)
        channel.send_pkt(PollPacket(rho=BitString("0"), tau=BitString("1"), retry=1))
        assert channel.sent_count == 1
        assert channel.bits_sent > 0


class TestDeliver:
    def test_delivers_exact_packet(self):
        channel = Channel(ChannelId.T_TO_R)
        packet = data(b"payload")
        info = channel.send_pkt(packet)
        assert channel.deliver_pkt(info.packet_id) is packet

    def test_any_number_of_deliveries(self):
        # "A packet that was sent can be delivered any number of times."
        channel = Channel(ChannelId.T_TO_R)
        info = channel.send_pkt(data())
        for __ in range(10):
            channel.deliver_pkt(info.packet_id)
        assert channel.delivered_count == 10

    def test_unknown_id_is_causality_violation(self):
        channel = Channel(ChannelId.T_TO_R)
        with pytest.raises(UnknownPacketError):
            channel.deliver_pkt(0)
        channel.send_pkt(data())
        with pytest.raises(UnknownPacketError):
            channel.deliver_pkt(99)

    def test_zero_deliveries_allowed(self):
        channel = Channel(ChannelId.T_TO_R)
        channel.send_pkt(data())
        assert channel.delivered_count == 0  # loss = never delivering


class TestInspection:
    def test_has_packet(self):
        channel = Channel(ChannelId.T_TO_R)
        info = channel.send_pkt(data())
        assert channel.has_packet(info.packet_id)
        assert not channel.has_packet(info.packet_id + 1)

    def test_packet_length(self):
        channel = Channel(ChannelId.T_TO_R)
        packet = data(b"abc")
        info = channel.send_pkt(packet)
        assert channel.packet_length_bits(info.packet_id) == packet.wire_length_bits
        with pytest.raises(UnknownPacketError):
            channel.packet_length_bits(42)

    def test_all_packet_ids(self):
        channel = Channel(ChannelId.T_TO_R)
        for i in range(3):
            channel.send_pkt(data(b"%d" % i))
        assert channel.all_packet_ids() == [0, 1, 2]


class TestChannelPair:
    def test_directions(self):
        pair = ChannelPair()
        assert pair.by_id(ChannelId.T_TO_R) is pair.t_to_r
        assert pair.by_id(ChannelId.R_TO_T) is pair.r_to_t

    def test_by_id_rejects_garbage(self):
        pair = ChannelPair()
        with pytest.raises(ValueError):
            pair.by_id("sideways")  # type: ignore[arg-type]

    def test_shared_listener(self):
        seen = []
        pair = ChannelPair(on_new_pkt=seen.append)
        pair.t_to_r.send_pkt(data())
        pair.r_to_t.send_pkt(PollPacket(rho=BitString("0"), tau=BitString("1"), retry=1))
        assert [i.channel for i in seen] == [ChannelId.T_TO_R, ChannelId.R_TO_T]

    def test_totals(self):
        pair = ChannelPair()
        pair.t_to_r.send_pkt(data())
        pair.r_to_t.send_pkt(PollPacket(rho=BitString("0"), tau=BitString("1"), retry=1))
        assert pair.total_packets_sent == 2
        assert pair.total_bits_sent == pair.t_to_r.bits_sent + pair.r_to_t.bits_sent

    def test_independent_id_spaces(self):
        pair = ChannelPair()
        a = pair.t_to_r.send_pkt(data())
        b = pair.r_to_t.send_pkt(PollPacket(rho=BitString("0"), tau=BitString("1"), retry=1))
        assert a.packet_id == 0 and b.packet_id == 0  # per-channel ids
