"""Unit tests for the sweep framework."""

from __future__ import annotations

import pytest

from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.sim.experiment import Sweep
from repro.sim.runner import RunSpec


def loss_sweep(runs_per_point=2):
    return Sweep(
        axis_name="loss",
        spec_for=lambda loss: RunSpec.default(
            adversary_factory=lambda: RandomFaultAdversary(FaultProfile(loss=loss)),
            messages=5,
        ),
        row_for=lambda loss, mc: {
            "completion": mc.completion_rate,
            "pkts/msg": mc.mean_packets_per_message,
        },
        runs_per_point=runs_per_point,
        title="loss sweep",
    )


class TestSweep:
    def test_runs_each_point(self):
        result = loss_sweep().run([0.0, 0.3])
        assert result.points() == [0.0, 0.3]
        assert len(result.rows) == 2

    def test_columns_from_first_row(self):
        result = loss_sweep().run([0.0])
        assert list(result.columns) == ["completion", "pkts/msg"]

    def test_column_extraction(self):
        result = loss_sweep().run([0.0, 0.2])
        completions = result.column("completion")
        assert completions == [1.0, 1.0]

    def test_loss_increases_cost(self):
        result = loss_sweep(runs_per_point=3).run([0.0, 0.5])
        costs = result.column("pkts/msg")
        assert costs[1] > costs[0]

    def test_render_contains_rows_and_title(self):
        result = loss_sweep().run([0.0])
        text = result.render()
        assert "loss sweep" in text
        assert "completion" in text
        assert "loss" in text

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            Sweep(
                axis_name="x",
                spec_for=lambda p: RunSpec.default(),
                row_for=lambda p, mc: {},
                runs_per_point=0,
            )
