"""Unit tests for the metrics pipeline."""

from __future__ import annotations

from repro.channel.channel import ChannelPair
from repro.core.bitstrings import BitString
from repro.core.packets import DataPacket
from repro.core.protocol import make_data_link
from repro.sim.metrics import MetricsCollector, SimulationMetrics


def make_collector():
    link = make_data_link(seed=1)
    channels = ChannelPair()
    return link, channels, MetricsCollector(link, channels)


class TestCollector:
    def test_storage_sampling_tracks_peak(self):
        link, channels, collector = make_collector()
        collector.sample_storage()
        baseline = link.total_storage_bits()
        metrics = collector.freeze(steps=1)
        assert metrics.storage_peak_bits == baseline
        assert metrics.storage_samples == [baseline]

    def test_freeze_reads_channels(self):
        link, channels, collector = make_collector()
        packet = DataPacket(message=b"x", rho=BitString("0"), tau=BitString("1"))
        info = channels.t_to_r.send_pkt(packet)
        channels.t_to_r.deliver_pkt(info.packet_id)
        metrics = collector.freeze(steps=5)
        assert metrics.packets_sent == 1
        assert metrics.packets_delivered == 1
        assert metrics.bits_sent == packet.wire_length_bits
        assert metrics.steps == 5

    def test_freeze_reads_station_stats(self):
        link, channels, collector = make_collector()
        link.transmitter.send_msg(b"m")
        metrics = collector.freeze(steps=1)
        assert metrics.transmitter_extensions == 0
        assert metrics.receiver_errors_counted == 0


class TestDerivedMetrics:
    def _metrics(self, **overrides) -> SimulationMetrics:
        base = dict(
            steps=100,
            messages_submitted=10,
            messages_ok=10,
            messages_delivered=10,
            packets_sent=30,
            packets_delivered=25,
            bits_sent=3000,
            retries=20,
            crashes_t=0,
            crashes_r=0,
            corruptions_t=0,
            corruptions_r=0,
            transmitter_extensions=0,
            receiver_extensions=0,
            transmitter_errors_counted=0,
            receiver_errors_counted=0,
            storage_peak_bits=100,
            storage_final_bits=90,
            storage_samples=[],
        )
        base.update(overrides)
        return SimulationMetrics(**base)

    def test_per_message_packets(self):
        assert self._metrics().per_message_packets == 3.0

    def test_per_message_bits(self):
        assert self._metrics().per_message_bits == 300.0

    def test_zero_ok_yields_infinity(self):
        metrics = self._metrics(messages_ok=0)
        assert metrics.per_message_packets == float("inf")
        assert metrics.per_message_bits == float("inf")

    def test_delivery_ratio(self):
        assert self._metrics().delivery_ratio == 25 / 30

    def test_delivery_ratio_no_packets(self):
        assert self._metrics(packets_sent=0, packets_delivered=0).delivery_ratio == 0.0
