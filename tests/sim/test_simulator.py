"""Integration-grade unit tests for the Simulator harness."""

from __future__ import annotations

import pytest

from repro.adversary.benign import ReliableAdversary
from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.fairness import FairnessEnforcer, StallingAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.checkers.axioms import check_axiom1, check_axiom2, check_axiom3_bounded
from repro.checkers.safety import check_all_safety
from repro.core.events import Ok, ReceiveMsg, SendMsg
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


def run(adversary, messages=10, seed=1, link_seed=1, **kwargs):
    link = make_data_link(epsilon=2.0 ** -16, seed=link_seed)
    sim = Simulator(
        link, adversary, SequentialWorkload(messages), seed=seed, **kwargs
    )
    return sim.run()


class TestFaultFreeRuns:
    def test_completes(self):
        result = run(ReliableAdversary())
        assert result.completed
        assert result.all_messages_ok
        assert result.metrics.messages_ok == 10

    def test_in_order_delivery(self):
        result = run(ReliableAdversary())
        assert result.trace.received_messages() == result.trace.sent_messages()

    def test_event_interleaving_respects_axioms(self):
        result = run(ReliableAdversary())
        assert check_axiom1(result.trace).passed
        assert check_axiom2(result.trace).passed
        assert check_axiom3_bounded(result.trace, window=64).passed

    def test_packet_economy(self):
        # Steady state is two packets per message; the cold start adds a
        # few polls, so the average sits between 2 and 4.
        result = run(ReliableAdversary(), messages=50)
        assert 2.0 <= result.metrics.per_message_packets <= 4.0

    def test_deterministic_given_seeds(self):
        a = run(ReliableAdversary(), seed=3, link_seed=5)
        b = run(ReliableAdversary(), seed=3, link_seed=5)
        assert a.steps == b.steps
        assert a.trace.events == b.trace.events


class TestFaultyRuns:
    def test_loss_recovered_by_retransmission(self):
        adv = RandomFaultAdversary(FaultProfile(loss=0.4))
        result = run(adv, messages=20, seed=2)
        assert result.completed
        assert result.all_messages_ok

    def test_duplication_and_reorder_safe(self):
        adv = RandomFaultAdversary(FaultProfile(duplicate=0.4, reorder=0.6))
        result = run(adv, messages=20, seed=3)
        assert result.completed
        assert check_all_safety(result.trace).passed

    def test_heavy_everything(self):
        adv = RandomFaultAdversary(
            FaultProfile(loss=0.3, duplicate=0.3, reorder=0.5, crash_t=0.003, crash_r=0.003)
        )
        result = run(adv, messages=20, seed=4, max_steps=200_000)
        assert result.completed
        assert check_all_safety(result.trace).passed


class TestCrashHandling:
    def test_scheduled_transmitter_crash(self):
        adv = ScheduledCrashAdversary([(10, "T")])
        result = run(adv, messages=10, seed=5)
        assert result.completed
        assert result.metrics.crashes_t == 1
        # At most one message may be lost to the crash.
        assert result.metrics.messages_ok >= 9
        assert check_all_safety(result.trace).passed

    def test_scheduled_receiver_crash(self):
        adv = ScheduledCrashAdversary([(10, "R")])
        result = run(adv, messages=10, seed=6)
        assert result.completed
        assert result.metrics.crashes_r == 1
        assert check_all_safety(result.trace).passed

    def test_crash_storm_trace_consistency(self):
        adv = ScheduledCrashAdversary([(i, "T" if i % 10 else "R") for i in range(5, 60, 5)])
        result = run(adv, messages=10, seed=7, max_steps=100_000)
        report = check_all_safety(result.trace)
        assert report.causality.passed
        assert report.passed


class TestStallingAndFairness:
    def test_stalling_adversary_cannot_block_forever(self):
        result = run(StallingAdversary(), messages=5, seed=8, fairness_patience=8)
        assert result.completed

    def test_unenforced_stalling_blocks(self):
        result = run(
            StallingAdversary(),
            messages=1,
            seed=9,
            enforce_fairness=False,
            max_steps=2_000,
        )
        assert not result.completed
        assert result.metrics.messages_ok == 0

    def test_prewrapped_enforcer_not_double_wrapped(self):
        link = make_data_link(seed=1)
        wrapped = FairnessEnforcer(StallingAdversary(), patience=4)
        sim = Simulator(link, wrapped, SequentialWorkload(2), seed=1)
        result = sim.run()
        assert result.adversary is wrapped
        assert result.completed


class TestHarnessContract:
    def test_max_steps_bounds_run(self):
        result = run(StallingAdversary(), messages=1, enforce_fairness=False, max_steps=50)
        assert result.steps == 50

    def test_retry_cadence(self):
        result = run(ReliableAdversary(), messages=2, retry_every=2)
        assert result.trace.retries() >= result.steps // 2 - 1

    def test_validation(self):
        link = make_data_link(seed=1)
        with pytest.raises(ValueError):
            Simulator(link, ReliableAdversary(), SequentialWorkload(1), retry_every=0)
        with pytest.raises(ValueError):
            Simulator(link, ReliableAdversary(), SequentialWorkload(1), max_steps=0)

    def test_empty_workload_finishes_immediately(self):
        link = make_data_link(seed=1)
        sim = Simulator(link, ReliableAdversary(), SequentialWorkload(0), seed=1)
        result = sim.run()
        assert result.completed
        assert result.metrics.messages_submitted == 0
        # Zero messages, zero failures: vacuously ok (regression — this
        # used to demand messages_submitted > 0 and report False).
        assert result.all_messages_ok

    def test_trace_event_shape(self):
        result = run(ReliableAdversary(), messages=3)
        sends = result.trace.of_type(SendMsg)
        oks = result.trace.of_type(Ok)
        deliveries = result.trace.of_type(ReceiveMsg)
        assert len(sends) == len(oks) == len(deliveries) == 3

    def test_metrics_storage_samples_collected(self):
        result = run(ReliableAdversary(), messages=3)
        assert len(result.metrics.storage_samples) == result.steps
        assert result.metrics.storage_peak_bits >= max(result.metrics.storage_samples[:1] or [0])
