"""Tests for the named scenario registry."""

from __future__ import annotations

import pytest

from repro.sim.scenarios import SCENARIOS, get_scenario, list_scenarios


class TestRegistry:
    def test_names_match_keys(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name

    def test_descriptions_exist(self):
        assert all(s.description for s in SCENARIOS.values())

    def test_lookup(self):
        assert get_scenario("fault-free").name == "fault-free"

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(KeyError) as exc:
            get_scenario("warp")
        assert "fault-free" in str(exc.value)

    def test_listing_sorted(self):
        names = [s.name for s in list_scenarios()]
        assert names == sorted(names)

    def test_expected_scenarios_present(self):
        for expected in (
            "fault-free",
            "lossy",
            "chaos",
            "replay-attack",
            "crash-storm",
            "stalling",
        ):
            assert expected in SCENARIOS


class TestRuns:
    @pytest.mark.parametrize(
        "name",
        ["fault-free", "slow-link", "lossy", "chaos", "duplicate-flood",
         "crash-storm", "stalling"],
    )
    def test_protocol_scenarios_end_ok(self, name):
        outcome = get_scenario(name).run(seed=3)
        assert outcome.ok, f"{name}: {outcome.simulation.trace.summary()}"

    def test_replay_attack_scenario_resisted(self):
        outcome = get_scenario("replay-attack").run(seed=3)
        assert outcome.safety.passed

    def test_runs_reproducible(self):
        a = get_scenario("chaos").run(seed=11)
        b = get_scenario("chaos").run(seed=11)
        assert (
            a.simulation.metrics.packets_sent == b.simulation.metrics.packets_sent
        )
        assert a.simulation.steps == b.simulation.steps

    def test_seeds_vary_runs(self):
        a = get_scenario("chaos").run(seed=1)
        b = get_scenario("chaos").run(seed=2)
        assert a.simulation.steps != b.simulation.steps


class TestCliIntegration:
    def test_listing(self, capsys):
        from repro.cli import main

        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "fault-free" in out
        assert "crash-storm" in out

    def test_run_by_name(self, capsys):
        from repro.cli import main

        assert main(["scenario", "fault-free", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "all OK" in out

    def test_unknown_name_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["scenario", "bogus"])
