"""Unit tests for workload generators (Axiom 2 by construction)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import AxiomViolationError
from repro.core.random_source import RandomSource
from repro.sim.workload import (
    ExplicitWorkload,
    RandomPayloadWorkload,
    SequentialWorkload,
)


class TestSequentialWorkload:
    def test_count_and_order(self):
        wl = SequentialWorkload(5)
        payloads = list(wl)
        assert len(payloads) == 5
        assert wl.message_count == 5
        assert payloads[0] == b"msg-000000"

    def test_uniqueness(self):
        payloads = list(SequentialWorkload(200))
        assert len(set(payloads)) == 200

    def test_uniform_sizes(self):
        sizes = {len(p) for p in SequentialWorkload(100)}
        assert len(sizes) == 1  # oblivious-adversary friendly

    def test_padding(self):
        payloads = list(SequentialWorkload(3, pad_to=32))
        assert all(len(p) == 32 for p in payloads)

    def test_custom_prefix(self):
        payloads = list(SequentialWorkload(1, prefix=b"exp"))
        assert payloads[0].startswith(b"exp-")

    def test_zero_count(self):
        assert list(SequentialWorkload(0)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SequentialWorkload(-1)

    def test_reiterable(self):
        wl = SequentialWorkload(3)
        assert list(wl) == list(wl)


class TestRandomPayloadWorkload:
    def test_unique_even_with_colliding_bodies(self):
        wl = RandomPayloadWorkload(50, body_bytes=0, rng=RandomSource(1))
        payloads = list(wl)
        assert len(set(payloads)) == 50

    def test_body_size(self):
        wl = RandomPayloadWorkload(3, body_bytes=16, rng=RandomSource(1))
        for p in wl:
            assert len(p) == 9 + 16  # "%08d:" prefix + body

    def test_deterministic_from_seed(self):
        a = list(RandomPayloadWorkload(5, body_bytes=4, rng=RandomSource(7)))
        b = list(RandomPayloadWorkload(5, body_bytes=4, rng=RandomSource(7)))
        assert a == b


class TestExplicitWorkload:
    def test_passthrough(self):
        wl = ExplicitWorkload([b"x", b"y"])
        assert list(wl) == [b"x", b"y"]
        assert wl.message_count == 2

    def test_rejects_duplicates(self):
        with pytest.raises(AxiomViolationError):
            ExplicitWorkload([b"x", b"x"])

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            ExplicitWorkload(["str"])  # type: ignore[list-item]
