"""Unit tests for the Monte-Carlo runner and aggregation."""

from __future__ import annotations

import pytest

from repro.adversary.benign import ReliableAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.sim.runner import RunSpec, monte_carlo, run_once
from repro.sim.workload import SequentialWorkload


def spec(adversary_factory=ReliableAdversary, messages=5, **overrides):
    return RunSpec.default(
        epsilon=2.0 ** -16,
        adversary_factory=adversary_factory,
        messages=messages,
        **overrides,
    )


class TestRunOnce:
    def test_produces_checked_outcome(self):
        outcome = run_once(spec(), seed=1)
        assert outcome.result.completed
        assert outcome.safety.passed
        assert outcome.liveness_passed

    def test_seed_determinism(self):
        a = run_once(spec(), seed=5)
        b = run_once(spec(), seed=5)
        assert a.metrics.packets_sent == b.metrics.packets_sent
        assert a.result.steps == b.result.steps

    def test_different_seeds_decorrelate(self):
        adversary = lambda: RandomFaultAdversary(FaultProfile(loss=0.4))
        runs = [run_once(spec(adversary), seed=s) for s in range(6)]
        packet_counts = {r.metrics.packets_sent for r in runs}
        assert len(packet_counts) > 1


class TestMonteCarlo:
    def test_aggregates_runs(self):
        result = monte_carlo(spec(), runs=5, base_seed=0)
        assert result.runs == 5
        assert len(result.outcomes) == 5
        assert result.completion_rate == 1.0

    def test_clean_protocol_has_zero_violation_rates(self):
        result = monte_carlo(spec(), runs=5)
        assert result.order_violation_rate.successes == 0
        assert result.duplication_violation_rate.successes == 0
        assert result.replay_violation_rate.successes == 0
        assert result.causality_violations == 0
        assert not result.any_safety_violation

    def test_trials_pool_across_runs(self):
        result = monte_carlo(spec(messages=4), runs=5)
        assert result.order_violation_rate.trials == 20  # 4 msgs x 5 runs

    def test_packet_metric(self):
        result = monte_carlo(spec(), runs=3)
        assert 2.0 <= result.mean_packets_per_message <= 4.0

    def test_storage_metric(self):
        result = monte_carlo(spec(), runs=3)
        assert result.mean_storage_peak_bits > 0

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            monte_carlo(spec(), runs=0)

    def test_default_spec_shape(self):
        s = RunSpec.default()
        assert s.workload_factory(0).message_count == 20
        assert s.enforce_fairness
