"""Tests for message striping over K independent links."""

from __future__ import annotations

import pytest

from repro.adversary.benign import DelayedFifoAdversary, ReliableAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.extensions.striping import Resequencer, StripedLink, StripedSimulator


PAYLOADS = [b"msg-%04d" % i for i in range(24)]


def run(lanes, adversary_factory, payloads=PAYLOADS, seed=5):
    striped = StripedLink(lanes=lanes, seed=seed)
    simulator = StripedSimulator(striped, payloads, adversary_factory, seed=seed)
    return simulator.run()


class TestStripedLink:
    def test_round_robin_assignment(self):
        striped = StripedLink(lanes=3)
        per_lane = striped.stripe([b"a", b"b", b"c", b"d"])
        assert [len(lane) for lane in per_lane] == [2, 1, 1]
        assert striped.lane_of(0) == 0 and striped.lane_of(3) == 0

    def test_resequencer_reorders(self):
        striped = StripedLink(lanes=2)
        frames = striped.stripe([b"x", b"y", b"z"])
        # Deliver out of order: seq 1 before seq 0.
        striped.accept(frames[1][0])  # seq 1
        assert striped.delivered_in_order == []
        assert striped.reorder_buffer_size == 1
        striped.accept(frames[0][0])  # seq 0
        assert striped.delivered_in_order == [b"x", b"y"]
        striped.accept(frames[0][1])  # seq 2
        assert striped.delivered_in_order == [b"x", b"y", b"z"]

    def test_validation(self):
        with pytest.raises(ValueError):
            StripedLink(lanes=0)


class TestStripedRuns:
    def test_order_preserved_end_to_end(self):
        result = run(4, ReliableAdversary)
        assert result.completed
        assert result.delivered == PAYLOADS
        assert result.all_safe

    def test_order_preserved_under_faults(self):
        result = run(
            3,
            lambda: RandomFaultAdversary(
                FaultProfile(loss=0.3, duplicate=0.3, reorder=0.5)
            ),
        )
        assert result.completed
        assert result.delivered == PAYLOADS
        assert result.all_safe
        # Lanes progress unevenly under random faults: the resequencer
        # genuinely had to buffer.
        assert result.max_reorder_buffer >= 1

    def test_throughput_scales_when_latency_bound(self):
        single = run(1, lambda: DelayedFifoAdversary(delay_turns=6))
        wide = run(4, lambda: DelayedFifoAdversary(delay_turns=6))
        assert single.completed and wide.completed
        # Four lanes should cut wall-clock rounds by at least 2x.
        assert wide.rounds * 2 < single.rounds
        assert wide.messages_per_round > 2 * single.messages_per_round

    def test_each_lane_individually_safe(self):
        result = run(
            2, lambda: RandomFaultAdversary(FaultProfile(loss=0.4, crash_t=0.005))
        )
        assert result.all_safe

    def test_single_lane_degenerates_to_plain_link(self):
        result = run(1, ReliableAdversary)
        assert result.completed
        assert result.delivered == PAYLOADS
        assert result.max_reorder_buffer == 0


class TestResequencer:
    def test_releases_longest_in_order_run(self):
        reseq = Resequencer()
        assert reseq.accept(1, b"b") == []
        assert reseq.backlog == 1
        assert reseq.accept(0, b"a") == [b"a", b"b"]
        assert reseq.delivered_in_order == [b"a", b"b"]
        assert reseq.next_expected == 2
        assert reseq.backlog == 0

    def test_duplicates_counted_and_dropped(self):
        # A crash-resubmitted slot whose first incarnation already landed
        # arrives as a replayed sequence number: dropped, never re-released.
        reseq = Resequencer()
        reseq.accept(0, b"a")
        assert reseq.accept(0, b"a-again") == []
        assert reseq.duplicates == 1
        reseq.accept(2, b"c")
        assert reseq.accept(2, b"c-again") == []  # pending duplicate
        assert reseq.duplicates == 2
        assert reseq.accept(1, b"b") == [b"b", b"c"]
        assert reseq.delivered_in_order == [b"a", b"b", b"c"]

    def test_high_water_tracks_worst_backlog(self):
        reseq = Resequencer()
        for sequence in (3, 2, 1):
            reseq.accept(sequence, b"x")
        assert reseq.high_water == 3
        reseq.accept(0, b"x")
        assert reseq.backlog == 0
        assert reseq.high_water == 3  # high-water survives the flush
