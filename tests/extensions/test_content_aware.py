"""Tests for the content-aware adversary (obliviousness dropped)."""

from __future__ import annotations

import pytest

from repro.baselines.naive_handshake import make_naive_handshake_link
from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.extensions.content_aware import ContentAwareReplayAttacker
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


def run_attack(link, seed, harvest=70, budget=200, messages=200):
    attacker = ContentAwareReplayAttacker(
        harvest_messages=harvest, strike_budget=budget
    )
    sim = Simulator(
        link, attacker, SequentialWorkload(messages), seed=seed, max_steps=30_000
    )
    attacker.attach_channels(sim.channels)
    result = sim.run()
    return attacker, check_all_safety(result.trace)


class TestSurgicalAttackOnFixedNonce:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_breaks_small_fixed_nonce(self, seed):
        link = make_naive_handshake_link(nonce_bits=6, seed=seed)
        attacker, report = run_attack(link, seed)
        assert not (report.no_replay.passed and report.no_duplication.passed)
        assert attacker.surgical_hits >= 1

    def test_surgery_is_cheap(self):
        # Unlike the oblivious flooder (hundreds of blind replays), the
        # surgical attacker lands its first replay within a few strikes.
        link = make_naive_handshake_link(nonce_bits=6, seed=0)
        attacker, report = run_attack(link, 0, budget=50)
        assert not report.passed
        assert attacker.strikes_at_first_hit is not None
        assert attacker.strikes_at_first_hit <= 10

    def test_index_covers_challenge_space(self):
        link = make_naive_handshake_link(nonce_bits=6, seed=1)
        attacker, __ = run_attack(link, 1)
        # 70 data packets over a 64-value space: near-full coverage.
        assert attacker.archive_size > 32


class TestRealProtocolResistsEvenContentAwareness:
    @pytest.mark.parametrize("seed", range(4))
    def test_entropy_not_obliviousness_carries_security(self, seed):
        # Given causality, reading packets does not help: the fresh
        # challenge has size(1, eps) >= 18 bits, and the archive simply
        # never contains it.
        link = make_data_link(epsilon=2.0 ** -12, seed=seed)
        attacker, report = run_attack(link, seed)
        assert report.passed
        assert attacker.surgical_hits == 0

    def test_attacker_requires_channel_attachment(self):
        link = make_data_link(epsilon=2.0 ** -12, seed=9)
        attacker = ContentAwareReplayAttacker(harvest_messages=5)
        sim = Simulator(link, attacker, SequentialWorkload(20), seed=9)
        # Never attached: it degenerates to a faithful FIFO adversary.
        result = sim.run()
        assert result.all_messages_ok
        assert attacker.archive_size == 0


class TestValidation:
    def test_rejects_degenerate_harvest(self):
        with pytest.raises(ValueError):
            ContentAwareReplayAttacker(harvest_messages=0)

    def test_describe(self):
        attacker = ContentAwareReplayAttacker()
        assert "content-aware" in attacker.describe()
