"""Tests for the forgery extension (Section 5's main open problem).

The paper conjectures: without the causality axiom its protocol keeps all
safety conditions but loses liveness.  These tests pin down both halves,
plus the retry-counter stall that is a second independent liveness hole.
"""

from __future__ import annotations

import pytest

from repro.checkers.safety import check_all_safety
from repro.core.events import ChannelId
from repro.core.protocol import make_data_link
from repro.extensions.forgery import (
    ForgeryLivenessAttacker,
    ForgingSimulator,
    InjectForgery,
    PktForged,
    RandomNoiseForger,
    RetryFloodAttacker,
)
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


class TestInjectForgeryMove:
    def test_validation(self):
        with pytest.raises(ValueError):
            InjectForgery(channel=ChannelId.T_TO_R, rho_bits=-1, tau_bits=0)
        with pytest.raises(ValueError):
            InjectForgery(channel=ChannelId.T_TO_R, rho_bits=1, tau_bits=1, max_retry=-1)

    def test_base_simulator_rejects_forgery(self):
        # The core model keeps causality by construction: only the
        # ForgingSimulator honours the move.
        from repro.core.exceptions import SimulationError

        link = make_data_link(seed=1)
        adversary = RandomNoiseForger(link.params, forge_rate=0.99)
        sim = Simulator(link, adversary, SequentialWorkload(1), seed=1)
        with pytest.raises(SimulationError):
            for __ in range(50):
                sim.step()


class TestSafetySurvivesForgery:
    def test_noise_forgery_keeps_safety(self):
        link = make_data_link(epsilon=2.0 ** -16, seed=1)
        adversary = RandomNoiseForger(link.params, forge_rate=0.3)
        sim = ForgingSimulator(
            link, adversary, SequentialWorkload(10), seed=1, max_steps=60_000
        )
        result = sim.run()
        assert result.completed
        assert check_all_safety(result.trace).passed
        assert sim.forged_deliveries > 20  # the noise was real

    def test_forged_events_recorded(self):
        link = make_data_link(epsilon=2.0 ** -16, seed=2)
        adversary = RandomNoiseForger(link.params, forge_rate=0.5)
        sim = ForgingSimulator(
            link, adversary, SequentialWorkload(3), seed=2, max_steps=20_000
        )
        result = sim.run()
        assert result.trace.count(PktForged) == sim.forged_deliveries

    def test_forgery_burns_error_budget(self):
        # Matching-length forgeries are counted as errors and trigger
        # extensions — the machinery treats them as any other mismatch.
        link = make_data_link(epsilon=2.0 ** -16, seed=3)
        adversary = RandomNoiseForger(link.params, forge_rate=0.4)
        sim = ForgingSimulator(
            link, adversary, SequentialWorkload(10), seed=3, max_steps=60_000
        )
        sim.run()
        assert link.receiver.stats.errors_counted > 0


class TestLivenessFallsToForgery:
    def test_generation_chasing_attack_stalls_forever(self):
        link = make_data_link(epsilon=2.0 ** -16, seed=4)
        attacker = ForgeryLivenessAttacker(link.params)
        sim = ForgingSimulator(
            link,
            attacker,
            SequentialWorkload(3),
            seed=4,
            max_steps=20_000,
            enforce_fairness=False,  # the attacker is fair by construction
        )
        result = sim.run()
        assert not result.completed
        assert result.metrics.messages_ok == 0
        # The receiver's challenge grew without bound while nothing moved.
        assert len(link.receiver.rho) > 10 * link.params.size(1)
        assert attacker.generation > 5
        # The schedule stayed fair: genuine packets kept being delivered.
        assert attacker.genuine_deliveries > 0
        # And safety held throughout — exactly the Section 5 conjecture.
        assert check_all_safety(result.trace).passed

    def test_attack_cost_is_exponential(self):
        link = make_data_link(epsilon=2.0 ** -16, seed=5)
        attacker = ForgeryLivenessAttacker(link.params)
        sim = ForgingSimulator(
            link,
            attacker,
            SequentialWorkload(1),
            seed=5,
            max_steps=10_000,
            enforce_fairness=False,
        )
        sim.run()
        # Reaching generation g costs about sum_{t<g} bound(t) ~ 2^g
        # forgeries: the generation grows only logarithmically in effort.
        assert attacker.generation <= 16
        assert attacker.forgeries >= 2 ** (attacker.generation - 1) - 2

    def test_retry_flood_stalls_the_watermark(self):
        link = make_data_link(epsilon=2.0 ** -16, seed=6)
        attacker = RetryFloodAttacker(stall=10 ** 6, reforge_every=2_000)
        sim = ForgingSimulator(
            link,
            attacker,
            SequentialWorkload(3),
            seed=6,
            max_steps=10_000,
            enforce_fairness=False,
        )
        result = sim.run()
        assert not result.completed
        assert result.metrics.messages_ok == 0
        # One forged poll poisoned the watermark far beyond honest reach.
        assert link.transmitter.last_retry_seen > 10_000
        assert attacker.forged_polls >= 1
        assert check_all_safety(result.trace).passed

    def test_rate_limited_forgery_is_outpaced(self):
        # The flip side: a forger limited to generation-1 shapes is beaten
        # by the doubling bound — liveness recovers.  (This is why the
        # attack above must chase generations adaptively.)
        link = make_data_link(epsilon=2.0 ** -16, seed=7)
        adversary = RandomNoiseForger(link.params, forge_rate=0.4)
        sim = ForgingSimulator(
            link, adversary, SequentialWorkload(5), seed=7, max_steps=60_000
        )
        result = sim.run()
        assert result.completed
