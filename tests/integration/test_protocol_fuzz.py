"""Property-based fuzzing: safety holds under arbitrary fault profiles.

The theorems quantify over *all* oblivious adversaries; hypothesis explores
the randomized family — arbitrary combinations of loss, duplication,
reordering and crash rates, arbitrary seeds, arbitrary retry cadences —
and asserts the Section 2.6 safety conditions on every resulting trace.
With ε = 2^-16 and a handful of messages per case, a single observed
violation would be a ~10^-4-probability event, i.e. effectively a bug.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.adversary.random_faults import DuplicateFloodAdversary
from repro.checkers.axioms import check_axiom1, check_axiom2
from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload

rates = st.floats(min_value=0.0, max_value=0.5)
crash_rates = st.floats(min_value=0.0, max_value=0.01)
seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)

FUZZ_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@FUZZ_SETTINGS
@given(loss=rates, dup=rates, reorder=rates, crash_t=crash_rates,
       crash_r=crash_rates, seed=seeds)
def test_safety_under_arbitrary_fault_profiles(loss, dup, reorder, crash_t, crash_r, seed):
    link = make_data_link(epsilon=2.0 ** -16, seed=seed)
    adversary = RandomFaultAdversary(
        FaultProfile(
            loss=loss, duplicate=dup, reorder=reorder,
            crash_t=crash_t, crash_r=crash_r,
        )
    )
    sim = Simulator(
        link, adversary, SequentialWorkload(6), seed=seed, max_steps=60_000
    )
    result = sim.run()
    report = check_all_safety(result.trace)
    assert report.passed, f"{report.all_reports} on {result.trace.summary()}"


@pytest.mark.slow
@FUZZ_SETTINGS
@given(flood=st.floats(min_value=0.1, max_value=0.9), seed=seeds)
def test_safety_under_duplicate_flooding(flood, seed):
    link = make_data_link(epsilon=2.0 ** -16, seed=seed)
    adversary = DuplicateFloodAdversary(flood=flood)
    sim = Simulator(
        link, adversary, SequentialWorkload(5), seed=seed, max_steps=60_000
    )
    result = sim.run()
    assert check_all_safety(result.trace).passed


@FUZZ_SETTINGS
@given(seed=seeds, retry_every=st.integers(min_value=1, max_value=10))
def test_harness_respects_axioms_for_any_cadence(seed, retry_every):
    link = make_data_link(epsilon=2.0 ** -16, seed=seed)
    adversary = RandomFaultAdversary(FaultProfile(loss=0.3, duplicate=0.3))
    sim = Simulator(
        link,
        adversary,
        SequentialWorkload(5),
        seed=seed,
        retry_every=retry_every,
        max_steps=60_000,
    )
    result = sim.run()
    assert check_axiom1(result.trace).passed
    assert check_axiom2(result.trace).passed


@FUZZ_SETTINGS
@given(seed=seeds)
def test_fault_free_runs_always_complete_in_order(seed):
    link = make_data_link(epsilon=2.0 ** -16, seed=seed)
    from repro.adversary.benign import ReliableAdversary

    sim = Simulator(link, ReliableAdversary(), SequentialWorkload(8), seed=seed)
    result = sim.run()
    assert result.all_messages_ok
    assert result.trace.received_messages() == result.trace.sent_messages()
