"""Integration: crash-recovery scenarios (the point versus [LMF88]).

Deterministic crash schedules exercise every crash position the protocol
distinguishes: mid-handshake transmitter crash (message lost, no
corruption), mid-handshake receiver crash (message still delivered — the
τ_crash sentinel at work), idle crashes, and double crashes.
"""

from __future__ import annotations

import pytest

from repro.adversary.crash import CrashStormAdversary, ScheduledCrashAdversary
from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


def run(adversary, messages=10, seed=0, link_seed=None, max_steps=100_000):
    link = make_data_link(
        epsilon=2.0 ** -16, seed=link_seed if link_seed is not None else seed
    )
    sim = Simulator(
        link, adversary, SequentialWorkload(messages), seed=seed, max_steps=max_steps
    )
    return sim.run(), link


class TestSingleCrashes:
    @pytest.mark.parametrize("turn", [3, 7, 11, 23])
    def test_transmitter_crash_anywhere_is_safe(self, turn):
        result, __ = run(ScheduledCrashAdversary([(turn, "T")]))
        assert result.completed
        assert check_all_safety(result.trace).passed

    @pytest.mark.parametrize("turn", [3, 7, 11, 23])
    def test_receiver_crash_anywhere_is_safe(self, turn):
        result, __ = run(ScheduledCrashAdversary([(turn, "R")]))
        assert result.completed
        assert check_all_safety(result.trace).passed

    def test_transmitter_crash_loses_at_most_inflight_message(self):
        result, __ = run(ScheduledCrashAdversary([(9, "T")]), messages=10)
        assert result.metrics.messages_ok >= 9

    def test_receiver_crash_loses_no_messages(self):
        # The paper's sentinel argument: after crash^R the receiver still
        # recognises the in-flight message as new.
        result, __ = run(ScheduledCrashAdversary([(9, "R")]), messages=10)
        assert result.metrics.messages_ok == 10


class TestDoubleCrashes:
    def test_back_to_back_crashes(self):
        result, __ = run(ScheduledCrashAdversary([(9, "T"), (10, "R")]))
        assert result.completed
        assert check_all_safety(result.trace).passed

    def test_simultaneous_style_crash_storm(self):
        schedule = [(i, "T") for i in range(5, 80, 10)] + [
            (i, "R") for i in range(8, 80, 10)
        ]
        result, __ = run(ScheduledCrashAdversary(schedule), messages=12)
        assert check_all_safety(result.trace).passed
        assert result.completed


class TestMemoryErasure:
    def test_counters_reset_by_crash(self):
        result, link = run(ScheduledCrashAdversary([(30, "T"), (31, "R")]))
        assert result.completed
        # Post-run state reflects the last message only, not history.
        assert link.transmitter.generation == 1
        assert link.receiver.error_count == 0

    def test_storage_does_not_accumulate_across_crashes(self):
        adversary = CrashStormAdversary(crash_rate=0.01, max_crashes=20)
        result, link = run(adversary, messages=30, seed=5)
        # Fault-free steady state holds five size(1)-scale strings: the
        # transmitter's tau and remembered previous tau, the receiver's
        # rho, remembered previous rho, and last-accepted tau (plus the
        # tau'_crash marker bits).  Crashes must not inflate this.
        baseline = 5 * link.params.size(1) + 8
        assert result.metrics.storage_final_bits <= baseline

    def test_high_crash_rate_eventually_completes(self):
        adversary = CrashStormAdversary(crash_rate=0.02, max_crashes=40)
        result, __ = run(adversary, messages=15, seed=6, max_steps=300_000)
        assert result.completed
        assert check_all_safety(result.trace).passed


class TestCrashResolutionSemantics:
    def test_crashed_messages_are_crash_resolved(self):
        result, __ = run(ScheduledCrashAdversary([(6, "T")]), messages=8)
        outcomes = result.trace.message_outcomes()
        resolutions = {o.resolution for o in outcomes}
        assert "ok" in resolutions
        # Either the crash hit between messages (all ok) or one message
        # resolved by crash; never anything else.
        assert resolutions <= {"ok", "crash"}
