"""Integration: Theorem 9's liveness under the hardest fair schedules."""

from __future__ import annotations

import pytest

from repro.adversary.benign import DelayedFifoAdversary
from repro.adversary.composite import PhasedAdversary
from repro.adversary.fairness import FairnessEnforcer, StallingAdversary
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.checkers.liveness import check_liveness, progress_gaps
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


def run(adversary, messages=5, seed=0, **kwargs):
    link = make_data_link(epsilon=2.0 ** -16, seed=seed)
    sim = Simulator(
        link, adversary, SequentialWorkload(messages), seed=seed, **kwargs
    )
    return sim.run()


class TestMinimalFairAdversary:
    @pytest.mark.parametrize("patience", [4, 16, 64])
    def test_stalling_plus_enforcement_always_progresses(self, patience):
        result = run(
            StallingAdversary(),
            seed=patience,
            fairness_patience=patience,
            max_steps=200_000,
        )
        assert result.completed
        assert check_liveness(result.trace, result.completed).passed

    def test_waiting_time_scales_with_patience(self):
        gaps = []
        for patience in (4, 32):
            result = run(
                StallingAdversary(),
                seed=1,
                fairness_patience=patience,
                max_steps=200_000,
            )
            gaps.append(progress_gaps(result.trace).worst)
        assert gaps[1] > gaps[0]


class TestHostileButFairSchedules:
    def test_progress_despite_heavy_loss(self):
        adversary = RandomFaultAdversary(FaultProfile(loss=0.8))
        result = run(adversary, seed=2, max_steps=300_000)
        assert result.completed

    def test_progress_despite_alternating_stall_and_flood(self):
        adversary = PhasedAdversary(
            [
                (StallingAdversary(), 50),
                (RandomFaultAdversary(FaultProfile(duplicate=0.8)), 50),
                (StallingAdversary(), 50),
                (RandomFaultAdversary(FaultProfile()), 1),
            ]
        )
        result = run(adversary, seed=3, max_steps=300_000)
        assert result.completed

    def test_progress_with_large_latency(self):
        result = run(DelayedFifoAdversary(delay_turns=20), seed=4, max_steps=300_000)
        assert result.completed


class TestUnfairAdversaryContrast:
    def test_without_axiom3_nothing_is_promised(self):
        # Disable enforcement: the stalling adversary blocks forever and
        # liveness (correctly) fails within the budget.
        result = run(
            StallingAdversary(),
            seed=5,
            enforce_fairness=False,
            max_steps=3_000,
        )
        assert not result.completed
        assert not check_liveness(result.trace, result.completed).passed

    def test_enforcer_restores_the_theorem(self):
        wrapped = FairnessEnforcer(StallingAdversary(), patience=16)
        result = run(wrapped, seed=5, max_steps=200_000)
        assert result.completed
