"""Integration: the Section 3 replay attack, both sides of the story.

The paper's central narrative: a fixed-nonce handshake falls to an
oblivious crash-then-replay adversary, and adaptive nonce extension is
exactly what defeats it.  These tests reproduce the attack end-to-end.
"""

from __future__ import annotations

import pytest

from repro.adversary.replay import ReplayAttacker
from repro.baselines.naive_handshake import make_naive_handshake_link
from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.sim.simulator import Simulator
from repro.sim.workload import SequentialWorkload


def attack_run(link, seed, harvest=80, rounds=6, messages=200):
    attacker = ReplayAttacker(harvest_messages=harvest, replay_rounds=rounds)
    sim = Simulator(
        link, attacker, SequentialWorkload(messages), seed=seed, max_steps=40_000
    )
    result = sim.run()
    return result, check_all_safety(result.trace)


def uniqueness_broken(report) -> bool:
    return not (report.no_replay.passed and report.no_duplication.passed)


class TestAttackBreaksFixedNonce:
    def test_small_nonce_usually_falls(self):
        broken = sum(
            uniqueness_broken(
                attack_run(make_naive_handshake_link(nonce_bits=5, seed=s), s)[1]
            )
            for s in range(15)
        )
        assert broken >= 8

    def test_attack_stays_oblivious(self):
        # The attacker object holds only PacketInfo records: ids + lengths.
        link = make_naive_handshake_link(nonce_bits=5, seed=0)
        attacker = ReplayAttacker(harvest_messages=20, replay_rounds=2)
        sim = Simulator(link, attacker, SequentialWorkload(50), seed=0, max_steps=20_000)
        sim.run()
        for info in attacker._archive:
            assert set(info.__dataclass_fields__) == {
                "channel",
                "packet_id",
                "length_bits",
            }


class TestPaperProtocolResists:
    @pytest.mark.parametrize("seed", range(10))
    def test_adaptive_extension_defeats_the_attack(self, seed):
        link = make_data_link(epsilon=2.0 ** -12, seed=seed)
        __, report = attack_run(link, seed)
        assert report.passed

    def test_extension_mechanism_engages(self):
        # The defence is visible: the replay storm drives the receiver's
        # error counter past bound(1) and the challenge grows.
        link = make_data_link(epsilon=2.0 ** -12, seed=3)
        result, __ = attack_run(link, 3)
        assert link.receiver.stats.errors_counted > 0 or result.completed

    def test_violation_rate_within_epsilon_budget(self):
        # Pooled over many runs, uniqueness violations stay consistent with
        # the epsilon bound (here: zero observed).
        epsilon = 2.0 ** -12
        violations = trials = 0
        for seed in range(12):
            link = make_data_link(epsilon=epsilon, seed=seed)
            __, report = attack_run(link, seed, harvest=50, messages=120)
            violations += report.no_replay.failure_count
            violations += report.no_duplication.failure_count
            trials += report.no_replay.trials
        assert trials > 500
        assert violations / trials <= epsilon * 4  # generous slack, expect 0


class TestDoseResponse:
    def test_bigger_archive_hurts_fixed_nonce_more(self):
        def broken_count(harvest):
            return sum(
                uniqueness_broken(
                    attack_run(
                        make_naive_handshake_link(nonce_bits=7, seed=s),
                        s,
                        harvest=harvest,
                        messages=harvest * 3,
                    )[1]
                )
                for s in range(10)
            )

        assert broken_count(100) >= broken_count(10)
