"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.messages == 25
        assert args.epsilon_bits == 16

    def test_attack_protocol_arg(self):
        args = build_parser().parse_args(["attack", "--protocol", "fixed:6"])
        assert args.protocol == "fixed:6"


class TestSimulateCommand:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["simulate", "--messages", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "completed" in out
        assert "no-replay" in out
        assert "VIOLATED" not in out

    def test_faulty_run_still_clean(self, capsys):
        code = main([
            "simulate", "--messages", "8", "--loss", "0.3",
            "--duplicate", "0.3", "--reorder", "0.5",
            "--crash-rate", "0.002", "--seed", "3",
        ])
        assert code == 0
        assert "VIOLATED" not in capsys.readouterr().out


class TestAttackCommand:
    def test_fixed_nonce_usually_broken(self, capsys):
        code = main([
            "attack", "--protocol", "fixed:5", "--harvest", "60",
            "--runs", "5", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fixed:5" in out

    def test_paper_protocol_never_broken(self, capsys):
        main(["attack", "--protocol", "paper", "--harvest", "40",
              "--runs", "3", "--seed", "0"])
        out = capsys.readouterr().out
        # broken column shows 0 of 3
        assert "| 0" in out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["attack", "--protocol", "nonsense"])


class TestSweepCommand:
    def test_sweep_prints_rows(self, capsys):
        code = main([
            "sweep-loss", "--losses", "0,0.3", "--runs", "2",
            "--messages", "6",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pkts/msg" in out
        assert "0.3" in out
