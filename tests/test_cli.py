"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.resilience.faultplan import CrashAt, DuplicateBurst, FaultPlan
from repro.resilience.supervisor import derive_run_seed


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.messages == 25
        assert args.epsilon_bits == 16

    def test_attack_protocol_arg(self):
        args = build_parser().parse_args(["attack", "--protocol", "fixed:6"])
        assert args.protocol == "fixed:6"

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.runs == 50
        assert args.jobs == 2
        assert args.retries == 0
        assert args.timeout is None
        assert args.fault_plan is None
        assert args.artifacts_dir is None

    def test_shrink_requires_plan_and_seed(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shrink", "--seed", "1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shrink", "--fault-plan", "p.json"])
        args = build_parser().parse_args(
            ["shrink", "--fault-plan", "p.json", "--seed", "7"]
        )
        assert args.seed == 7
        assert args.run_index == 0


class TestSimulateCommand:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["simulate", "--messages", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "completed" in out
        assert "no-replay" in out
        assert "VIOLATED" not in out

    def test_faulty_run_still_clean(self, capsys):
        code = main([
            "simulate", "--messages", "8", "--loss", "0.3",
            "--duplicate", "0.3", "--reorder", "0.5",
            "--crash-rate", "0.002", "--seed", "3",
        ])
        assert code == 0
        assert "VIOLATED" not in capsys.readouterr().out


class TestAttackCommand:
    def test_fixed_nonce_usually_broken(self, capsys):
        code = main([
            "attack", "--protocol", "fixed:5", "--harvest", "60",
            "--runs", "5", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fixed:5" in out

    def test_paper_protocol_never_broken(self, capsys):
        main(["attack", "--protocol", "paper", "--harvest", "40",
              "--runs", "3", "--seed", "0"])
        out = capsys.readouterr().out
        # broken column shows 0 of 3
        assert "| 0" in out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["attack", "--protocol", "nonsense"])


class TestSweepCommand:
    def test_sweep_prints_rows(self, capsys):
        code = main([
            "sweep-loss", "--losses", "0,0.3", "--runs", "2",
            "--messages", "6",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pkts/msg" in out
        assert "0.3" in out

    def test_sweep_labels_rows(self, capsys):
        main(["sweep-loss", "--losses", "0.2", "--runs", "1", "--messages", "4"])
        assert "loss=0.2" in capsys.readouterr().out


def _crash_then_replay_plan(run: int) -> FaultPlan:
    return FaultPlan.of(
        DuplicateBurst(step=10, copies=8, spacing=3, run=run),
        CrashAt(step=11, station="R", run=run),
        label="crash-then-replay",
    )


class TestCampaignCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        code = main([
            "campaign", "--runs", "3", "--jobs", "1", "--messages", "3",
            "--label", "smoke",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "smoke" in out
        assert "ok" in out

    def test_scripted_failure_flips_exit_code(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        _crash_then_replay_plan(run=4).save(str(plan_path))
        code = main([
            "campaign", "--runs", "6", "--jobs", "1", "--messages", "6",
            "--protocol", "fixed:2", "--base-seed", "0",
            "--fault-plan", str(plan_path),
            "--artifacts-dir", str(tmp_path / "artifacts"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "safety_failed" in out
        campaigns = list((tmp_path / "artifacts").iterdir())
        assert len(campaigns) == 1


class TestShrinkCommand:
    def test_shrink_reports_minimal_repro(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        _crash_then_replay_plan(run=4).save(str(plan_path))
        out_path = tmp_path / "minimal.json"
        code = main([
            "shrink", "--fault-plan", str(plan_path),
            "--seed", str(derive_run_seed(0, 4, 0)),
            "--messages", "6", "--run-index", "4",
            "--protocol", "fixed:2", "--max-probes", "40",
            "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "minimal" in out
        assert "safety_failed" in out
        reloaded = FaultPlan.load(str(out_path))
        assert len(reloaded.events) >= 1

    def test_shrink_refuses_passing_repro(self, tmp_path):
        plan_path = tmp_path / "empty.json"
        FaultPlan().save(str(plan_path))
        with pytest.raises(SystemExit, match="nothing to shrink"):
            main([
                "shrink", "--fault-plan", str(plan_path),
                "--seed", "1", "--messages", "3",
            ])


class TestLiveCommand:
    def test_live_defaults(self):
        args = build_parser().parse_args(["live"])
        assert args.messages == 50
        assert args.budget == 60.0
        assert args.give_up == 5.0
        assert args.fault_plan is None

    def test_clean_live_run_exits_zero(self, capsys):
        code = main([
            "live", "--messages", "5", "--seed", "1",
            "--poll-base", "0.002", "--poll-cap", "0.05",
            "--budget", "20", "--give-up", "3", "--label", "cli-clean",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered" in out
        assert "cli-clean" in out

    def test_live_with_crash_plan_and_chaos(self, tmp_path, capsys):
        plan_path = tmp_path / "crashes.json"
        FaultPlan.of(CrashAt(step=5, station="T")).save(str(plan_path))
        code = main([
            "live", "--messages", "8", "--seed", "2",
            "--drop", "0.05", "--duplicate", "0.05",
            "--fault-plan", str(plan_path),
            "--poll-base", "0.002", "--poll-cap", "0.05",
            "--budget", "30", "--give-up", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "crashes (T/R)" in out
        assert "1/0" in out

    def test_unreconcilable_flips_exit_code(self, capsys):
        code = main([
            "live", "--messages", "3", "--seed", "3", "--drop", "1.0",
            "--poll-base", "0.002", "--poll-cap", "0.05",
            "--budget", "10", "--give-up", "0.5",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "unreconcilable" in out
        assert "forensic tail" in out

    def test_bad_rates_rejected(self):
        with pytest.raises(SystemExit):
            main(["live", "--drop", "1.5"])


class TestSweepRelayCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep-relay"])
        assert args.topologies == "line,ring,mesh"
        assert args.fail_rates == "0,0.01,0.05,0.1"
        assert args.runs == 10
        assert args.engine == "kernel"
        assert args.paths == 1

    def test_small_sweep_prints_grid(self, capsys):
        code = main([
            "sweep-relay", "--topologies", "line", "--fail-rates", "0",
            "--runs", "2", "--messages", "4", "--jobs", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "relay sweep" in out
        assert "line-4" in out
        assert "100.0%" in out

    def test_markdown_output(self, capsys):
        code = main([
            "sweep-relay", "--topologies", "line", "--fail-rates", "0",
            "--runs", "2", "--messages", "4", "--jobs", "1", "--markdown",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.lstrip().startswith("| topology |")


class TestTopologyEngineOptions:
    def test_campaign_engine_and_paths_parse(self):
        args = build_parser().parse_args([
            "campaign", "--topology", "ring", "--topology-size", "8",
            "--engine", "kernel", "--paths", "2",
        ])
        assert args.engine == "kernel"
        assert args.paths == 2

    def test_kernel_striped_campaign_runs_clean(self, capsys):
        code = main([
            "campaign", "--topology", "ring", "--topology-size", "6",
            "--engine", "kernel", "--paths", "2",
            "--runs", "2", "--jobs", "1", "--messages", "6",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ok" in out


class TestBenchQuickOutGuard:
    def test_quick_does_not_clobber_full_baseline(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH.json"
        # A committed full-run baseline (quick=false) with a ratio a
        # quick re-record must not overwrite.
        baseline = {"schema": 1, "quick": False,
                    "ratios": {"relay_hop_efficiency": 1.23}}
        out_path.write_text(json.dumps(baseline))
        code = main([
            "bench", "--only", "relay", "--quick", "--out", str(out_path),
        ])
        assert code == 0
        assert "quick_smoke" in capsys.readouterr().out
        merged = json.loads(out_path.read_text())
        assert merged["quick"] is False
        assert merged["ratios"] == {"relay_hop_efficiency": 1.23}
        assert merged["quick_smoke"]["quick"] is True
        assert "relay_kernel_speedup" in merged["quick_smoke"]["ratios"]

    def test_quick_writes_fresh_file_directly(self, tmp_path):
        import json

        out_path = tmp_path / "BENCH.json"
        code = main([
            "bench", "--only", "relay", "--quick", "--out", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["quick"] is True
        assert "quick_smoke" not in payload
