"""Unit tests for the perf-regression gate (no timing involved).

The gate's arithmetic must be exact and boring: everything here runs on
hand-built payload dicts, so the tests are immune to host speed.  The
actual measured numbers live in the committed ``BENCH_core.json``; the CI
smoke job exercises the real ``repro bench --quick --check`` path.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.perf.bench import (
    SEED_BASELINE,
    SEED_COMPARISON,
    check_regression,
    compare_payloads,
    dump,
    gate_ratios,
    hosts_match,
    load,
)


def payload_with_ratios(**ratios) -> dict:
    return {"ratios": dict(ratios)}


def full_ratios(value: float) -> dict:
    return payload_with_ratios(
        steps_speedup_reliable=value,
        steps_speedup_lossy=value,
        memory_reduction_reliable=value,
        memory_reduction_lossy=value,
    )


def test_gate_ratios_from_results():
    results = {
        "macro": {
            "reliable": {
                "legacy": {"steps_per_second": 100.0},
                "streaming_none": {"steps_per_second": 150.0},
            },
            "lossy": {
                "legacy": {"steps_per_second": 80.0},
                "streaming_none": {"steps_per_second": 120.0},
            },
        },
        "memory": {
            "reliable": {"legacy": 600, "streaming_none": 300},
            "lossy": {"legacy": 900, "streaming_none": 450},
        },
        "campaign": {
            "per_run": {"steps_per_second": 10_000.0},
            "batched": {"steps_per_second": 35_000.0},
        },
    }
    ratios = gate_ratios(results)
    assert ratios == {
        "steps_speedup_reliable": pytest.approx(1.5),
        "steps_speedup_lossy": pytest.approx(1.5),
        "memory_reduction_reliable": pytest.approx(2.0),
        "memory_reduction_lossy": pytest.approx(2.0),
        "campaign_dispatch_speedup": pytest.approx(3.5),
    }


def test_gate_ratios_without_campaign_results():
    # Payloads predating the campaign benchmark still produce the other
    # ratios instead of KeyError-ing.
    results = {
        "macro": {
            workload: {
                "legacy": {"steps_per_second": 100.0},
                "streaming_none": {"steps_per_second": 150.0},
            }
            for workload in ("reliable", "lossy")
        },
        "memory": {
            workload: {"legacy": 600, "streaming_none": 300}
            for workload in ("reliable", "lossy")
        },
    }
    ratios = gate_ratios(results)
    assert "campaign_dispatch_speedup" not in ratios
    assert ratios["steps_speedup_reliable"] == pytest.approx(1.5)


def test_check_regression_passes_within_threshold():
    baseline = full_ratios(1.4)
    # 25% below 1.4 is 1.05; anything at or above passes.
    assert check_regression(full_ratios(1.4), baseline) == []
    assert check_regression(full_ratios(1.06), baseline) == []
    assert check_regression(full_ratios(2.0), baseline) == []


def test_check_regression_flags_a_drop():
    failures = check_regression(full_ratios(1.0), full_ratios(1.4))
    assert len(failures) == 4
    assert all("fell below" in failure for failure in failures)


def test_check_regression_flags_missing_current_ratio():
    current = payload_with_ratios(steps_speedup_reliable=1.4)
    failures = check_regression(current, full_ratios(1.4))
    assert any("missing" in failure for failure in failures)


def test_check_regression_skips_ratios_absent_from_baseline():
    # Forward compatibility: an old baseline without a key gates nothing.
    assert check_regression(full_ratios(1.4), payload_with_ratios()) == []


def test_check_regression_threshold_validation():
    for bad in (0.0, 1.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            check_regression(full_ratios(1.0), full_ratios(1.0), threshold=bad)


def test_absolute_floor_fails_even_with_matching_baseline():
    # kernel_steps_speedup carries a machine-independent floor of 5.0: a
    # baseline recorded at the same low value cannot launder it through
    # the relative check.
    low = payload_with_ratios(kernel_steps_speedup=4.0)
    failures = check_regression(low, low)
    assert len(failures) == 1
    assert "absolute floor" in failures[0]


def test_absolute_floor_passes_at_or_above():
    ok = payload_with_ratios(
        kernel_steps_speedup=5.0, kernel_steps_speedup_lossy=3.0
    )
    assert check_regression(ok, ok) == []


def test_floor_not_enforced_when_key_absent():
    # Pre-kernel payloads (no kernel keys at all) still gate cleanly.
    assert check_regression(full_ratios(1.4), full_ratios(1.4)) == []


def hosted(payload: dict, python: str = "3.12", platform: str = "linux") -> dict:
    return {**payload, "host": {"python": python, "platform": platform}}


def test_hosts_match_compares_recorded_hosts():
    assert hosts_match(hosted({}), hosted({}))
    assert not hosts_match(hosted({}), hosted({}, platform="darwin"))
    # A payload predating host recording never matches: relative checks
    # must not pretend the hosts are known-identical.
    assert not hosts_match(hosted({}), {})


def test_compare_payloads_same_host_keeps_failures():
    baseline = hosted(full_ratios(1.4))
    failures, warnings = compare_payloads(hosted(full_ratios(1.0)), baseline)
    assert len(failures) == 4
    assert warnings == []


def test_compare_payloads_cross_host_demotes_relative_to_warnings():
    baseline = hosted(full_ratios(1.4))
    current = hosted(full_ratios(1.0), platform="darwin")
    failures, warnings = compare_payloads(current, baseline)
    assert failures == []
    # The demoted shortfalls plus one explanatory preamble.
    assert len(warnings) == 5
    assert "host" in warnings[0]


def test_compare_payloads_cross_host_keeps_absolute_floors():
    baseline = hosted(payload_with_ratios(kernel_steps_speedup=6.0))
    current = hosted(
        payload_with_ratios(kernel_steps_speedup=4.0), platform="darwin"
    )
    failures, warnings = compare_payloads(current, baseline)
    assert len(failures) == 1
    assert "absolute floor" in failures[0]
    assert warnings  # the relative shortfall still surfaces as a warning


def test_dump_load_round_trip(tmp_path):
    payload = full_ratios(1.23)
    path = tmp_path / "bench.json"
    dump(payload, str(path))
    assert load(str(path)) == payload


def test_committed_bench_core_passes_its_own_gate():
    # The committed baseline must be self-consistent: its ratios compared
    # against itself always pass, and they carry every gated key.
    baseline = load(str(Path(__file__).resolve().parents[2] / "BENCH_core.json"))
    assert check_regression(baseline, baseline) == []
    for key in (
        "steps_speedup_reliable",
        "steps_speedup_lossy",
        "memory_reduction_reliable",
        "memory_reduction_lossy",
        "campaign_dispatch_speedup",
        "kernel_steps_speedup",
        "kernel_steps_speedup_lossy",
    ):
        assert baseline["ratios"][key] > 1.0
    # The headline claim of the batched campaign engine: sharded dispatch
    # clears 3x over per-run dispatch on the recorded lossy campaign.
    assert baseline["ratios"]["campaign_dispatch_speedup"] >= 3.0
    # The step kernel's headline: the committed numbers clear the same
    # absolute floors CI enforces, with the lossy leg above 3x.
    assert baseline["ratios"]["kernel_steps_speedup"] >= 5.0
    assert baseline["ratios"]["kernel_steps_speedup_lossy"] >= 3.0
    # The baseline records its host so cross-host checks can demote
    # baseline-relative failures to warnings.
    assert set(baseline["host"]) == {"python", "platform"}


def test_seed_comparison_backs_the_two_x_claim():
    # The before/after story in the docs is generated from these numbers;
    # keep them arithmetically consistent with themselves.
    for workload in ("reliable", "lossy"):
        entry = SEED_COMPARISON[workload]
        assert entry["steps_speedup"] == pytest.approx(
            entry["streaming_none_steps_per_second"]
            / entry["seed_steps_per_second"],
            abs=0.01,
        )
        assert entry["memory_reduction"] == pytest.approx(
            entry["seed_peak_tracemalloc_bytes"]
            / entry["streaming_none_peak_tracemalloc_bytes"],
            abs=0.01,
        )
        assert entry["steps_speedup"] >= 2.0
        assert entry["memory_reduction"] > 1.0
        assert (
            entry["seed_steps_per_second"]
            == SEED_BASELINE[workload]["steps_per_second"]
        )


def test_bench_cli_parser_accepts_the_documented_flags():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["bench", "--quick", "--out", "x.json", "--check", "y.json",
         "--threshold", "0.3", "--base-seed", "7", "--only", "kernel",
         "--profile"]
    )
    assert args.command == "bench"
    assert args.quick and args.out == "x.json" and args.check == "y.json"
    assert args.threshold == pytest.approx(0.3)
    assert args.base_seed == 7
    assert args.only == "kernel"
    assert args.profile
