"""Unit tests for the self-stabilization monitor (docs/PROTOCOL.md §13).

The monitor's contract has sharp edges worth pinning individually: the
probation scrub must erase exactly the violations accrued since the
episode's first corruption (never pre-fault ones), a truncated run must
keep its probation violations, overlapping corruptions must share one
episode but yield one convergence record each, and the seed/field list in
every record must survive the wire round trip (forensics replay depends
on it).

Crash events serve as the clean progress stream here: they are progress
events for the streak but (unlike a bare ``Ok``, which the order monitor
flags as "OK with no message in flight") never violate any scrubbed
condition.
"""

from __future__ import annotations

import itertools

import pytest

from repro.checkers.stabilization import (
    ConvergenceRecord,
    StabilizationMonitor,
    StabilizationReport,
)
from repro.checkers.streaming import StreamingChecks
from repro.core.events import (
    ChannelId,
    Corruption,
    CrashR,
    CrashT,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    SendMsg,
)

WINDOW = 3


def make_checks(window: int = WINDOW) -> StreamingChecks:
    return StreamingChecks(stabilization=True, stabilization_window=window)


def feed(checks: StreamingChecks, events) -> None:
    for index, event in enumerate(events):
        checks.observe(index, event)


def clean_progress(count: int):
    """``count`` violation-free progress events (alternating crashes)."""
    stations = itertools.cycle([CrashT, CrashR])
    return [next(stations)() for __ in range(count)]


def orphan_receive(payload: bytes = b"??") -> ReceiveMsg:
    """A receive with no matching send: a guaranteed causality violation."""
    return ReceiveMsg(message=payload)


class TestConvergence:
    def test_clean_streak_converges_and_scrubs(self):
        checks = make_checks()
        feed(checks, [
            Corruption(station="T", fields=("tau",), seed=5),
            orphan_receive(),          # the corruption's echo: a violation
            *clean_progress(WINDOW),
        ])
        report = checks.stabilization_report()
        assert report.corruptions == 1
        assert report.converged == 1
        assert report.stabilized
        # The probation-era causality violation was scrubbed.
        assert checks.safety_report().passed

    def test_violation_resets_the_streak(self):
        checks = make_checks()
        feed(checks, [
            Corruption(station="R", fields=("rho",), seed=1),
            *clean_progress(2),
            orphan_receive(),          # streak back to zero (and a violation)
            *clean_progress(2),
        ])
        # Only 2 clean events since the last violation: still on probation.
        assert checks.stabilization_report().converged == 0
        checks.observe(6, CrashT())
        assert checks.stabilization_report().converged == 1
        assert checks.safety_report().passed

    def test_pre_fault_violations_are_never_scrubbed(self):
        checks = make_checks()
        feed(checks, [
            orphan_receive(b"genuine"),  # a real bug, before any corruption
            Corruption(station="T", fields=("num",), seed=2),
            *clean_progress(WINDOW),
        ])
        assert checks.stabilization_report().converged == 1
        report = checks.safety_report()
        assert not report.passed

    def test_overlapping_corruptions_one_episode_one_record_each(self):
        checks = make_checks()
        feed(checks, [
            Corruption(station="T", fields=("tau",), seed=10),
            CrashT(),
            Corruption(station="R", fields=("rho",), seed=11),  # extends episode
            *clean_progress(WINDOW),
        ])
        report = checks.stabilization_report()
        assert report.corruptions == 2
        assert report.converged == 2
        stations = sorted(r.station for r in report.records)
        assert stations == ["R", "T"]
        # The second corruption is younger: fewer events to convergence.
        by_station = {r.station: r for r in report.records}
        assert by_station["R"].events < by_station["T"].events

    def test_records_count_events_and_datagrams(self):
        checks = make_checks(window=2)
        feed(checks, [
            Corruption(station="T", fields=(), seed=3),
            PktSent(channel=ChannelId.T_TO_R, packet_id=1, length_bits=64),
            PktDelivered(channel=ChannelId.T_TO_R, packet_id=1),
            CrashT(),
            PktSent(channel=ChannelId.R_TO_T, packet_id=2, length_bits=64),
            CrashR(),
        ])
        (record,) = checks.stabilization_report().records
        assert record.seed == 3
        assert record.events == 5
        assert record.datagrams == 2
        assert record.wall_seconds >= 0.0


class TestFinalize:
    def test_completed_run_closes_open_episode(self):
        checks = make_checks()
        feed(checks, [
            Corruption(station="T", fields=("t",), seed=4),
            orphan_receive(),
            CrashT(),
        ])
        monitor = checks.stabilization
        monitor.finalize(run_completed=True)
        assert checks.stabilization_report().stabilized
        assert checks.safety_report().passed

    def test_truncated_run_keeps_probation_violations(self):
        checks = make_checks()
        feed(checks, [
            Corruption(station="T", fields=("t",), seed=4),
            orphan_receive(),
            CrashT(),
        ])
        monitor = checks.stabilization
        monitor.finalize(run_completed=False)
        report = checks.stabilization_report()
        assert report.corruptions == 1
        assert report.converged == 0
        assert not report.stabilized
        # Probation violations stand, and the monitor adds its own.
        assert not checks.safety_report().passed
        assert monitor.report().violations
        assert "never" in monitor.report().violations[0].detail


class TestMonitorBasics:
    def test_window_validated(self):
        with pytest.raises(ValueError):
            StabilizationMonitor(scrub=(), window=0)

    def test_no_corruptions_not_stabilized(self):
        report = make_checks().stabilization_report()
        assert report.corruptions == 0
        assert not report.stabilized

    def test_reset_clears_everything(self):
        checks = make_checks()
        feed(checks, [
            Corruption(station="T", fields=("tau",), seed=6),
            CrashT(),
        ])
        monitor = checks.stabilization
        monitor.reset()
        report = monitor.summary()
        assert report.corruptions == 0
        assert report.converged == 0
        assert not monitor.report().violations


class TestWireRoundTrip:
    def test_report_round_trips_with_seed_and_fields(self):
        report = StabilizationReport(
            corruptions=3,
            converged=2,
            window=8,
            records=(
                ConvergenceRecord(
                    station="T", fields=("tau", "num"), seed=9001,
                    events=17, datagrams=5, wall_seconds=0.25,
                ),
                ConvergenceRecord(
                    station="R", fields=(), seed=9002,
                    events=4, datagrams=1, wall_seconds=0.01,
                ),
            ),
        )
        decoded = StabilizationReport.from_wire(report.to_wire())
        assert decoded == report
        assert decoded.records[0].seed == 9001
        assert decoded.records[0].fields == ("tau", "num")
        assert decoded.pending == 1
