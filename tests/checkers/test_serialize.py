"""Unit tests for trace serialization."""

from __future__ import annotations

import io

import pytest

from repro.checkers.serialize import (
    dump_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
)
from repro.checkers.trace import Trace
from repro.core.events import (
    ChannelId,
    CrashR,
    CrashT,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
)
from repro.core.exceptions import CodecError

ALL_EVENTS = [
    SendMsg(b"payload \x00\xff"),
    PktSent(ChannelId.R_TO_T, 3, 128),
    PktDelivered(ChannelId.R_TO_T, 3),
    ReceiveMsg(b"payload \x00\xff"),
    Ok(),
    Retry(),
    CrashT(),
    CrashR(),
]


class TestEventRoundtrip:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: type(e).__name__)
    def test_roundtrip(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    def test_binary_payload_survives(self):
        event = SendMsg(bytes(range(256)))
        assert event_from_dict(event_to_dict(event)) == event

    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError):
            event_from_dict({"type": "warp_drive"})
        with pytest.raises(CodecError):
            event_from_dict({"no_type": True})


class TestTraceRoundtrip:
    def test_dump_load(self):
        trace = Trace(ALL_EVENTS)
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert list(loaded) == list(trace)

    def test_blank_lines_skipped(self):
        buffer = io.StringIO('{"type": "ok"}\n\n{"type": "retry"}\n')
        loaded = load_trace(buffer)
        assert len(loaded) == 2

    def test_bad_json_reported_with_line(self):
        buffer = io.StringIO('{"type": "ok"}\nnot-json\n')
        with pytest.raises(CodecError) as exc:
            load_trace(buffer)
        assert "line 2" in str(exc.value)

    def test_simulation_trace_roundtrips(self):
        from repro.adversary.benign import ReliableAdversary
        from repro.core.protocol import make_data_link
        from repro.sim.simulator import Simulator
        from repro.sim.workload import SequentialWorkload

        link = make_data_link(seed=1)
        result = Simulator(
            link, ReliableAdversary(), SequentialWorkload(4), seed=1
        ).run()
        buffer = io.StringIO()
        dump_trace(result.trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert list(loaded) == list(result.trace)

    def test_checkers_agree_on_loaded_trace(self):
        from repro.checkers.safety import check_all_safety

        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"a"), Ok()])
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        assert check_all_safety(load_trace(buffer)).passed
