"""Unit tests for the environment-axiom validators."""

from __future__ import annotations

import pytest

from repro.checkers.axioms import check_axiom1, check_axiom2, check_axiom3_bounded
from repro.checkers.trace import Trace
from repro.core.events import (
    ChannelId,
    CrashT,
    Ok,
    PktDelivered,
    PktSent,
    SendMsg,
)


def pkt_sent(pid):
    return PktSent(channel=ChannelId.T_TO_R, packet_id=pid, length_bits=64)


class TestAxiom1:
    def test_ok_between_sends(self):
        trace = Trace([SendMsg(b"a"), Ok(), SendMsg(b"b")])
        assert check_axiom1(trace).passed

    def test_crash_between_sends(self):
        trace = Trace([SendMsg(b"a"), CrashT(), SendMsg(b"b")])
        assert check_axiom1(trace).passed

    def test_back_to_back_sends_violate(self):
        trace = Trace([SendMsg(b"a"), SendMsg(b"b")])
        report = check_axiom1(trace)
        assert not report.passed
        assert report.trials == 2

    def test_single_send_fine(self):
        assert check_axiom1(Trace([SendMsg(b"a")])).passed


class TestAxiom2:
    def test_unique_payloads(self):
        trace = Trace([SendMsg(b"a"), Ok(), SendMsg(b"b")])
        assert check_axiom2(trace).passed

    def test_repeated_payload_violates(self):
        trace = Trace([SendMsg(b"a"), Ok(), SendMsg(b"a")])
        report = check_axiom2(trace)
        assert not report.passed
        assert "repeated" in report.violations[0].detail


class TestAxiom3Bounded:
    def test_deliveries_keep_window_clean(self):
        events = []
        for pid in range(10):
            events.append(pkt_sent(pid))
            events.append(PktDelivered(channel=ChannelId.T_TO_R, packet_id=pid))
        assert check_axiom3_bounded(Trace(events), window=5).passed

    def test_starvation_flagged(self):
        events = [pkt_sent(pid) for pid in range(10)]
        report = check_axiom3_bounded(Trace(events), window=5)
        assert not report.passed

    def test_window_resets_on_delivery(self):
        events = [pkt_sent(0), pkt_sent(1), pkt_sent(2)]
        events.append(PktDelivered(channel=ChannelId.T_TO_R, packet_id=0))
        events += [pkt_sent(3), pkt_sent(4), pkt_sent(5)]
        assert check_axiom3_bounded(Trace(events), window=4).passed

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            check_axiom3_bounded(Trace(), window=0)
