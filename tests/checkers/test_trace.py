"""Unit tests for the Trace container and its projections."""

from __future__ import annotations

import pytest

from repro.checkers.trace import Trace
from repro.core.events import (
    ChannelId,
    CrashR,
    CrashT,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
)


def sample_trace() -> Trace:
    return Trace(
        [
            SendMsg(b"a"),
            PktSent(ChannelId.R_TO_T, 0, 64),
            PktDelivered(ChannelId.R_TO_T, 0),
            ReceiveMsg(b"a"),
            Ok(),
            SendMsg(b"b"),
            CrashT(),
            SendMsg(b"c"),
            Retry(),
            ReceiveMsg(b"c"),
            Ok(),
        ]
    )


class TestBasics:
    def test_append_and_len(self):
        trace = Trace()
        trace.append(SendMsg(b"x"))
        assert len(trace) == 1
        assert trace[0] == SendMsg(b"x")

    def test_append_rejects_non_events(self):
        with pytest.raises(TypeError):
            Trace().append("not an event")  # type: ignore[arg-type]

    def test_iteration(self):
        trace = sample_trace()
        assert len(list(trace)) == len(trace)

    def test_of_type_and_count(self):
        trace = sample_trace()
        assert trace.count(SendMsg) == 3
        assert [e.message for e in trace.of_type(SendMsg)] == [b"a", b"b", b"c"]

    def test_indexes_of(self):
        trace = sample_trace()
        assert trace.indexes_of(Ok) == [4, 10]


class TestProjections:
    def test_messages(self):
        trace = sample_trace()
        assert trace.sent_messages() == [b"a", b"b", b"c"]
        assert trace.received_messages() == [b"a", b"c"]

    def test_counters(self):
        trace = sample_trace()
        assert trace.ok_count() == 2
        assert trace.crash_count() == 1
        assert trace.packets_sent() == 1
        assert trace.packets_delivered() == 1
        assert trace.retries() == 1

    def test_summary_mentions_counts(self):
        summary = sample_trace().summary()
        assert "sends=3" in summary
        assert "oks=2" in summary


class TestMessageOutcomes:
    def test_resolutions(self):
        outcomes = sample_trace().message_outcomes()
        assert [o.resolution for o in outcomes] == ["ok", "crash", "ok"]

    def test_delivery_flags(self):
        outcomes = sample_trace().message_outcomes()
        assert outcomes[0].delivered_before_resolution
        assert not outcomes[1].delivered_before_resolution
        assert outcomes[2].delivered_before_resolution

    def test_pending_when_unresolved(self):
        trace = Trace([SendMsg(b"x"), Retry()])
        outcomes = trace.message_outcomes()
        assert outcomes[0].resolution == "pending"
        assert outcomes[0].resolution_index is None

    def test_empty_trace(self):
        assert Trace().message_outcomes() == []
