"""Unit tests for the Section 2.6 safety checkers on hand-crafted traces.

Each condition gets a matrix of traces: the canonical good execution, the
canonical violation, and the boundary cases the formal definitions carve
out (crash^R excusing duplication, the receive-extension boundary for
no-replay, crash^T dissolving the in-flight message for order).
"""

from __future__ import annotations

import pytest

from repro.checkers.safety import (
    check_all_safety,
    check_causality,
    check_no_duplication,
    check_no_replay,
    check_order,
)
from repro.checkers.trace import Trace
from repro.core.events import CrashR, CrashT, Ok, ReceiveMsg, SendMsg
from repro.core.exceptions import CheckFailure


class TestCausality:
    def test_clean(self):
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"a")])
        report = check_causality(trace)
        assert report.passed
        assert report.trials == 1

    def test_delivery_of_never_sent_message(self):
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"ghost")])
        report = check_causality(trace)
        assert not report.passed
        assert "ghost" in report.violations[0].detail

    def test_delivery_before_send(self):
        trace = Trace([ReceiveMsg(b"a"), SendMsg(b"a")])
        assert not check_causality(trace).passed

    def test_empty_trace(self):
        report = check_causality(Trace())
        assert report.passed
        assert report.trials == 0


class TestOrder:
    def test_clean(self):
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"a"), Ok()])
        report = check_order(trace)
        assert report.passed
        assert report.trials == 1

    def test_ok_without_delivery(self):
        trace = Trace([SendMsg(b"a"), Ok()])
        report = check_order(trace)
        assert not report.passed
        assert report.trials == 1

    def test_ok_preceded_by_wrong_delivery(self):
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"other"), Ok()])
        assert not check_order(trace).passed

    def test_delivery_from_before_send_does_not_count(self):
        trace = Trace([ReceiveMsg(b"a"), SendMsg(b"a"), Ok()])
        assert not check_order(trace).passed

    def test_crash_dissolves_pending(self):
        # crash^T ends the message's OK-extension window: no trial, no
        # violation even though the message was never delivered.
        trace = Trace([SendMsg(b"a"), CrashT(), SendMsg(b"b"), ReceiveMsg(b"b"), Ok()])
        report = check_order(trace)
        assert report.passed
        assert report.trials == 1

    def test_spurious_ok_with_nothing_in_flight(self):
        trace = Trace([Ok()])
        report = check_order(trace)
        assert not report.passed

    def test_two_messages_independent(self):
        trace = Trace(
            [
                SendMsg(b"a"),
                ReceiveMsg(b"a"),
                Ok(),
                SendMsg(b"b"),
                Ok(),  # b was never delivered
            ]
        )
        report = check_order(trace)
        assert report.trials == 2
        assert report.failure_count == 1


class TestNoDuplication:
    def test_clean(self):
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"a"), Ok()])
        assert check_no_duplication(trace).passed

    def test_double_delivery(self):
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"a"), ReceiveMsg(b"a"), Ok()])
        report = check_no_duplication(trace)
        assert not report.passed
        assert report.trials == 2

    def test_crash_r_excuses_duplication(self):
        # "excluding those which follow a crash^R event"
        trace = Trace(
            [SendMsg(b"a"), ReceiveMsg(b"a"), CrashR(), ReceiveMsg(b"a"), Ok()]
        )
        assert check_no_duplication(trace).passed

    def test_duplication_after_crash_window_still_counts(self):
        trace = Trace(
            [
                SendMsg(b"a"),
                CrashR(),
                ReceiveMsg(b"a"),
                ReceiveMsg(b"a"),  # both after the crash: second is a dup
            ]
        )
        assert not check_no_duplication(trace).passed

    def test_distinct_messages_are_fine(self):
        trace = Trace(
            [
                SendMsg(b"a"),
                ReceiveMsg(b"a"),
                Ok(),
                SendMsg(b"b"),
                ReceiveMsg(b"b"),
                Ok(),
            ]
        )
        assert check_no_duplication(trace).passed


class TestNoReplay:
    def test_clean_sequence(self):
        trace = Trace(
            [
                SendMsg(b"a"),
                ReceiveMsg(b"a"),
                Ok(),
                SendMsg(b"b"),
                ReceiveMsg(b"b"),
                Ok(),
            ]
        )
        assert check_no_replay(trace).passed

    def test_resolved_message_resurfaces(self):
        # a was OK'd, b was delivered (boundary), then a reappears: replay.
        trace = Trace(
            [
                SendMsg(b"a"),
                ReceiveMsg(b"a"),
                Ok(),
                SendMsg(b"b"),
                ReceiveMsg(b"b"),
                ReceiveMsg(b"a"),
            ]
        )
        report = check_no_replay(trace)
        assert not report.passed
        assert "replayed" in report.violations[0].detail

    def test_crashed_message_may_arrive_next(self):
        # send a, crash^T (resolution), then a arrives as the *very next*
        # delivery: no boundary separates resolution from delivery, so this
        # is legitimate late arrival, not replay.
        trace = Trace([SendMsg(b"a"), CrashT(), ReceiveMsg(b"a")])
        assert check_no_replay(trace).passed

    def test_crashed_message_after_boundary_is_replay(self):
        trace = Trace(
            [
                SendMsg(b"a"),
                CrashT(),
                SendMsg(b"b"),
                ReceiveMsg(b"b"),  # boundary after a's resolution
                ReceiveMsg(b"a"),
            ]
        )
        assert not check_no_replay(trace).passed

    def test_crash_r_is_a_boundary(self):
        trace = Trace(
            [
                SendMsg(b"a"),
                ReceiveMsg(b"a"),
                Ok(),
                CrashR(),
                ReceiveMsg(b"a"),
            ]
        )
        assert not check_no_replay(trace).passed

    def test_unresolved_message_redelivery_is_not_replay(self):
        # Duplication, yes (separate condition) — but not replay, because
        # the send was never resolved by OK or crash^T.
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"a"), ReceiveMsg(b"a")])
        assert check_no_replay(trace).passed


class TestSafetyReport:
    def test_aggregates_all_four(self):
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"a"), Ok()])
        report = check_all_safety(trace)
        assert report.passed
        assert len(report.all_reports) == 4

    def test_raise_on_failure(self):
        trace = Trace([SendMsg(b"a"), Ok()])
        report = check_all_safety(trace)
        assert not report.passed
        with pytest.raises(CheckFailure) as exc:
            report.raise_on_failure()
        assert "order" in str(exc.value)

    def test_passing_report_does_not_raise(self):
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"a"), Ok()])
        check_all_safety(trace).raise_on_failure()
