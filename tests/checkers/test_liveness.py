"""Unit tests for the liveness checker and progress-gap statistics."""

from __future__ import annotations

from repro.checkers.liveness import check_liveness, progress_gaps
from repro.checkers.trace import Trace
from repro.core.events import CrashT, Ok, ReceiveMsg, Retry, SendMsg


class TestCheckLiveness:
    def test_resolved_messages_pass(self):
        trace = Trace([SendMsg(b"a"), ReceiveMsg(b"a"), Ok()])
        assert check_liveness(trace, run_completed=True).passed

    def test_truncated_run_with_stuck_message_fails(self):
        trace = Trace([SendMsg(b"a"), Retry(), Retry()])
        report = check_liveness(trace, run_completed=False)
        assert not report.passed

    def test_completed_run_passes_even_with_trailing_send(self):
        # A completed run by definition resolved its workload; a trailing
        # send in the trace means the progress event simply fell outside
        # the window we're judging.
        trace = Trace([SendMsg(b"a")])
        assert check_liveness(trace, run_completed=True).passed

    def test_crash_counts_as_progress(self):
        trace = Trace([SendMsg(b"a"), CrashT()])
        assert check_liveness(trace, run_completed=False).passed

    def test_trials_count_sends(self):
        trace = Trace([SendMsg(b"a"), Ok(), SendMsg(b"b"), Ok()])
        assert check_liveness(trace, run_completed=True).trials == 2


class TestProgressGaps:
    def test_gap_measurement(self):
        trace = Trace([SendMsg(b"a"), Retry(), Retry(), ReceiveMsg(b"a"), Ok()])
        stats = progress_gaps(trace)
        assert stats.gaps == [3]
        assert stats.worst == 3

    def test_multiple_messages(self):
        trace = Trace(
            [
                SendMsg(b"a"),
                ReceiveMsg(b"a"),
                Ok(),
                SendMsg(b"b"),
                Retry(),
                ReceiveMsg(b"b"),
            ]
        )
        stats = progress_gaps(trace)
        assert stats.gaps == [1, 2]
        assert stats.mean == 1.5
        assert stats.resolved_count == 2

    def test_empty(self):
        stats = progress_gaps(Trace())
        assert stats.worst == 0
        assert stats.mean == 0.0
