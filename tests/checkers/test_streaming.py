"""Differential tests: streaming verdicts equal batch verdicts.

The online monitors in :mod:`repro.checkers.streaming` and the batch
checkers share one implementation — the batch functions are ``feed()``
wrappers over the same state machines — so the verdicts should agree *by
construction*.  These tests pin the equivalence down anyway, three ways:

* hypothesis-generated random event sequences, fed once to a fully
  retained :class:`Trace` (batch path) and once to a ``retain="none"``
  trace with a subscribed :class:`StreamingChecks` (online path);
* the same comparison through ``retain="tail"``, whose ring buffer
  discards storage but must not affect observers;
* real simulations from the fault-plan zoo, including the scripted
  crash-then-replay scenario that deterministically *fails*
  no-duplication — parity must hold on violating runs, not just clean
  ones.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.checkers.axioms import check_axiom1, check_axiom2, check_axiom3_bounded
from repro.checkers.liveness import check_liveness, progress_gaps
from repro.checkers.safety import check_all_safety
from repro.checkers.streaming import StreamingChecks
from repro.checkers.trace import Trace
from repro.core.events import (
    ChannelId,
    CrashR,
    CrashT,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
)
from repro.core.random_source import split_seed
from repro.resilience.faultplan import apply_fault_plan
from repro.resilience.supervisor import derive_run_seed
from repro.sim.runner import run_once

from tests.resilience.conftest import (
    REPRO_BASE_SEED,
    REPRO_RUN_INDEX,
    crash_then_replay_plan,
    make_paper_spec,
    make_strawman_spec,
)

# Small alphabets maximise collisions — exactly where monitor state breaks.
messages = st.sampled_from([b"a", b"b", b"c"])
channels = st.sampled_from([ChannelId.T_TO_R, ChannelId.R_TO_T])
packet_ids = st.integers(min_value=0, max_value=5)
events = st.one_of(
    messages.map(lambda m: SendMsg(message=m)),
    messages.map(lambda m: ReceiveMsg(message=m)),
    st.just(Ok()),
    st.just(CrashT()),
    st.just(CrashR()),
    st.just(Retry()),
    st.builds(PktSent, channel=channels, packet_id=packet_ids, length_bits=st.just(16)),
    st.builds(PktDelivered, channel=channels, packet_id=packet_ids),
)
event_lists = st.lists(events, max_size=60)

CHECK_SETTINGS = settings(max_examples=200, deadline=None)


def streaming_over(event_list, retain: str, **checks_kwargs) -> StreamingChecks:
    """Drive a StreamingChecks off a recording trace in the given mode."""
    trace = Trace(retain=retain, tail_size=8)
    checks = StreamingChecks(**checks_kwargs)
    trace.subscribe(checks.observe, types=checks.observed_types)
    for event in event_list:
        trace.append(event)
    return checks


@CHECK_SETTINGS
@given(event_lists)
def test_streaming_safety_equals_batch(event_list):
    batch = check_all_safety(Trace(event_list))
    online = streaming_over(event_list, retain="none", liveness=False)
    # Frozen dataclasses: this compares verdicts, trial counts, and every
    # violation's condition/index/detail in one shot.
    assert online.safety_report() == batch


@CHECK_SETTINGS
@given(event_lists, st.booleans())
def test_streaming_liveness_equals_batch(event_list, run_completed):
    batch = check_liveness(Trace(event_list), run_completed=run_completed)
    online = streaming_over(event_list, retain="none")
    assert online.liveness_report(run_completed=run_completed) == batch


@CHECK_SETTINGS
@given(event_lists)
def test_streaming_axioms_equal_batch(event_list):
    window = 4
    full = Trace(event_list)
    batch = [
        check_axiom1(full),
        check_axiom2(full),
        check_axiom3_bounded(full, window=window),
    ]
    online = streaming_over(event_list, retain="none", axioms=True, axiom3_window=window)
    assert online.axiom_reports() == batch


@CHECK_SETTINGS
@given(event_lists)
def test_tail_retention_does_not_perturb_observers(event_list):
    batch = check_all_safety(Trace(event_list))
    online = streaming_over(event_list, retain="tail", liveness=False)
    assert online.safety_report() == batch


@CHECK_SETTINGS
@given(event_lists)
def test_progress_gap_monitor_equals_batch(event_list):
    batch = progress_gaps(Trace(event_list))
    trace = Trace(retain="none")
    from repro.checkers.streaming import ProgressGapMonitor

    monitor = ProgressGapMonitor()
    checks = StreamingChecks(monitors=[monitor])
    trace.subscribe(checks.observe, types=checks.observed_types)
    for event in event_list:
        trace.append(event)
    assert monitor.gaps == batch.gaps


@CHECK_SETTINGS
@given(event_lists)
def test_events_seen_counts_every_event(event_list):
    online = streaming_over(event_list, retain="none")
    # The subscription filter only delivers observed types, so events_seen
    # counts the monitored subset, never more than the execution length.
    assert online.events_seen <= len(event_list)
    direct = StreamingChecks()
    for index, event in enumerate(event_list):
        direct.observe(index, event)
    assert direct.events_seen == len(event_list)
    assert direct.safety_report() == online.safety_report()


# ---------------------------------------------------------------------------
# Simulation parity: the zoo traces, clean and violating.
# ---------------------------------------------------------------------------


def _verdicts_for(spec, seed):
    """(streaming safety, streaming liveness ok, trace-or-None) for one run."""
    outcome = run_once(spec, seed)
    trace = outcome.result.trace if spec.retain == "full" else None
    return outcome.safety, outcome.liveness_passed, outcome.result.completed, trace


def _signature(safety):
    """A safety report minus absolute event indexes.

    Under ``retain="none"`` the recording layer tallies unobserved packet
    events in bulk instead of appending them, so observers run in a
    compacted index space: relative order (and therefore every verdict
    and trial count) is preserved, but a violation's absolute
    ``event_index`` differs from the fully-retained run's.  The parity
    claim for that mode is everything *except* those indexes.
    """
    return [
        (r.condition, r.trials, [v.condition for v in r.violations])
        for r in safety.all_reports
    ]


def _assert_retention_parity(spec, seed):
    full_spec = replace(spec, retain="full")
    none_spec = replace(spec, retain="none")
    tail_spec = replace(spec, retain="tail", tail_size=32)
    safety_full, live_full, completed, trace = _verdicts_for(full_spec, seed)
    safety_none, live_none, completed_none, _ = _verdicts_for(none_spec, seed)
    safety_tail, live_tail, _, _ = _verdicts_for(tail_spec, seed)
    # Same seed => same execution, whatever the trace keeps.
    assert completed == completed_none
    # Tail retention appends every event (only storage is bounded), so its
    # verdicts — indexes included — are identical to the full run's.
    assert safety_tail == safety_full
    # Counters-only retention matches modulo the compacted index space.
    assert _signature(safety_none) == _signature(safety_full)
    assert live_none == live_full == live_tail
    # And the batch checkers rescanning the materialised trace agree with
    # the online verdicts of the run that recorded it, exactly.
    assert check_all_safety(trace) == safety_full
    assert check_liveness(trace, run_completed=completed).passed == live_full
    return safety_full


def test_zoo_benign_paper_run_parity():
    spec = make_paper_spec(messages=4)
    seed = split_seed(7, "run", 0)
    safety = _assert_retention_parity(spec, seed)
    assert safety.passed


def test_zoo_crash_then_replay_violation_parity():
    # The scripted repro from the resilience suite: strawman run index 4
    # fails no-duplication under the crash-then-replay plan.  Verdict
    # parity must hold on the violating execution too, with identical
    # violation indexes.
    spec = apply_fault_plan(
        make_strawman_spec(), crash_then_replay_plan(), REPRO_RUN_INDEX
    )
    seed = derive_run_seed(REPRO_BASE_SEED, REPRO_RUN_INDEX, 0)
    safety = _assert_retention_parity(spec, seed)
    assert not safety.no_duplication.passed


def test_zoo_lossy_random_faults_parity():
    from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
    from repro.sim.runner import RunSpec

    profile = FaultProfile(loss=0.2, duplicate=0.1, reorder=0.2)
    spec = RunSpec.default(
        adversary_factory=lambda: RandomFaultAdversary(profile), messages=6
    )
    for index in range(3):
        safety = _assert_retention_parity(spec, split_seed(11, "run", index))
        assert safety.passed
