"""Property-based validation of the safety checkers.

The checkers are single-pass stateful scanners; a bug in their state
machines would silently corrupt every experiment.  These tests pit them
against brute-force reference implementations (quadratic, written for
obviousness rather than speed) over hypothesis-generated random traces.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.checkers.safety import (
    check_causality,
    check_no_duplication,
    check_no_replay,
    check_order,
)
from repro.checkers.trace import Trace
from repro.core.events import CrashR, CrashT, Event, Ok, ReceiveMsg, SendMsg

# Small message alphabet maximises collisions, which is where checker
# state machines break.
messages = st.sampled_from([b"a", b"b", b"c"])
events = st.one_of(
    messages.map(lambda m: SendMsg(message=m)),
    messages.map(lambda m: ReceiveMsg(message=m)),
    st.just(Ok()),
    st.just(CrashT()),
    st.just(CrashR()),
)
traces = st.lists(events, max_size=40).map(Trace)


def ref_causality_violations(trace: Trace) -> int:
    count = 0
    for index, event in enumerate(trace):
        if isinstance(event, ReceiveMsg):
            prior_sends = [
                e
                for e in list(trace)[:index]
                if isinstance(e, SendMsg) and e.message == event.message
            ]
            if not prior_sends:
                count += 1
    return count


def ref_order_violations(trace: Trace) -> int:
    count = 0
    pending = None
    pending_index = None
    for index, event in enumerate(trace):
        if isinstance(event, SendMsg):
            pending, pending_index = event.message, index
        elif isinstance(event, CrashT):
            pending = None
        elif isinstance(event, Ok):
            if pending is None:
                count += 1
            else:
                window = list(trace)[pending_index + 1 : index]
                delivered = any(
                    isinstance(e, ReceiveMsg) and e.message == pending
                    for e in window
                )
                if not delivered:
                    count += 1
                pending = None
    return count


def ref_duplication_violations(trace: Trace) -> int:
    count = 0
    for index, event in enumerate(trace):
        if not isinstance(event, ReceiveMsg):
            continue
        for earlier in range(index - 1, -1, -1):
            e = trace[earlier]
            if isinstance(e, CrashR):
                break
            if isinstance(e, ReceiveMsg) and e.message == event.message:
                count += 1
                break
    return count


def ref_replay_violations(trace: Trace) -> int:
    count = 0
    for index, event in enumerate(trace):
        if not isinstance(event, ReceiveMsg):
            continue
        # The most recent receive/crash^R boundary before this delivery.
        boundary = -1
        for earlier in range(index - 1, -1, -1):
            if isinstance(trace[earlier], (ReceiveMsg, CrashR)):
                boundary = earlier
                break
        # Was the message resolved (its send followed by OK/crash^T)
        # at or before the boundary?
        pending = None
        resolved_at = None
        for position in range(index):
            e = trace[position]
            if isinstance(e, SendMsg):
                pending = e.message
            elif isinstance(e, (Ok, CrashT)) and pending is not None:
                if pending == event.message:
                    resolved_at = position
                pending = None
        if resolved_at is not None and resolved_at <= boundary:
            count += 1
    return count


CHECK_SETTINGS = settings(max_examples=300, deadline=None)


@CHECK_SETTINGS
@given(traces)
def test_causality_matches_reference(trace):
    assert check_causality(trace).failure_count == ref_causality_violations(trace)


@CHECK_SETTINGS
@given(traces)
def test_order_matches_reference(trace):
    assert check_order(trace).failure_count == ref_order_violations(trace)


@CHECK_SETTINGS
@given(traces)
def test_duplication_matches_reference(trace):
    assert check_no_duplication(trace).failure_count == ref_duplication_violations(
        trace
    )


@CHECK_SETTINGS
@given(traces)
def test_replay_matches_reference(trace):
    assert check_no_replay(trace).failure_count == ref_replay_violations(trace)


@CHECK_SETTINGS
@given(traces)
def test_checkers_never_crash_and_trials_bounded(trace):
    deliveries = trace.count(ReceiveMsg)
    assert check_no_duplication(trace).trials == deliveries
    assert check_no_replay(trace).trials == deliveries
    assert check_causality(trace).trials == deliveries
