"""Unit tests for the trace's retention modes, tallies, and events view."""

from __future__ import annotations

import pytest

from repro.checkers.trace import RETENTION_MODES, EventsView, Trace
from repro.core.events import (
    ChannelId,
    CrashR,
    Event,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
)
from repro.core.exceptions import ConfigurationError, TraceRetentionError


def handshake_events(n: int):
    events = []
    for i in range(n):
        message = b"m%d" % i
        events += [
            SendMsg(message=message),
            PktSent(channel=ChannelId.T_TO_R, packet_id=i, length_bits=64),
            PktDelivered(channel=ChannelId.T_TO_R, packet_id=i),
            ReceiveMsg(message=message),
            Ok(),
        ]
    return events


# -- construction ------------------------------------------------------------


def test_retention_modes_constant_matches_validation():
    for mode in RETENTION_MODES:
        assert Trace(retain=mode).retention == mode
    with pytest.raises(ConfigurationError):
        Trace(retain="ring")
    with pytest.raises(ConfigurationError):
        Trace(retain="tail", tail_size=0)


def test_non_event_append_rejected_in_every_mode():
    for mode in RETENTION_MODES:
        with pytest.raises(TypeError):
            Trace(retain=mode).append("not an event")


# -- full (the default) ------------------------------------------------------


def test_full_retention_keeps_everything():
    events = handshake_events(3)
    trace = Trace(events)
    assert trace.retention == "full"
    assert len(trace) == trace.total_events == len(events)
    assert trace.dropped_events == 0
    assert list(trace) == events
    assert trace.tail_events() == list(enumerate(events))
    assert trace.count(SendMsg) == 3
    assert trace.indexes_of(SendMsg) == [0, 5, 10]
    # Superclass queries merge the per-type index lists in order.
    assert trace.indexes_of(Event) == list(range(len(events)))


def test_full_retention_forbids_tally():
    trace = Trace(handshake_events(1))
    with pytest.raises(TraceRetentionError):
        trace.tally(Retry, 3)


# -- tail --------------------------------------------------------------------


def test_tail_retention_keeps_a_ring_of_recent_events():
    events = handshake_events(4)  # 20 events
    trace = Trace(events, retain="tail", tail_size=6)
    assert trace.total_events == 20
    assert trace.dropped_events == 14
    tail = trace.tail_events()
    assert tail == list(enumerate(events))[-6:]
    # Counters still cover the whole execution, not just the tail.
    assert trace.count(SendMsg) == 4
    assert trace.count(Event) == 20


def test_tail_retention_refuses_full_sequence_queries():
    trace = Trace(handshake_events(2), retain="tail", tail_size=4)
    for operation in (
        lambda: trace[0],
        lambda: list(iter(trace)),
        lambda: trace.events,
        lambda: trace.of_type(SendMsg),
        lambda: trace.indexes_of(SendMsg),
        lambda: trace.message_outcomes(),
    ):
        with pytest.raises(TraceRetentionError):
            operation()


# -- none --------------------------------------------------------------------


def test_none_retention_counts_only():
    events = handshake_events(2)
    trace = Trace(events, retain="none")
    assert trace.total_events == 10
    assert trace.dropped_events == 10
    assert trace.tail_events() == []
    assert trace.count(ReceiveMsg) == 2
    assert trace.ok_count() == 2
    with pytest.raises(TraceRetentionError):
        trace.events


def test_tally_and_tally1_update_counters():
    trace = Trace(retain="none")
    trace.tally(Retry, 5)
    trace.tally1(Retry)
    trace.tally(PktSent, 0)  # zero tallies are allowed and do nothing
    assert trace.count(Retry) == trace.retries() == 6
    assert trace.count(PktSent) == 0
    assert trace.total_events == trace.dropped_events == 6
    with pytest.raises(ValueError):
        trace.tally(Retry, -1)


def test_tally_then_append_keeps_indexes_monotone():
    seen = []
    trace = Trace(retain="none")
    trace.subscribe(lambda index, event: seen.append(index))
    trace.append(SendMsg(message=b"x"))
    trace.tally(Retry, 7)
    trace.append(Ok())
    assert seen == [0, 8]  # appends index past the tallied block
    assert trace.total_events == 9


# -- wants() and observers ---------------------------------------------------


def test_wants_reflects_retention_and_observers():
    assert Trace().wants(Retry)
    assert Trace(retain="tail").wants(Retry)
    bare = Trace(retain="none")
    assert not bare.wants(Retry)
    observed = Trace(retain="none")
    observed.subscribe(lambda index, event: None, types=[ReceiveMsg])
    assert observed.wants(ReceiveMsg)
    assert not observed.wants(Retry)


def test_subscribing_invalidates_the_wants_answer():
    trace = Trace(retain="none")
    assert not trace.wants(Retry)
    trace.subscribe(lambda index, event: None, types=[Retry])
    assert trace.wants(Retry)


def test_observers_see_filtered_events_in_every_mode():
    events = handshake_events(2)
    for mode in RETENTION_MODES:
        received = []
        trace = Trace(retain=mode, tail_size=3)
        trace.subscribe(
            lambda index, event: received.append((index, event)),
            types=[SendMsg, ReceiveMsg],
        )
        for event in events:
            trace.append(event)
        assert received == [
            (index, event)
            for index, event in enumerate(events)
            if isinstance(event, (SendMsg, ReceiveMsg))
        ]


def test_observer_type_filter_includes_subclasses():
    class FancySend(SendMsg):
        pass

    received = []
    trace = Trace(retain="none")
    trace.subscribe(lambda index, event: received.append(event), types=[SendMsg])
    fancy = FancySend(message=b"f")
    trace.append(fancy)
    trace.append(CrashR())
    assert received == [fancy]


# -- EventsView --------------------------------------------------------------


def test_events_view_reads_like_a_sequence():
    events = handshake_events(2)
    view = Trace(events).events
    assert isinstance(view, EventsView)
    assert len(view) == len(events)
    assert view[0] == events[0]
    assert view[-1] == events[-1]
    assert view[1:3] == tuple(events[1:3])
    assert list(view) == events
    assert view == events
    assert view == tuple(events)
    assert view == Trace(events).events
    assert view != events[:-1]


def test_events_view_is_immutable_and_unhashable():
    view = Trace(handshake_events(1)).events
    with pytest.raises(TypeError):
        view[0] = Ok()  # type: ignore[index]
    assert not hasattr(view, "append")
    with pytest.raises(TypeError):
        hash(view)


def test_events_view_tracks_later_appends():
    trace = Trace()
    view = trace.events
    assert len(view) == 0
    trace.append(SendMsg(message=b"late"))
    assert len(view) == 1  # a view, not a snapshot
