"""Unit tests for action signatures and compatibility rules."""

from __future__ import annotations

import pytest

from repro.ioa.actions import Action, ActionKind, Signature


class TestAction:
    def test_equality(self):
        assert Action("a", (1,)) == Action("a", (1,))
        assert Action("a", (1,)) != Action("a", (2,))

    def test_str_rendering(self):
        assert str(Action("OK")) == "OK"
        assert str(Action("send_msg", (b"m",))) == "send_msg(b'm')"


class TestSignature:
    def test_classes_must_be_disjoint(self):
        with pytest.raises(ValueError):
            Signature.of(inputs=("x",), outputs=("x",))
        with pytest.raises(ValueError):
            Signature.of(inputs=("x",), internals=("x",))

    def test_kind_of(self):
        sig = Signature.of(inputs=("i",), outputs=("o",), internals=("n",))
        assert sig.kind_of("i") == ActionKind.INPUT
        assert sig.kind_of("o") == ActionKind.OUTPUT
        assert sig.kind_of("n") == ActionKind.INTERNAL
        with pytest.raises(KeyError):
            sig.kind_of("foreign")

    def test_external_and_all(self):
        sig = Signature.of(inputs=("i",), outputs=("o",), internals=("n",))
        assert sig.external == {"i", "o"}
        assert sig.all_actions == {"i", "o", "n"}


class TestCompatibility:
    def test_shared_outputs_incompatible(self):
        a = Signature.of(outputs=("x",))
        b = Signature.of(outputs=("x",))
        assert not a.compatible_with(b)

    def test_internal_must_be_private(self):
        a = Signature.of(internals=("x",))
        b = Signature.of(inputs=("x",))
        assert not a.compatible_with(b)
        assert not b.compatible_with(a)

    def test_output_to_input_is_the_composition_mechanism(self):
        a = Signature.of(outputs=("x",))
        b = Signature.of(inputs=("x",))
        assert a.compatible_with(b)
        assert b.compatible_with(a)

    def test_disjoint_signatures_compatible(self):
        a = Signature.of(inputs=("p",), outputs=("q",))
        b = Signature.of(inputs=("r",), outputs=("s",))
        assert a.compatible_with(b)
