"""Tests for the full IOA composition of D(A, ADV) (Figure 1).

The same protocol and adversaries run under two independent harnesses —
the operational :class:`~repro.sim.Simulator` and the formal IOA
:class:`~repro.ioa.SystemScheduler`.  These tests run the IOA side and
cross-check the Section 2.6 conditions, validating both harnesses against
each other.
"""

from __future__ import annotations

import pytest

from repro.adversary.benign import ReliableAdversary
from repro.adversary.fairness import FairnessEnforcer
from repro.adversary.random_faults import FaultProfile, RandomFaultAdversary
from repro.checkers.safety import check_all_safety
from repro.core.protocol import make_data_link
from repro.core.random_source import RandomSource
from repro.ioa.scheduler import SystemScheduler, build_system


def make_scheduler(adversary, payload_count=6, link_seed=1, adv_seed=2):
    link = make_data_link(epsilon=2.0 ** -16, seed=link_seed)
    wrapped = FairnessEnforcer(adversary, patience=16)
    wrapped.bind(RandomSource(adv_seed))
    payloads = [b"p%04d" % i for i in range(payload_count)]
    system = build_system(link, wrapped, payloads)
    return system, SystemScheduler(system)


class TestSystemAssembly:
    def test_composition_has_six_components(self):
        system, __ = make_scheduler(ReliableAdversary())
        assert len(system.components) == 6

    def test_environment_inputs_only_unmatched_actions(self):
        system, __ = make_scheduler(ReliableAdversary())
        # Every protocol action is driven internally; nothing to inject.
        assert "send_msg" not in system.signature.inputs
        assert "deliver_pkt:T->R" not in system.signature.inputs


class TestFormalRuns:
    def test_reliable_run_completes(self):
        system, scheduler = make_scheduler(ReliableAdversary())
        assert scheduler.run(max_rounds=2_000)
        env = system.component("ENV")
        assert env.oks == 6
        assert env.delivered == [b"p%04d" % i for i in range(6)]

    def test_trace_satisfies_safety(self):
        __, scheduler = make_scheduler(ReliableAdversary())
        scheduler.run(max_rounds=2_000)
        assert check_all_safety(scheduler.trace).passed

    def test_faulty_run_completes_and_safe(self):
        adv = RandomFaultAdversary(
            FaultProfile(loss=0.25, duplicate=0.25, reorder=0.5)
        )
        system, scheduler = make_scheduler(adv, payload_count=8, adv_seed=5)
        assert scheduler.run(max_rounds=20_000)
        assert system.component("ENV").oks == 8
        assert check_all_safety(scheduler.trace).passed

    def test_execution_records_behavior(self):
        __, scheduler = make_scheduler(ReliableAdversary())
        scheduler.run(max_rounds=2_000)
        names = {a.name for a in scheduler.execution.behavior()}
        assert "send_msg" in names
        assert "OK" in names
        assert "receive_msg" in names

    def test_internal_retry_not_in_behavior(self):
        __, scheduler = make_scheduler(ReliableAdversary())
        scheduler.run(max_rounds=2_000)
        behavior_names = {a.name for a in scheduler.execution.behavior()}
        schedule_names = {a.name for a in scheduler.execution.schedule()}
        assert "RETRY" not in behavior_names
        assert "RETRY" in schedule_names


class TestCrossHarnessAgreement:
    def test_same_deliveries_as_operational_simulator(self):
        # Both harnesses, fed the same protocol under reliable FIFO
        # delivery, must deliver the same message sequence.
        from repro.sim.simulator import Simulator
        from repro.sim.workload import SequentialWorkload

        link_a = make_data_link(epsilon=2.0 ** -16, seed=42)
        sim = Simulator(
            link_a, ReliableAdversary(), SequentialWorkload(6), seed=1
        )
        operational = sim.run()

        system, scheduler = make_scheduler(
            ReliableAdversary(), payload_count=6, link_seed=42
        )
        scheduler.run(max_rounds=2_000)

        formal_deliveries = system.component("ENV").delivered
        operational_deliveries = operational.trace.received_messages()
        assert len(formal_deliveries) == len(operational_deliveries) == 6
        # Different payload naming, identical ordering semantics (FIFO).
        assert formal_deliveries == sorted(formal_deliveries)
        assert operational_deliveries == sorted(operational_deliveries)
