"""Unit tests for automaton composition: routing and legality."""

from __future__ import annotations

from typing import List

import pytest

from repro.ioa.actions import Action, Signature
from repro.ioa.automaton import IOAutomaton
from repro.ioa.composition import Composition, CompositionError
from repro.ioa.execution import Execution
from repro.ioa.actions import ActionKind


class Pinger(IOAutomaton):
    """Emits 'ping' when poked from outside."""

    signature = Signature.of(inputs=("poke",), outputs=("ping",))

    def __init__(self):
        super().__init__("pinger")
        self.pending: List[Action] = []

    def handle_input(self, action: Action) -> None:
        self.pending.append(Action("ping"))

    def locally_controlled_steps(self):
        return list(self.pending[:1])

    def perform(self, action: Action) -> None:
        self.pending.pop(0)


class Ponger(IOAutomaton):
    """Counts 'ping' inputs."""

    signature = Signature.of(inputs=("ping",))

    def __init__(self, name="ponger"):
        super().__init__(name)
        self.heard = 0

    def handle_input(self, action: Action) -> None:
        self.heard += 1


class TestCompositionLegality:
    def test_requires_components(self):
        with pytest.raises(CompositionError):
            Composition([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(CompositionError):
            Composition([Ponger("x"), Ponger("x")])

    def test_rejects_output_clash(self):
        with pytest.raises(CompositionError):
            Composition([Pinger(), Pinger()])

    def test_composite_signature_hides_matched_inputs(self):
        comp = Composition([Pinger(), Ponger()])
        # 'ping' is driven internally; 'poke' remains an environment input.
        assert "poke" in comp.signature.inputs
        assert "ping" not in comp.signature.inputs
        assert "ping" in comp.signature.outputs


class TestRouting:
    def test_output_synchronises_with_all_takers(self):
        pinger, a, b = Pinger(), Ponger("a"), Ponger("b")
        comp = Composition([pinger, a, b])
        comp.inject(Action("poke"))
        (component, action), = comp.enabled_steps()
        comp.apply(component, action)
        assert a.heard == 1 and b.heard == 1

    def test_inject_requires_environment_input(self):
        comp = Composition([Pinger(), Ponger()])
        with pytest.raises(CompositionError):
            comp.inject(Action("ping"))  # driven internally, not injectable

    def test_apply_rejects_input_actions(self):
        pinger = Pinger()
        comp = Composition([pinger, Ponger()])
        with pytest.raises(CompositionError):
            comp.apply(pinger, Action("poke"))

    def test_component_lookup(self):
        pinger = Pinger()
        comp = Composition([pinger, Ponger()])
        assert comp.component("pinger") is pinger


class TestExecutionRecord:
    def test_behavior_excludes_internal(self):
        execution = Execution()
        execution.record(Action("ping"), actor="pinger", kind=ActionKind.OUTPUT)
        execution.record(Action("tick"), actor="clock", kind=ActionKind.INTERNAL)
        assert [a.name for a in execution.behavior()] == ["ping"]
        assert [a.name for a in execution.schedule()] == ["ping", "tick"]

    def test_actions_named(self):
        execution = Execution()
        execution.record(Action("x", (1,)), actor=None, kind=ActionKind.INPUT)
        execution.record(Action("x", (2,)), actor=None, kind=ActionKind.INPUT)
        assert [a.params for a in execution.actions_named("x")] == [(1,), (2,)]
