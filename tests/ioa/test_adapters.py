"""Unit tests for the IOA adapters around the operational components."""

from __future__ import annotations

import pytest

from repro.adversary.base import Pass
from repro.adversary.benign import ReliableAdversary
from repro.core.bitstrings import BitString, TAU_CRASH
from repro.core.events import ChannelId
from repro.core.packets import DataPacket, PollPacket
from repro.core.params import ProtocolParams
from repro.core.random_source import RandomSource
from repro.core.receiver import Receiver
from repro.core.transmitter import Transmitter
from repro.ioa.actions import Action
from repro.ioa.adapters import (
    AdversaryAutomaton,
    ChannelAutomaton,
    EnvironmentAutomaton,
    RMAutomaton,
    TMAutomaton,
)

PARAMS = ProtocolParams(epsilon=2.0 ** -16)


class TestTMAutomaton:
    def test_send_msg_may_enqueue_data(self):
        tm = TMAutomaton(Transmitter(PARAMS, RandomSource(1)))
        tm.handle_input(Action("send_msg", (b"m1",)))
        # Fresh transmitter has no challenge: opens silently.
        assert tm.locally_controlled_steps() == []

    def test_ok_flows_through_outbox(self):
        transmitter = Transmitter(PARAMS, RandomSource(1))
        tm = TMAutomaton(transmitter)
        tm.handle_input(Action("send_msg", (b"m1",)))
        poll = PollPacket(rho=BitString("0101"), tau=TAU_CRASH, retry=1)
        tm.handle_input(Action("receive_pkt:R->T", (poll,)))
        (step,) = tm.locally_controlled_steps()
        assert step.name == "send_pkt:T->R"
        tm.perform(step)
        ack = PollPacket(rho=BitString("1"), tau=transmitter.tau, retry=2)
        tm.handle_input(Action("receive_pkt:R->T", (ack,)))
        (step,) = tm.locally_controlled_steps()
        assert step.name == "OK"

    def test_crash_clears_outbox(self):
        tm = TMAutomaton(Transmitter(PARAMS, RandomSource(1)))
        tm.handle_input(Action("send_msg", (b"m1",)))
        poll = PollPacket(rho=BitString("0101"), tau=TAU_CRASH, retry=1)
        tm.handle_input(Action("receive_pkt:R->T", (poll,)))
        assert tm.locally_controlled_steps()
        tm.handle_input(Action("crash_T"))
        assert tm.locally_controlled_steps() == []

    def test_foreign_action_rejected(self):
        tm = TMAutomaton(Transmitter(PARAMS, RandomSource(1)))
        with pytest.raises(KeyError):
            tm.handle_input(Action("warp"))


class TestRMAutomaton:
    def test_retry_always_enabled(self):
        rm = RMAutomaton(Receiver(PARAMS, RandomSource(2)))
        steps = rm.locally_controlled_steps()
        assert Action("RETRY") in steps

    def test_retry_produces_poll(self):
        rm = RMAutomaton(Receiver(PARAMS, RandomSource(2)))
        rm.perform(Action("RETRY"))
        (step,) = [s for s in rm.locally_controlled_steps() if s.name != "RETRY"]
        assert step.name == "send_pkt:R->T"

    def test_delivery_emits_receive_msg(self):
        receiver = Receiver(PARAMS, RandomSource(2))
        rm = RMAutomaton(receiver)
        packet = DataPacket(
            message=b"m1",
            rho=receiver.rho,
            tau=BitString("1").concat(RandomSource(3).random_bits(8)),
        )
        rm.handle_input(Action("receive_pkt:T->R", (packet,)))
        names = [s.name for s in rm.locally_controlled_steps()]
        assert "receive_msg" in names


class TestChannelAutomaton:
    def test_send_announces_new_pkt(self):
        channel = ChannelAutomaton(ChannelId.T_TO_R)
        packet = DataPacket(message=b"x", rho=BitString("0"), tau=BitString("1"))
        channel.handle_input(Action("send_pkt:T->R", (packet,)))
        (step,) = channel.locally_controlled_steps()
        assert step.name == "new_pkt:T->R"
        packet_id, length = step.params
        assert packet_id == 0
        assert length == packet.wire_length_bits

    def test_deliver_replays_stored_packet(self):
        channel = ChannelAutomaton(ChannelId.T_TO_R)
        packet = DataPacket(message=b"x", rho=BitString("0"), tau=BitString("1"))
        channel.handle_input(Action("send_pkt:T->R", (packet,)))
        channel.perform(channel.locally_controlled_steps()[0])  # flush new_pkt
        channel.handle_input(Action("deliver_pkt:T->R", (0,)))
        (step,) = channel.locally_controlled_steps()
        assert step.name == "receive_pkt:T->R"
        assert step.params[0] is packet


class TestAdversaryAutomaton:
    def test_pass_becomes_internal_action(self):
        adversary = ReliableAdversary()
        adversary.bind(RandomSource(4))
        adv = AdversaryAutomaton(adversary)
        (step,) = adv.locally_controlled_steps()
        assert step.name == "adv_pass"

    def test_move_cached_until_performed(self):
        adversary = ReliableAdversary()
        adversary.bind(RandomSource(4))
        adv = AdversaryAutomaton(adversary)
        first = adv.locally_controlled_steps()
        second = adv.locally_controlled_steps()
        assert first == second  # no extra next_move() consumed
        adv.perform(first[0])
        assert adversary.moves_made == 1


class TestEnvironmentAutomaton:
    def test_axiom1_pacing(self):
        env = EnvironmentAutomaton([b"a", b"b"])
        (step,) = env.locally_controlled_steps()
        env.perform(step)
        assert env.locally_controlled_steps() == []  # in flight
        env.handle_input(Action("OK"))
        (step2,) = env.locally_controlled_steps()
        assert step2.params == (b"b",)

    def test_crash_releases_pacing(self):
        env = EnvironmentAutomaton([b"a", b"b"])
        env.perform(env.locally_controlled_steps()[0])
        env.handle_input(Action("crash_T"))
        assert env.locally_controlled_steps()  # may submit the next one

    def test_done_semantics(self):
        env = EnvironmentAutomaton([b"a"])
        assert not env.done
        env.perform(env.locally_controlled_steps()[0])
        assert not env.done
        env.handle_input(Action("OK"))
        assert env.done
