"""Setup shim for environments whose pip cannot build PEP 660 editables.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on toolchains without the ``wheel``
package.
"""

from setuptools import setup

setup()
