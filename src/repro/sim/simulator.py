"""The execution harness: composes ``D(A, ADV)`` and runs it.

This is the operational form of Figure 1.  One :class:`Simulator` owns:

* a :class:`~repro.core.protocol.DataLink` (the pair ``A = (A^t, A^r)``);
* a :class:`~repro.channel.ChannelPair` (``C^{T→R}`` and ``C^{R→T}``);
* an :class:`~repro.adversary.Adversary` (optionally wrapped in a
  :class:`~repro.adversary.FairnessEnforcer` so Axiom 3 holds);
* a :class:`~repro.sim.workload.Workload` standing in for the higher layer.

Each simulation *step* is: (1) the higher layer submits the next message if
the transmitter is idle (Axiom 1), (2) the receiver's RETRY internal action
fires on its cadence (the "infinitely many RETRY events" assumption), and
(3) the adversary makes one move.  The full execution is recorded as a
:class:`~repro.checkers.trace.Trace` for the correctness checkers.

The recording path is the hot loop, so it supports three cost levers:

* ``retain`` / ``tail_size`` choose the trace's retention mode — campaigns
  run ``retain="none"`` (counters only) or ``"tail"`` (forensic ring);
* ``checks`` attaches a :class:`~repro.checkers.StreamingChecks` suite that
  evaluates the Section 2.6 conditions online while events are recorded,
  replacing the post-hoc batch passes;
* when neither the retention mode nor any observer would ever see a
  packet-level event, the simulator counts it (:meth:`Trace.tally`)
  instead of allocating it — roughly half of all events in a typical run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional

from repro.adversary.base import (
    Adversary,
    Corrupt,
    CrashReceiver,
    CrashTransmitter,
    Deliver,
    Move,
    Pass,
    TriggerRetry,
)
from repro.adversary.fairness import FairnessEnforcer
from repro.channel.channel import ChannelPair
from repro.checkers.streaming import StreamingChecks
from repro.checkers.trace import Trace
from repro.core.events import (
    CRASH_R,
    CRASH_T,
    OK,
    RETRY,
    ChannelId,
    Corruption,
    EmitOk,
    EmitPacket,
    EmitReceiveMsg,
    PktDelivered,
    PktSent,
    Retry,
    StationOutput,
    make_pkt_delivered,
    make_pkt_sent,
    make_receive_msg,
    make_send_msg,
)
from repro.core.exceptions import AxiomViolationError, SimulationError
from repro.core.protocol import DataLink
from repro.core.random_source import RandomSource
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.workload import Workload

__all__ = ["SimulationResult", "Simulator"]

_T_TO_R = ChannelId.T_TO_R


@dataclass
class SimulationResult:
    """Everything a finished run produced.

    ``checks`` is the online monitor suite that rode the run (``None``
    when the simulator was built without one); its reports are the
    streaming verdicts over exactly the recorded execution.
    """

    trace: Trace
    metrics: SimulationMetrics
    completed: bool
    steps: int
    link: DataLink
    adversary: Adversary
    checks: Optional[StreamingChecks] = field(default=None, repr=False)

    @property
    def all_messages_ok(self) -> bool:
        """True iff every submitted message was acknowledged with OK.

        Vacuously true for an empty workload: zero messages, zero failures.
        """
        return self.metrics.messages_ok == self.metrics.messages_submitted


class Simulator:
    """Drives one execution of ``D(A, ADV)`` to completion or step budget.

    Parameters
    ----------
    link:
        The protocol pair under test.
    adversary:
        The fault/scheduling strategy.  Wrapped in a
        :class:`FairnessEnforcer` unless ``enforce_fairness=False``.
    workload:
        The higher layer's message stream (Axioms 1–2 are enforced here).
    seed:
        Tape for the adversary (the stations carry their own tapes).
    retry_every:
        A RETRY internal action is forced at least every this many steps;
        adversaries may trigger additional ones.
    max_steps:
        Hard stop — bounded stand-in for "eventually".
    enforce_fairness:
        Disable only to demonstrate what an unfair adversary can do
        (the theorems then promise liveness nothing).
    fairness_patience:
        Forwarded to the :class:`FairnessEnforcer`.
    retain, tail_size:
        Trace retention mode (see :class:`~repro.checkers.trace.Trace`).
        ``"full"`` keeps the whole execution; ``"tail"`` a bounded ring of
        the most recent ``tail_size`` events; ``"none"`` counters only.
    checks:
        An optional :class:`StreamingChecks` suite subscribed to the trace
        so the Section 2.6 conditions are evaluated online during the run.
    storage_sample_every:
        Sample the stations' storage footprint every this many steps.
        Default: every step under ``retain="full"`` (the experiments'
        series need that), every 16 steps otherwise (the peak stays
        accurate to within a message's growth; the campaign path doesn't
        pay a per-step probe).  ``0`` disables periodic sampling entirely.
    keep_storage_samples:
        Forwarded to :class:`MetricsCollector`; default keeps the series
        only under ``retain="full"``.
    engine:
        ``"object"`` runs the classic per-object loop below; ``"kernel"``
        runs the flat slot-indexed step kernel (:mod:`repro.kernel`),
        which produces the identical execution — same trace events, same
        RNG draws, same verdicts — several times faster.  The kernel
        borrows the stations'/channels'/adversary's state for the run and
        syncs it back afterwards, so everything observable through this
        class behaves the same either way.
    """

    def __init__(
        self,
        link: DataLink,
        adversary: Adversary,
        workload: Workload,
        seed: Optional[int] = None,
        retry_every: int = 4,
        max_steps: int = 100_000,
        enforce_fairness: bool = True,
        fairness_patience: int = 32,
        retain: str = "full",
        tail_size: int = 256,
        checks: Optional[StreamingChecks] = None,
        storage_sample_every: Optional[int] = None,
        keep_storage_samples: Optional[bool] = None,
        engine: str = "object",
    ) -> None:
        if retry_every < 1:
            raise ValueError("retry_every must be >= 1")
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if engine not in ("object", "kernel"):
            raise ValueError(
                f"engine must be 'object' or 'kernel', got {engine!r}"
            )
        if storage_sample_every is None:
            storage_sample_every = 1 if retain == "full" else 16
        if storage_sample_every < 0:
            raise ValueError("storage_sample_every must be >= 0")
        if keep_storage_samples is None:
            keep_storage_samples = retain == "full"
        self._engine = engine
        self._retry_every = retry_every
        self._max_steps = max_steps
        self._storage_sample_every = storage_sample_every
        self._enforce_fairness = enforce_fairness
        self._fairness_patience = fairness_patience
        self._keep_storage_samples = keep_storage_samples
        self._channels = ChannelPair(on_new_pkt=self._on_new_pkt)
        self._t_to_r = self._channels.t_to_r
        self._r_to_t = self._channels.r_to_t
        self._trace = Trace(retain=retain, tail_size=tail_size)
        self._checks = checks
        if checks is not None:
            self._trace.subscribe(checks.observe, types=checks.observed_types)
        self._move_handlers: Dict[type, Callable[[Move], None]] = {
            Deliver: self._deliver,
            CrashTransmitter: self._crash_transmitter,
            CrashReceiver: self._crash_receiver,
            Corrupt: self._corrupt,
            TriggerRetry: self._trigger_retry,
            Pass: self._pass,
        }
        self._install(link, adversary, workload, seed)

    def _install(
        self,
        link: DataLink,
        adversary: Adversary,
        workload: Workload,
        seed: Optional[int],
    ) -> None:
        """Wire fresh run participants into this (new or recycled) harness.

        Everything per-run lives here; everything per-session (channels,
        trace, checks, move-handler cache, config) lives in ``__init__``.
        A reused simulator must make exactly the choices a fresh one would,
        so this re-derives every run-scoped attribute from scratch.
        """
        self._link = link
        self._transmitter = link.transmitter
        self._receiver = link.receiver
        self._workload = workload
        if self._enforce_fairness and not isinstance(adversary, FairnessEnforcer):
            adversary = FairnessEnforcer(adversary, patience=self._fairness_patience)
        self._adversary = adversary
        self._adversary.bind(RandomSource(seed).fork("adversary"))
        # When the adversary uses the stock Adversary.next_move (every
        # in-tree one does), run() folds its bookkeeping into the loop and
        # calls _decide directly — one call frame per step instead of two.
        self._adversary_decide = (
            adversary._decide
            if type(adversary).next_move is Adversary.next_move
            else None
        )
        # Packet-level events are ~half the execution; skip allocating them
        # when neither retention nor an observer would ever see one.  The
        # skipped events are counted in plain ints here and flushed to the
        # trace's counters in bulk (end of run(), or whenever the trace is
        # read) — Trace.tally1 per event would still pay a call frame.
        self._record_pkt_sent = self._trace.wants(PktSent)
        self._record_pkt_delivered = self._trace.wants(PktDelivered)
        self._record_retry = self._trace.wants(Retry)
        self._pkt_sent_tally = 0
        self._pkt_delivered_tally = 0
        self._retry_tally = 0
        self._metrics = MetricsCollector(
            link, self._channels, keep_storage_samples=self._keep_storage_samples
        )
        self._message_iter: Iterator[bytes] = iter(workload)
        self._next_message: Optional[bytes] = None
        self._workload_exhausted = False
        self._submitted_payloads = set()
        self._steps = 0
        # Mirror of transmitter.busy, updated at the three transition points
        # the simulator itself drives (send_msg, EmitOk, crash^T), so the
        # per-step idle check is one attribute load instead of a property.
        self._tx_busy = self._transmitter.busy
        self._retry_countdown = self._retry_every
        self._storage_countdown = self._storage_sample_every
        self._advance_workload()

    def reset(
        self,
        link: DataLink,
        adversary: Adversary,
        workload: Workload,
        seed: Optional[int] = None,
    ) -> None:
        """Recycle this simulator for a fresh run with new participants.

        Clears the trace, channels and streaming checkers in place and
        installs the new ``D(A, ADV)`` composition — skipping the object
        construction and observer wiring that dominates short runs in
        campaign mode.  The reused harness is required to produce
        bit-identical executions to a freshly constructed ``Simulator``
        with the same arguments; the reset property tests pin this down.
        """
        self._trace.reset()
        self._channels.reset()
        if self._checks is not None:
            self._checks.reset()
        self._install(link, adversary, workload, seed)

    # -- channel callback -------------------------------------------------------------

    def _on_new_pkt(self, info) -> None:
        if self._record_pkt_sent:
            self._trace.append(
                make_pkt_sent(info.channel, info.packet_id, info.length_bits)
            )
        else:
            self._pkt_sent_tally += 1
        self._adversary.on_new_pkt(info)

    # -- run loop -----------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute until the workload is fully acknowledged or budget runs out.

        The loop body inlines :meth:`step` (sans the call frames) because
        this is the engine's hottest couple of lines; keep the two in sync.
        :meth:`step` remains the single-step API.
        """
        if self._engine == "kernel":
            from repro.kernel.engine import run_kernel

            return run_kernel(self)
        # A prior kernel run on this simulator may have parked flat packet
        # tuples on the channels; the object loop works on packet objects.
        self._channels.t_to_r._materialize()
        self._channels.r_to_t._materialize()
        submit = self._maybe_submit_message
        fire_retry = self._fire_retry
        adversary = self._adversary
        adv_decide = self._adversary_decide
        next_move = adversary.next_move
        deliver = self._deliver
        execute = self._execute_move
        metrics = self._metrics
        retry_every = self._retry_every
        max_steps = self._max_steps
        steps = self._steps
        started = perf_counter()
        while steps < max_steps:
            if (
                self._workload_exhausted
                and self._next_message is None
                and not self._tx_busy
            ):
                break
            steps += 1
            self._steps = steps
            if not self._tx_busy and self._next_message is not None:
                submit()
            countdown = self._retry_countdown - 1
            if countdown:
                self._retry_countdown = countdown
            else:
                self._retry_countdown = retry_every
                fire_retry()
            if adv_decide is not None:
                adversary._moves_made += 1
                move = adv_decide()
            else:
                move = next_move()
            if type(move) is Deliver:
                deliver(move)
            else:
                execute(move)
            if self._storage_countdown:
                self._storage_countdown -= 1
                if not self._storage_countdown:
                    self._storage_countdown = self._storage_sample_every
                    metrics.sample_storage()
        wall_seconds = perf_counter() - started
        self._flush_tallies()
        checker_seconds = self._checks.checker_seconds if self._checks else 0.0
        return SimulationResult(
            trace=self._trace,
            metrics=self._metrics.freeze(
                self._steps,
                wall_seconds=wall_seconds,
                checker_seconds=checker_seconds,
                events_recorded=self._trace.total_events,
            ),
            completed=self._finished(),
            steps=self._steps,
            link=self._link,
            adversary=self._adversary,
            checks=self._checks,
        )

    def step(self) -> None:
        """One simulation step: higher layer, RETRY cadence, adversary move."""
        self._steps += 1
        if not self._tx_busy and self._next_message is not None:
            self._maybe_submit_message()
        self._retry_countdown -= 1
        if not self._retry_countdown:
            self._retry_countdown = self._retry_every
            self._fire_retry()
        move = self._adversary.next_move()
        if type(move) is Deliver:
            self._deliver(move)
        else:
            self._execute_move(move)
        if self._storage_countdown:
            self._storage_countdown -= 1
            if not self._storage_countdown:
                self._storage_countdown = self._storage_sample_every
                self._metrics.sample_storage()

    # -- step phases ------------------------------------------------------------------------

    def _maybe_submit_message(self) -> None:
        if self._tx_busy or self._next_message is None:
            return
        message = self._next_message
        if message in self._submitted_payloads:
            raise AxiomViolationError(
                f"Axiom 2 violated: payload {message!r} submitted twice"
            )
        self._submitted_payloads.add(message)
        self._advance_workload()
        self._trace.append(make_send_msg(message))
        self._metrics.messages_submitted += 1
        outputs = self._transmitter.send_msg(message)
        self._tx_busy = True
        if outputs:
            self._apply_outputs(outputs, self._t_to_r)

    def _fire_retry(self) -> None:
        if self._record_retry:
            self._trace.append(RETRY)
        else:
            self._retry_tally += 1
        self._metrics.retries += 1
        outputs = self._receiver.retry()
        if outputs:
            self._apply_outputs(outputs, self._r_to_t)

    def _execute_move(self, move: Move) -> None:
        handler = self._move_handlers.get(type(move))
        if handler is None:
            handler = self._resolve_move_handler(type(move), move)
        handler(move)

    def _resolve_move_handler(
        self, move_type: type, move: Move
    ) -> Callable[[Move], None]:
        """Cache the handler for a Move subclass (same semantics as the old
        ``isinstance`` chain, paid once per concrete type)."""
        for registered, handler in list(self._move_handlers.items()):
            if issubclass(move_type, registered):
                self._move_handlers[move_type] = handler
                return handler
        raise SimulationError(f"adversary produced unknown move {move!r}")

    def _crash_transmitter(self, move: Move) -> None:
        self._trace.append(CRASH_T)
        self._metrics.crashes_t += 1
        self._transmitter.crash()
        self._tx_busy = False

    def _crash_receiver(self, move: Move) -> None:
        self._trace.append(CRASH_R)
        self._metrics.crashes_r += 1
        self._receiver.crash()

    def _corrupt(self, move: Corrupt) -> None:
        if move.wipe:
            # A wipe-mode corruption *is* a crash: the known-blank special
            # case of the arbitrary-state fault.  Delegating keeps the two
            # trace-identical, which the differential tests pin down.
            if move.station == "T":
                self._crash_transmitter(move)
            elif move.station == "R":
                self._crash_receiver(move)
            else:
                raise SimulationError(
                    f"corrupt move names unknown station {move.station!r}"
                )
            return
        # The scramble tape is pinned by the move's own seed — independent
        # of the adversary's tape — so recorded corruptions replay
        # bit-identically from forensics artifacts.
        rng = RandomSource(move.seed)
        if move.station == "T":
            scrambled = self._transmitter.corrupt(rng, move.fields)
            self._tx_busy = self._transmitter.busy
            self._metrics.corruptions_t += 1
        elif move.station == "R":
            scrambled = self._receiver.corrupt(rng, move.fields)
            self._metrics.corruptions_r += 1
        else:
            raise SimulationError(
                f"corrupt move names unknown station {move.station!r}"
            )
        self._trace.append(
            Corruption(station=move.station, fields=scrambled, seed=move.seed)
        )

    def _trigger_retry(self, move: Move) -> None:
        self._fire_retry()

    def _pass(self, move: Move) -> None:
        pass

    def _deliver(self, move: Deliver) -> None:
        to_receiver = move.channel is _T_TO_R or move.channel == ChannelId.T_TO_R
        channel = self._t_to_r if to_receiver else self._r_to_t
        packet = channel.deliver_pkt(move.packet_id)
        if self._record_pkt_delivered:
            self._trace.append(make_pkt_delivered(move.channel, move.packet_id))
        else:
            self._pkt_delivered_tally += 1
        if to_receiver:
            outputs = self._receiver.on_receive_pkt(packet)
            if outputs:
                self._apply_outputs(outputs, self._r_to_t)
        else:
            outputs = self._transmitter.on_receive_pkt(packet)
            if outputs:
                self._apply_outputs(outputs, self._t_to_r)

    def _apply_outputs(self, outputs: List[StationOutput], out_channel) -> None:
        """Apply station outputs; ``out_channel`` is where EmitPacket goes
        (each station only ever sends on its own outgoing channel)."""
        for output in outputs:
            output_type = type(output)
            if output_type is EmitPacket:
                out_channel.send_pkt(output.packet)
            elif output_type is EmitOk:
                self._trace.append(OK)
                self._metrics.messages_ok += 1
                self._tx_busy = False
            elif output_type is EmitReceiveMsg:
                self._trace.append(make_receive_msg(output.message))
                self._metrics.messages_delivered += 1
            elif isinstance(output, EmitPacket):
                out_channel.send_pkt(output.packet)
            elif isinstance(output, EmitOk):
                self._trace.append(OK)
                self._metrics.messages_ok += 1
                self._tx_busy = False
            elif isinstance(output, EmitReceiveMsg):
                self._trace.append(make_receive_msg(output.message))
                self._metrics.messages_delivered += 1
            else:
                raise SimulationError(f"unknown station output {output!r}")

    # -- bookkeeping ----------------------------------------------------------------------------

    def _flush_tallies(self) -> None:
        """Push the deferred packet/retry counts into the trace's counters."""
        if self._pkt_sent_tally:
            self._trace.tally(PktSent, self._pkt_sent_tally)
            self._pkt_sent_tally = 0
        if self._pkt_delivered_tally:
            self._trace.tally(PktDelivered, self._pkt_delivered_tally)
            self._pkt_delivered_tally = 0
        if self._retry_tally:
            self._trace.tally(Retry, self._retry_tally)
            self._retry_tally = 0

    def _advance_workload(self) -> None:
        try:
            self._next_message = next(self._message_iter)
        except StopIteration:
            self._next_message = None
            self._workload_exhausted = True

    def _finished(self) -> bool:
        return (
            self._workload_exhausted
            and self._next_message is None
            and not self._tx_busy
        )

    @property
    def trace(self) -> Trace:
        """The execution recorded so far (grows while stepping)."""
        self._flush_tallies()
        return self._trace

    @property
    def channels(self) -> ChannelPair:
        """The underlying channel pair (for inspection in tests)."""
        return self._channels

    @property
    def steps_taken(self) -> int:
        """Number of steps executed so far."""
        return self._steps

    @property
    def finished(self) -> bool:
        """True once the whole workload has been acknowledged."""
        return self._finished()

    @property
    def max_steps(self) -> int:
        """The step budget this simulator was configured with."""
        return self._max_steps
