"""The execution harness: composes ``D(A, ADV)`` and runs it.

This is the operational form of Figure 1.  One :class:`Simulator` owns:

* a :class:`~repro.core.protocol.DataLink` (the pair ``A = (A^t, A^r)``);
* a :class:`~repro.channel.ChannelPair` (``C^{T→R}`` and ``C^{R→T}``);
* an :class:`~repro.adversary.Adversary` (optionally wrapped in a
  :class:`~repro.adversary.FairnessEnforcer` so Axiom 3 holds);
* a :class:`~repro.sim.workload.Workload` standing in for the higher layer.

Each simulation *step* is: (1) the higher layer submits the next message if
the transmitter is idle (Axiom 1), (2) the receiver's RETRY internal action
fires on its cadence (the "infinitely many RETRY events" assumption), and
(3) the adversary makes one move.  The full execution is recorded as a
:class:`~repro.checkers.trace.Trace` for the correctness checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.adversary.base import (
    Adversary,
    CrashReceiver,
    CrashTransmitter,
    Deliver,
    Move,
    Pass,
    TriggerRetry,
)
from repro.adversary.fairness import FairnessEnforcer
from repro.channel.channel import ChannelPair
from repro.checkers.trace import Trace
from repro.core.events import (
    ChannelId,
    CrashR,
    CrashT,
    EmitOk,
    EmitPacket,
    EmitReceiveMsg,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
    StationOutput,
)
from repro.core.exceptions import AxiomViolationError, SimulationError
from repro.core.protocol import DataLink
from repro.core.random_source import RandomSource
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.workload import Workload

__all__ = ["SimulationResult", "Simulator"]


@dataclass
class SimulationResult:
    """Everything a finished run produced."""

    trace: Trace
    metrics: SimulationMetrics
    completed: bool
    steps: int
    link: DataLink
    adversary: Adversary

    @property
    def all_messages_ok(self) -> bool:
        """True iff every submitted message was acknowledged with OK.

        Vacuously true for an empty workload: zero messages, zero failures.
        """
        return self.metrics.messages_ok == self.metrics.messages_submitted


class Simulator:
    """Drives one execution of ``D(A, ADV)`` to completion or step budget.

    Parameters
    ----------
    link:
        The protocol pair under test.
    adversary:
        The fault/scheduling strategy.  Wrapped in a
        :class:`FairnessEnforcer` unless ``enforce_fairness=False``.
    workload:
        The higher layer's message stream (Axioms 1–2 are enforced here).
    seed:
        Tape for the adversary (the stations carry their own tapes).
    retry_every:
        A RETRY internal action is forced at least every this many steps;
        adversaries may trigger additional ones.
    max_steps:
        Hard stop — bounded stand-in for "eventually".
    enforce_fairness:
        Disable only to demonstrate what an unfair adversary can do
        (the theorems then promise liveness nothing).
    fairness_patience:
        Forwarded to the :class:`FairnessEnforcer`.
    """

    def __init__(
        self,
        link: DataLink,
        adversary: Adversary,
        workload: Workload,
        seed: Optional[int] = None,
        retry_every: int = 4,
        max_steps: int = 100_000,
        enforce_fairness: bool = True,
        fairness_patience: int = 32,
    ) -> None:
        if retry_every < 1:
            raise ValueError("retry_every must be >= 1")
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        self._link = link
        self._workload = workload
        self._retry_every = retry_every
        self._max_steps = max_steps
        if enforce_fairness and not isinstance(adversary, FairnessEnforcer):
            adversary = FairnessEnforcer(adversary, patience=fairness_patience)
        self._adversary = adversary
        self._adversary.bind(RandomSource(seed).fork("adversary"))
        self._channels = ChannelPair(on_new_pkt=self._on_new_pkt)
        self._trace = Trace()
        self._metrics = MetricsCollector(link, self._channels)
        self._message_iter: Iterator[bytes] = iter(workload)
        self._next_message: Optional[bytes] = None
        self._workload_exhausted = False
        self._submitted_payloads = set()
        self._steps = 0
        self._advance_workload()

    # -- channel callback -------------------------------------------------------------

    def _on_new_pkt(self, info) -> None:
        self._trace.append(
            PktSent(
                channel=info.channel,
                packet_id=info.packet_id,
                length_bits=info.length_bits,
            )
        )
        self._adversary.on_new_pkt(info)

    # -- run loop -----------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute until the workload is fully acknowledged or budget runs out."""
        while self._steps < self._max_steps:
            if self._finished():
                break
            self.step()
        return SimulationResult(
            trace=self._trace,
            metrics=self._metrics.freeze(self._steps),
            completed=self._finished(),
            steps=self._steps,
            link=self._link,
            adversary=self._adversary,
        )

    def step(self) -> None:
        """One simulation step: higher layer, RETRY cadence, adversary move."""
        self._steps += 1
        self._maybe_submit_message()
        if self._steps % self._retry_every == 0:
            self._fire_retry()
        move = self._adversary.next_move()
        self._execute_move(move)
        self._metrics.sample_storage()

    # -- step phases ------------------------------------------------------------------------

    def _maybe_submit_message(self) -> None:
        if self._link.transmitter.busy or self._next_message is None:
            return
        message = self._next_message
        if message in self._submitted_payloads:
            raise AxiomViolationError(
                f"Axiom 2 violated: payload {message!r} submitted twice"
            )
        self._submitted_payloads.add(message)
        self._advance_workload()
        self._trace.append(SendMsg(message=message))
        self._metrics.messages_submitted += 1
        outputs = self._link.transmitter.send_msg(message)
        self._apply_outputs(outputs, source="transmitter")

    def _fire_retry(self) -> None:
        self._trace.append(Retry())
        self._metrics.retries += 1
        outputs = self._link.receiver.retry()
        self._apply_outputs(outputs, source="receiver")

    def _execute_move(self, move: Move) -> None:
        if isinstance(move, Deliver):
            self._deliver(move)
        elif isinstance(move, CrashTransmitter):
            self._trace.append(CrashT())
            self._metrics.crashes_t += 1
            self._link.transmitter.crash()
        elif isinstance(move, CrashReceiver):
            self._trace.append(CrashR())
            self._metrics.crashes_r += 1
            self._link.receiver.crash()
        elif isinstance(move, TriggerRetry):
            self._fire_retry()
        elif isinstance(move, Pass):
            pass
        else:
            raise SimulationError(f"adversary produced unknown move {move!r}")

    def _deliver(self, move: Deliver) -> None:
        channel = self._channels.by_id(move.channel)
        packet = channel.deliver_pkt(move.packet_id)
        self._trace.append(PktDelivered(channel=move.channel, packet_id=move.packet_id))
        if move.channel == ChannelId.T_TO_R:
            outputs = self._link.receiver.on_receive_pkt(packet)
            self._apply_outputs(outputs, source="receiver")
        else:
            outputs = self._link.transmitter.on_receive_pkt(packet)
            self._apply_outputs(outputs, source="transmitter")

    def _apply_outputs(self, outputs: List[StationOutput], source: str) -> None:
        for output in outputs:
            if isinstance(output, EmitPacket):
                channel = (
                    self._channels.t_to_r
                    if source == "transmitter"
                    else self._channels.r_to_t
                )
                channel.send_pkt(output.packet)
            elif isinstance(output, EmitOk):
                self._trace.append(Ok())
                self._metrics.messages_ok += 1
            elif isinstance(output, EmitReceiveMsg):
                self._trace.append(ReceiveMsg(message=output.message))
                self._metrics.messages_delivered += 1
            else:
                raise SimulationError(f"unknown station output {output!r}")

    # -- bookkeeping ----------------------------------------------------------------------------

    def _advance_workload(self) -> None:
        try:
            self._next_message = next(self._message_iter)
        except StopIteration:
            self._next_message = None
            self._workload_exhausted = True

    def _finished(self) -> bool:
        return (
            self._workload_exhausted
            and self._next_message is None
            and not self._link.transmitter.busy
        )

    @property
    def trace(self) -> Trace:
        """The execution recorded so far (grows while stepping)."""
        return self._trace

    @property
    def channels(self) -> ChannelPair:
        """The underlying channel pair (for inspection in tests)."""
        return self._channels

    @property
    def steps_taken(self) -> int:
        """Number of steps executed so far."""
        return self._steps

    @property
    def finished(self) -> bool:
        """True once the whole workload has been acknowledged."""
        return self._finished()

    @property
    def max_steps(self) -> int:
        """The step budget this simulator was configured with."""
        return self._max_steps
