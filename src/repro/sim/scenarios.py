"""Named simulation scenarios: the paper's situations as a registry.

Examples, benchmarks and the CLI all need the same handful of situations —
"fault-free", "lossy link", "the Section 3 attack", "crash storm", and so
on.  This registry gives each a name, a description, and a factory, so a
user can run any of them with one call::

    from repro.sim.scenarios import get_scenario
    result = get_scenario("crash-storm").run(seed=7)

or from the shell::

    python -m repro scenario crash-storm --seed 7
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.adversary.base import Adversary
from repro.adversary.benign import DelayedFifoAdversary, ReliableAdversary
from repro.adversary.crash import CrashStormAdversary
from repro.adversary.fairness import StallingAdversary
from repro.adversary.random_faults import (
    DuplicateFloodAdversary,
    FaultProfile,
    RandomFaultAdversary,
)
from repro.adversary.replay import ReplayAttacker
from repro.checkers.safety import SafetyReport, check_all_safety
from repro.core.protocol import DataLink, make_data_link
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.workload import SequentialWorkload

__all__ = ["Scenario", "ScenarioResult", "get_scenario", "list_scenarios", "SCENARIOS"]


@dataclass
class ScenarioResult:
    """A scenario run plus its checker verdicts."""

    simulation: SimulationResult
    safety: SafetyReport

    @property
    def ok(self) -> bool:
        """Completed with all Section 2.6 conditions intact."""
        return self.simulation.completed and self.safety.passed


@dataclass(frozen=True)
class Scenario:
    """One named, reproducible simulation setup."""

    name: str
    description: str
    adversary_factory: Callable[[], Adversary]
    messages: int = 20
    epsilon: float = 2.0 ** -16
    max_steps: int = 100_000
    enforce_fairness: bool = True
    retry_every: int = 4

    def run(self, seed: int = 0) -> ScenarioResult:
        """Execute the scenario with fresh, seeded components."""
        link = make_data_link(epsilon=self.epsilon, seed=seed)
        simulator = Simulator(
            link,
            self.adversary_factory(),
            SequentialWorkload(self.messages),
            seed=seed,
            max_steps=self.max_steps,
            enforce_fairness=self.enforce_fairness,
            retry_every=self.retry_every,
        )
        result = simulator.run()
        return ScenarioResult(
            simulation=result, safety=check_all_safety(result.trace)
        )


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            name="fault-free",
            description="Reliable FIFO channel: the three-packet handshake at its best.",
            adversary_factory=ReliableAdversary,
        ),
        Scenario(
            name="slow-link",
            description="FIFO with fixed propagation delay; no faults.",
            adversary_factory=lambda: DelayedFifoAdversary(delay_turns=8),
        ),
        Scenario(
            name="lossy",
            description="40% independent packet loss (FIFO otherwise).",
            adversary_factory=lambda: RandomFaultAdversary(FaultProfile(loss=0.4)),
            enforce_fairness=False,  # loss < 1 is fair by itself; keep FIFO
        ),
        Scenario(
            name="chaos",
            description=(
                "Everything at once: loss, duplication, reordering and "
                "random crashes of both stations."
            ),
            adversary_factory=lambda: RandomFaultAdversary(
                FaultProfile(
                    loss=0.3, duplicate=0.3, reorder=0.5,
                    crash_t=0.002, crash_r=0.002,
                )
            ),
        ),
        Scenario(
            name="duplicate-flood",
            description="Old data packets redelivered relentlessly (Theorems 7+8 pressure).",
            adversary_factory=lambda: DuplicateFloodAdversary(
                flood=0.8, flood_t_to_r_only=True
            ),
            # At flood f only (1-f) of adversary moves deliver fresh
            # packets; the poll cadence must stay below that capacity or
            # the queue diverges.
            retry_every=24,
        ),
        Scenario(
            name="replay-attack",
            description="The Section 3 crash-then-replay attack (oblivious).",
            adversary_factory=lambda: ReplayAttacker(
                harvest_messages=60, replay_rounds=5
            ),
            messages=180,
            epsilon=2.0 ** -12,
        ),
        Scenario(
            name="crash-storm",
            description="Random memory-erasing crashes of both stations.",
            adversary_factory=lambda: CrashStormAdversary(
                crash_rate=0.015, max_crashes=10
            ),
        ),
        Scenario(
            name="stalling",
            description=(
                "Pure denial of service under Axiom-3 enforcement: the "
                "slowest schedule a fair adversary can impose (Theorem 9)."
            ),
            adversary_factory=StallingAdversary,
            messages=8,
            max_steps=300_000,
        ),
    ]
}


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name; raises KeyError with the valid names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        valid = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; choose one of: {valid}") from None


def list_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]
