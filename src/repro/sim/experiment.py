"""Parameter-sweep framework: turn Monte-Carlo results into table rows.

Every experiment in EXPERIMENTS.md is a sweep over one axis (ε, loss rate,
crash rate, policy, ...) with a fixed row schema.  :class:`Sweep` runs the
axis points, collects one :class:`SweepRow` per point, and renders the
table the corresponding benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.sim.runner import MonteCarloResult, RunSpec, monte_carlo
from repro.util.tables import render_table

__all__ = ["SweepRow", "SweepResult", "Sweep"]


@dataclass(frozen=True)
class SweepRow:
    """One axis point's aggregated measurements."""

    point: object
    values: Dict[str, object]


@dataclass
class SweepResult:
    """All rows of one sweep, renderable as the experiment's table."""

    axis_name: str
    columns: Sequence[str]
    rows: List[SweepRow] = field(default_factory=list)
    title: str = ""

    def render(self) -> str:
        """Fixed-width table: axis column followed by the value columns."""
        headers = [self.axis_name] + list(self.columns)
        body = [
            [row.point] + [row.values.get(col, "") for col in self.columns]
            for row in self.rows
        ]
        return render_table(headers, body, title=self.title)

    def column(self, name: str) -> List[object]:
        """Extract one column as a list (for assertions in benches/tests)."""
        return [row.values.get(name) for row in self.rows]

    def points(self) -> List[object]:
        """The axis points, in order."""
        return [row.point for row in self.rows]


class Sweep:
    """Runs a Monte-Carlo batch per axis point and tabulates the results.

    Parameters
    ----------
    axis_name:
        Label of the swept parameter (becomes the first table column).
    spec_for:
        Maps an axis point to the :class:`RunSpec` to run there.
    row_for:
        Maps the point's :class:`MonteCarloResult` to a column→value dict.
    runs_per_point:
        Independent simulations per axis point.
    """

    def __init__(
        self,
        axis_name: str,
        spec_for: Callable[[object], RunSpec],
        row_for: Callable[[object, MonteCarloResult], Dict[str, object]],
        runs_per_point: int = 20,
        base_seed: int = 0,
        title: str = "",
    ) -> None:
        if runs_per_point < 1:
            raise ValueError("runs_per_point must be >= 1")
        self._axis_name = axis_name
        self._spec_for = spec_for
        self._row_for = row_for
        self._runs_per_point = runs_per_point
        self._base_seed = base_seed
        self._title = title

    def run(self, points: Sequence[object]) -> SweepResult:
        """Execute the sweep over the given axis points."""
        rows: List[SweepRow] = []
        columns: List[str] = []
        for index, point in enumerate(points):
            spec = self._spec_for(point)
            result = monte_carlo(
                spec, runs=self._runs_per_point, base_seed=self._base_seed + index
            )
            values = self._row_for(point, result)
            if not columns:
                columns = list(values.keys())
            rows.append(SweepRow(point=point, values=values))
        return SweepResult(
            axis_name=self._axis_name, columns=columns, rows=rows, title=self._title
        )
