"""Monte-Carlo experiment runner.

The probabilistic conditions of Section 2.6 are statements about
distributions over executions; estimating them takes many independent runs
with fresh random tapes.  :func:`monte_carlo` repeats a configurable run
specification across seeds, evaluates every safety checker on every trace,
and aggregates Bernoulli estimates (with Wilson intervals) per condition —
the raw material for experiments E1, E3 and E6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.adversary.base import Adversary
from repro.checkers.report import SafetyReport
from repro.checkers.streaming import StreamingChecks
from repro.core.protocol import DataLink, make_data_link
from repro.core.random_source import split_seed
from repro.sim.metrics import SimulationMetrics
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.workload import SequentialWorkload, Workload
from repro.util.stats import BernoulliEstimate, wilson_interval

__all__ = [
    "RunSpec",
    "RunOutcome",
    "RunSession",
    "MonteCarloResult",
    "derive_run_seed",
    "run_once",
    "monte_carlo",
]


def derive_run_seed(base_seed: int, index: int, attempt: int) -> int:
    """The seed of one run of a batch: a pure function of its coordinates.

    Every execution path — serial :func:`monte_carlo`, the in-process
    campaign loop, and sharded pool workers — derives run seeds through
    this one function, which is what makes their per-seed verdicts
    bit-identical regardless of scheduling.  Retries get fresh tapes via
    ``attempt`` without perturbing any other run's seed.
    """
    return split_seed(base_seed, "campaign-run", index, attempt)


@dataclass
class RunSpec:
    """Everything needed to launch one independent simulation.

    Factories (rather than instances) are stored so every run gets fresh,
    independently seeded components.
    """

    link_factory: Callable[[int], DataLink]
    adversary_factory: Callable[[], Adversary]
    workload_factory: Callable[[int], Workload] = (
        lambda seed: SequentialWorkload(20)
    )
    retry_every: int = 4
    max_steps: int = 100_000
    enforce_fairness: bool = True
    fairness_patience: int = 32
    label: str = ""
    retain: str = "full"
    tail_size: int = 256
    # Self-stabilizing mode: attach the convergence monitor so Section 2.6
    # accounting is suspended during corruption probation windows.
    stabilization: bool = False
    stabilization_window: int = 8
    # Execution engine: "object" (classic loop) or "kernel" (flat
    # slot-indexed step kernel; identical executions, several times faster).
    engine: str = "object"

    @classmethod
    def default(
        cls,
        epsilon: float = 2.0 ** -16,
        adversary_factory: Callable[[], Adversary] = None,
        messages: int = 20,
        **overrides,
    ) -> "RunSpec":
        """Convenience spec: standard link + sequential workload."""
        if adversary_factory is None:
            from repro.adversary.benign import ReliableAdversary

            adversary_factory = ReliableAdversary
        return cls(
            link_factory=lambda seed: make_data_link(epsilon=epsilon, seed=seed),
            adversary_factory=adversary_factory,
            workload_factory=lambda seed: SequentialWorkload(messages),
            **overrides,
        )


@dataclass
class RunOutcome:
    """One run's simulation result plus its checker verdicts.

    ``stabilization`` is the convergence summary (a
    :class:`~repro.checkers.stabilization.StabilizationReport`) when the
    spec ran with ``stabilization=True``, else None.
    """

    seed: int
    result: SimulationResult
    safety: SafetyReport
    liveness_passed: bool
    stabilization: Optional[object] = None

    @property
    def metrics(self) -> SimulationMetrics:
        return self.result.metrics


class RunSession:
    """A reusable harness executing many runs of one spec, one at a time.

    The first :meth:`run` builds the simulator and its streaming checker
    suite; subsequent calls recycle them via :meth:`Simulator.reset`, which
    skips the object construction and observer wiring that dominates short
    runs.  Component seeds are derived exactly as a fresh :func:`run_once`
    would derive them (``split_seed(seed, "link"/"workload"/"adversary")``),
    so a session's outcomes are bit-identical to per-run construction —
    the shard-determinism and reset property tests pin this down.

    A session is single-threaded and yields *live* results: the trace and
    checker objects inside the returned :class:`RunOutcome` are reused by
    the next :meth:`run`.  Callers that keep outcomes (rather than
    extracting summaries immediately) should use :func:`run_once`.
    """

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        self._simulator: Optional[Simulator] = None
        self._checks: Optional[StreamingChecks] = None

    def invalidate(self) -> None:
        """Discard the recycled harness; the next run rebuilds from scratch."""
        self._simulator = None
        self._checks = None

    def run(
        self,
        seed: int,
        adversary_factory: Optional[Callable[[], Adversary]] = None,
    ) -> RunOutcome:
        """Execute one run of the spec under ``seed`` and check it.

        ``adversary_factory`` overrides the spec's factory for this run
        only — the hook the campaign supervisor uses to inject per-run
        scripted fault plans without rebuilding specs or sessions.
        """
        spec = self.spec
        factory = adversary_factory if adversary_factory is not None else (
            spec.adversary_factory
        )
        link = spec.link_factory(split_seed(seed, "link"))
        adversary = factory()
        workload = spec.workload_factory(split_seed(seed, "workload"))
        simulator = self._simulator
        try:
            if simulator is None:
                self._checks = checks = StreamingChecks(
                    timed=True,
                    stabilization=spec.stabilization,
                    stabilization_window=spec.stabilization_window,
                )
                self._simulator = simulator = Simulator(
                    link=link,
                    adversary=adversary,
                    workload=workload,
                    seed=split_seed(seed, "adversary"),
                    retry_every=spec.retry_every,
                    max_steps=spec.max_steps,
                    enforce_fairness=spec.enforce_fairness,
                    fairness_patience=spec.fairness_patience,
                    retain=spec.retain,
                    tail_size=spec.tail_size,
                    checks=checks,
                    engine=spec.engine,
                )
            else:
                checks = self._checks
                simulator.reset(
                    link, adversary, workload, seed=split_seed(seed, "adversary")
                )
            result = simulator.run()
        except BaseException:
            # The run died mid-flight (timeout alarm, injected abort,
            # harness exception) and left the simulator mid-execution;
            # drop it so the next run rebuilds clean.
            self.invalidate()
            raise
        stabilization = None
        if checks.stabilization is not None:
            # Close any open probation episode before reading verdicts: a
            # cleanly drained run converged by definition, a truncated one
            # keeps its probation violations.
            checks.stabilization.finalize(result.completed)
            stabilization = checks.stabilization.summary()
        safety = checks.safety_report()
        liveness = checks.liveness_report(run_completed=result.completed)
        return RunOutcome(
            seed=seed,
            result=result,
            safety=safety,
            liveness_passed=liveness.passed,
            stabilization=stabilization,
        )


def run_once(spec: RunSpec, seed: int) -> RunOutcome:
    """Execute one independent run of the spec and check its execution.

    The Section 2.6 conditions are evaluated by online monitors riding the
    recording pass (see :class:`~repro.checkers.StreamingChecks`), so the
    verdicts are available whatever the spec's trace retention mode — no
    post-hoc rescans of the trace.  (One-shot form of :class:`RunSession`;
    the returned outcome owns its trace and checkers.)
    """
    return RunSession(spec).run(seed)


@dataclass
class MonteCarloResult:
    """Aggregated verdicts across many independent runs.

    The per-condition estimates are over *trials*, not runs: e.g. the order
    estimate pools every OK'd message of every run as one Bernoulli trial,
    matching the theorem's per-message quantification.
    """

    spec: RunSpec
    runs: int
    outcomes: List[RunOutcome] = field(repr=False, default_factory=list)

    def _pool(self, picker: Callable[[SafetyReport], Tuple[int, int]]) -> BernoulliEstimate:
        failures = 0
        trials = 0
        for outcome in self.outcomes:
            f, t = picker(outcome.safety)
            failures += f
            trials += t
        return wilson_interval(failures, trials)

    @property
    def order_violation_rate(self) -> BernoulliEstimate:
        """Per-OK'd-message rate of Theorem 3 (order) violations."""
        return self._pool(lambda s: (s.order.failure_count, s.order.trials))

    @property
    def duplication_violation_rate(self) -> BernoulliEstimate:
        """Per-delivery rate of Theorem 8 (no duplication) violations."""
        return self._pool(
            lambda s: (s.no_duplication.failure_count, s.no_duplication.trials)
        )

    @property
    def replay_violation_rate(self) -> BernoulliEstimate:
        """Per-delivery rate of Theorem 7 (no replay) violations."""
        return self._pool(lambda s: (s.no_replay.failure_count, s.no_replay.trials))

    @property
    def causality_violations(self) -> int:
        """Absolute count — Theorem 1 allows exactly zero."""
        return sum(o.safety.causality.failure_count for o in self.outcomes)

    @property
    def completion_rate(self) -> float:
        """Fraction of runs that finished their workload within budget."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.result.completed) / len(self.outcomes)

    @property
    def any_safety_violation(self) -> bool:
        """True iff any run violated any safety condition."""
        return any(not o.safety.passed for o in self.outcomes)

    @property
    def mean_packets_per_message(self) -> float:
        """Mean over runs of packets-per-OK'd-message."""
        values = [
            o.metrics.per_message_packets
            for o in self.outcomes
            if o.metrics.messages_ok > 0
        ]
        return sum(values) / len(values) if values else float("inf")

    @property
    def mean_storage_peak_bits(self) -> float:
        """Mean over runs of the peak combined nonce footprint."""
        if not self.outcomes:
            return 0.0
        return sum(o.metrics.storage_peak_bits for o in self.outcomes) / len(
            self.outcomes
        )

    @property
    def steps_per_second(self) -> float:
        """Pooled simulation throughput: total steps over total wall time."""
        wall = sum(o.metrics.wall_seconds for o in self.outcomes)
        if wall <= 0.0:
            return 0.0
        return sum(o.metrics.steps for o in self.outcomes) / wall

    @property
    def events_per_second(self) -> float:
        """Pooled recording throughput: total events over total wall time."""
        wall = sum(o.metrics.wall_seconds for o in self.outcomes)
        if wall <= 0.0:
            return 0.0
        return sum(o.metrics.events_recorded for o in self.outcomes) / wall

    @property
    def checker_overhead_ratio(self) -> float:
        """Pooled share of wall time spent in the online checkers."""
        wall = sum(o.metrics.wall_seconds for o in self.outcomes)
        if wall <= 0.0:
            return 0.0
        return sum(o.metrics.checker_seconds for o in self.outcomes) / wall


def monte_carlo(
    spec: RunSpec,
    runs: int,
    base_seed: int = 0,
    parallel: bool = False,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    chunk_size: Optional[int] = None,
):
    """Run ``runs`` independent simulations of ``spec`` and aggregate.

    With ``parallel=False`` (the default) every run executes serially
    in-process and the return value is a :class:`MonteCarloResult`.  With
    ``parallel=True`` the batch is delegated to the fault-tolerant campaign
    supervisor (worker processes, sharded dispatch with ``chunk_size`` runs
    per pool task, per-run ``timeout``, bounded ``retries``) and the return
    value is a :class:`~repro.resilience.supervisor.CampaignResult`, which
    exposes the same aggregate properties (violation rates, completion
    rate, ...) while additionally reporting per-status counts for runs that
    produced no data.

    Both paths run the *same* spec (factories, retention, budgets) under
    the same per-run seeds (:func:`derive_run_seed`), so per-seed verdicts
    are identical serial vs parallel for any ``jobs``/``chunk_size``.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if parallel:
        import os

        from repro.resilience.supervisor import CampaignConfig, run_campaign

        config = CampaignConfig(
            jobs=jobs if jobs is not None else (os.cpu_count() or 1),
            timeout=timeout,
            retries=retries,
            chunk_size=chunk_size,
        )
        return run_campaign(spec, runs, base_seed=base_seed, config=config)
    # Fresh objects per run (not a RunSession): MonteCarloResult keeps every
    # outcome alive, so their traces must not share one recycled simulator.
    outcomes = [run_once(spec, derive_run_seed(base_seed, i, 0)) for i in range(runs)]
    return MonteCarloResult(spec=spec, runs=runs, outcomes=outcomes)
