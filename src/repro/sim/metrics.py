"""Metrics extracted from simulations.

The paper makes three quantitative claims the experiments measure:

* communication cost — three packets per message when fault-free, growing
  linearly with the number of errors during the message (Section 1);
* storage — nonce lengths depend only on faults during the *current*
  message and reset after OK / receive_msg / crash (Section 1);
* error probability — at most ε per message (Section 2.6).

:class:`MetricsCollector` samples the live system as the simulator runs;
:class:`SimulationMetrics` is the frozen summary attached to results.
Alongside the protocol-level quantities, the summary carries the harness's
own throughput (``steps_per_second``, ``events_per_second``) and the cost
of online checking (``checker_overhead_ratio``), so sweeps report speed
next to violation rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.channel.channel import ChannelPair
from repro.core.protocol import DataLink

__all__ = ["SimulationMetrics", "MetricsCollector"]


@dataclass(frozen=True)
class SimulationMetrics:
    """Frozen per-run summary.

    ``storage_peak_bits`` / ``storage_samples`` track the combined nonce
    footprint of both stations; ``per_message_packets`` divides total
    packets by *resolved* messages (the paper's communication-cost unit).
    ``wall_seconds`` is the wall-clock time of the run loop,
    ``checker_seconds`` the share spent in the online monitors (0.0 when
    none were attached), and ``events_recorded`` the full event count of
    the execution regardless of trace retention.
    """

    steps: int
    messages_submitted: int
    messages_ok: int
    messages_delivered: int
    packets_sent: int
    packets_delivered: int
    bits_sent: int
    retries: int
    crashes_t: int
    crashes_r: int
    corruptions_t: int
    corruptions_r: int
    transmitter_extensions: int
    receiver_extensions: int
    transmitter_errors_counted: int
    receiver_errors_counted: int
    storage_peak_bits: int
    storage_final_bits: int
    storage_samples: List[int] = field(repr=False, default_factory=list)
    wall_seconds: float = 0.0
    checker_seconds: float = 0.0
    events_recorded: int = 0
    # Relay-fabric drop accounting (0 on single-link runs): frames lost
    # to a full relay FIFO vs frames lost to a link-down wire.
    dropped_overflow: int = 0
    dropped_down: int = 0

    @property
    def per_message_packets(self) -> float:
        """Packets sent per OK'd message (inf if nothing completed)."""
        if self.messages_ok == 0:
            return float("inf")
        return self.packets_sent / self.messages_ok

    @property
    def per_message_bits(self) -> float:
        """Wire bits per OK'd message (inf if nothing completed)."""
        if self.messages_ok == 0:
            return float("inf")
        return self.bits_sent / self.messages_ok

    @property
    def delivery_ratio(self) -> float:
        """Fraction of packet deliveries to packet sends (loss visibility)."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_delivered / self.packets_sent

    @property
    def steps_per_second(self) -> float:
        """Simulation steps per wall-clock second (0.0 if untimed)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.steps / self.wall_seconds

    @property
    def events_per_second(self) -> float:
        """Recorded events per wall-clock second (0.0 if untimed)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_recorded / self.wall_seconds

    @property
    def checker_overhead_ratio(self) -> float:
        """Fraction of the run's wall time spent in the online checkers."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.checker_seconds / self.wall_seconds

    # -- compact wire format (campaign result streaming) -----------------------

    def to_wire(self) -> Tuple:
        """Encode as a flat tuple for cheap cross-process transfer.

        Campaign workers ship one of these per run instead of pickling the
        dataclass (attribute dict, field names and all).  The per-sample
        storage series is deliberately dropped: campaign collectors run with
        ``keep_storage_samples=False``, and no campaign aggregate or
        fingerprint reads it.  Field order is the wire contract —
        :meth:`from_wire` and the round-trip test must change in lockstep.
        """
        return (
            self.steps,
            self.messages_submitted,
            self.messages_ok,
            self.messages_delivered,
            self.packets_sent,
            self.packets_delivered,
            self.bits_sent,
            self.retries,
            self.crashes_t,
            self.crashes_r,
            self.transmitter_extensions,
            self.receiver_extensions,
            self.transmitter_errors_counted,
            self.receiver_errors_counted,
            self.storage_peak_bits,
            self.storage_final_bits,
            self.wall_seconds,
            self.checker_seconds,
            self.events_recorded,
            self.corruptions_t,
            self.corruptions_r,
            self.dropped_overflow,
            self.dropped_down,
        )

    @classmethod
    def from_wire(cls, wire: Tuple) -> "SimulationMetrics":
        """Decode a :meth:`to_wire` tuple (storage series comes back empty)."""
        return cls(
            steps=wire[0],
            messages_submitted=wire[1],
            messages_ok=wire[2],
            messages_delivered=wire[3],
            packets_sent=wire[4],
            packets_delivered=wire[5],
            bits_sent=wire[6],
            retries=wire[7],
            crashes_t=wire[8],
            crashes_r=wire[9],
            transmitter_extensions=wire[10],
            receiver_extensions=wire[11],
            transmitter_errors_counted=wire[12],
            receiver_errors_counted=wire[13],
            storage_peak_bits=wire[14],
            storage_final_bits=wire[15],
            storage_samples=[],
            wall_seconds=wire[16],
            checker_seconds=wire[17],
            events_recorded=wire[18],
            corruptions_t=wire[19],
            corruptions_r=wire[20],
            dropped_overflow=wire[21],
            dropped_down=wire[22],
        )


class MetricsCollector:
    """Accumulates counters during a run and freezes them at the end.

    ``keep_storage_samples=False`` keeps the peak/final storage figures but
    drops the per-sample series — campaigns running thousands of runs don't
    want a list the length of the execution pickled back per run.
    """

    def __init__(
        self,
        link: DataLink,
        channels: ChannelPair,
        keep_storage_samples: bool = True,
    ) -> None:
        self._link = link
        self._channels = channels
        self._keep_storage_samples = keep_storage_samples
        self._storage_samples: List[int] = []
        self._storage_peak = 0
        self.messages_submitted = 0
        self.messages_ok = 0
        self.messages_delivered = 0
        self.retries = 0
        self.crashes_t = 0
        self.crashes_r = 0
        self.corruptions_t = 0
        self.corruptions_r = 0

    def sample_storage(self) -> None:
        """Record the current combined nonce footprint (call per step)."""
        bits = self._link.total_storage_bits()
        if self._keep_storage_samples:
            self._storage_samples.append(bits)
        if bits > self._storage_peak:
            self._storage_peak = bits

    def freeze(
        self,
        steps: int,
        wall_seconds: float = 0.0,
        checker_seconds: float = 0.0,
        events_recorded: int = 0,
    ) -> SimulationMetrics:
        """Produce the immutable summary for a finished run."""
        t_stats = self._link.transmitter.stats
        r_stats = self._link.receiver.stats
        final_bits = self._link.total_storage_bits()
        return SimulationMetrics(
            steps=steps,
            messages_submitted=self.messages_submitted,
            messages_ok=self.messages_ok,
            messages_delivered=self.messages_delivered,
            packets_sent=self._channels.total_packets_sent,
            packets_delivered=(
                self._channels.t_to_r.delivered_count
                + self._channels.r_to_t.delivered_count
            ),
            bits_sent=self._channels.total_bits_sent,
            retries=self.retries,
            crashes_t=self.crashes_t,
            crashes_r=self.crashes_r,
            corruptions_t=self.corruptions_t,
            corruptions_r=self.corruptions_r,
            transmitter_extensions=t_stats.extensions,
            receiver_extensions=r_stats.extensions,
            transmitter_errors_counted=t_stats.errors_counted,
            receiver_errors_counted=r_stats.errors_counted,
            storage_peak_bits=max(self._storage_peak, final_bits),
            storage_final_bits=final_bits,
            storage_samples=self._storage_samples,
            wall_seconds=wall_seconds,
            checker_seconds=checker_seconds,
            events_recorded=events_recorded,
        )
