"""Higher-layer workloads: the streams of messages the data link carries.

The environment above the data link is constrained by two axioms:

* **Axiom 1** — a new ``send_msg`` only after an OK or crash^T (the higher
  layer buffers, not the link);
* **Axiom 2** — every message value is sent at most once (uniqueness, which
  makes "error" well defined; see Section 2.5).

Workloads generate payload sequences that honour Axiom 2 by construction;
the simulator honours Axiom 1 by only drawing the next payload when the
transmitter is idle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Sequence

from repro.core.exceptions import AxiomViolationError
from repro.core.random_source import RandomSource

__all__ = ["Workload", "SequentialWorkload", "RandomPayloadWorkload", "ExplicitWorkload"]


class Workload(ABC):
    """A finite stream of unique message payloads."""

    @abstractmethod
    def __iter__(self) -> Iterator[bytes]:
        """Yield each payload exactly once, in submission order."""

    @property
    @abstractmethod
    def message_count(self) -> int:
        """How many messages this workload will submit."""


class SequentialWorkload(Workload):
    """Numbered payloads: ``msg-000000``, ``msg-000001``, ...

    The workhorse for experiments — payloads are unique, readable in trace
    dumps, and of uniform size so the adversary's length-only view cannot
    distinguish them (the oblivious assumption holds trivially).
    """

    def __init__(self, count: int, prefix: bytes = b"msg", pad_to: int = 0) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._count = count
        self._prefix = prefix
        self._pad_to = pad_to

    @property
    def message_count(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[bytes]:
        fmt = (self._prefix.replace(b"%", b"%%") + b"-%06d").__mod__
        if not self._pad_to:
            # Unpadded payloads come straight off a C-level map iterator:
            # the simulator pulls one payload per submission, so the
            # per-message generator-frame resume is measurable at
            # campaign scale.
            return map(fmt, range(self._count))
        return self._padded(fmt)

    def _padded(self, fmt) -> Iterator[bytes]:
        pad_to = self._pad_to
        for index in range(self._count):
            payload = fmt(index)
            if pad_to > len(payload):
                payload += b"." * (pad_to - len(payload))
            yield payload


class RandomPayloadWorkload(Workload):
    """Random payloads of configurable size, deduplicated to honour Axiom 2.

    A sequence number is prepended so uniqueness is guaranteed even when the
    random body collides.
    """

    def __init__(self, count: int, body_bytes: int, rng: RandomSource) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        if body_bytes < 0:
            raise ValueError("body_bytes must be non-negative")
        self._count = count
        self._body_bytes = body_bytes
        self._rng = rng

    @property
    def message_count(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[bytes]:
        for index in range(self._count):
            body = bytes(
                self._rng.randint(0, 255) for __ in range(self._body_bytes)
            )
            yield b"%08d:" % index + body


class ExplicitWorkload(Workload):
    """A caller-provided payload list, validated for Axiom 2 up front."""

    def __init__(self, payloads: Sequence[bytes]) -> None:
        seen = set()
        for payload in payloads:
            if not isinstance(payload, bytes):
                raise TypeError("payloads must be bytes")
            if payload in seen:
                raise AxiomViolationError(
                    f"Axiom 2 violated: duplicate payload {payload!r} in workload"
                )
            seen.add(payload)
        self._payloads: List[bytes] = list(payloads)

    @property
    def message_count(self) -> int:
        return len(self._payloads)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._payloads)
