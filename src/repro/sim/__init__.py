"""Simulation harness: the operational composition ``D(A, ADV)``."""

from repro.sim.experiment import Sweep, SweepResult, SweepRow
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.runner import (
    MonteCarloResult,
    RunOutcome,
    RunSpec,
    monte_carlo,
    run_once,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.workload import (
    ExplicitWorkload,
    RandomPayloadWorkload,
    SequentialWorkload,
    Workload,
)

__all__ = [
    "ExplicitWorkload",
    "MetricsCollector",
    "MonteCarloResult",
    "RandomPayloadWorkload",
    "RunOutcome",
    "RunSpec",
    "SequentialWorkload",
    "SimulationMetrics",
    "SimulationResult",
    "Simulator",
    "Sweep",
    "SweepResult",
    "SweepRow",
    "Workload",
    "monte_carlo",
    "run_once",
]
