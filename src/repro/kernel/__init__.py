"""Table-driven step kernel: a flat, slot-indexed execution engine.

The kernel executes the same ``D(A, ADV)`` composition as the object
engine in :mod:`repro.sim.simulator`, but with all per-step state flattened
out of the station/channel/adversary objects into plain ints and
preallocated containers: nonces become ``(value, length)`` int pairs,
packets become tuples interned under small-int identifiers, and the
adversary's per-turn dispatch is specialised into one of a few precompiled
fast paths.  The object graph is re-synchronised at run boundaries, so the
stations, channels and adversaries remain the public API (the veneer
contract — see PROTOCOL.md §14).

Entry points: :func:`repro.kernel.engine.run_kernel`, reached through
``Simulator(engine="kernel")``, and :class:`repro.kernel.hop.HopKernel`,
the persistent per-hop variant the relay fabric drives in bursts
(``FabricSpec(engine="kernel")``).
"""

from repro.kernel.engine import run_kernel
from repro.kernel.hop import HopKernel

__all__ = ["run_kernel", "HopKernel"]
