"""Flat slot-indexed step kernel for the GHM data-link simulation.

``run_kernel(sim)`` executes an installed :class:`~repro.sim.simulator.
Simulator`'s run loop with every piece of hot-path state flattened into
plain Python ints and small preallocated containers:

* **Station slots** — the transmitter's and receiver's volatile memory
  (Section 2.4/2.5 of the paper) lives in local int variables:
  ``busy`` flags, generation counters ``t``/``num``, retry indices, and
  every nonce as a ``(value, length)`` int pair.  A length of ``-1``
  encodes the object engine's ``None`` (no ``prev_tau`` / ``rho_next``).
* **Int-coded nonces** — prefix tests and concatenations are the two
  int operations from :mod:`repro.core.bitstrings` inlined:
  ``tau1 ⊑ tau2  ⇔  l1 <= l2 and (v2 >> (l2 - l1)) == v1`` and
  ``tau·r = ((v << k) | bits, l + k)``.
* **Interned packets** — channels are dicts keyed by the small-int
  packet identifier minted at send time; a stored packet is a flat tuple
  of message bytes plus nonce ints, never a ``DataPacket``/``PollPacket``
  object, until sync-back materialises the survivors.
* **Precompiled adversary dispatch** — the adversary configuration is
  classified once into a small set of fast paths (fairness-wrapped or
  bare ``ReliableAdversary``/``RandomFaultAdversary``) whose coin
  schedule and pending-queue bookkeeping are mirrored move-for-move with
  flat state; anything else runs through the generic path that feeds the
  real adversary object exactly like the object engine does.

The veneer contract: the kernel *borrows* the state of the installed
objects at entry and *returns* it at exit.  Every station attribute,
stats counter, channel store, RNG tape position, adversary pending
structure and metrics field is synchronised back before the result is
returned, so checkers, forensics, campaign plumbing and subsequent
``reset()``/``run()`` cycles observe exactly what the object engine
would have produced.  Differential tests (tests/kernel/) pin the two
engines to identical event traces per seed across the fault-plan zoo.

Rare paths (state corruption, scripted adversaries, custom moves) drop
back to the object representation mid-run via the same sync machinery,
keeping behaviour identical without slowing the hot loop.
"""

from collections import deque
from time import perf_counter

from repro.adversary.base import (
    Corrupt,
    CrashReceiver,
    CrashTransmitter,
    Deliver,
    Pass,
    TriggerRetry,
)
from repro.adversary.benign import ReliableAdversary
from repro.adversary.fairness import FairnessEnforcer
from repro.adversary.random_faults import RandomFaultAdversary
from repro.channel.channel import _make_packet_info
from repro.checkers.streaming import _TIMED_STRIDE, _resolve_subclass
from repro.core.bitstrings import BitString
from repro.core.events import (
    CRASH_R,
    CRASH_T,
    OK,
    RETRY,
    ChannelId,
    Corruption,
    CrashR,
    CrashT,
    Ok,
    ReceiveMsg,
    SendMsg,
    make_pkt_delivered,
    make_pkt_sent,
    make_receive_msg,
    make_send_msg,
)
from repro.core.exceptions import (
    AxiomViolationError,
    SimulationError,
    UnknownPacketError,
)
from repro.core.packets import make_data_packet, make_poll_packet
from repro.core.random_source import RandomSource

_T_TO_R = ChannelId.T_TO_R
_R_TO_T = ChannelId.R_TO_T

# Adversary fast-path classification (see _classify_adversary).
_MODE_GENERIC = 0
_MODE_FAIR_RELIABLE = 1
_MODE_FAIR_RANDOM = 2
_MODE_BARE_RELIABLE = 3
_MODE_BARE_RANDOM = 4


def _classify_adversary(sim):
    """Pick the precompiled dispatch table for the installed adversary.

    Fast paths require the *exact* stock classes — subclasses may override
    coin schedules or bookkeeping, so they take the generic path where the
    real object decides every move.
    """
    adv = sim._adversary
    if type(adv) is FairnessEnforcer:
        inner = adv.inner
        if adv._inner_decide is None:
            return _MODE_GENERIC
        if type(inner) is ReliableAdversary:
            return _MODE_FAIR_RELIABLE
        if type(inner) is RandomFaultAdversary:
            return _MODE_FAIR_RANDOM
        return _MODE_GENERIC
    if type(adv) is ReliableAdversary:
        return _MODE_BARE_RELIABLE
    if type(adv) is RandomFaultAdversary:
        return _MODE_BARE_RANDOM
    return _MODE_GENERIC


def run_kernel(sim):
    """Run ``sim`` to completion on the flat kernel and return the result.

    Mirrors ``Simulator.run()`` step for step: same phase order, same RNG
    draws from the same tapes, same trace events in the same order, same
    error messages.  The Simulator must already be installed (its own
    ``run()`` handles construction/reset and dispatches here).

    Two execution paths share the slot layout and the veneer contract:

    * :func:`_run_fast` — the precompiled adversary modes.  One monolithic
      loop whose hot state lives entirely in plain locals (no closure
      cells), with the station transitions, channel bookkeeping, adversary
      coin schedule and fairness enforcement fully inlined, and — in the
      campaign configuration — trace/checker dispatch collapsed to direct
      monitor-handler calls.
    * :func:`_run_generic` — everything else (scripted plans, corruption,
      custom adversaries).  Flat slots mutated through closures, with the
      real adversary object deciding every move.
    """
    mode = _classify_adversary(sim)
    if mode == _MODE_GENERIC:
        return _run_generic(sim)
    return _run_fast(sim, mode)


def _extract_transmitter(transmitter):
    """Transmitter object -> flat state tuple (order matches _run_fast)."""
    bs = transmitter._tau
    t_tau_v = bs._value
    t_tau_l = bs._length
    bs = transmitter._prev_tau
    if bs is None:
        t_ptau_v = 0
        t_ptau_l = -1
    else:
        t_ptau_v = bs._value
        t_ptau_l = bs._length
    bs = transmitter._rho_next
    if bs is None:
        t_rnv = 0
        t_rnl = -1
    else:
        t_rnv = bs._value
        t_rnl = bs._length
    st = transmitter.stats
    return (
        transmitter._busy,
        transmitter._message,
        t_tau_v,
        t_tau_l,
        t_ptau_v,
        t_ptau_l,
        transmitter._t,
        transmitter._num,
        transmitter._i_seen,
        t_rnv,
        t_rnl,
        st.packets_sent,
        st.oks,
        st.crashes,
        st.errors_counted,
        st.extensions,
        st.polls_ignored,
        st.max_tau_bits,
    )


def _extract_receiver(receiver):
    """Receiver object -> flat state tuple (order matches _run_fast)."""
    bs = receiver._tau
    r_tau_v = bs._value
    r_tau_l = bs._length
    bs = receiver._rho
    r_rho_v = bs._value
    r_rho_l = bs._length
    bs = receiver._prev_rho
    if bs is None:
        r_prv = 0
        r_prl = -1
    else:
        r_prv = bs._value
        r_prl = bs._length
    st = receiver.stats
    return (
        receiver._k,
        receiver._t,
        receiver._num,
        receiver._i,
        r_tau_v,
        r_tau_l,
        r_rho_v,
        r_rho_l,
        r_prv,
        r_prl,
        st.packets_sent,
        st.deliveries,
        st.crashes,
        st.errors_counted,
        st.extensions,
        st.stale_ignored,
        st.tau_updates,
        st.max_rho_bits,
    )


def _run_fast(sim, mode):
    """Monolithic fast loop for the precompiled adversary modes.

    Every piece of hot state is a plain local of this one function — no
    closure cells, no attribute loads inside the loop — and the station
    transitions, channel bookkeeping, adversary coin schedule and fairness
    enforcement are all inlined.  When nothing but the streaming checkers
    observes the trace (the ``retain="none"`` campaign configuration),
    events additionally bypass ``Trace.append``/``StreamingChecks.observe``
    entirely: the loop calls the monitors' bound handlers directly and
    settles the trace counters and checker bookkeeping once at exit, so
    the observable state is identical to the object engine's.
    """
    from repro.sim.simulator import SimulationResult

    started = perf_counter()

    transmitter = sim._transmitter
    receiver = sim._receiver
    t_to_r = sim._t_to_r
    r_to_t = sim._r_to_t
    trace = sim._trace
    metrics = sim._metrics
    checks = sim._checks
    params = transmitter._params

    # ------------------------------------------------------------------
    # Extract: object graph -> flat locals.
    # ------------------------------------------------------------------

    (
        t_busy, t_msg, t_tau_v, t_tau_l, t_ptau_v, t_ptau_l,
        t_gen, t_num, t_iseen, t_rnv, t_rnl,
        ts_sent, ts_oks, ts_crashes, ts_err, ts_ext, ts_ign, ts_maxtau,
    ) = _extract_transmitter(transmitter)
    (
        r_kk, r_gen, r_num, r_i, r_tau_v, r_tau_l, r_rho_v, r_rho_l,
        r_prv, r_prl,
        rs_sent, rs_deliv, rs_crashes, rs_err, rs_ext, rs_stale,
        rs_tauupd, rs_maxrho,
    ) = _extract_receiver(receiver)

    t_grb = transmitter._rng._rng.getrandbits
    r_grb = receiver._rng._rng.getrandbits
    t_bits = 0
    r_bits = 0

    size = params.size
    bound = params.bound
    size1 = size(1)
    # Poll wire length depends only on (rho, tau) lengths, which change
    # rarely; cache it and refresh at the few sites that resize either.
    poll_len = (17 + ((r_rho_l + 7) >> 3) + ((r_tau_l + 7) >> 3)) << 3

    # Adopt a flat store parked by a previous kernel run, else flatten the
    # object-level packets.  Either way the invariant holds from here on:
    # the flat dicts are the truth and the object stores stay empty until
    # exit parks the result back (materialised lazily on first access —
    # see Channel._materialize).
    if t_to_r._flat_store is not None:
        tr_store = t_to_r._flat_store
        t_to_r._flat_store = None
    else:
        tr_store = {}
        for _pid, _pkt in t_to_r._store.items():
            tr_store[_pid] = (
                _pkt.message,
                _pkt.rho._value,
                _pkt.rho._length,
                _pkt.tau._value,
                _pkt.tau._length,
            )
        t_to_r._store.clear()
    tr_next = t_to_r._next_id
    tr_sent = t_to_r._sent_count
    tr_deliv = t_to_r._delivered_count
    tr_bits = t_to_r._bits_sent
    if r_to_t._flat_store is not None:
        rt_store = r_to_t._flat_store
        r_to_t._flat_store = None
    else:
        rt_store = {}
        for _pid, _pkt in r_to_t._store.items():
            rt_store[_pid] = (
                _pkt.rho._value,
                _pkt.rho._length,
                _pkt.tau._value,
                _pkt.tau._length,
                _pkt.retry,
            )
        r_to_t._store.clear()
    rt_next = r_to_t._next_id
    rt_sent = r_to_t._sent_count
    rt_deliv = r_to_t._delivered_count
    rt_bits = r_to_t._bits_sent

    # Recording.  Untraced tallies are derived at exit from the channel
    # counter deltas instead of being counted per event in the loop.
    trace_append = trace.append
    rec_sent = sim._record_pkt_sent
    rec_deliv = sim._record_pkt_delivered
    rec_retry = sim._record_retry
    tr_sent0 = tr_sent
    tr_deliv0 = tr_deliv
    rt_sent0 = rt_sent
    rt_deliv0 = rt_deliv

    # Direct checker dispatch: when the trace stores nothing and its only
    # observer is the streaming checker, resolve each emitted event class
    # to the monitors' bound handler tuple once, up front.  ``h_send is
    # None`` means "no fast path" and every site falls back to
    # ``trace.append`` (full/tail retention, extra observers, no checks).
    h_send = h_recv = h_ok = h_ct = h_cr = None
    timed = False
    stride = _TIMED_STRIDE
    ev_total = seen = samples = 0
    sampled = 0.0
    n_send = n_recv = n_ok = n_ct = n_cr = 0
    if trace._retain == "none" and not (rec_sent or rec_deliv or rec_retry):
        if checks is not None:
            observe = checks.observe
            table = checks._table
            expected = (observe,)
        else:
            table = None
            expected = ()
        resolved = []
        for _cls in (SendMsg, ReceiveMsg, Ok, CrashT, CrashR):
            _obs = trace._observer_cache.get(_cls)
            if _obs is None:
                _obs = trace._resolve_observers(_cls)
            if _obs != expected:
                resolved = None
                break
            if table is None:
                resolved.append(())
                continue
            _handlers = table.get(_cls)
            if _handlers is None:
                _handlers = _resolve_subclass(table, _cls)
            resolved.append(_handlers)
        if resolved is not None:
            h_send, h_recv, h_ok, h_ct, h_cr = resolved
            ev_total = trace._total
            if checks is not None:
                timed = checks._timed
                seen = checks.events_seen
                samples = checks._timed_samples
                sampled = checks._sampled_seconds

    # Metrics mirrors.
    m_submitted = metrics.messages_submitted
    m_ok = metrics.messages_ok
    m_delivered = metrics.messages_delivered
    m_retries = metrics.retries
    m_retries0 = m_retries
    m_crash_t = metrics.crashes_t
    m_crash_r = metrics.crashes_r
    storage_peak = metrics._storage_peak
    keep_samples = metrics._keep_storage_samples
    samples_append = metrics._storage_samples.append

    # Simulator loop slots.
    steps = sim._steps
    max_steps = sim._max_steps
    retry_every = sim._retry_every
    retry_countdown = sim._retry_countdown
    storage_sample_every = sim._storage_sample_every
    storage_countdown = sim._storage_countdown
    next_message = sim._next_message
    workload_exhausted = sim._workload_exhausted
    message_iter = sim._message_iter
    submitted = sim._submitted_payloads

    # Adversary mirrors (see _run_generic for the structures' contracts).
    # The fairness enforcer's per-channel dicts are mirrored as two-slot
    # locals (there are exactly two channels); ``t_first`` preserves the
    # channel-dict insertion order the starvation scan iterates in.  For
    # FAIR_RELIABLE the bookkeeping is provably dead in-loop — the inner
    # FIFO delivers whenever anything is pending, so starvation counters
    # never move and forced deliveries never fire — and the enforcer's
    # exit state is derived from the FIFO queue instead.
    adv = sim._adversary
    steps0 = sim._steps
    pend_t = {}
    pend_r = {}
    starv_t = 0
    starv_r = 0
    seen_t = False
    seen_r = False
    t_first = True
    enf_count = 0
    patience = 0
    forced = 0
    rel_pend = deque()
    rf_pend = deque()
    rf_dropped = 0
    rf_dup = 0
    rf_crashes = 0
    inner_random = None
    inner_randint = None
    p_loss = p_dup = p_reorder = p_crash_t = p_crash_r = 0.0

    is_fair = mode == _MODE_FAIR_RELIABLE or mode == _MODE_FAIR_RANDOM
    is_rel = mode == _MODE_FAIR_RELIABLE or mode == _MODE_BARE_RELIABLE
    fair_track = mode == _MODE_FAIR_RANDOM

    if is_fair:
        patience = adv._patience
        enf_count = adv._pending_count
        first = True
        for _ch, _pend in adv._pending.items():
            flat = {_pid: _info.length_bits for _pid, _info in _pend.items()}
            if _ch is _T_TO_R:
                pend_t = flat
                seen_t = True
                if first:
                    t_first = True
            else:
                pend_r = flat
                seen_r = True
                if first:
                    t_first = False
            first = False
        starv_t = adv._starvation.get(_T_TO_R, 0)
        starv_r = adv._starvation.get(_R_TO_T, 0)
        forced = adv.forced_deliveries
        inner = adv.inner
    else:
        inner = adv

    if is_rel:
        for _info in inner._pending:
            rel_pend.append(
                (_info.channel is _T_TO_R, _info.packet_id, _info.length_bits)
            )
    else:
        for _info in inner._pending:
            rf_pend.append(
                (_info.channel is _T_TO_R, _info.packet_id, _info.length_bits)
            )
        rf_dropped = inner.dropped
        rf_dup = inner.duplicated
        rf_crashes = inner.crashes_injected
        inner_random = inner._random
        inner_randint = inner.rng.randint
        _prof = inner.profile
        p_loss = _prof.loss
        p_dup = _prof.duplicate
        p_reorder = _prof.reorder
        p_crash_t = _prof.crash_t
        p_crash_r = _prof.crash_r

    # Localise the module globals the loop touches.
    T2R = _T_TO_R
    R2T = _R_TO_T
    pc = perf_counter
    mk_send = make_send_msg
    mk_recv = make_receive_msg
    mk_psent = make_pkt_sent
    mk_pdel = make_pkt_delivered
    EV_OK = OK
    EV_RETRY = RETRY
    EV_CT = CRASH_T
    EV_CR = CRASH_R

    # ------------------------------------------------------------------
    # Main loop (phase order mirrors Simulator.run exactly).
    # ------------------------------------------------------------------

    error = None
    try:
        while steps < max_steps:
            if workload_exhausted and next_message is None and not t_busy:
                break
            steps += 1

            # -- higher layer: submit the next message when idle --------
            if not t_busy and next_message is not None:
                message = next_message
                if message in submitted:
                    raise AxiomViolationError(
                        f"Axiom 2 violated: payload {message!r} submitted twice"
                    )
                submitted.add(message)
                try:
                    next_message = next(message_iter)
                except StopIteration:
                    next_message = None
                    workload_exhausted = True
                if h_send is None:
                    trace_append(mk_send(message))
                elif h_send:
                    ev = mk_send(message)
                    idx = ev_total
                    ev_total = idx + 1
                    n_send += 1
                    seen += 1
                    if timed and seen % stride == 1:
                        _t0 = pc()
                        for h in h_send:
                            h(idx, ev)
                        sampled += pc() - _t0
                        samples += 1
                    else:
                        for h in h_send:
                            h(idx, ev)
                else:
                    ev_total += 1
                    n_send += 1
                m_submitted += 1
                if not isinstance(message, bytes):
                    raise TypeError("messages must be bytes")
                t_busy = True
                t_msg = message
                t_ptau_v = t_tau_v
                t_ptau_l = t_tau_l
                t_bits += size1
                t_tau_v = ((1 << size1) | t_grb(size1)) if size1 else 1
                t_tau_l = 1 + size1
                t_gen = 1
                t_num = 0
                if t_tau_l > ts_maxtau:
                    ts_maxtau = t_tau_l
                if t_rnl >= 0:
                    ts_sent += 1
                    pid = tr_next
                    tr_next = pid + 1
                    tr_store[pid] = (message, t_rnv, t_rnl, t_tau_v, t_tau_l)
                    tr_sent += 1
                    length = (
                        13 + len(message) + ((t_rnl + 7) >> 3)
                        + ((t_tau_l + 7) >> 3)
                    ) << 3
                    tr_bits += length
                    if rec_sent:
                        trace_append(mk_psent(T2R, pid, length))
                    if is_fair:
                        if not seen_t:
                            seen_t = True
                            if not seen_r:
                                t_first = True
                        if fair_track:
                            pend_t[pid] = length
                            enf_count += 1
                    if is_rel:
                        rel_pend.append((True, pid, length))
                    elif inner_random() < p_loss:
                        rf_dropped += 1
                    else:
                        rf_pend.append((True, pid, length))

            # -- RETRY cadence -----------------------------------------
            countdown = retry_countdown - 1
            if countdown:
                retry_countdown = countdown
            else:
                retry_countdown = retry_every
                if rec_retry:
                    trace_append(EV_RETRY)
                m_retries += 1
                pid = rt_next
                rt_next = pid + 1
                rt_store[pid] = (r_rho_v, r_rho_l, r_tau_v, r_tau_l, r_i)
                rt_sent += 1
                length = poll_len
                rt_bits += length
                r_i += 1
                rs_sent += 1
                if rec_sent:
                    trace_append(mk_psent(R2T, pid, length))
                if is_fair:
                    if not seen_r:
                        seen_r = True
                        if not seen_t:
                            t_first = False
                    if fair_track:
                        pend_r[pid] = length
                        enf_count += 1
                if is_rel:
                    rel_pend.append((False, pid, length))
                elif inner_random() < p_loss:
                    rf_dropped += 1
                else:
                    rf_pend.append((False, pid, length))

            # -- adversary move ----------------------------------------
            dpid = -1
            dto_r = False
            do_crash = 0
            if mode == _MODE_FAIR_RELIABLE:
                # The enforcer's starvation scan never fires here: the
                # inner FIFO delivers whenever anything is pending, so a
                # pass-step implies every channel is empty.
                if rel_pend:
                    dto_r, dpid, _ln = rel_pend.popleft()
            elif mode == _MODE_BARE_RELIABLE:
                if rel_pend:
                    dto_r, dpid, _ln = rel_pend.popleft()
            else:
                # Inner RandomFaultAdversary coin schedule (exact order).
                if inner_random() < p_crash_t:
                    rf_crashes += 1
                    do_crash = 1
                elif inner_random() < p_crash_r:
                    rf_crashes += 1
                    do_crash = 2
                elif rf_pend:
                    if p_reorder and inner_random() < p_reorder:
                        idx = inner_randint(0, len(rf_pend) - 1)
                        item = rf_pend[idx]
                        del rf_pend[idx]
                    else:
                        item = rf_pend.popleft()
                    if inner_random() < p_dup:
                        rf_pend.append(item)
                        rf_dup += 1
                    dto_r = item[0]
                    dpid = item[1]
                if mode == _MODE_FAIR_RANDOM:
                    if dpid >= 0:
                        if dto_r:
                            starv_t = 0
                            if pend_t.pop(dpid, None) is not None:
                                enf_count -= 1
                        else:
                            starv_r = 0
                            if pend_r.pop(dpid, None) is not None:
                                enf_count -= 1
                    elif enf_count:
                        # Starvation scan over the two channel slots, in
                        # channel-dict insertion order (first-seen wins a
                        # tie via the strict > comparison).
                        most = 0
                        most_count = 0
                        if t_first:
                            if pend_t:
                                starv_t += 1
                                if starv_t >= patience:
                                    most = 1
                                    most_count = starv_t
                            if pend_r:
                                starv_r += 1
                                if starv_r >= patience and starv_r > most_count:
                                    most = 2
                        else:
                            if pend_r:
                                starv_r += 1
                                if starv_r >= patience:
                                    most = 2
                                    most_count = starv_r
                            if pend_t:
                                starv_t += 1
                                if starv_t >= patience and starv_t > most_count:
                                    most = 1
                        if most:
                            # Forced delivery replaces the inner's move,
                            # even a crash.
                            if most == 1:
                                dpid = next(reversed(pend_t))
                                del pend_t[dpid]
                                starv_t = 0
                                dto_r = True
                            else:
                                dpid = next(reversed(pend_r))
                                del pend_r[dpid]
                                starv_r = 0
                                dto_r = False
                            enf_count -= 1
                            forced += 1
                            do_crash = 0

            # -- dispatch: delivery / crash / pass ---------------------
            if dpid >= 0:
                if dto_r:
                    # Channel delivery on C^{T->R} + Receiver transition.
                    pkt = tr_store.get(dpid)
                    if pkt is None:
                        raise UnknownPacketError(dpid)
                    tr_deliv += 1
                    if rec_deliv:
                        trace_append(mk_pdel(T2R, dpid))
                    message, prv_, prl_, ptv, ptl = pkt
                    if prv_ == r_rho_v and prl_ == r_rho_l:
                        if r_tau_l <= ptl and (ptv >> (ptl - r_tau_l)) == r_tau_v:
                            if r_tau_l != ptl:
                                r_tau_v = ptv
                                r_tau_l = ptl
                                rs_tauupd += 1
                                poll_len = (
                                    17 + ((r_rho_l + 7) >> 3)
                                    + ((r_tau_l + 7) >> 3)
                                ) << 3
                        elif ptl <= r_tau_l and (r_tau_v >> (r_tau_l - ptl)) == ptv:
                            rs_stale += 1
                        else:
                            r_tau_v = ptv
                            r_tau_l = ptl
                            r_kk += 1
                            r_gen = 1
                            r_num = 0
                            r_i = 1
                            r_prv = r_rho_v
                            r_prl = r_rho_l
                            r_bits += size1
                            r_rho_v = r_grb(size1) if size1 else 0
                            r_rho_l = size1
                            rs_deliv += 1
                            poll_len = (
                                17 + ((r_rho_l + 7) >> 3)
                                + ((r_tau_l + 7) >> 3)
                            ) << 3
                            if r_rho_l > rs_maxrho:
                                rs_maxrho = r_rho_l
                            if h_recv is None:
                                trace_append(mk_recv(message))
                            elif h_recv:
                                ev = mk_recv(message)
                                idx = ev_total
                                ev_total = idx + 1
                                n_recv += 1
                                seen += 1
                                if timed and seen % stride == 1:
                                    _t0 = pc()
                                    for h in h_recv:
                                        h(idx, ev)
                                    sampled += pc() - _t0
                                    samples += 1
                                else:
                                    for h in h_recv:
                                        h(idx, ev)
                            else:
                                ev_total += 1
                                n_recv += 1
                            m_delivered += 1
                    elif prl_ == r_rho_l and not (
                        r_prl >= 0 and prl_ == r_prl and prv_ == r_prv
                    ):
                        r_num += 1
                        rs_err += 1
                        if r_num >= bound(r_gen):
                            r_gen += 1
                            r_num = 0
                            s = size(r_gen)
                            r_bits += s
                            if s:
                                r_rho_v = (r_rho_v << s) | r_grb(s)
                            r_rho_l += s
                            rs_ext += 1
                            poll_len = (
                                17 + ((r_rho_l + 7) >> 3)
                                + ((r_tau_l + 7) >> 3)
                            ) << 3
                            if r_rho_l > rs_maxrho:
                                rs_maxrho = r_rho_l
                else:
                    # Channel delivery on C^{R->T} + Transmitter transition.
                    pkt = rt_store.get(dpid)
                    if pkt is None:
                        raise UnknownPacketError(dpid)
                    rt_deliv += 1
                    if rec_deliv:
                        trace_append(mk_pdel(R2T, dpid))
                    prv_, prl_, ptv, ptl, pretry = pkt
                    if t_busy:
                        if t_tau_l <= ptl and (ptv >> (ptl - t_tau_l)) == t_tau_v:
                            # OK test passed: current slot acknowledged.
                            t_busy = False
                            t_msg = None
                            t_rnv = prv_
                            t_rnl = prl_
                            t_iseen = 0
                            t_gen = 1
                            t_num = 0
                            ts_oks += 1
                            if h_ok is None:
                                trace_append(EV_OK)
                            elif h_ok:
                                idx = ev_total
                                ev_total = idx + 1
                                n_ok += 1
                                seen += 1
                                if timed and seen % stride == 1:
                                    _t0 = pc()
                                    for h in h_ok:
                                        h(idx, EV_OK)
                                    sampled += pc() - _t0
                                    samples += 1
                                else:
                                    for h in h_ok:
                                        h(idx, EV_OK)
                            else:
                                ev_total += 1
                                n_ok += 1
                            m_ok += 1
                        else:
                            if ptl == t_tau_l and not (
                                t_ptau_l >= 0
                                and ptl == t_ptau_l
                                and ptv == t_ptau_v
                            ):
                                t_num += 1
                                ts_err += 1
                                if t_num >= bound(t_gen):
                                    t_gen += 1
                                    t_num = 0
                                    s = size(t_gen)
                                    t_bits += s
                                    if s:
                                        t_tau_v = (t_tau_v << s) | t_grb(s)
                                    t_tau_l += s
                                    ts_ext += 1
                                    if t_tau_l > ts_maxtau:
                                        ts_maxtau = t_tau_l
                            if pretry > t_iseen:
                                t_iseen = pretry
                                ts_sent += 1
                                message = t_msg
                                pid = tr_next
                                tr_next = pid + 1
                                tr_store[pid] = (
                                    message, prv_, prl_, t_tau_v, t_tau_l
                                )
                                tr_sent += 1
                                length = (
                                    13 + len(message) + ((prl_ + 7) >> 3)
                                    + ((t_tau_l + 7) >> 3)
                                ) << 3
                                tr_bits += length
                                if rec_sent:
                                    trace_append(mk_psent(T2R, pid, length))
                                if is_fair:
                                    if not seen_t:
                                        seen_t = True
                                        if not seen_r:
                                            t_first = True
                                    if fair_track:
                                        pend_t[pid] = length
                                        enf_count += 1
                                if is_rel:
                                    rel_pend.append((True, pid, length))
                                elif inner_random() < p_loss:
                                    rf_dropped += 1
                                else:
                                    rf_pend.append((True, pid, length))
                            else:
                                ts_ign += 1
                    else:
                        if (
                            t_tau_l <= ptl
                            and (ptv >> (ptl - t_tau_l)) == t_tau_v
                            and pretry > t_iseen
                        ):
                            t_rnv = prv_
                            t_rnl = prl_
                            t_iseen = pretry
                        else:
                            ts_ign += 1
            elif do_crash == 1:
                if h_ct is None:
                    trace_append(EV_CT)
                elif h_ct:
                    idx = ev_total
                    ev_total = idx + 1
                    n_ct += 1
                    seen += 1
                    if timed and seen % stride == 1:
                        _t0 = pc()
                        for h in h_ct:
                            h(idx, EV_CT)
                        sampled += pc() - _t0
                        samples += 1
                    else:
                        for h in h_ct:
                            h(idx, EV_CT)
                else:
                    ev_total += 1
                    n_ct += 1
                m_crash_t += 1
                t_busy = False
                t_msg = None
                t_bits += size1
                t_tau_v = ((1 << size1) | t_grb(size1)) if size1 else 1
                t_tau_l = 1 + size1
                t_ptau_v = 0
                t_ptau_l = -1
                t_gen = 1
                t_num = 0
                t_iseen = 0
                t_rnv = 0
                t_rnl = -1
                ts_crashes += 1
                if t_tau_l > ts_maxtau:
                    ts_maxtau = t_tau_l
            elif do_crash == 2:
                if h_cr is None:
                    trace_append(EV_CR)
                elif h_cr:
                    idx = ev_total
                    ev_total = idx + 1
                    n_cr += 1
                    seen += 1
                    if timed and seen % stride == 1:
                        _t0 = pc()
                        for h in h_cr:
                            h(idx, EV_CR)
                        sampled += pc() - _t0
                        samples += 1
                    else:
                        for h in h_cr:
                            h(idx, EV_CR)
                else:
                    ev_total += 1
                    n_cr += 1
                m_crash_r += 1
                r_kk = 1
                r_gen = 1
                r_num = 0
                r_i = 1
                r_tau_v = 0
                r_tau_l = 1
                r_bits += size1
                r_rho_v = r_grb(size1) if size1 else 0
                r_rho_l = size1
                r_prv = 0
                r_prl = -1
                rs_crashes += 1
                poll_len = (
                    17 + ((r_rho_l + 7) >> 3) + ((r_tau_l + 7) >> 3)
                ) << 3
                if r_rho_l > rs_maxrho:
                    rs_maxrho = r_rho_l

            # -- storage sampling --------------------------------------
            if storage_countdown:
                storage_countdown -= 1
                if not storage_countdown:
                    storage_countdown = storage_sample_every
                    bits_now = (
                        t_tau_l
                        + (t_ptau_l if t_ptau_l > 0 else 0)
                        + r_rho_l
                        + r_tau_l
                        + (r_prl if r_prl > 0 else 0)
                    )
                    if keep_samples:
                        samples_append(bits_now)
                    if bits_now > storage_peak:
                        storage_peak = bits_now
    except BaseException as exc:
        error = exc

    wall_seconds = perf_counter() - started

    # ------------------------------------------------------------------
    # Sync: flat locals -> object graph (the veneer contract).
    # ------------------------------------------------------------------

    transmitter._busy = t_busy
    transmitter._message = t_msg
    transmitter._tau = BitString._trusted(t_tau_v, t_tau_l)
    transmitter._prev_tau = (
        None if t_ptau_l < 0 else BitString._trusted(t_ptau_v, t_ptau_l)
    )
    transmitter._t = t_gen
    transmitter._num = t_num
    transmitter._i_seen = t_iseen
    transmitter._rho_next = (
        None if t_rnl < 0 else BitString._trusted(t_rnv, t_rnl)
    )
    st = transmitter.stats
    st.packets_sent = ts_sent
    st.oks = ts_oks
    st.crashes = ts_crashes
    st.errors_counted = ts_err
    st.extensions = ts_ext
    st.polls_ignored = ts_ign
    st.max_tau_bits = ts_maxtau
    transmitter._rng._bits_drawn += t_bits

    receiver._k = r_kk
    receiver._t = r_gen
    receiver._num = r_num
    receiver._i = r_i
    receiver._tau = BitString._trusted(r_tau_v, r_tau_l)
    receiver._rho = BitString._trusted(r_rho_v, r_rho_l)
    receiver._prev_rho = (
        None if r_prl < 0 else BitString._trusted(r_prv, r_prl)
    )
    st = receiver.stats
    st.packets_sent = rs_sent
    st.deliveries = rs_deliv
    st.crashes = rs_crashes
    st.errors_counted = rs_err
    st.extensions = rs_ext
    st.stale_ignored = rs_stale
    st.tau_updates = rs_tauupd
    st.max_rho_bits = rs_maxrho
    receiver._rng._bits_drawn += r_bits

    # Park the flat stores on the channels instead of rebuilding packet
    # objects: Channel materialises them lazily on first object-level
    # access, and campaign runs that reset without re-reading their
    # packets never pay for the rebuild at all.
    t_to_r._flat_store = tr_store
    t_to_r._next_id = tr_next
    t_to_r._sent_count = tr_sent
    t_to_r._delivered_count = tr_deliv
    t_to_r._bits_sent = tr_bits

    r_to_t._flat_store = rt_store
    r_to_t._next_id = rt_next
    r_to_t._sent_count = rt_sent
    r_to_t._delivered_count = rt_deliv
    r_to_t._bits_sent = rt_bits

    adv._moves_made += steps - steps0
    if is_fair:
        inner._moves_made += steps - steps0
        adv.forced_deliveries = forced
        if mode == _MODE_FAIR_RELIABLE:
            # Derive the enforcer's exit state from the FIFO queue: the
            # pending sets are exactly the announced-but-undelivered
            # packets (rel_pend preserves per-channel insertion order),
            # and the starvation counters never moved (see the loop).
            pend_t = {}
            pend_r = {}
            for to_r, pid, length in rel_pend:
                if to_r:
                    pend_t[pid] = length
                else:
                    pend_r[pid] = length
            enf_count = len(rel_pend)
        if t_first:
            chans = ((_T_TO_R, pend_t, starv_t, seen_t),
                     (_R_TO_T, pend_r, starv_r, seen_r))
        else:
            chans = ((_R_TO_T, pend_r, starv_r, seen_r),
                     (_T_TO_R, pend_t, starv_t, seen_t))
        adv._pending = {
            ch: {
                pid: _make_packet_info(ch, pid, length)
                for pid, length in pend.items()
            }
            for ch, pend, _sv, _seen in chans if _seen
        }
        adv._pending_count = enf_count
        adv._starvation = {
            ch: sv for ch, _pend, sv, _seen in chans if _seen
        }
    if is_rel:
        inner._pending = deque(
            _make_packet_info(_T_TO_R if to_r else _R_TO_T, pid, length)
            for to_r, pid, length in rel_pend
        )
    else:
        inner._pending = [
            _make_packet_info(_T_TO_R if to_r else _R_TO_T, pid, length)
            for to_r, pid, length in rf_pend
        ]
        inner.dropped = rf_dropped
        inner.duplicated = rf_dup
        inner.crashes_injected = rf_crashes

    sim._steps = steps
    sim._tx_busy = t_busy
    sim._retry_countdown = retry_countdown
    sim._storage_countdown = storage_countdown
    sim._next_message = next_message
    sim._workload_exhausted = workload_exhausted
    if not rec_sent:
        sim._pkt_sent_tally += (tr_sent - tr_sent0) + (rt_sent - rt_sent0)
    if not rec_deliv:
        sim._pkt_delivered_tally += (
            (tr_deliv - tr_deliv0) + (rt_deliv - rt_deliv0)
        )
    if not rec_retry:
        sim._retry_tally += m_retries - m_retries0

    if h_send is not None:
        # Settle the trace counters and checker bookkeeping the bypassed
        # dispatch would have maintained (retain="none": every event is
        # counted and dropped).
        trace._total = ev_total
        trace._dropped = ev_total
        counts = trace._counts
        fresh = False
        for cls, n in (
            (SendMsg, n_send),
            (ReceiveMsg, n_recv),
            (Ok, n_ok),
            (CrashT, n_ct),
            (CrashR, n_cr),
        ):
            if n:
                if cls in counts:
                    counts[cls] += n
                else:
                    counts[cls] = n
                    fresh = True
        if fresh:
            trace._query_cache.clear()
        if checks is not None:
            checks.events_seen = seen
            checks._timed_samples = samples
            checks._sampled_seconds = sampled

    metrics.messages_submitted = m_submitted
    metrics.messages_ok = m_ok
    metrics.messages_delivered = m_delivered
    metrics.retries = m_retries
    metrics.crashes_t = m_crash_t
    metrics.crashes_r = m_crash_r
    metrics._storage_peak = storage_peak

    sim._flush_tallies()

    if error is not None:
        raise error

    checker_seconds = checks.checker_seconds if checks is not None else 0.0
    completed = (
        workload_exhausted and next_message is None and not t_busy
    )
    return SimulationResult(
        trace=trace,
        metrics=metrics.freeze(
            steps,
            wall_seconds=wall_seconds,
            checker_seconds=checker_seconds,
            events_recorded=trace.total_events,
        ),
        completed=completed,
        steps=steps,
        link=sim._link,
        adversary=adv,
        checks=checks,
    )


def _run_generic(sim):
    """Closure-based kernel path for generic adversaries.

    Flat slots mutated through nested closures, with the real adversary
    object deciding every move; rare paths (state corruption, custom
    moves) round-trip through the station objects via the sync closures.
    """
    from repro.sim.simulator import SimulationResult

    started = perf_counter()

    transmitter = sim._transmitter
    receiver = sim._receiver
    t_to_r = sim._t_to_r
    r_to_t = sim._r_to_t
    trace = sim._trace
    metrics = sim._metrics
    checks = sim._checks
    params = transmitter._params

    # ------------------------------------------------------------------
    # Extract: object graph -> flat slots.
    # ------------------------------------------------------------------

    # Transmitter slots.
    t_busy = transmitter._busy
    t_msg = transmitter._message
    _bs = transmitter._tau
    t_tau_v = _bs._value
    t_tau_l = _bs._length
    _bs = transmitter._prev_tau
    if _bs is None:
        t_ptau_v = 0
        t_ptau_l = -1
    else:
        t_ptau_v = _bs._value
        t_ptau_l = _bs._length
    t_gen = transmitter._t
    t_num = transmitter._num
    t_iseen = transmitter._i_seen
    _bs = transmitter._rho_next
    if _bs is None:
        t_rnv = 0
        t_rnl = -1
    else:
        t_rnv = _bs._value
        t_rnl = _bs._length
    _st = transmitter.stats
    ts_sent = _st.packets_sent
    ts_oks = _st.oks
    ts_crashes = _st.crashes
    ts_corr = _st.corruptions
    ts_err = _st.errors_counted
    ts_ext = _st.extensions
    ts_ign = _st.polls_ignored
    ts_maxtau = _st.max_tau_bits

    # Receiver slots.
    r_kk = receiver._k
    r_gen = receiver._t
    r_num = receiver._num
    r_i = receiver._i
    _bs = receiver._tau
    r_tau_v = _bs._value
    r_tau_l = _bs._length
    _bs = receiver._rho
    r_rho_v = _bs._value
    r_rho_l = _bs._length
    _bs = receiver._prev_rho
    if _bs is None:
        r_prv = 0
        r_prl = -1
    else:
        r_prv = _bs._value
        r_prl = _bs._length
    _st = receiver.stats
    rs_sent = _st.packets_sent
    rs_deliv = _st.deliveries
    rs_crashes = _st.crashes
    rs_corr = _st.corruptions
    rs_err = _st.errors_counted
    rs_ext = _st.extensions
    rs_stale = _st.stale_ignored
    rs_tauupd = _st.tau_updates
    rs_maxrho = _st.max_rho_bits

    # RNG tapes: draw straight from the underlying Twister (same tape the
    # stations' RandomSource wraps); account bits locally, settle at sync.
    t_grb = transmitter._rng._rng.getrandbits
    r_grb = receiver._rng._rng.getrandbits
    t_bits = 0
    r_bits = 0

    # Adaptive-extension policy tables (memoized dicts underneath).
    size = params.size
    bound = params.bound
    size1 = size(1)

    # Channel slots: pid -> flat packet tuple.  Unlike the fast path, the
    # generic path hosts arbitrary adversary objects whose decide() may
    # legitimately read the channels mid-run (the content-aware
    # extensions peek at stored packets), so the object stores are
    # materialised and left populated for the run's duration; the eager
    # rebuild at exit replaces them wholesale.
    t_to_r._materialize()
    r_to_t._materialize()
    tr_store = {}
    for _pid, _pkt in t_to_r._store.items():
        tr_store[_pid] = (
            _pkt.message,
            _pkt.rho._value,
            _pkt.rho._length,
            _pkt.tau._value,
            _pkt.tau._length,
        )
    tr_next = t_to_r._next_id
    tr_sent = t_to_r._sent_count
    tr_deliv = t_to_r._delivered_count
    tr_bits = t_to_r._bits_sent
    rt_store = {}
    for _pid, _pkt in r_to_t._store.items():
        rt_store[_pid] = (
            _pkt.rho._value,
            _pkt.rho._length,
            _pkt.tau._value,
            _pkt.tau._length,
            _pkt.retry,
        )
    rt_next = r_to_t._next_id
    rt_sent = r_to_t._sent_count
    rt_deliv = r_to_t._delivered_count
    rt_bits = r_to_t._bits_sent

    # Trace / recording mirrors.
    trace_append = trace.append
    rec_sent = sim._record_pkt_sent
    rec_deliv = sim._record_pkt_delivered
    rec_retry = sim._record_retry
    tally_sent = 0
    tally_deliv = 0
    tally_retry = 0

    # Metrics mirrors.
    m_submitted = metrics.messages_submitted
    m_ok = metrics.messages_ok
    m_delivered = metrics.messages_delivered
    m_retries = metrics.retries
    m_crash_t = metrics.crashes_t
    m_crash_r = metrics.crashes_r
    m_corr_t = metrics.corruptions_t
    m_corr_r = metrics.corruptions_r
    storage_peak = metrics._storage_peak
    keep_samples = metrics._keep_storage_samples
    samples_append = metrics._storage_samples.append

    # Simulator loop slots.
    steps = sim._steps
    max_steps = sim._max_steps
    retry_every = sim._retry_every
    retry_countdown = sim._retry_countdown
    storage_sample_every = sim._storage_sample_every
    storage_countdown = sim._storage_countdown
    next_message = sim._next_message
    workload_exhausted = sim._workload_exhausted
    message_iter = sim._message_iter
    submitted = sim._submitted_payloads

    # Adversary fast-path slots.
    adv = sim._adversary
    mode = _classify_adversary(sim)
    adv_decide = sim._adversary_decide
    adv_next_move = adv.next_move
    adv_moves = 0
    inner_moves = 0
    # Fairness-enforcer mirror: channel -> {pid: length_bits}, insertion
    # order of both dicts matches the real enforcer's structures.
    enf_pending = {}
    enf_starv = {}
    enf_count = 0
    patience = 0
    forced = 0
    # Reliable-inner mirror: FIFO of (to_receiver, pid, length).
    rel_pend = deque()
    # RandomFault-inner mirror: list of (to_receiver, pid, length) + coins.
    rf_pend = []
    rf_dropped = 0
    rf_dup = 0
    rf_crashes = 0
    inner_random = None
    inner_randint = None
    p_loss = p_dup = p_reorder = p_crash_t = p_crash_r = 0.0

    if mode == _MODE_FAIR_RELIABLE or mode == _MODE_FAIR_RANDOM:
        patience = adv._patience
        enf_count = adv._pending_count
        for _ch, _pend in adv._pending.items():
            enf_pending[_ch] = {
                _pid: _info.length_bits for _pid, _info in _pend.items()
            }
        enf_starv.update(adv._starvation)
        forced = adv.forced_deliveries
        inner = adv.inner
    else:
        inner = adv

    if mode == _MODE_FAIR_RELIABLE or mode == _MODE_BARE_RELIABLE:
        for _info in inner._pending:
            rel_pend.append(
                (_info.channel is _T_TO_R, _info.packet_id, _info.length_bits)
            )
    elif mode == _MODE_FAIR_RANDOM or mode == _MODE_BARE_RANDOM:
        for _info in inner._pending:
            rf_pend.append(
                (_info.channel is _T_TO_R, _info.packet_id, _info.length_bits)
            )
        rf_dropped = inner.dropped
        rf_dup = inner.duplicated
        rf_crashes = inner.crashes_injected
        inner_random = inner._random
        inner_randint = inner.rng.randint
        _prof = inner.profile
        p_loss = _prof.loss
        p_dup = _prof.duplicate
        p_reorder = _prof.reorder
        p_crash_t = _prof.crash_t
        p_crash_r = _prof.crash_r
    adv_on_new = adv.on_new_pkt

    # ------------------------------------------------------------------
    # Kernel operations (closures over the flat slots).
    # ------------------------------------------------------------------

    def announce(to_r, pid, length):
        # Packet announcement routed to the active adversary mirror; the
        # enforcer registers the packet first, then the inner adversary
        # sees it — same order as FairnessEnforcer.on_new_pkt.
        nonlocal enf_count, rf_dropped
        if mode == _MODE_GENERIC:
            adv_on_new(
                _make_packet_info(_T_TO_R if to_r else _R_TO_T, pid, length)
            )
            return
        if mode == _MODE_FAIR_RELIABLE or mode == _MODE_FAIR_RANDOM:
            ch = _T_TO_R if to_r else _R_TO_T
            pend = enf_pending.get(ch)
            if pend is None:
                pend = enf_pending[ch] = {}
                enf_starv[ch] = 0
            pend[pid] = length
            enf_count += 1
        if mode == _MODE_FAIR_RELIABLE or mode == _MODE_BARE_RELIABLE:
            rel_pend.append((to_r, pid, length))
        else:
            if inner_random() < p_loss:
                rf_dropped += 1
            else:
                rf_pend.append((to_r, pid, length))

    def send_data(message, rv, rl, tv, tl):
        # channel.send_pkt on C^{T->R}: mint pid, intern flat tuple,
        # record, announce.
        nonlocal tr_next, tr_sent, tr_bits, tally_sent
        pid = tr_next
        tr_next = pid + 1
        tr_store[pid] = (message, rv, rl, tv, tl)
        tr_sent += 1
        length = (13 + len(message) + ((rl + 7) >> 3) + ((tl + 7) >> 3)) << 3
        tr_bits += length
        if rec_sent:
            trace_append(make_pkt_sent(_T_TO_R, pid, length))
        else:
            tally_sent += 1
        announce(True, pid, length)

    def fire_retry():
        # Simulator._fire_retry + Receiver.retry(): RETRY record, then a
        # PollPacket(rho, tau, i) onto C^{R->T}.
        nonlocal tally_retry, tally_sent, m_retries
        nonlocal rt_next, rt_sent, rt_bits, r_i, rs_sent
        if rec_retry:
            trace_append(RETRY)
        else:
            tally_retry += 1
        m_retries += 1
        pid = rt_next
        rt_next = pid + 1
        rt_store[pid] = (r_rho_v, r_rho_l, r_tau_v, r_tau_l, r_i)
        rt_sent += 1
        length = (17 + ((r_rho_l + 7) >> 3) + ((r_tau_l + 7) >> 3)) << 3
        rt_bits += length
        r_i += 1
        rs_sent += 1
        if rec_sent:
            trace_append(make_pkt_sent(_R_TO_T, pid, length))
        else:
            tally_sent += 1
        announce(False, pid, length)

    def submit():
        # Simulator._maybe_submit_message + Transmitter.send_msg: Axiom 2
        # guard, SendMsg record, fresh tau draw, optional immediate data
        # packet when a poll value is on file.
        nonlocal next_message, workload_exhausted, m_submitted
        nonlocal t_busy, t_msg, t_ptau_v, t_ptau_l, t_tau_v, t_tau_l
        nonlocal t_gen, t_num, t_bits, ts_maxtau, ts_sent
        message = next_message
        if message in submitted:
            raise AxiomViolationError(
                f"Axiom 2 violated: payload {message!r} submitted twice"
            )
        submitted.add(message)
        try:
            next_message = next(message_iter)
        except StopIteration:
            next_message = None
            workload_exhausted = True
        trace_append(make_send_msg(message))
        m_submitted += 1
        if not isinstance(message, bytes):
            raise TypeError("messages must be bytes")
        t_busy = True
        t_msg = message
        t_ptau_v = t_tau_v
        t_ptau_l = t_tau_l
        t_bits += size1
        t_tau_v = ((1 << size1) | t_grb(size1)) if size1 else 1
        t_tau_l = 1 + size1
        t_gen = 1
        t_num = 0
        if t_tau_l > ts_maxtau:
            ts_maxtau = t_tau_l
        if t_rnl >= 0:
            ts_sent += 1
            send_data(message, t_rnv, t_rnl, t_tau_v, t_tau_l)

    def deliver_to_receiver(pid):
        # Channel delivery on C^{T->R} + Receiver.on_receive_pkt.
        nonlocal tr_deliv, tally_deliv, m_delivered
        nonlocal r_tau_v, r_tau_l, r_rho_v, r_rho_l, r_prv, r_prl
        nonlocal r_kk, r_gen, r_num, r_i, r_bits
        nonlocal rs_deliv, rs_stale, rs_tauupd, rs_err, rs_ext, rs_maxrho
        pkt = tr_store.get(pid)
        if pkt is None:
            raise UnknownPacketError(pid)
        tr_deliv += 1
        if rec_deliv:
            trace_append(make_pkt_delivered(_T_TO_R, pid))
        else:
            tally_deliv += 1
        message, prv_, prl_, ptv, ptl = pkt
        if prv_ == r_rho_v and prl_ == r_rho_l:
            # packet.rho matches the live challenge (Figure 5's main arm).
            if r_tau_l <= ptl and (ptv >> (ptl - r_tau_l)) == r_tau_v:
                # Same handshake, nonce merely extended: adopt the longer
                # tau, no second delivery.
                if r_tau_l != ptl:
                    r_tau_v = ptv
                    r_tau_l = ptl
                    rs_tauupd += 1
            elif ptl <= r_tau_l and (r_tau_v >> (r_tau_l - ptl)) == ptv:
                # tau a proper prefix of tau^R: stale packet.
                rs_stale += 1
            else:
                # tau incomparable with tau^R: a genuinely new message.
                r_tau_v = ptv
                r_tau_l = ptl
                r_kk += 1
                r_gen = 1
                r_num = 0
                r_i = 1
                r_prv = r_rho_v
                r_prl = r_rho_l
                r_bits += size1
                r_rho_v = r_grb(size1) if size1 else 0
                r_rho_l = size1
                rs_deliv += 1
                if r_rho_l > rs_maxrho:
                    rs_maxrho = r_rho_l
                trace_append(make_receive_msg(message))
                m_delivered += 1
        elif prl_ == r_rho_l and not (
            r_prl >= 0 and prl_ == r_prl and prv_ == r_prv
        ):
            # Same-length rho mismatch that isn't the benign previous
            # handshake's rho: count an error, possibly extend rho^R.
            r_num += 1
            rs_err += 1
            if r_num >= bound(r_gen):
                r_gen += 1
                r_num = 0
                s = size(r_gen)
                r_bits += s
                if s:
                    r_rho_v = (r_rho_v << s) | r_grb(s)
                r_rho_l += s
                rs_ext += 1
                if r_rho_l > rs_maxrho:
                    rs_maxrho = r_rho_l

    def deliver_to_transmitter(pid):
        # Channel delivery on C^{R->T} + Transmitter.on_receive_pkt.
        nonlocal rt_deliv, tally_deliv, m_ok
        nonlocal t_busy, t_msg, t_rnv, t_rnl, t_iseen
        nonlocal t_gen, t_num, t_tau_v, t_tau_l, t_bits
        nonlocal ts_oks, ts_err, ts_ext, ts_maxtau, ts_ign, ts_sent
        pkt = rt_store.get(pid)
        if pkt is None:
            raise UnknownPacketError(pid)
        rt_deliv += 1
        if rec_deliv:
            trace_append(make_pkt_delivered(_R_TO_T, pid))
        else:
            tally_deliv += 1
        prv_, prl_, ptv, ptl, pretry = pkt
        if t_busy:
            if t_tau_l <= ptl and (ptv >> (ptl - t_tau_l)) == t_tau_v:
                # OK test passed: current slot acknowledged.
                t_busy = False
                t_msg = None
                t_rnv = prv_
                t_rnl = prl_
                t_iseen = 0
                t_gen = 1
                t_num = 0
                ts_oks += 1
                trace_append(OK)
                m_ok += 1
                return
            if ptl == t_tau_l and not (
                t_ptau_l >= 0 and ptl == t_ptau_l and ptv == t_ptau_v
            ):
                # Same-length mismatch that isn't the benign previous
                # tau: count an error, possibly extend tau.
                t_num += 1
                ts_err += 1
                if t_num >= bound(t_gen):
                    t_gen += 1
                    t_num = 0
                    s = size(t_gen)
                    t_bits += s
                    if s:
                        t_tau_v = (t_tau_v << s) | t_grb(s)
                    t_tau_l += s
                    ts_ext += 1
                    if t_tau_l > ts_maxtau:
                        ts_maxtau = t_tau_l
            if pretry > t_iseen:
                t_iseen = pretry
                ts_sent += 1
                send_data(t_msg, prv_, prl_, t_tau_v, t_tau_l)
            else:
                ts_ign += 1
        else:
            if (
                t_tau_l <= ptl
                and (ptv >> (ptl - t_tau_l)) == t_tau_v
                and pretry > t_iseen
            ):
                t_rnv = prv_
                t_rnl = prl_
                t_iseen = pretry
            else:
                ts_ign += 1

    def crash_t():
        # CRASH_T record + Transmitter.crash(): memory wiped, fresh tau
        # seeded with the reserved crash prefix.
        nonlocal m_crash_t, t_busy, t_msg, t_tau_v, t_tau_l
        nonlocal t_ptau_v, t_ptau_l, t_gen, t_num, t_iseen, t_rnv, t_rnl
        nonlocal t_bits, ts_crashes, ts_maxtau
        trace_append(CRASH_T)
        m_crash_t += 1
        t_busy = False
        t_msg = None
        t_bits += size1
        t_tau_v = ((1 << size1) | t_grb(size1)) if size1 else 1
        t_tau_l = 1 + size1
        t_ptau_v = 0
        t_ptau_l = -1
        t_gen = 1
        t_num = 0
        t_iseen = 0
        t_rnv = 0
        t_rnl = -1
        ts_crashes += 1
        if t_tau_l > ts_maxtau:
            ts_maxtau = t_tau_l

    def crash_r():
        # CRASH_R record + Receiver.crash(): memory wiped, tau reset to
        # the crash sentinel, fresh rho drawn.
        nonlocal m_crash_r, r_kk, r_gen, r_num, r_i
        nonlocal r_tau_v, r_tau_l, r_rho_v, r_rho_l, r_prv, r_prl
        nonlocal r_bits, rs_crashes, rs_maxrho
        trace_append(CRASH_R)
        m_crash_r += 1
        r_kk = 1
        r_gen = 1
        r_num = 0
        r_i = 1
        r_tau_v = 0
        r_tau_l = 1
        r_bits += size1
        r_rho_v = r_grb(size1) if size1 else 0
        r_rho_l = size1
        r_prv = 0
        r_prl = -1
        rs_crashes += 1
        if r_rho_l > rs_maxrho:
            rs_maxrho = r_rho_l

    def sync_transmitter():
        # Flat slots -> transmitter object (state + stats; the RNG tape
        # is settled once at the end of the run).
        transmitter._busy = t_busy
        transmitter._message = t_msg
        transmitter._tau = BitString._trusted(t_tau_v, t_tau_l)
        transmitter._prev_tau = (
            None if t_ptau_l < 0 else BitString._trusted(t_ptau_v, t_ptau_l)
        )
        transmitter._t = t_gen
        transmitter._num = t_num
        transmitter._i_seen = t_iseen
        transmitter._rho_next = (
            None if t_rnl < 0 else BitString._trusted(t_rnv, t_rnl)
        )
        st = transmitter.stats
        st.packets_sent = ts_sent
        st.oks = ts_oks
        st.crashes = ts_crashes
        st.corruptions = ts_corr
        st.errors_counted = ts_err
        st.extensions = ts_ext
        st.polls_ignored = ts_ign
        st.max_tau_bits = ts_maxtau

    def load_transmitter():
        # Transmitter object -> flat slots (after a corruption scramble).
        nonlocal t_busy, t_msg, t_tau_v, t_tau_l, t_ptau_v, t_ptau_l
        nonlocal t_gen, t_num, t_iseen, t_rnv, t_rnl
        nonlocal ts_sent, ts_oks, ts_crashes, ts_corr, ts_err, ts_ext
        nonlocal ts_ign, ts_maxtau
        t_busy = transmitter._busy
        t_msg = transmitter._message
        bs = transmitter._tau
        t_tau_v = bs._value
        t_tau_l = bs._length
        bs = transmitter._prev_tau
        if bs is None:
            t_ptau_v = 0
            t_ptau_l = -1
        else:
            t_ptau_v = bs._value
            t_ptau_l = bs._length
        t_gen = transmitter._t
        t_num = transmitter._num
        t_iseen = transmitter._i_seen
        bs = transmitter._rho_next
        if bs is None:
            t_rnv = 0
            t_rnl = -1
        else:
            t_rnv = bs._value
            t_rnl = bs._length
        st = transmitter.stats
        ts_sent = st.packets_sent
        ts_oks = st.oks
        ts_crashes = st.crashes
        ts_corr = st.corruptions
        ts_err = st.errors_counted
        ts_ext = st.extensions
        ts_ign = st.polls_ignored
        ts_maxtau = st.max_tau_bits

    def sync_receiver():
        receiver._k = r_kk
        receiver._t = r_gen
        receiver._num = r_num
        receiver._i = r_i
        receiver._tau = BitString._trusted(r_tau_v, r_tau_l)
        receiver._rho = BitString._trusted(r_rho_v, r_rho_l)
        receiver._prev_rho = (
            None if r_prl < 0 else BitString._trusted(r_prv, r_prl)
        )
        st = receiver.stats
        st.packets_sent = rs_sent
        st.deliveries = rs_deliv
        st.crashes = rs_crashes
        st.corruptions = rs_corr
        st.errors_counted = rs_err
        st.extensions = rs_ext
        st.stale_ignored = rs_stale
        st.tau_updates = rs_tauupd
        st.max_rho_bits = rs_maxrho

    def load_receiver():
        nonlocal r_kk, r_gen, r_num, r_i, r_tau_v, r_tau_l
        nonlocal r_rho_v, r_rho_l, r_prv, r_prl
        nonlocal rs_sent, rs_deliv, rs_crashes, rs_corr, rs_err, rs_ext
        nonlocal rs_stale, rs_tauupd, rs_maxrho
        r_kk = receiver._k
        r_gen = receiver._t
        r_num = receiver._num
        r_i = receiver._i
        bs = receiver._tau
        r_tau_v = bs._value
        r_tau_l = bs._length
        bs = receiver._rho
        r_rho_v = bs._value
        r_rho_l = bs._length
        bs = receiver._prev_rho
        if bs is None:
            r_prv = 0
            r_prl = -1
        else:
            r_prv = bs._value
            r_prl = bs._length
        st = receiver.stats
        rs_sent = st.packets_sent
        rs_deliv = st.deliveries
        rs_crashes = st.crashes
        rs_corr = st.corruptions
        rs_err = st.errors_counted
        rs_ext = st.extensions
        rs_stale = st.stale_ignored
        rs_tauupd = st.tau_updates
        rs_maxrho = st.max_rho_bits

    def corrupt_move(move):
        # Rare path: round-trip through the real station object so the
        # scramble consumes the move's dedicated tape exactly like the
        # object engine (Simulator._corrupt).
        nonlocal m_corr_t, m_corr_r
        if move.wipe:
            if move.station == "T":
                crash_t()
            elif move.station == "R":
                crash_r()
            else:
                raise SimulationError(
                    f"corrupt move names unknown station {move.station!r}"
                )
            return
        rng = RandomSource(move.seed)
        if move.station == "T":
            sync_transmitter()
            scrambled = transmitter.corrupt(rng, move.fields)
            load_transmitter()
            m_corr_t += 1
        elif move.station == "R":
            sync_receiver()
            scrambled = receiver.corrupt(rng, move.fields)
            load_receiver()
            m_corr_r += 1
        else:
            raise SimulationError(
                f"corrupt move names unknown station {move.station!r}"
            )
        trace_append(
            Corruption(station=move.station, fields=scrambled, seed=move.seed)
        )

    def fairness_pass_turn():
        # FairnessEnforcer bookkeeping for a non-Deliver inner move:
        # advance starvation on every backlogged channel; if one crossed
        # the patience bound, force-deliver its newest pending packet
        # (replacing the inner's move).  Returns (to_receiver, pid) or
        # None.  Tie-break: strictly-greater count, first channel wins.
        nonlocal enf_count, forced
        most = None
        most_count = 0
        for ch, pend in enf_pending.items():
            if not pend:
                continue
            count = enf_starv[ch] + 1
            enf_starv[ch] = count
            if count >= patience and count > most_count:
                most = ch
                most_count = count
        if most is None:
            return None
        pend = enf_pending[most]
        pid = next(reversed(pend))
        del pend[pid]
        enf_count -= 1
        enf_starv[most] = 0
        forced += 1
        return (most is _T_TO_R, pid)

    # ------------------------------------------------------------------
    # Main loop (phase order mirrors Simulator.run exactly).
    # ------------------------------------------------------------------

    error = None
    try:
        while steps < max_steps:
            if workload_exhausted and next_message is None and not t_busy:
                break
            steps += 1

            if not t_busy and next_message is not None:
                submit()

            countdown = retry_countdown - 1
            if countdown:
                retry_countdown = countdown
            else:
                retry_countdown = retry_every
                fire_retry()

            if mode == _MODE_FAIR_RELIABLE:
                adv_moves += 1
                inner_moves += 1
                if rel_pend:
                    to_r, pid, _ln = rel_pend.popleft()
                    ch = _T_TO_R if to_r else _R_TO_T
                    enf_starv[ch] = 0
                    pend = enf_pending.get(ch)
                    if pend is not None and pend.pop(pid, None) is not None:
                        enf_count -= 1
                    if to_r:
                        deliver_to_receiver(pid)
                    else:
                        deliver_to_transmitter(pid)
                elif enf_count:
                    fd = fairness_pass_turn()
                    if fd is not None:
                        if fd[0]:
                            deliver_to_receiver(fd[1])
                        else:
                            deliver_to_transmitter(fd[1])
            elif mode == _MODE_FAIR_RANDOM or mode == _MODE_BARE_RANDOM:
                adv_moves += 1
                # Inner RandomFaultAdversary coin schedule (exact order).
                mv = 0  # 0=pass, 1=crash T, 2=crash R, 3=deliver
                dto_r = False
                dpid = 0
                if inner_random() < p_crash_t:
                    rf_crashes += 1
                    mv = 1
                elif inner_random() < p_crash_r:
                    rf_crashes += 1
                    mv = 2
                elif rf_pend:
                    if p_reorder and inner_random() < p_reorder:
                        idx = inner_randint(0, len(rf_pend) - 1)
                    else:
                        idx = 0
                    item = rf_pend.pop(idx)
                    if inner_random() < p_dup:
                        rf_pend.append(item)
                        rf_dup += 1
                    mv = 3
                    dto_r = item[0]
                    dpid = item[1]
                if mode == _MODE_FAIR_RANDOM:
                    inner_moves += 1
                    if mv == 3:
                        ch = _T_TO_R if dto_r else _R_TO_T
                        enf_starv[ch] = 0
                        pend = enf_pending.get(ch)
                        if (
                            pend is not None
                            and pend.pop(dpid, None) is not None
                        ):
                            enf_count -= 1
                        if dto_r:
                            deliver_to_receiver(dpid)
                        else:
                            deliver_to_transmitter(dpid)
                    else:
                        fd = fairness_pass_turn() if enf_count else None
                        if fd is not None:
                            if fd[0]:
                                deliver_to_receiver(fd[1])
                            else:
                                deliver_to_transmitter(fd[1])
                        elif mv == 1:
                            crash_t()
                        elif mv == 2:
                            crash_r()
                else:
                    if mv == 3:
                        if dto_r:
                            deliver_to_receiver(dpid)
                        else:
                            deliver_to_transmitter(dpid)
                    elif mv == 1:
                        crash_t()
                    elif mv == 2:
                        crash_r()
            elif mode == _MODE_BARE_RELIABLE:
                adv_moves += 1
                if rel_pend:
                    to_r, pid, _ln = rel_pend.popleft()
                    if to_r:
                        deliver_to_receiver(pid)
                    else:
                        deliver_to_transmitter(pid)
            else:
                # Generic path: the real adversary object decides.
                if adv_decide is not None:
                    adv._moves_made += 1
                    move = adv_decide()
                else:
                    move = adv_next_move()
                mt = type(move)
                if mt is Deliver:
                    ch = move.channel
                    if ch is _T_TO_R or ch == _T_TO_R:
                        deliver_to_receiver(move.packet_id)
                    else:
                        deliver_to_transmitter(move.packet_id)
                elif mt is Pass:
                    pass
                elif mt is CrashTransmitter:
                    crash_t()
                elif mt is CrashReceiver:
                    crash_r()
                elif mt is Corrupt:
                    corrupt_move(move)
                elif mt is TriggerRetry:
                    fire_retry()
                # Subclass fallback: same resolution order as
                # Simulator._resolve_move_handler.
                elif isinstance(move, Deliver):
                    ch = move.channel
                    if ch is _T_TO_R or ch == _T_TO_R:
                        deliver_to_receiver(move.packet_id)
                    else:
                        deliver_to_transmitter(move.packet_id)
                elif isinstance(move, CrashTransmitter):
                    crash_t()
                elif isinstance(move, CrashReceiver):
                    crash_r()
                elif isinstance(move, Corrupt):
                    corrupt_move(move)
                elif isinstance(move, TriggerRetry):
                    fire_retry()
                elif isinstance(move, Pass):
                    pass
                else:
                    raise SimulationError(
                        f"adversary produced unknown move {move!r}"
                    )

            if storage_countdown:
                storage_countdown -= 1
                if not storage_countdown:
                    storage_countdown = storage_sample_every
                    bits_now = (
                        t_tau_l
                        + (t_ptau_l if t_ptau_l > 0 else 0)
                        + r_rho_l
                        + r_tau_l
                        + (r_prl if r_prl > 0 else 0)
                    )
                    if keep_samples:
                        samples_append(bits_now)
                    if bits_now > storage_peak:
                        storage_peak = bits_now
    except BaseException as exc:
        error = exc

    wall_seconds = perf_counter() - started

    # ------------------------------------------------------------------
    # Sync: flat slots -> object graph (the veneer contract).
    # ------------------------------------------------------------------

    sync_transmitter()
    sync_receiver()
    transmitter._rng._bits_drawn += t_bits
    receiver._rng._bits_drawn += r_bits

    store = t_to_r._store
    store.clear()
    for pid, (message, rv, rl, tv, tl) in tr_store.items():
        store[pid] = make_data_packet(
            message, BitString._trusted(rv, rl), BitString._trusted(tv, tl)
        )
    t_to_r._next_id = tr_next
    t_to_r._sent_count = tr_sent
    t_to_r._delivered_count = tr_deliv
    t_to_r._bits_sent = tr_bits

    store = r_to_t._store
    store.clear()
    for pid, (rv, rl, tv, tl, retry) in rt_store.items():
        store[pid] = make_poll_packet(
            BitString._trusted(rv, rl), BitString._trusted(tv, tl), retry
        )
    r_to_t._next_id = rt_next
    r_to_t._sent_count = rt_sent
    r_to_t._delivered_count = rt_deliv
    r_to_t._bits_sent = rt_bits

    if mode != _MODE_GENERIC:
        adv._moves_made += adv_moves
        if mode == _MODE_FAIR_RELIABLE or mode == _MODE_FAIR_RANDOM:
            inner._moves_made += inner_moves
            adv.forced_deliveries = forced
            adv._pending = {
                ch: {
                    pid: _make_packet_info(ch, pid, length)
                    for pid, length in pend.items()
                }
                for ch, pend in enf_pending.items()
            }
            adv._pending_count = enf_count
            adv._starvation = dict(enf_starv)
        if mode == _MODE_FAIR_RELIABLE or mode == _MODE_BARE_RELIABLE:
            inner._pending = deque(
                _make_packet_info(_T_TO_R if to_r else _R_TO_T, pid, length)
                for to_r, pid, length in rel_pend
            )
        else:
            inner._pending = [
                _make_packet_info(_T_TO_R if to_r else _R_TO_T, pid, length)
                for to_r, pid, length in rf_pend
            ]
            inner.dropped = rf_dropped
            inner.duplicated = rf_dup
            inner.crashes_injected = rf_crashes

    sim._steps = steps
    sim._tx_busy = t_busy
    sim._retry_countdown = retry_countdown
    sim._storage_countdown = storage_countdown
    sim._next_message = next_message
    sim._workload_exhausted = workload_exhausted
    sim._pkt_sent_tally += tally_sent
    sim._pkt_delivered_tally += tally_deliv
    sim._retry_tally += tally_retry

    metrics.messages_submitted = m_submitted
    metrics.messages_ok = m_ok
    metrics.messages_delivered = m_delivered
    metrics.retries = m_retries
    metrics.crashes_t = m_crash_t
    metrics.crashes_r = m_crash_r
    metrics.corruptions_t = m_corr_t
    metrics.corruptions_r = m_corr_r
    metrics._storage_peak = storage_peak

    sim._flush_tallies()

    if error is not None:
        raise error

    checker_seconds = checks.checker_seconds if checks is not None else 0.0
    completed = (
        workload_exhausted and next_message is None and not t_busy
    )
    return SimulationResult(
        trace=trace,
        metrics=metrics.freeze(
            steps,
            wall_seconds=wall_seconds,
            checker_seconds=checker_seconds,
            events_recorded=trace.total_events,
        ),
        completed=completed,
        steps=steps,
        link=sim._link,
        adversary=adv,
        checks=checks,
    )
