"""Persistent flat-state kernel for one relay-fabric hop.

The fabric (:mod:`repro.transport.fabric`) drives every directed edge's
``_LinkSimulator`` in small bursts — ``steps_per_tick`` simulation steps
per fabric tick, interleaved with routing, draining and fault events.
``run_kernel`` cannot serve that shape: it is built around whole-run
borrow/sync of the object graph, and paying extract + sync per burst
would cost more than the object engine it replaces.

:class:`HopKernel` keeps the flat slot-indexed state (the same layout as
:mod:`repro.kernel.engine`) *resident between bursts*: station slots,
int-coded nonces, flat channel stores and the link-gated wire FIFO all
live on the kernel instance, and :meth:`tick` loads them into plain
locals, runs the inlined per-step loop, and stores them back.  The
fabric-facing surface of ``_LinkSimulator`` is served from the flat
state directly:

* **push-style feed** — the shared ``feed`` deque is polled exactly
  where the object engine's ``_advance_workload`` override would run;
* **delivery collector** — a ``receive_msg`` appends the frame bytes
  straight to the shared ``delivered`` deque (the trace-surface hook:
  with ``retain="none"`` the object path's ``ReceiveMsg`` event exists
  only to feed that observer, so the kernel skips materialising it and
  settles the trace counters at :meth:`finalize`);
* **topology faults** — ``crash_transmitter``/``crash_receiver`` apply
  the stations' crash transitions on the flat slots between bursts, and
  the wire's up/down gate reads the shared :class:`LinkState` each tick.

The per-hop wire is always a ``_LinkAdversary`` — a FIFO gated by
``LinkState.up`` that draws no randomness — so its whole decision
procedure inlines to a handful of int ops; the station RNG tapes are
consumed in exactly the object engine's order.  :meth:`finalize` is the
veneer contract's sync half: called once when the fabric run ends, it
writes stations, stats, channels, wire queue, trace counters and metrics
back to the objects, after which ``FabricRun._aggregate_metrics`` (and
any test) observes exactly what the object engine would have produced.
The fabric differential suite (tests/transport/test_fabric_differential)
pins kernel-fabric == object-fabric per seed across topologies and the
topology-event zoo.
"""

from collections import deque

from repro.channel.channel import _make_packet_info
from repro.core.bitstrings import BitString
from repro.core.events import (
    ChannelId,
    CrashR,
    CrashT,
    Ok,
    ReceiveMsg,
    SendMsg,
)
from repro.core.exceptions import AxiomViolationError, UnknownPacketError
from repro.kernel.engine import _extract_receiver, _extract_transmitter

__all__ = ["HopKernel"]

_T_TO_R = ChannelId.T_TO_R
_R_TO_T = ChannelId.R_TO_T


class HopKernel:
    """Flat-state executor bound to one installed ``_LinkSimulator``.

    Construct immediately after the simulator (stations fresh, channels
    empty, wire queue empty); from then on the kernel's slots are the
    truth and the object graph is stale until :meth:`finalize`.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._wire = sim.wire
        self._link_state = self._wire._state
        self.feed = sim.feed
        self.delivered = sim.delivered
        self._submitted = sim._submitted_payloads

        transmitter = sim._transmitter
        receiver = sim._receiver
        (
            self.t_busy, self.t_msg, self.t_tau_v, self.t_tau_l,
            self.t_ptau_v, self.t_ptau_l, self.t_gen, self.t_num,
            self.t_iseen, self.t_rnv, self.t_rnl,
            self.ts_sent, self.ts_oks, self.ts_crashes, self.ts_err,
            self.ts_ext, self.ts_ign, self.ts_maxtau,
        ) = _extract_transmitter(transmitter)
        (
            self.r_kk, self.r_gen, self.r_num, self.r_i,
            self.r_tau_v, self.r_tau_l, self.r_rho_v, self.r_rho_l,
            self.r_prv, self.r_prl,
            self.rs_sent, self.rs_deliv, self.rs_crashes, self.rs_err,
            self.rs_ext, self.rs_stale, self.rs_tauupd, self.rs_maxrho,
        ) = _extract_receiver(receiver)
        self._t_grb = transmitter._rng._rng.getrandbits
        self._r_grb = receiver._rng._rng.getrandbits
        self.t_bits = 0
        self.r_bits = 0

        params = transmitter._params
        self._size = params.size
        self._bound = params.bound
        self._size1 = params.size(1)
        self.poll_len = (
            17 + ((self.r_rho_l + 7) >> 3) + ((self.r_tau_l + 7) >> 3)
        ) << 3

        # Channels: adopt a parked flat store or flatten the object store
        # (both are empty at fabric construction; mirrored for safety).
        t_to_r = sim._t_to_r
        r_to_t = sim._r_to_t
        if t_to_r._flat_store is not None:
            self.tr_store = t_to_r._flat_store
            t_to_r._flat_store = None
        else:
            self.tr_store = {
                pid: (pkt.message, pkt.rho._value, pkt.rho._length,
                      pkt.tau._value, pkt.tau._length)
                for pid, pkt in t_to_r._store.items()
            }
            t_to_r._store.clear()
        self.tr_next = t_to_r._next_id
        self.tr_sent = t_to_r._sent_count
        self.tr_deliv = t_to_r._delivered_count
        self.tr_bits = t_to_r._bits_sent
        if r_to_t._flat_store is not None:
            self.rt_store = r_to_t._flat_store
            r_to_t._flat_store = None
        else:
            self.rt_store = {
                pid: (pkt.rho._value, pkt.rho._length,
                      pkt.tau._value, pkt.tau._length, pkt.retry)
                for pid, pkt in r_to_t._store.items()
            }
            r_to_t._store.clear()
        self.rt_next = r_to_t._next_id
        self.rt_sent = r_to_t._sent_count
        self.rt_deliv = r_to_t._delivered_count
        self.rt_bits = r_to_t._bits_sent

        # Wire FIFO as (to_receiver, packet_id, length_bits) triples, in
        # announcement order across both channels.
        self.wire_q = deque(
            (info.channel is _T_TO_R, info.packet_id, info.length_bits)
            for info in self._wire._queue
        )
        self._wire._queue.clear()
        self.wire_dropped = self._wire.dropped

        # Simulator loop slots.
        self.steps = sim._steps
        self._retry_every = sim._retry_every
        self.retry_countdown = sim._retry_countdown
        self._sample_every = sim._storage_sample_every
        self.storage_countdown = sim._storage_countdown
        self.next_message = sim._next_message
        self.workload_exhausted = sim._workload_exhausted

        # Metrics mirrors and trace-event tallies.
        metrics = sim._metrics
        self.storage_peak = metrics._storage_peak
        self.m_submitted = metrics.messages_submitted
        self.m_ok = metrics.messages_ok
        self.m_delivered = metrics.messages_delivered
        self.m_retries = metrics.retries
        self.m_crash_t = metrics.crashes_t
        self.m_crash_r = metrics.crashes_r
        self.n_send = self.n_recv = self.n_ok = self.n_ct = self.n_cr = 0

        # Finalize baselines (deltas feed the sim's deferred tallies).
        self._steps0 = self.steps
        self._tr_sent0 = self.tr_sent
        self._tr_deliv0 = self.tr_deliv
        self._rt_sent0 = self.rt_sent
        self._rt_deliv0 = self.rt_deliv
        self._m_retries0 = self.m_retries

    # -- fabric-facing surface ---------------------------------------------------------

    @property
    def active(self) -> bool:
        return bool(
            self.feed
            or self.next_message is not None
            or self.t_busy
            or self.wire_q
        )

    def wipe_feed(self) -> int:
        wiped = len(self.feed) + (1 if self.next_message is not None else 0)
        self.feed.clear()
        self.next_message = None
        return wiped

    def crash_transmitter(self) -> None:
        """The transmitter's crash transition on the flat slots."""
        self.n_ct += 1
        self.m_crash_t += 1
        size1 = self._size1
        self.t_busy = False
        self.t_msg = None
        self.t_bits += size1
        self.t_tau_v = ((1 << size1) | self._t_grb(size1)) if size1 else 1
        self.t_tau_l = 1 + size1
        self.t_ptau_v = 0
        self.t_ptau_l = -1
        self.t_gen = 1
        self.t_num = 0
        self.t_iseen = 0
        self.t_rnv = 0
        self.t_rnl = -1
        self.ts_crashes += 1
        if self.t_tau_l > self.ts_maxtau:
            self.ts_maxtau = self.t_tau_l

    def crash_receiver(self) -> None:
        """The receiver's crash transition on the flat slots."""
        self.n_cr += 1
        self.m_crash_r += 1
        size1 = self._size1
        self.r_kk = 1
        self.r_gen = 1
        self.r_num = 0
        self.r_i = 1
        self.r_tau_v = 0
        self.r_tau_l = 1
        self.r_bits += size1
        self.r_rho_v = self._r_grb(size1) if size1 else 0
        self.r_rho_l = size1
        self.r_prv = 0
        self.r_prl = -1
        self.rs_crashes += 1
        self.poll_len = (
            17 + ((self.r_rho_l + 7) >> 3) + ((self.r_tau_l + 7) >> 3)
        ) << 3
        if self.r_rho_l > self.rs_maxrho:
            self.rs_maxrho = self.r_rho_l

    # -- the burst loop ----------------------------------------------------------------

    def tick(self, burst: int) -> None:
        """Advance ``burst`` simulation steps (one fabric tick's share)."""
        # ---- load slots into locals --------------------------------------
        feed = self.feed
        next_message = self.next_message
        workload_exhausted = self.workload_exhausted
        if next_message is None and feed:
            next_message = feed.popleft()
            workload_exhausted = False

        t_busy = self.t_busy
        t_msg = self.t_msg
        t_tau_v = self.t_tau_v
        t_tau_l = self.t_tau_l
        t_ptau_v = self.t_ptau_v
        t_ptau_l = self.t_ptau_l
        t_gen = self.t_gen
        t_num = self.t_num
        t_iseen = self.t_iseen
        t_rnv = self.t_rnv
        t_rnl = self.t_rnl
        ts_sent = self.ts_sent
        ts_oks = self.ts_oks
        ts_err = self.ts_err
        ts_ext = self.ts_ext
        ts_ign = self.ts_ign
        ts_maxtau = self.ts_maxtau
        r_kk = self.r_kk
        r_gen = self.r_gen
        r_num = self.r_num
        r_i = self.r_i
        r_tau_v = self.r_tau_v
        r_tau_l = self.r_tau_l
        r_rho_v = self.r_rho_v
        r_rho_l = self.r_rho_l
        r_prv = self.r_prv
        r_prl = self.r_prl
        rs_sent = self.rs_sent
        rs_deliv = self.rs_deliv
        rs_err = self.rs_err
        rs_ext = self.rs_ext
        rs_stale = self.rs_stale
        rs_tauupd = self.rs_tauupd
        rs_maxrho = self.rs_maxrho
        t_bits = self.t_bits
        r_bits = self.r_bits
        tr_store = self.tr_store
        rt_store = self.rt_store
        tr_next = self.tr_next
        tr_sent = self.tr_sent
        tr_deliv = self.tr_deliv
        tr_bits = self.tr_bits
        rt_next = self.rt_next
        rt_sent = self.rt_sent
        rt_deliv = self.rt_deliv
        rt_bits = self.rt_bits
        wire_q = self.wire_q
        wire_dropped = self.wire_dropped
        steps = self.steps
        retry_every = self._retry_every
        retry_countdown = self.retry_countdown
        sample_every = self._sample_every
        storage_countdown = self.storage_countdown
        storage_peak = self.storage_peak
        poll_len = self.poll_len
        m_submitted = self.m_submitted
        m_ok = self.m_ok
        m_delivered = self.m_delivered
        m_retries = self.m_retries
        n_send = self.n_send
        n_recv = self.n_recv
        n_ok = self.n_ok
        t_grb = self._t_grb
        r_grb = self._r_grb
        size = self._size
        bound = self._bound
        size1 = self._size1
        submitted = self._submitted
        delivered_append = self.delivered.append
        # LinkState.up only changes between fabric ticks (_apply_topology),
        # never inside a burst, so one read gates the whole burst.
        up = self._link_state.up

        try:
            remaining = burst
            while remaining:
                # -- idle fast-forward ------------------------------------
                # A step with an empty wire and nothing to submit only
                # decrements the retry/storage countdowns: no packet moves,
                # no randomness is drawn, no counter changes.  Batch every
                # such step up to the next cadence firing in O(1) — the
                # result is bit-identical to stepping one at a time.
                if not wire_q and (t_busy or next_message is None):
                    n = retry_countdown - 1
                    if storage_countdown and storage_countdown - 1 < n:
                        n = storage_countdown - 1
                    if n > remaining:
                        n = remaining
                    if n > 0:
                        steps += n
                        retry_countdown -= n
                        if storage_countdown:
                            storage_countdown -= n
                        remaining -= n
                        if not remaining:
                            break
                remaining -= 1
                steps += 1

                # -- higher layer: submit next frame when idle ------------
                if not t_busy and next_message is not None:
                    message = next_message
                    if message in submitted:
                        raise AxiomViolationError(
                            f"Axiom 2 violated: payload {message!r} "
                            "submitted twice"
                        )
                    submitted.add(message)
                    next_message = feed.popleft() if feed else None
                    workload_exhausted = False
                    n_send += 1
                    m_submitted += 1
                    if not isinstance(message, bytes):
                        raise TypeError("messages must be bytes")
                    t_busy = True
                    t_msg = message
                    t_ptau_v = t_tau_v
                    t_ptau_l = t_tau_l
                    t_bits += size1
                    t_tau_v = ((1 << size1) | t_grb(size1)) if size1 else 1
                    t_tau_l = 1 + size1
                    t_gen = 1
                    t_num = 0
                    if t_tau_l > ts_maxtau:
                        ts_maxtau = t_tau_l
                    if t_rnl >= 0:
                        ts_sent += 1
                        pid = tr_next
                        tr_next = pid + 1
                        tr_store[pid] = (message, t_rnv, t_rnl, t_tau_v, t_tau_l)
                        tr_sent += 1
                        tr_bits += (
                            13 + len(message) + ((t_rnl + 7) >> 3)
                            + ((t_tau_l + 7) >> 3)
                        ) << 3
                        if up:
                            wire_q.append((
                                True,
                                pid,
                                (13 + len(message) + ((t_rnl + 7) >> 3)
                                 + ((t_tau_l + 7) >> 3)) << 3,
                            ))
                        else:
                            wire_dropped += 1

                # -- RETRY cadence ----------------------------------------
                countdown = retry_countdown - 1
                if countdown:
                    retry_countdown = countdown
                else:
                    retry_countdown = retry_every
                    m_retries += 1
                    pid = rt_next
                    rt_next = pid + 1
                    rt_store[pid] = (r_rho_v, r_rho_l, r_tau_v, r_tau_l, r_i)
                    rt_sent += 1
                    rt_bits += poll_len
                    r_i += 1
                    rs_sent += 1
                    if up:
                        wire_q.append((False, pid, poll_len))
                    else:
                        wire_dropped += 1

                # -- wire move (inlined _LinkAdversary) -------------------
                if not up:
                    if wire_q:
                        wire_dropped += len(wire_q)
                        wire_q.clear()
                elif wire_q:
                    to_r, dpid, _ln = wire_q.popleft()
                    if to_r:
                        # Delivery on C^{T->R} + Receiver transition.
                        pkt = tr_store.get(dpid)
                        if pkt is None:
                            raise UnknownPacketError(dpid)
                        tr_deliv += 1
                        message, prv_, prl_, ptv, ptl = pkt
                        if prv_ == r_rho_v and prl_ == r_rho_l:
                            if (
                                r_tau_l <= ptl
                                and (ptv >> (ptl - r_tau_l)) == r_tau_v
                            ):
                                if r_tau_l != ptl:
                                    r_tau_v = ptv
                                    r_tau_l = ptl
                                    rs_tauupd += 1
                                    poll_len = (
                                        17 + ((r_rho_l + 7) >> 3)
                                        + ((r_tau_l + 7) >> 3)
                                    ) << 3
                            elif (
                                ptl <= r_tau_l
                                and (r_tau_v >> (r_tau_l - ptl)) == ptv
                            ):
                                rs_stale += 1
                            else:
                                r_tau_v = ptv
                                r_tau_l = ptl
                                r_kk += 1
                                r_gen = 1
                                r_num = 0
                                r_i = 1
                                r_prv = r_rho_v
                                r_prl = r_rho_l
                                r_bits += size1
                                r_rho_v = r_grb(size1) if size1 else 0
                                r_rho_l = size1
                                rs_deliv += 1
                                poll_len = (
                                    17 + ((r_rho_l + 7) >> 3)
                                    + ((r_tau_l + 7) >> 3)
                                ) << 3
                                if r_rho_l > rs_maxrho:
                                    rs_maxrho = r_rho_l
                                delivered_append(message)
                                n_recv += 1
                                m_delivered += 1
                        elif prl_ == r_rho_l and not (
                            r_prl >= 0 and prl_ == r_prl and prv_ == r_prv
                        ):
                            r_num += 1
                            rs_err += 1
                            if r_num >= bound(r_gen):
                                r_gen += 1
                                r_num = 0
                                s = size(r_gen)
                                r_bits += s
                                if s:
                                    r_rho_v = (r_rho_v << s) | r_grb(s)
                                r_rho_l += s
                                rs_ext += 1
                                poll_len = (
                                    17 + ((r_rho_l + 7) >> 3)
                                    + ((r_tau_l + 7) >> 3)
                                ) << 3
                                if r_rho_l > rs_maxrho:
                                    rs_maxrho = r_rho_l
                    else:
                        # Delivery on C^{R->T} + Transmitter transition.
                        pkt = rt_store.get(dpid)
                        if pkt is None:
                            raise UnknownPacketError(dpid)
                        rt_deliv += 1
                        prv_, prl_, ptv, ptl, pretry = pkt
                        if t_busy:
                            if (
                                t_tau_l <= ptl
                                and (ptv >> (ptl - t_tau_l)) == t_tau_v
                            ):
                                t_busy = False
                                t_msg = None
                                t_rnv = prv_
                                t_rnl = prl_
                                t_iseen = 0
                                t_gen = 1
                                t_num = 0
                                ts_oks += 1
                                n_ok += 1
                                m_ok += 1
                            else:
                                if ptl == t_tau_l and not (
                                    t_ptau_l >= 0
                                    and ptl == t_ptau_l
                                    and ptv == t_ptau_v
                                ):
                                    t_num += 1
                                    ts_err += 1
                                    if t_num >= bound(t_gen):
                                        t_gen += 1
                                        t_num = 0
                                        s = size(t_gen)
                                        t_bits += s
                                        if s:
                                            t_tau_v = (t_tau_v << s) | t_grb(s)
                                        t_tau_l += s
                                        ts_ext += 1
                                        if t_tau_l > ts_maxtau:
                                            ts_maxtau = t_tau_l
                                if pretry > t_iseen:
                                    t_iseen = pretry
                                    ts_sent += 1
                                    message = t_msg
                                    pid = tr_next
                                    tr_next = pid + 1
                                    tr_store[pid] = (
                                        message, prv_, prl_, t_tau_v, t_tau_l
                                    )
                                    tr_sent += 1
                                    length = (
                                        13 + len(message) + ((prl_ + 7) >> 3)
                                        + ((t_tau_l + 7) >> 3)
                                    ) << 3
                                    tr_bits += length
                                    # up is True on this branch: announce
                                    # lands on the wire unconditionally.
                                    wire_q.append((True, pid, length))
                                else:
                                    ts_ign += 1
                        else:
                            if (
                                t_tau_l <= ptl
                                and (ptv >> (ptl - t_tau_l)) == t_tau_v
                                and pretry > t_iseen
                            ):
                                t_rnv = prv_
                                t_rnl = prl_
                                t_iseen = pretry
                            else:
                                ts_ign += 1

                # -- storage sampling -------------------------------------
                if storage_countdown:
                    storage_countdown -= 1
                    if not storage_countdown:
                        storage_countdown = sample_every
                        bits_now = (
                            t_tau_l
                            + (t_ptau_l if t_ptau_l > 0 else 0)
                            + r_rho_l
                            + r_tau_l
                            + (r_prl if r_prl > 0 else 0)
                        )
                        if bits_now > storage_peak:
                            storage_peak = bits_now
        finally:
            # ---- store locals back into slots ----------------------------
            self.t_busy = t_busy
            self.t_msg = t_msg
            self.t_tau_v = t_tau_v
            self.t_tau_l = t_tau_l
            self.t_ptau_v = t_ptau_v
            self.t_ptau_l = t_ptau_l
            self.t_gen = t_gen
            self.t_num = t_num
            self.t_iseen = t_iseen
            self.t_rnv = t_rnv
            self.t_rnl = t_rnl
            self.ts_sent = ts_sent
            self.ts_oks = ts_oks
            self.ts_err = ts_err
            self.ts_ext = ts_ext
            self.ts_ign = ts_ign
            self.ts_maxtau = ts_maxtau
            self.r_kk = r_kk
            self.r_gen = r_gen
            self.r_num = r_num
            self.r_i = r_i
            self.r_tau_v = r_tau_v
            self.r_tau_l = r_tau_l
            self.r_rho_v = r_rho_v
            self.r_rho_l = r_rho_l
            self.r_prv = r_prv
            self.r_prl = r_prl
            self.rs_sent = rs_sent
            self.rs_deliv = rs_deliv
            self.rs_err = rs_err
            self.rs_ext = rs_ext
            self.rs_stale = rs_stale
            self.rs_tauupd = rs_tauupd
            self.rs_maxrho = rs_maxrho
            self.t_bits = t_bits
            self.r_bits = r_bits
            self.tr_next = tr_next
            self.tr_sent = tr_sent
            self.tr_deliv = tr_deliv
            self.tr_bits = tr_bits
            self.rt_next = rt_next
            self.rt_sent = rt_sent
            self.rt_deliv = rt_deliv
            self.rt_bits = rt_bits
            self.wire_dropped = wire_dropped
            self.steps = steps
            self.retry_countdown = retry_countdown
            self.storage_countdown = storage_countdown
            self.storage_peak = storage_peak
            self.poll_len = poll_len
            self.m_submitted = m_submitted
            self.m_ok = m_ok
            self.m_delivered = m_delivered
            self.m_retries = m_retries
            self.n_send = n_send
            self.n_recv = n_recv
            self.n_ok = n_ok
            self.next_message = next_message
            self.workload_exhausted = workload_exhausted

    # -- sync-back ---------------------------------------------------------------------

    def finalize(self) -> None:
        """Write the flat state back to the object graph (veneer contract).

        Mirrors the sync half of :func:`repro.kernel.engine._run_fast`;
        idempotent so a defensive second call is harmless.
        """
        sim = self._sim
        transmitter = sim._transmitter
        receiver = sim._receiver

        transmitter._busy = self.t_busy
        transmitter._message = self.t_msg
        transmitter._tau = BitString._trusted(self.t_tau_v, self.t_tau_l)
        transmitter._prev_tau = (
            None if self.t_ptau_l < 0
            else BitString._trusted(self.t_ptau_v, self.t_ptau_l)
        )
        transmitter._t = self.t_gen
        transmitter._num = self.t_num
        transmitter._i_seen = self.t_iseen
        transmitter._rho_next = (
            None if self.t_rnl < 0
            else BitString._trusted(self.t_rnv, self.t_rnl)
        )
        st = transmitter.stats
        st.packets_sent = self.ts_sent
        st.oks = self.ts_oks
        st.crashes = self.ts_crashes
        st.errors_counted = self.ts_err
        st.extensions = self.ts_ext
        st.polls_ignored = self.ts_ign
        st.max_tau_bits = self.ts_maxtau
        transmitter._rng._bits_drawn += self.t_bits
        self.t_bits = 0

        receiver._k = self.r_kk
        receiver._t = self.r_gen
        receiver._num = self.r_num
        receiver._i = self.r_i
        receiver._tau = BitString._trusted(self.r_tau_v, self.r_tau_l)
        receiver._rho = BitString._trusted(self.r_rho_v, self.r_rho_l)
        receiver._prev_rho = (
            None if self.r_prl < 0
            else BitString._trusted(self.r_prv, self.r_prl)
        )
        st = receiver.stats
        st.packets_sent = self.rs_sent
        st.deliveries = self.rs_deliv
        st.crashes = self.rs_crashes
        st.errors_counted = self.rs_err
        st.extensions = self.rs_ext
        st.stale_ignored = self.rs_stale
        st.tau_updates = self.rs_tauupd
        st.max_rho_bits = self.rs_maxrho
        receiver._rng._bits_drawn += self.r_bits
        self.r_bits = 0

        t_to_r = sim._t_to_r
        r_to_t = sim._r_to_t
        t_to_r._flat_store = self.tr_store
        t_to_r._store.clear()
        t_to_r._next_id = self.tr_next
        t_to_r._sent_count = self.tr_sent
        t_to_r._delivered_count = self.tr_deliv
        t_to_r._bits_sent = self.tr_bits
        r_to_t._flat_store = self.rt_store
        r_to_t._store.clear()
        r_to_t._next_id = self.rt_next
        r_to_t._sent_count = self.rt_sent
        r_to_t._delivered_count = self.rt_deliv
        r_to_t._bits_sent = self.rt_bits

        wire = self._wire
        wire._queue = deque(
            _make_packet_info(_T_TO_R if to_r else _R_TO_T, pid, length)
            for to_r, pid, length in self.wire_q
        )
        wire.dropped = self.wire_dropped
        wire._moves_made += self.steps - self._steps0
        self._steps0 = self.steps

        sim._steps = self.steps
        sim._tx_busy = self.t_busy
        sim._retry_countdown = self.retry_countdown
        sim._storage_countdown = self.storage_countdown
        sim._next_message = self.next_message
        sim._workload_exhausted = self.workload_exhausted
        if not sim._record_pkt_sent:
            sim._pkt_sent_tally += (
                (self.tr_sent - self._tr_sent0)
                + (self.rt_sent - self._rt_sent0)
            )
        if not sim._record_pkt_delivered:
            sim._pkt_delivered_tally += (
                (self.tr_deliv - self._tr_deliv0)
                + (self.rt_deliv - self._rt_deliv0)
            )
        if not sim._record_retry:
            sim._retry_tally += self.m_retries - self._m_retries0
        self._tr_sent0 = self.tr_sent
        self._tr_deliv0 = self.tr_deliv
        self._rt_sent0 = self.rt_sent
        self._rt_deliv0 = self.rt_deliv
        self._m_retries0 = self.m_retries

        # Settle the trace counters for the events the loop never
        # materialised (retain="none": every event is counted and dropped;
        # the ReceiveMsg observer's work already happened via `delivered`).
        trace = sim._trace
        total = self.n_send + self.n_recv + self.n_ok + self.n_ct + self.n_cr
        if total:
            trace._total += total
            trace._dropped += total
            counts = trace._counts
            fresh = False
            for cls, n in (
                (SendMsg, self.n_send),
                (ReceiveMsg, self.n_recv),
                (Ok, self.n_ok),
                (CrashT, self.n_ct),
                (CrashR, self.n_cr),
            ):
                if n:
                    if cls in counts:
                        counts[cls] += n
                    else:
                        counts[cls] = n
                        fresh = True
            if fresh:
                trace._query_cache.clear()
            self.n_send = self.n_recv = self.n_ok = 0
            self.n_ct = self.n_cr = 0

        metrics = sim._metrics
        metrics.messages_submitted = self.m_submitted
        metrics.messages_ok = self.m_ok
        metrics.messages_delivered = self.m_delivered
        metrics.retries = self.m_retries
        metrics.crashes_t = self.m_crash_t
        metrics.crashes_r = self.m_crash_r
        metrics._storage_peak = self.storage_peak

        sim._flush_tallies()
