"""repro: Goldreich-Herzberg-Mansour (PODC 1989) reproduction.

A randomized, crash-resilient data-link protocol over channels that may
lose, reorder and duplicate packets, together with the full experimental
apparatus of the paper's model: adversarial channels, correctness-condition
checkers, baselines, a transport-layer substrate, and analytic bounds.

Quickstart
----------
>>> from repro import make_data_link, Simulator, SequentialWorkload
>>> from repro.adversary import RandomFaultAdversary, FaultProfile
>>> link = make_data_link(epsilon=2**-16, seed=1)
>>> adversary = RandomFaultAdversary(FaultProfile(loss=0.2, duplicate=0.2))
>>> sim = Simulator(link, adversary, SequentialWorkload(10), seed=1)
>>> result = sim.run()
>>> result.all_messages_ok
True
"""

from repro.core import (
    AggressivePolicy,
    BitString,
    DataLink,
    DataPacket,
    FixedPolicy,
    PollPacket,
    PrintedPaperPolicy,
    ProtocolParams,
    RandomSource,
    Receiver,
    ReproError,
    SizeBoundPolicy,
    SoundPolicy,
    Transmitter,
    make_data_link,
)
from repro.checkers import (
    SafetyReport,
    Trace,
    check_all_safety,
    check_liveness,
    progress_gaps,
)
from repro.sim import (
    MonteCarloResult,
    RunSpec,
    SequentialWorkload,
    SimulationResult,
    Simulator,
    Sweep,
    monte_carlo,
)

__version__ = "1.0.0"

__all__ = [
    "AggressivePolicy",
    "BitString",
    "DataLink",
    "DataPacket",
    "FixedPolicy",
    "MonteCarloResult",
    "PollPacket",
    "PrintedPaperPolicy",
    "ProtocolParams",
    "RandomSource",
    "Receiver",
    "ReproError",
    "RunSpec",
    "SafetyReport",
    "SequentialWorkload",
    "SimulationResult",
    "Simulator",
    "SizeBoundPolicy",
    "SoundPolicy",
    "Sweep",
    "Trace",
    "Transmitter",
    "check_all_safety",
    "check_liveness",
    "make_data_link",
    "monte_carlo",
    "progress_gaps",
    "__version__",
]
