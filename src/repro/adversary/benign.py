"""Benign adversaries: reliable FIFO delivery and simple variations.

These model the fault-free regime the overview of Section 3 starts from
("Assume that all the packets are delivered in order, without duplications
or omissions").  They calibrate the baselines — under
:class:`ReliableAdversary` the protocol must complete each message in the
three-packet handshake the paper advertises.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.adversary.base import (
    PASS,
    TRIGGER_RETRY,
    Adversary,
    Move,
    make_deliver,
)
from repro.channel.channel import PacketInfo

__all__ = ["ReliableAdversary", "DelayedFifoAdversary"]


class ReliableAdversary(Adversary):
    """Delivers every packet exactly once, in FIFO order, never crashes.

    When both channels have pending packets, the oldest announcement goes
    first, preserving global causal order.
    """

    def __init__(self) -> None:
        super().__init__()
        self._pending: Deque[PacketInfo] = deque()

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append(info)

    def _decide(self) -> Move:
        if self._pending:
            info = self._pending.popleft()
            return make_deliver(info.channel, info.packet_id)
        return PASS


class DelayedFifoAdversary(Adversary):
    """FIFO delivery, but each packet waits a fixed number of turns.

    Models plain propagation latency: no loss, duplication or reordering.
    Useful for checking that the receiver-paced handshake tolerates slow
    links without spurious error counting.
    """

    def __init__(self, delay_turns: int = 3) -> None:
        super().__init__()
        if delay_turns < 0:
            raise ValueError("delay_turns must be non-negative")
        self._delay = delay_turns
        self._pending: Deque[tuple] = deque()  # (ready_at_move, info)

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append((self.moves_made + self._delay, info))

    def _decide(self) -> Move:
        if self._pending and self._pending[0][0] <= self.moves_made:
            __, info = self._pending.popleft()
            return make_deliver(info.channel, info.packet_id)
        if self._pending:
            # Let simulated time advance so the head packet matures; asking
            # for a RETRY keeps the receiver side live in the meantime.
            return TRIGGER_RETRY
        return PASS
