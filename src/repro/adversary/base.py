"""Adversary interface (Section 2.4) and the move vocabulary.

The adversary is the *only* source of indeterminism in ``D(A, ADV)``: it
decides which packets are delivered, when, how many times, and when the
stations crash.  Its entire view of the system is the stream of
``new_pkt(id, length)`` announcements — it is structurally oblivious to
packet contents, which is the paper's one restriction on malice
(Section 2.5).

The simulator drives the adversary turn-by-turn: it forwards every
:class:`~repro.channel.PacketInfo` via :meth:`Adversary.on_new_pkt` and
repeatedly asks :meth:`Adversary.next_move` for one of the moves defined
here.  Fairness (Axiom 3) and the infinitely-recurring RETRY assumption are
imposed by the harness (see :mod:`repro.adversary.fairness`), mirroring the
paper's treatment of them as *restrictions on the adversary*, not
capabilities of the channel.
"""

from __future__ import annotations

import sys
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId
from repro.core.random_source import RandomSource
from repro.util.hotpath import trusted_constructor

__all__ = [
    "Move",
    "Deliver",
    "CrashTransmitter",
    "CrashReceiver",
    "Corrupt",
    "TriggerRetry",
    "Pass",
    "Adversary",
    "PASS",
    "TRIGGER_RETRY",
    "CRASH_TRANSMITTER",
    "CRASH_RECEIVER",
    "make_deliver",
]

# Moves are produced once per simulation step; slot them where the runtime
# supports it (graceful degradation on Python 3.9).
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **_SLOTS)
class Move:
    """Base class for one adversary decision."""


@dataclass(frozen=True, **_SLOTS)
class Deliver(Move):
    """``deliver_pkt(id)`` on the named channel.

    The same id may be delivered any number of times; delivering an id the
    channel never issued is an adversary bug and raises
    :class:`~repro.core.exceptions.UnknownPacketError`.
    """

    channel: ChannelId
    packet_id: int


@dataclass(frozen=True, **_SLOTS)
class CrashTransmitter(Move):
    """``crash^T``: wipe the transmitting station's memory."""


@dataclass(frozen=True, **_SLOTS)
class CrashReceiver(Move):
    """``crash^R``: wipe the receiving station's memory."""


@dataclass(frozen=True, **_SLOTS)
class Corrupt(Move):
    """Scramble a station's volatile memory to an arbitrary configuration.

    The arbitrary-state fault of the self-stabilization literature: where a
    crash wipes to a *known* blank, a corruption XORs live nonces with
    adversarial masks and randomizes counters in place.  ``fields`` is None
    for "every volatile field" or a tuple of field names; ``seed`` pins the
    scramble tape independently of the adversary's own tape, so recorded
    corruptions replay bit-identically.  ``wipe=True`` degrades the move to
    the station's crash transition — the differential hook pinning
    crash-amnesia as corruption's known-blank special case.
    """

    station: str  # "T" or "R"
    fields: Optional[tuple] = None
    seed: int = 0
    wipe: bool = False


@dataclass(frozen=True, **_SLOTS)
class TriggerRetry(Move):
    """Schedule the receiver's internal RETRY action now.

    RETRY is not an adversary action in the model — it is an internal action
    assumed to recur forever — but its *interleaving* with deliveries is
    part of the worst-case schedule, so adversaries may position it.  The
    harness additionally forces a RETRY periodically regardless, so an
    adversary cannot starve the assumption away.
    """


@dataclass(frozen=True, **_SLOTS)
class Pass(Move):
    """Do nothing this turn (the harness may force progress instead)."""


#: Interned instances of the field-less moves.  Equal (``==``) to any other
#: instance of their class; adversaries return them instead of allocating a
#: fresh move every turn.
PASS = Pass()
TRIGGER_RETRY = TriggerRetry()
CRASH_TRANSMITTER = CrashTransmitter()
CRASH_RECEIVER = CrashReceiver()

#: Trusted fast constructor for the one hot move that carries fields
#: (positional: channel, packet_id).
make_deliver = trusted_constructor(Deliver, "channel", "packet_id")


class Adversary(ABC):
    """Base class for adversarial schedules.

    Subclasses receive ``new_pkt`` announcements and emit moves.  They must
    not touch packet contents — the API never exposes any.

    The life cycle is: construct → :meth:`bind` (receives the experiment's
    random tape) → interleaved :meth:`on_new_pkt` / :meth:`next_move` calls
    until the simulation ends.
    """

    def __init__(self) -> None:
        self._rng: Optional[RandomSource] = None
        self._moves_made = 0

    def bind(self, rng: RandomSource) -> None:
        """Attach the adversary's private random tape (called by the harness)."""
        self._rng = rng

    @property
    def rng(self) -> RandomSource:
        """The bound random tape; raises if the harness never bound one."""
        if self._rng is None:
            raise RuntimeError(f"{type(self).__name__} was never bound to a tape")
        return self._rng

    @property
    def moves_made(self) -> int:
        """How many moves this adversary has produced so far."""
        return self._moves_made

    def on_new_pkt(self, info: PacketInfo) -> None:
        """Observe a ``new_pkt(id, length)`` announcement (default: ignore)."""

    def next_move(self) -> Move:
        """Produce the next move.  Subclasses implement :meth:`_decide`."""
        self._moves_made += 1
        return self._decide()

    @abstractmethod
    def _decide(self) -> Move:
        """Return the adversary's next move."""

    def describe(self) -> str:
        """Short human-readable label for experiment tables."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}(moves={self._moves_made})"
