"""Composition of adversaries: phases and probabilistic mixtures.

Worst-case behaviours are often staged ("run clean, then attack") or mixed
("mostly lossy, occasionally reordering").  Rather than hand-writing each
combination, :class:`PhasedAdversary` chains adversaries by move budget and
:class:`MixtureAdversary` flips a weighted coin per turn.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.adversary.base import Adversary, Move
from repro.channel.channel import PacketInfo

__all__ = ["PhasedAdversary", "MixtureAdversary"]


class PhasedAdversary(Adversary):
    """Run each inner adversary for a fixed number of moves, in sequence.

    All inner adversaries observe every ``new_pkt`` throughout (a later
    phase may replay packets announced during an earlier one); only the
    currently active one is asked for moves.  The final phase runs forever.
    """

    def __init__(self, phases: Sequence[Tuple[Adversary, int]]) -> None:
        super().__init__()
        if not phases:
            raise ValueError("at least one phase is required")
        for __, budget in phases[:-1]:
            if budget < 1:
                raise ValueError("every non-final phase needs a positive budget")
        self._phases: List[Tuple[Adversary, int]] = list(phases)
        self._phase_index = 0
        self._moves_in_phase = 0

    def bind(self, rng) -> None:
        super().bind(rng)
        for index, (inner, __) in enumerate(self._phases):
            inner.bind(rng.fork("phase", index))

    def on_new_pkt(self, info: PacketInfo) -> None:
        for inner, __ in self._phases:
            inner.on_new_pkt(info)

    @property
    def current_phase(self) -> Adversary:
        """The inner adversary currently producing moves."""
        return self._phases[self._phase_index][0]

    def _decide(self) -> Move:
        inner, budget = self._phases[self._phase_index]
        if (
            self._phase_index < len(self._phases) - 1
            and self._moves_in_phase >= budget
        ):
            self._phase_index += 1
            self._moves_in_phase = 0
            inner, __ = self._phases[self._phase_index]
        self._moves_in_phase += 1
        return inner.next_move()

    def describe(self) -> str:
        inner = " -> ".join(a.describe() for a, __ in self._phases)
        return f"phased[{inner}]"


class MixtureAdversary(Adversary):
    """Per-turn weighted choice among inner adversaries.

    Every inner adversary sees every ``new_pkt``; each turn one of them is
    drawn with probability proportional to its weight and asked to move.
    """

    def __init__(self, components: Sequence[Tuple[Adversary, float]]) -> None:
        super().__init__()
        if not components:
            raise ValueError("at least one component is required")
        total = sum(weight for __, weight in components)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._components = [(adv, weight / total) for adv, weight in components]

    def bind(self, rng) -> None:
        super().bind(rng)
        for index, (inner, __) in enumerate(self._components):
            inner.bind(rng.fork("mixture", index))

    def on_new_pkt(self, info: PacketInfo) -> None:
        for inner, __ in self._components:
            inner.on_new_pkt(info)

    def _decide(self) -> Move:
        roll = self.rng.random_float()
        cumulative = 0.0
        for inner, weight in self._components:
            cumulative += weight
            if roll < cumulative:
                return inner.next_move()
        return self._components[-1][0].next_move()

    def describe(self) -> str:
        inner = ", ".join(
            f"{adv.describe()}:{weight:.2f}" for adv, weight in self._components
        )
        return f"mixture[{inner}]"
