"""Randomized fault adversaries: loss, duplication, reordering, crashes.

These are the workhorse adversaries for the Monte-Carlo experiments
(E1, E3, E4, E6, E7): every fault class of the model — omission,
duplication, arbitrary reordering, and station crashes — is injected with
configurable rates from the adversary's own random tape.  They keep the
fairness axiom by construction as long as the loss probability is below 1
(every packet is eventually either delivered or dropped, and retransmitted
packets get fresh coin flips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.adversary.base import (
    CRASH_RECEIVER,
    CRASH_TRANSMITTER,
    PASS,
    Adversary,
    Move,
    make_deliver,
)
from repro.channel.channel import PacketInfo

__all__ = ["FaultProfile", "RandomFaultAdversary", "ReorderAdversary", "DuplicateFloodAdversary"]


@dataclass(frozen=True)
class FaultProfile:
    """Fault rates for :class:`RandomFaultAdversary`.

    Attributes
    ----------
    loss:
        Probability a packet is silently dropped instead of queued.
    duplicate:
        Probability a delivered packet is re-queued for another delivery.
        Applied after every delivery, so duplication counts are geometric.
    reorder:
        Probability the adversary delivers a uniformly random pending
        packet rather than the oldest one.
    crash_t / crash_r:
        Per-turn probability of crashing the transmitter / receiver.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    crash_t: float = 0.0
    crash_r: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder", "crash_t", "crash_r"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.loss >= 1.0:
            raise ValueError("loss=1 disconnects the stations (violates Axiom 3)")


class RandomFaultAdversary(Adversary):
    """Injects all four fault classes with the rates of a :class:`FaultProfile`."""

    def __init__(self, profile: FaultProfile) -> None:
        super().__init__()
        self.profile = profile
        self._pending: List[PacketInfo] = []
        self.dropped = 0
        self.duplicated = 0
        self.crashes_injected = 0

    def bind(self, rng) -> None:
        super().bind(rng)
        # The profile's rates were validated at construction, so the
        # per-turn coin flips compare against the tape's uniform draw
        # directly instead of paying bernoulli()'s checks — same number of
        # draws in the same order, so seeded schedules are unchanged.
        self._random = rng.random_float

    def on_new_pkt(self, info: PacketInfo) -> None:
        if self._random() < self.profile.loss:
            self.dropped += 1
            return
        self._pending.append(info)

    def _decide(self) -> Move:
        random = self._random
        profile = self.profile
        if random() < profile.crash_t:
            self.crashes_injected += 1
            return CRASH_TRANSMITTER
        if random() < profile.crash_r:
            self.crashes_injected += 1
            return CRASH_RECEIVER
        if not self._pending:
            return PASS
        if profile.reorder and random() < profile.reorder:
            index = self.rng.randint(0, len(self._pending) - 1)
        else:
            index = 0
        info = self._pending.pop(index)
        if random() < profile.duplicate:
            # Geometric duplication: the copy gets its own coin flip later.
            self._pending.append(info)
            self.duplicated += 1
        return make_deliver(info.channel, info.packet_id)

    def describe(self) -> str:
        p = self.profile
        return (
            f"random(loss={p.loss}, dup={p.duplicate}, reorder={p.reorder}, "
            f"crashT={p.crash_t}, crashR={p.crash_r})"
        )


class ReorderAdversary(Adversary):
    """Delivers every packet exactly once but in uniformly random order.

    The pure non-FIFO regime of [AFWZ89]'s setting: no loss, no duplicates,
    no crashes — only ordering is adversarial.
    """

    def __init__(self, window: int = 16) -> None:
        super().__init__()
        if window < 1:
            raise ValueError("window must be >= 1")
        self._window = window
        self._pending: List[PacketInfo] = []

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append(info)

    def _decide(self) -> Move:
        if not self._pending:
            return PASS
        # Shuffle only within a bounded window so ancient packets cannot be
        # starved forever (keeps the adversary fair on its own).
        limit = min(self._window, len(self._pending))
        index = self.rng.randint(0, limit - 1)
        info = self._pending.pop(index)
        return make_deliver(info.channel, info.packet_id)


class DuplicateFloodAdversary(Adversary):
    """Delivers every packet, then keeps re-delivering old ones.

    Exercises the "any number of duplications" clause of the model: after
    the first delivery of each packet, every subsequent turn redelivers a
    uniformly chosen old packet with probability ``flood``, biased toward
    the direction named by ``flood_channel`` if given.
    """

    def __init__(self, flood: float = 0.5, flood_t_to_r_only: bool = False) -> None:
        super().__init__()
        if not 0.0 <= flood <= 1.0:
            raise ValueError("flood must be a probability")
        self._flood = flood
        self._t_to_r_only = flood_t_to_r_only
        self._fresh: List[PacketInfo] = []
        self._archive: List[PacketInfo] = []
        self.redeliveries = 0

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._fresh.append(info)

    def _decide(self) -> Move:
        if self._archive and self.rng.bernoulli(self._flood):
            candidates = self._archive
            if self._t_to_r_only:
                t_to_r = [i for i in self._archive if i.channel.value == "T->R"]
                candidates = t_to_r or self._archive
            info = self.rng.choice(candidates)
            self.redeliveries += 1
            return make_deliver(info.channel, info.packet_id)
        if self._fresh:
            info = self._fresh.pop(0)
            self._archive.append(info)
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def describe(self) -> str:
        return f"duplicate-flood(flood={self._flood})"
