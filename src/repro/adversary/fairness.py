"""Fairness enforcement (Axiom 3) and adversarial stalling.

Axiom 3 restricts every adversary *per channel*: if infinitely many
packets are sent on ``C^{T→R}`` after any point, a delivery eventually
occurs on ``C^{T→R}`` (and identically for ``C^{R→T}``).  In a bounded
simulation "eventually" must be concretised; :class:`FairnessEnforcer`
wraps any adversary and, for each channel separately, force-delivers that
channel's *most recently announced* pending packet whenever the wrapped
adversary has gone ``patience`` consecutive turns without delivering on it
while it has packets pending.

The per-channel accounting matters: the receiver polls continuously, so a
"globally newest packet" rule would forever prefer fresh polls and starve
the data channel — precisely the schedule Axiom 3 exists to exclude.
Delivering the most recent (rather than the oldest) packet is the weakest
useful reading of the axiom — the adversary may still starve any
individual packet forever, exactly as the model allows — yet it is enough
for Theorem 9's argument, which only needs *some* current-state packet to
get through.

One consequence worth knowing: the enforcer tracks every announced packet,
including ones the wrapped adversary silently dropped, so it may
*resurrect* a "lost" packet arbitrarily late and out of order.  This is
legal adversary behaviour in the paper's model (which the protocol
tolerates), but it silently upgrades a loss-only FIFO schedule into a
reordering one — experiments that rely on a FIFO premise (e.g. the
alternating-bit comparisons) must run with ``enforce_fairness=False`` and
an adversary that is fair by construction.

:class:`StallingAdversary` is the adversary that does nothing at all; under
the enforcer it becomes the minimal fair adversary and is the sharpest
liveness probe we have (experiment E5).
"""

from __future__ import annotations

from repro.adversary.base import PASS, Adversary, Deliver, Move, make_deliver
from repro.channel.channel import PacketInfo

__all__ = ["FairnessEnforcer", "StallingAdversary"]


class StallingAdversary(Adversary):
    """Never delivers, never crashes: pure denial of service.

    On its own this adversary violates Axiom 3 and the theorems promise
    nothing; wrapped in :class:`FairnessEnforcer` it yields the slowest
    schedule any fair adversary can impose.
    """

    def _decide(self) -> Move:
        return PASS


class FairnessEnforcer(Adversary):
    """Wrap an adversary so its schedule satisfies Axiom 3.

    Parameters
    ----------
    inner:
        The adversary whose moves are passed through when legal.
    patience:
        Maximum consecutive non-delivery turns tolerated while packets are
        pending before a delivery is forced.
    """

    def __init__(self, inner: Adversary, patience: int = 32) -> None:
        super().__init__()
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.inner = inner
        # Inner adversaries with the stock Adversary.next_move (all in-tree
        # ones) are driven through _decide directly, with their bookkeeping
        # folded into our own turn — one call frame instead of two on the
        # engine's hottest chain.
        self._inner_decide = (
            inner._decide if type(inner).next_move is Adversary.next_move else None
        )
        self._patience = patience
        # ChannelId -> {packet_id: PacketInfo}, insertion-ordered: announce
        # appends, forget is an O(1) pop by id (the pending set grows without
        # bound under loss, so a list scan here degrades quadratically).
        self._pending: dict = {}
        self._pending_count = 0  # total across channels (starvation gate)
        self._starvation: dict = {}  # ChannelId -> turns without delivery
        self.forced_deliveries = 0

    def bind(self, rng) -> None:
        super().bind(rng)
        self.inner.bind(rng.fork("inner-adversary"))

    def on_new_pkt(self, info: PacketInfo) -> None:
        pending = self._pending.get(info.channel)
        if pending is None:
            pending = self._pending[info.channel] = {}
            self._starvation[info.channel] = 0
        pending[info.packet_id] = info
        self._pending_count += 1
        self.inner.on_new_pkt(info)

    def _decide(self) -> Move:
        inner_decide = self._inner_decide
        if inner_decide is not None:
            self.inner._moves_made += 1
            move = inner_decide()
        else:
            move = self.inner.next_move()
        if type(move) is Deliver or isinstance(move, Deliver):
            self._starvation[move.channel] = 0
            self._forget(move.packet_id, move.channel)
            return move
        if not self._pending_count:
            # Nothing is pending anywhere: starvation cannot advance and
            # there is nothing to force.
            return move
        # Advance starvation on every channel that has pending traffic and
        # force the most-starved one once it exceeds the patience budget.
        starvation = self._starvation
        patience = self._patience
        most_starved = None
        most_count = 0
        for channel, pending in self._pending.items():
            if not pending:
                continue
            count = starvation[channel] + 1
            starvation[channel] = count
            if count >= patience and count > most_count:
                most_starved = channel
                most_count = count
        if most_starved is not None:
            # Newest announcement: the weakest fair choice.
            info = next(reversed(self._pending[most_starved].values()))
            self._forget(info.packet_id, info.channel)
            starvation[most_starved] = 0
            self.forced_deliveries += 1
            return make_deliver(info.channel, info.packet_id)
        return move

    def _forget(self, packet_id: int, channel) -> None:
        pending = self._pending.get(channel)
        if pending is not None and pending.pop(packet_id, None) is not None:
            self._pending_count -= 1

    def describe(self) -> str:
        return f"fair({self.inner.describe()}, patience={self._patience})"
