"""The arbitrary-state fault adversary of the self-stabilization setting.

Crash adversaries wipe a station back to the known blank configuration;
:class:`StateCorruptionAdversary` instead emits
:class:`~repro.adversary.base.Corrupt` moves that scramble live volatile
state in place.  Each move carries its own pinned scramble seed — drawn
from the adversary's tape, so the schedule is deterministic per run seed,
but recorded *on the move* so forensics artifacts replay the exact
post-fault configuration without re-running the adversary.

Delivery scheduling is delegated to a wrapped inner adversary (default:
:class:`~repro.adversary.random_faults.RandomFaultAdversary` over a clean
profile, i.e. reliable transport), mirroring how
:class:`~repro.resilience.faultplan.ScriptedAdversary` composes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.adversary.base import Adversary, Corrupt, Move
from repro.adversary.benign import ReliableAdversary
from repro.channel.channel import PacketInfo
from repro.core.random_source import RandomSource

__all__ = ["StateCorruptionAdversary"]

#: Seeds for per-move scramble tapes are drawn uniformly from this range.
_SEED_BITS = 63


class StateCorruptionAdversary(Adversary):
    """Corrupts station memory at configurable per-turn rates.

    Parameters
    ----------
    rate_t / rate_r:
        Per-turn probability of scrambling the transmitter / receiver.
    fields_t / fields_r:
        Optional field-name tuples restricting what each corruption may
        scramble (None = every volatile field; see the stations'
        ``CORRUPTIBLE_FIELDS``).
    inner:
        The delivery-scheduling adversary corruption rides on (default:
        a :class:`ReliableAdversary`).
    wipe:
        Emit wipe-mode corruptions instead — the crash-amnesia special
        case, used by the differential tests.
    """

    def __init__(
        self,
        rate_t: float = 0.0,
        rate_r: float = 0.0,
        fields_t: Optional[Tuple[str, ...]] = None,
        fields_r: Optional[Tuple[str, ...]] = None,
        inner: Optional[Adversary] = None,
        wipe: bool = False,
    ) -> None:
        super().__init__()
        for name, rate in (("rate_t", rate_t), ("rate_r", rate_r)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        self.rate_t = rate_t
        self.rate_r = rate_r
        self.fields_t = None if fields_t is None else tuple(fields_t)
        self.fields_r = None if fields_r is None else tuple(fields_r)
        self.wipe = wipe
        self._inner = inner if inner is not None else ReliableAdversary()
        self.corruptions_injected = 0

    @property
    def inner(self) -> Adversary:
        return self._inner

    def bind(self, rng: RandomSource) -> None:
        super().bind(rng)
        self._random = rng.random_float
        self._inner.bind(rng.fork("corruption-inner"))

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._inner.on_new_pkt(info)

    def _corrupt_move(self, station: str, fields: Optional[Tuple[str, ...]]) -> Corrupt:
        self.corruptions_injected += 1
        return Corrupt(
            station=station,
            fields=fields,
            seed=self.rng.randint(0, (1 << _SEED_BITS) - 1),
            wipe=self.wipe,
        )

    def _decide(self) -> Move:
        if self.rate_t and self._random() < self.rate_t:
            return self._corrupt_move("T", self.fields_t)
        if self.rate_r and self._random() < self.rate_r:
            return self._corrupt_move("R", self.fields_r)
        return self._inner.next_move()

    def describe(self) -> str:
        mode = "wipe" if self.wipe else "scramble"
        return (
            f"corruption(rate_t={self.rate_t}, rate_r={self.rate_r}, "
            f"mode={mode}, inner={self._inner.describe()})"
        )
