"""Crash-focused adversaries for experiment E6.

[LMF88] proved deterministic protocols cannot survive host crashes at all;
these adversaries hammer exactly that capability.  They deliver packets
semi-reliably (so the protocol can make progress between crashes) while
injecting crashes on various schedules.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.adversary.base import (
    CRASH_RECEIVER,
    CRASH_TRANSMITTER,
    PASS,
    Adversary,
    Move,
    make_deliver,
)
from repro.channel.channel import PacketInfo

__all__ = ["CrashStormAdversary", "ScheduledCrashAdversary"]


class CrashStormAdversary(Adversary):
    """Benign FIFO delivery punctuated by random crashes of both stations.

    Parameters
    ----------
    crash_rate:
        Per-turn probability of injecting a crash.
    target_transmitter / target_receiver:
        Which stations may be crashed (at least one must be True).
    max_crashes:
        Optional cap, letting liveness tests guarantee eventual quiescence.
    """

    def __init__(
        self,
        crash_rate: float = 0.01,
        target_transmitter: bool = True,
        target_receiver: bool = True,
        max_crashes: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not 0.0 <= crash_rate <= 1.0:
            raise ValueError("crash_rate must be a probability")
        if not (target_transmitter or target_receiver):
            raise ValueError("at least one station must be crashable")
        self._crash_rate = crash_rate
        self._target_t = target_transmitter
        self._target_r = target_receiver
        self._max_crashes = max_crashes
        self._pending: Deque[PacketInfo] = deque()
        self.crashes_injected = 0

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append(info)

    def _decide(self) -> Move:
        allowed = self._max_crashes is None or self.crashes_injected < self._max_crashes
        if allowed and self.rng.bernoulli(self._crash_rate):
            self.crashes_injected += 1
            if self._target_t and self._target_r:
                return CRASH_TRANSMITTER if self.rng.bernoulli(0.5) else CRASH_RECEIVER
            return CRASH_TRANSMITTER if self._target_t else CRASH_RECEIVER
        if self._pending:
            info = self._pending.popleft()
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def describe(self) -> str:
        return f"crash-storm(rate={self._crash_rate})"


class ScheduledCrashAdversary(Adversary):
    """Crashes at exact, predetermined turn numbers.

    Deterministic schedules make the crash-recovery unit tests precise:
    e.g. "crash the receiver on turn 12, mid-handshake" is reproducible
    independent of any random tape.

    Parameters
    ----------
    crash_turns:
        Iterable of ``(turn_number, station)`` pairs with station one of
        ``"T"`` or ``"R"``; turn numbers refer to this adversary's own move
        counter.
    """

    def __init__(self, crash_turns: Iterable) -> None:
        super().__init__()
        schedule: List = sorted(crash_turns, key=lambda pair: pair[0])
        for turn, station in schedule:
            if station not in ("T", "R"):
                raise ValueError(f"station must be 'T' or 'R', got {station!r}")
            if turn < 0:
                raise ValueError("turn numbers must be non-negative")
        self._schedule = schedule
        self._pending: Deque[PacketInfo] = deque()
        self.crashes_injected = 0

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append(info)

    def _decide(self) -> Move:
        if self._schedule and self.moves_made - 1 >= self._schedule[0][0]:
            __, station = self._schedule.pop(0)
            self.crashes_injected += 1
            return CRASH_TRANSMITTER if station == "T" else CRASH_RECEIVER
        if self._pending:
            info = self._pending.popleft()
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def describe(self) -> str:
        return f"scheduled-crash(remaining={len(self._schedule)})"
