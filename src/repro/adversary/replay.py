"""The Section 3 replay attack.

The paper motivates adaptive nonce extension with this scenario:

    "the system was running for a long time ... the adversary generates a
    crash^T event followed by a crash^R event.  Then the adversary starts
    sending old packets (m*, ρ*, τ*).  There is no limit on the number of
    packets that the adversary can duplicate. ... Eventually, the receiver
    delivers an old message, violating the no replay condition."

:class:`ReplayAttacker` stages exactly that schedule, obliviously (it sees
only identifiers and lengths, never ρ values):

* **Harvest phase** — behave like a reliable FIFO network while the higher
  layers exchange messages, archiving every data-packet identifier seen on
  ``C^{T→R}``.  Each archived packet embeds one historical receiver
  challenge ρ.
* **Crash** — ``crash^T`` then ``crash^R``, erasing both stations.
* **Replay phase** — cycle the archive into the receiver over and over,
  interleaved with RETRY so the receiver keeps running.

Against the non-adaptive single-nonce protocol (``FixedPolicy`` with a
small nonce), a large archive hits the receiver's fresh challenge with
probability approaching ``1 − (1 − 2^−b)^distinct``, and the checkers flag
a no-replay violation.  Against the real protocol, the receiver's error
counter forces an extension after ``bound(1)`` misses, after which no
archived packet can ever match (exact-length equality is required), so the
violation probability stays below ε.  Experiment E2 measures both sides.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List

from repro.adversary.base import (
    CRASH_RECEIVER,
    CRASH_TRANSMITTER,
    PASS,
    TRIGGER_RETRY,
    Adversary,
    Move,
    make_deliver,
)
from repro.channel.channel import PacketInfo
from repro.core.events import ChannelId

__all__ = ["ReplayAttacker", "AttackPhase"]


class AttackPhase(enum.Enum):
    """Where the staged attack currently is."""

    HARVEST = "harvest"
    CRASH_T = "crash-t"
    CRASH_R = "crash-r"
    REPLAY = "replay"
    DRAINED = "drained"


class ReplayAttacker(Adversary):
    """Stages the Section 3 crash-then-replay attack.

    Parameters
    ----------
    harvest_messages:
        How many data packets to archive before striking.  More archived
        packets mean more distinct historical ρ values, i.e. a stronger
        attack on non-adaptive protocols.
    replay_rounds:
        How many full passes over the archive to attempt.
    polls_between_replays:
        RETRY actions interleaved per replayed packet, keeping the
        receiver's poll loop alive (and, against the real protocol, letting
        the handshake for the *current* message still make progress).
    """

    def __init__(
        self,
        harvest_messages: int = 64,
        replay_rounds: int = 4,
        polls_between_replays: int = 0,
    ) -> None:
        super().__init__()
        if harvest_messages < 1:
            raise ValueError("harvest_messages must be >= 1")
        if replay_rounds < 1:
            raise ValueError("replay_rounds must be >= 1")
        self._harvest_target = harvest_messages
        self._replay_rounds = replay_rounds
        self._polls_between = polls_between_replays
        self._pending: Deque[PacketInfo] = deque()
        self._archive: List[PacketInfo] = []
        self._phase = AttackPhase.HARVEST
        self._replay_cursor = 0
        self._polls_owed = 0
        self.replays_sent = 0

    @property
    def phase(self) -> AttackPhase:
        """Current :class:`AttackPhase` (exposed for tests and examples)."""
        return self._phase

    @property
    def archive_size(self) -> int:
        """Number of harvested data-packet identifiers."""
        return len(self._archive)

    def on_new_pkt(self, info: PacketInfo) -> None:
        self._pending.append(info)
        if info.channel == ChannelId.T_TO_R:
            self._archive.append(info)

    def _decide(self) -> Move:
        if self._phase == AttackPhase.HARVEST:
            return self._harvest_move()
        if self._phase == AttackPhase.CRASH_T:
            self._phase = AttackPhase.CRASH_R
            return CRASH_TRANSMITTER
        if self._phase == AttackPhase.CRASH_R:
            self._phase = AttackPhase.REPLAY
            return CRASH_RECEIVER
        if self._phase == AttackPhase.REPLAY:
            return self._replay_move()
        return self._faithful_move()

    # -- phase behaviours -----------------------------------------------------------

    def _harvest_move(self) -> Move:
        if len(self._archive) >= self._harvest_target:
            self._phase = AttackPhase.CRASH_T
            # Fall through to the crash on the *next* move; this turn still
            # behaves innocently so the trap is sprung between deliveries.
        return self._faithful_move()

    def _replay_move(self) -> Move:
        if self._polls_owed > 0:
            self._polls_owed -= 1
            return TRIGGER_RETRY
        total_replays = self._replay_rounds * len(self._archive)
        if self._replay_cursor >= total_replays:
            self._phase = AttackPhase.DRAINED
            return self._faithful_move()
        info = self._archive[self._replay_cursor % len(self._archive)]
        self._replay_cursor += 1
        self._polls_owed = self._polls_between
        self.replays_sent += 1
        return make_deliver(info.channel, info.packet_id)

    def _faithful_move(self) -> Move:
        if self._pending:
            info = self._pending.popleft()
            return make_deliver(info.channel, info.packet_id)
        return PASS

    def describe(self) -> str:
        return (
            f"replay(harvest={self._harvest_target}, "
            f"rounds={self._replay_rounds}, phase={self._phase.value})"
        )
