"""Adversaries (Section 2.4): worst-case and randomized fault schedules."""

from repro.adversary.base import (
    Adversary,
    Corrupt,
    CrashReceiver,
    CrashTransmitter,
    Deliver,
    Move,
    Pass,
    TriggerRetry,
)
from repro.adversary.benign import DelayedFifoAdversary, ReliableAdversary
from repro.adversary.composite import MixtureAdversary, PhasedAdversary
from repro.adversary.corruption import StateCorruptionAdversary
from repro.adversary.crash import CrashStormAdversary, ScheduledCrashAdversary
from repro.adversary.fairness import FairnessEnforcer, StallingAdversary
from repro.adversary.random_faults import (
    DuplicateFloodAdversary,
    FaultProfile,
    RandomFaultAdversary,
    ReorderAdversary,
)
from repro.adversary.replay import AttackPhase, ReplayAttacker

__all__ = [
    "Adversary",
    "AttackPhase",
    "Corrupt",
    "CrashReceiver",
    "CrashStormAdversary",
    "CrashTransmitter",
    "DelayedFifoAdversary",
    "Deliver",
    "DuplicateFloodAdversary",
    "FairnessEnforcer",
    "FaultProfile",
    "MixtureAdversary",
    "Move",
    "Pass",
    "PhasedAdversary",
    "RandomFaultAdversary",
    "ReliableAdversary",
    "ReorderAdversary",
    "ReplayAttacker",
    "ScheduledCrashAdversary",
    "StallingAdversary",
    "StateCorruptionAdversary",
    "TriggerRetry",
]
