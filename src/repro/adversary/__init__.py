"""Adversaries (Section 2.4): worst-case and randomized fault schedules."""

from repro.adversary.base import (
    Adversary,
    CrashReceiver,
    CrashTransmitter,
    Deliver,
    Move,
    Pass,
    TriggerRetry,
)
from repro.adversary.benign import DelayedFifoAdversary, ReliableAdversary
from repro.adversary.composite import MixtureAdversary, PhasedAdversary
from repro.adversary.crash import CrashStormAdversary, ScheduledCrashAdversary
from repro.adversary.fairness import FairnessEnforcer, StallingAdversary
from repro.adversary.random_faults import (
    DuplicateFloodAdversary,
    FaultProfile,
    RandomFaultAdversary,
    ReorderAdversary,
)
from repro.adversary.replay import AttackPhase, ReplayAttacker

__all__ = [
    "Adversary",
    "AttackPhase",
    "CrashReceiver",
    "CrashStormAdversary",
    "CrashTransmitter",
    "DelayedFifoAdversary",
    "Deliver",
    "DuplicateFloodAdversary",
    "FairnessEnforcer",
    "FaultProfile",
    "MixtureAdversary",
    "Move",
    "Pass",
    "PhasedAdversary",
    "RandomFaultAdversary",
    "ReliableAdversary",
    "ReorderAdversary",
    "ReplayAttacker",
    "ScheduledCrashAdversary",
    "StallingAdversary",
    "TriggerRetry",
]
