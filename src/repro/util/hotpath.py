"""Trusted fast constructors for frozen value types on the hot path.

The simulator allocates a handful of frozen dataclass instances per step
(packets, events, adversary moves, channel announcements).  A frozen
dataclass ``__init__`` assigns every field through ``object.__setattr__``,
which costs roughly three times a plain slotted ``__init__`` — measurable
at campaign scale, where instance creation is a double-digit share of the
step budget.

:func:`trusted_constructor` generates a specialised allocator for a class:
it creates the instance with ``object.__new__`` and writes each field
through its slot descriptor (falling back to ``object.__setattr__`` where
the class has no slots, e.g. on Python 3.9).  Slot-descriptor writes
bypass the frozen ``__setattr__`` during construction only — the returned
instance is indistinguishable from one built normally, still immutable,
still equal to its ``__init__``-built twin.

The constructors are *trusted*: they skip ``__init__`` entirely, including
``__post_init__`` validation, so they must only be called with values that
already satisfy the class's invariants (the hot paths construct from
validated protocol state, never from external input).
"""

from __future__ import annotations

from typing import Callable

__all__ = ["trusted_constructor"]


def trusted_constructor(cls: type, *field_names: str) -> Callable:
    """Build a fast ``(*field_values) -> cls`` allocator for a frozen class.

    ``field_names`` must name every field, in positional order.  The
    generated function performs no validation whatsoever.
    """
    if not field_names:
        raise ValueError("trusted_constructor needs at least one field name")
    namespace = {
        "_new": object.__new__,
        "_cls": cls,
        "_osa": object.__setattr__,
    }
    args = ", ".join(field_names)
    lines = [f"def _make({args}):", "    self = _new(_cls)"]
    for position, name in enumerate(field_names):
        if not name.isidentifier():
            raise ValueError(f"field name {name!r} is not an identifier")
        descriptor = cls.__dict__.get(name)
        if descriptor is not None and hasattr(descriptor, "__set__"):
            namespace[f"_set{position}"] = descriptor.__set__
            lines.append(f"    _set{position}(self, {name})")
        else:
            lines.append(f"    _osa(self, {name!r}, {name})")
    lines.append("    return self")
    exec("\n".join(lines), namespace)  # same codegen idiom as dataclasses
    make = namespace["_make"]
    make.__name__ = f"make_{cls.__name__.lower()}"
    make.__qualname__ = make.__name__
    make.__doc__ = (
        f"Trusted fast constructor for {cls.__name__}; skips __init__ "
        f"validation — caller guarantees the invariants."
    )
    return make
