"""Plain-text table rendering for experiment output.

The benchmarks print the rows/series the paper's claims translate into
(EXPERIMENTS.md records them); a tiny fixed-width renderer keeps that
output dependency-free and diffable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object) -> str:
    """Render one table value compactly and deterministically."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a rule under the header.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    text_rows: List[List[str]] = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            " | ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)
