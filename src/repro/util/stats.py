"""Small statistics helpers for the Monte-Carlo experiments.

The experiments estimate per-message error probabilities that the theorems
bound by ε.  Point estimates of rare events are noisy, so every reported
rate carries a Wilson score interval, and comparisons against ε use the
interval's upper bound (a conservative "consistent with the theorem"
verdict).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "BernoulliEstimate",
    "wilson_interval",
    "summarize",
    "percentile",
    "SeriesSummary",
]


@dataclass(frozen=True)
class BernoulliEstimate:
    """Estimated probability with a Wilson confidence interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def point(self) -> float:
        """The maximum-likelihood estimate successes/trials."""
        return self.successes / self.trials if self.trials else 0.0

    def consistent_with_bound(self, bound: float) -> bool:
        """True iff the interval does not rule out a true rate ≤ ``bound``.

        This is the check the theorem-validation benches use: a measured
        violation rate is *consistent* with Theorem 3's ε bound when the
        lower end of the interval is at or below ε.
        """
        return self.low <= bound

    def __str__(self) -> str:
        return f"{self.point:.3g} [{self.low:.3g}, {self.high:.3g}] ({self.successes}/{self.trials})"


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> BernoulliEstimate:
    """Wilson score interval for a binomial proportion.

    Well behaved at zero successes (unlike the normal approximation), which
    matters here: the expected number of safety violations is usually 0.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return BernoulliEstimate(successes=0, trials=0, low=0.0, high=1.0)
    # Two-sided z for the given confidence; 1.959964 at 95%.
    z = _z_score(confidence)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    )
    return BernoulliEstimate(
        successes=successes,
        trials=trials,
        low=max(0.0, center - margin),
        high=min(1.0, center + margin),
    )


def _z_score(confidence: float) -> float:
    """Inverse normal CDF at (1+confidence)/2 via Acklam's approximation."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    p = (1.0 + confidence) / 2.0
    # Peter Acklam's rational approximation; |relative error| < 1.15e-9.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-ish summary of a numeric series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3g} min={self.minimum:.3g} "
            f"p50={self.p50:.3g} p95={self.p95:.3g} max={self.maximum:.3g}"
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of a numeric sequence (q in [0, 1]).

    Empty input yields 0.0 — the degenerate answer campaign tables want
    when no run produced the measured quantity.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    if n == 1:
        return ordered[0]
    pos = q * (n - 1)
    lower = int(math.floor(pos))
    upper = min(lower + 1, n - 1)
    frac = pos - lower
    return ordered[lower] * (1 - frac) + ordered[upper] * frac


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Summary statistics of a non-empty numeric sequence."""
    if not values:
        return SeriesSummary(count=0, mean=0.0, minimum=0.0, maximum=0.0, p50=0.0, p95=0.0)
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    return SeriesSummary(
        count=n,
        mean=sum(ordered) / n,
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
    )
