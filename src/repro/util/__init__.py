"""Shared utilities: statistics and table rendering."""

from repro.util.stats import BernoulliEstimate, SeriesSummary, summarize, wilson_interval
from repro.util.tables import format_cell, render_table

__all__ = [
    "BernoulliEstimate",
    "SeriesSummary",
    "format_cell",
    "render_table",
    "summarize",
    "wilson_interval",
]
