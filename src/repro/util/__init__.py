"""Shared utilities: statistics, table rendering, hot-path constructors."""

from repro.util.hotpath import trusted_constructor
from repro.util.stats import BernoulliEstimate, SeriesSummary, summarize, wilson_interval
from repro.util.tables import format_cell, render_table

__all__ = [
    "BernoulliEstimate",
    "SeriesSummary",
    "format_cell",
    "render_table",
    "summarize",
    "trusted_constructor",
    "wilson_interval",
]
