"""End-to-end Section 2.6 checking for the multi-hop relay fabric.

The per-link monitors in :mod:`repro.checkers.streaming` verify each hop's
TM/RM instance in isolation; Dolev-Spielrein's observation — delivery
claims must be checked end to end, not per hop — is what this module
implements for the source→destination stream as a whole.  The fabric
records a *network-scope* execution (one ``send_msg`` per submitted
message, one ``receive_msg`` per exactly-once delivery at the destination,
one ``OK`` per cumulative acknowledgement reaching the source) and an
:class:`EndToEndMonitor` evaluates the Section 2.6 conditions over it.

Two conditions need network-scope state machines of their own:

* **order** — the per-link :class:`~repro.checkers.streaming.OrderMonitor`
  is Axiom-1-shaped (a single message in flight); the fabric pipelines a
  window of messages, so :class:`SequentialOrderMonitor` checks the
  stronger FIFO condition the resequencer guarantees: the k-th delivery
  carries the k-th submission.
* **no-replay** — the per-link monitor's single-pending resolution model
  mis-attributes cumulative acks under pipelining.
  :class:`EndToEndNoReplayMonitor` exploits that fabric acks are
  cumulative (the k-th OK resolves the k-th submission) and flags any
  delivery of an already-acknowledged message.

Causality, no-duplication and liveness reuse the per-link state machines
unchanged — their conditions are scope-free.  Note no-duplication's crash
boundary never fires here: relay crashes are *not* destination crashes, so
end-to-end delivery must be exactly-once across them, which is precisely
what relay amnesia threatens and the fabric's dedup layer restores.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.checkers.report import CheckReport, SafetyReport, Violation
from repro.checkers.streaming import (
    CausalityMonitor,
    Handler,
    LivenessMonitor,
    NoDuplicationMonitor,
    StreamMonitor,
    _build_table,
    _resolve_subclass,
)
from repro.core.events import Event, Ok, ReceiveMsg, SendMsg

__all__ = [
    "SequentialOrderMonitor",
    "EndToEndNoReplayMonitor",
    "EndToEndMonitor",
]


class SequentialOrderMonitor(StreamMonitor):
    """Network-scope order: the k-th delivery carries the k-th submission.

    The fabric's resequencer promises FIFO exactly-once delivery, which is
    strictly stronger than the per-link order condition — and checkable
    under pipelining, where the per-link monitor's one-in-flight model
    breaks down.  Reports under the ``order`` condition name so
    :class:`~repro.checkers.report.SafetyReport` slots line up.
    """

    condition = "order"

    def __init__(self) -> None:
        self._sent: List[bytes] = []
        self._next_delivery = 0
        self._trials = 0
        self._violations: List[Violation] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {SendMsg: self._on_send, ReceiveMsg: self._on_receive}

    def _on_send(self, index: int, event: Event) -> None:
        self._sent.append(event.message)

    def _on_receive(self, index: int, event: Event) -> None:
        self._trials += 1
        position = self._next_delivery
        expected = self._sent[position] if position < len(self._sent) else None
        if event.message != expected:
            self._violations.append(
                Violation(
                    condition="order",
                    event_index=index,
                    detail=(
                        f"delivery #{position} carried {event.message!r}, "
                        f"expected submission #{position} ({expected!r})"
                    ),
                )
            )
        else:
            self._next_delivery += 1

    def report(self) -> CheckReport:
        return CheckReport(
            condition="order", trials=self._trials, violations=list(self._violations)
        )

    def reset(self) -> None:
        self._sent.clear()
        self._next_delivery = 0
        self._trials = 0
        self._violations.clear()


class EndToEndNoReplayMonitor(StreamMonitor):
    """Theorem 7 at network scope: an acknowledged message never resurfaces.

    Fabric acknowledgements are cumulative, so the k-th ``OK`` resolves the
    k-th submitted message even though the event itself carries no payload.
    A delivery of a message whose resolution already happened is a replay —
    the stream moved on, yet a stale copy (a relay queue ghost, a
    retransmission racing its own ack) reached the destination.
    """

    condition = "no-replay"

    def __init__(self) -> None:
        self._sent: List[bytes] = []
        self._ok_count = 0
        self._resolved_at: Dict[bytes, int] = {}
        self._trials = 0
        self._violations: List[Violation] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {
            SendMsg: self._on_send,
            Ok: self._on_ok,
            ReceiveMsg: self._on_receive,
        }

    def _on_send(self, index: int, event: Event) -> None:
        self._sent.append(event.message)

    def _on_ok(self, index: int, event: Event) -> None:
        if self._ok_count < len(self._sent):
            self._resolved_at[self._sent[self._ok_count]] = index
            self._ok_count += 1

    def _on_receive(self, index: int, event: Event) -> None:
        self._trials += 1
        resolved_at = self._resolved_at.get(event.message)
        if resolved_at is not None and resolved_at < index:
            self._violations.append(
                Violation(
                    condition="no-replay",
                    event_index=index,
                    detail=(
                        f"receive_msg({event.message!r}) replayed: already "
                        f"acknowledged end-to-end at {resolved_at}"
                    ),
                )
            )

    def report(self) -> CheckReport:
        return CheckReport(
            condition="no-replay",
            trials=self._trials,
            violations=list(self._violations),
        )

    def reset(self) -> None:
        self._sent.clear()
        self._ok_count = 0
        self._resolved_at.clear()
        self._trials = 0
        self._violations.clear()


class EndToEndMonitor:
    """One-pass Section 2.6 evaluation of a fabric's end-to-end stream.

    Subscribe it to the fabric's network-scope trace exactly like a
    :class:`~repro.checkers.streaming.StreamingChecks`::

        monitor = EndToEndMonitor()
        trace.subscribe(monitor.observe, types=monitor.observed_types)

    :meth:`safety_report` yields the standard four-condition
    :class:`SafetyReport` (so campaign classification, forensics and the
    shrinker work unchanged on fabric runs) and :meth:`verdict` collapses
    it to the ``CLEAN``/``VIOLATED`` summary the acceptance scenarios
    assert on.
    """

    def __init__(self) -> None:
        self.causality = CausalityMonitor()
        self.order = SequentialOrderMonitor()
        self.no_duplication = NoDuplicationMonitor()
        self.no_replay = EndToEndNoReplayMonitor()
        self.liveness = LivenessMonitor()
        self.monitors: Tuple[StreamMonitor, ...] = (
            self.causality,
            self.order,
            self.no_duplication,
            self.no_replay,
            self.liveness,
        )
        self._table = _build_table(self.monitors)
        self.events_seen = 0

    @property
    def observed_types(self) -> Tuple[Type[Event], ...]:
        """Event types at least one monitor handles (for trace interest)."""
        return tuple(self._table)

    def observe(self, index: int, event: Event) -> None:
        """Consume the next event of the end-to-end stream."""
        self.events_seen += 1
        table = self._table
        handlers = table.get(type(event))
        if handlers is None:
            handlers = _resolve_subclass(table, type(event))
        for handler in handlers:
            handler(index, event)

    def reset(self) -> None:
        """Reset every monitor in place for a fresh run."""
        for monitor in self.monitors:
            monitor.reset()
        self.events_seen = 0

    def safety_report(self) -> SafetyReport:
        """The four end-to-end safety verdicts over everything observed."""
        return SafetyReport(
            causality=self.causality.report(),
            order=self.order.report(),
            no_duplication=self.no_duplication.report(),
            no_replay=self.no_replay.report(),
        )

    def liveness_report(self, run_completed: bool) -> CheckReport:
        """The end-to-end liveness verdict."""
        return self.liveness.report(run_completed=run_completed)

    def verdict(self, run_completed: bool = True) -> str:
        """``"CLEAN"`` iff every condition (safety + liveness) holds."""
        safety = self.safety_report()
        liveness = self.liveness_report(run_completed=run_completed)
        clean = safety.passed and liveness.passed
        return "CLEAN" if clean else "VIOLATED"
