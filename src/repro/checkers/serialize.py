"""Trace serialization: archive executions as JSON lines.

Failing executions are the currency of protocol debugging — a trace that
violated a condition under some adversary schedule should be storable,
diffable and replayable through the checkers later.  The format is one
JSON object per event, self-describing via a ``type`` field; messages are
hex-encoded so arbitrary byte payloads survive.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List

from repro.checkers.trace import Trace
from repro.core.events import (
    ChannelId,
    Corruption,
    CrashR,
    CrashT,
    Event,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
)
from repro.core.exceptions import CodecError

__all__ = ["event_to_dict", "event_from_dict", "dump_trace", "load_trace"]


def event_to_dict(event: Event) -> dict:
    """Encode one event as a JSON-safe dict."""
    if isinstance(event, SendMsg):
        return {"type": "send_msg", "message": event.message.hex()}
    if isinstance(event, ReceiveMsg):
        return {"type": "receive_msg", "message": event.message.hex()}
    if isinstance(event, Ok):
        return {"type": "ok"}
    if isinstance(event, CrashT):
        return {"type": "crash_t"}
    if isinstance(event, CrashR):
        return {"type": "crash_r"}
    if isinstance(event, Retry):
        return {"type": "retry"}
    if isinstance(event, Corruption):
        return {
            "type": "corruption",
            "station": event.station,
            "fields": list(event.fields),
            "seed": event.seed,
        }
    if isinstance(event, PktSent):
        return {
            "type": "pkt_sent",
            "channel": event.channel.value,
            "packet_id": event.packet_id,
            "length_bits": event.length_bits,
        }
    if isinstance(event, PktDelivered):
        return {
            "type": "pkt_delivered",
            "channel": event.channel.value,
            "packet_id": event.packet_id,
        }
    raise CodecError(f"unserializable event type {type(event).__name__}")


def event_from_dict(data: dict) -> Event:
    """Decode one event from its dict form."""
    try:
        kind = data["type"]
    except (KeyError, TypeError):
        raise CodecError(f"malformed event record: {data!r}") from None
    if kind == "send_msg":
        return SendMsg(message=bytes.fromhex(data["message"]))
    if kind == "receive_msg":
        return ReceiveMsg(message=bytes.fromhex(data["message"]))
    if kind == "ok":
        return Ok()
    if kind == "crash_t":
        return CrashT()
    if kind == "crash_r":
        return CrashR()
    if kind == "retry":
        return Retry()
    if kind == "corruption":
        return Corruption(
            station=data["station"],
            fields=tuple(data["fields"]),
            seed=data["seed"],
        )
    if kind == "pkt_sent":
        return PktSent(
            channel=ChannelId(data["channel"]),
            packet_id=data["packet_id"],
            length_bits=data["length_bits"],
        )
    if kind == "pkt_delivered":
        return PktDelivered(
            channel=ChannelId(data["channel"]), packet_id=data["packet_id"]
        )
    raise CodecError(f"unknown event type {kind!r}")


def dump_trace(trace: Trace, stream: IO[str]) -> None:
    """Write a trace's retained events as JSON lines (one event per line).

    Under ``retain="full"`` this is the whole execution in the classic
    format.  Under ``retain="tail"`` only the forensic ring buffer is
    available; each line then additionally carries the event's ``index``
    in the original execution (extra keys are ignored on load, so
    :func:`load_trace` reads both forms).
    """
    if trace.retention == "full":
        for event in trace:
            stream.write(json.dumps(event_to_dict(event), sort_keys=True))
            stream.write("\n")
        return
    for index, event in trace.tail_events():
        record = event_to_dict(event)
        record["index"] = index
        stream.write(json.dumps(record, sort_keys=True))
        stream.write("\n")


def load_trace(stream: IO[str]) -> Trace:
    """Read a trace written by :func:`dump_trace`."""
    events: List[Event] = []
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise CodecError(f"line {line_number}: invalid JSON: {error}") from None
        events.append(event_from_dict(data))
    return Trace(events)
