"""Self-stabilization monitoring: convergence verdicts after state corruption.

Crash-amnesia resets a station to a *known* blank, so the Section 2.6
conditions hold across it unconditionally.  An arbitrary-state fault (the
self-stabilization literature's adversary) instead scrambles live volatile
state — nonces, counters, pending-message bookkeeping — and the protocol is
only expected to *reconverge*: after a bounded amount of fault-free
traffic, the safety conditions must hold again.

:class:`StabilizationMonitor` rides a :class:`~repro.checkers.streaming.
StreamingChecks` suite and implements that verdict discipline:

* each :class:`~repro.core.events.Corruption` event opens (or extends) a
  *probation episode*: the monitor snapshots every safety monitor's
  violation list and starts counting;
* progress events (OK / receive_msg / crashes) grow a *clean streak*; any
  new safety violation resets it — the fault is still echoing;
* once the streak reaches ``window``, the episode *converges*: violations
  accrued during probation are scrubbed (they are the corruption's echo,
  not protocol bugs) and one :class:`ConvergenceRecord` is emitted per
  corruption in the episode, measuring events, datagrams and wall-clock
  time from that corruption to convergence;
* an episode still open when the run ends means the protocol never
  reconverged: the probation violations *stand*, and :meth:`report` adds a
  stabilization violation per unresolved corruption.

The scrub-on-convergence rule is what "suspend Section 2.6 accounting
after each corruption" means operationally: verdicts are only charged for
behaviour outside probation windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.checkers.report import CheckReport, Violation
from repro.checkers.streaming import PROGRESS_EVENTS, Handler, StreamMonitor
from repro.core.events import (
    Corruption,
    Event,
    PktDelivered,
    PktSent,
    SendMsg,
)

__all__ = [
    "ConvergenceRecord",
    "StabilizationReport",
    "StabilizationMonitor",
]


@dataclass(frozen=True)
class ConvergenceRecord:
    """How long one corruption took to stabilize.

    ``events`` counts observed execution events and ``datagrams`` wire
    packets (``PktSent``) between the corruption and the moment the clean
    streak closed; ``wall_seconds`` is the host-clock span (informational —
    it is not part of any replay fingerprint).
    """

    station: str
    fields: Tuple[str, ...]
    seed: int
    events: int
    datagrams: int
    wall_seconds: float

    def to_wire(self) -> tuple:
        return (
            self.station,
            tuple(self.fields),
            self.seed,
            self.events,
            self.datagrams,
            self.wall_seconds,
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "ConvergenceRecord":
        return cls(
            station=wire[0],
            fields=tuple(wire[1]),
            seed=wire[2],
            events=wire[3],
            datagrams=wire[4],
            wall_seconds=wire[5],
        )


@dataclass(frozen=True)
class StabilizationReport:
    """Aggregate stabilization verdict for one run."""

    corruptions: int
    converged: int
    window: int
    records: Tuple[ConvergenceRecord, ...] = ()

    @property
    def pending(self) -> int:
        """Corruptions whose probation episode never closed."""
        return self.corruptions - self.converged

    @property
    def stabilized(self) -> bool:
        """True iff every injected corruption reconverged within the run."""
        return self.corruptions > 0 and self.converged == self.corruptions

    def to_wire(self) -> tuple:
        return (
            self.corruptions,
            self.converged,
            self.window,
            tuple(record.to_wire() for record in self.records),
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "StabilizationReport":
        return cls(
            corruptions=wire[0],
            converged=wire[1],
            window=wire[2],
            records=tuple(ConvergenceRecord.from_wire(r) for r in wire[3]),
        )


class _Episode:
    """One corruption awaiting convergence (internal bookkeeping)."""

    __slots__ = (
        "station",
        "fields",
        "seed",
        "index",
        "events_at",
        "datagrams_at",
        "started",
    )

    def __init__(
        self,
        station: str,
        fields: Tuple[str, ...],
        seed: int,
        index: int,
        events_at: int,
        datagrams_at: int,
        started: float,
    ) -> None:
        self.station = station
        self.fields = fields
        self.seed = seed
        self.index = index
        self.events_at = events_at
        self.datagrams_at = datagrams_at
        self.started = started


class StabilizationMonitor(StreamMonitor):
    """Convergence-time accounting over a set of safety monitors.

    ``scrub`` is the safety monitors whose violation lists this monitor
    snapshots and (on convergence) truncates — same-package coupling to
    their ``_violations`` lists, pinned down by the checker tests.
    """

    condition = "stabilization"

    def __init__(self, scrub: Sequence[StreamMonitor], window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._scrub = tuple(scrub)
        self._window = window
        self._records: List[ConvergenceRecord] = []
        self._open: List[_Episode] = []
        self._marks: Optional[Tuple[int, ...]] = None
        self._streak = 0
        self._baseline_total = 0
        self._corruptions = 0
        self._events = 0
        self._datagrams = 0

    # -- dispatch ---------------------------------------------------------------

    def handlers(self) -> Dict[Type[Event], Handler]:
        # Concrete types only: StreamingChecks dispatches on type(event)
        # with subclass resolution only on a table miss, so a base-class
        # registration would be shadowed by every directly-registered type.
        table: Dict[Type[Event], Handler] = {
            Corruption: self._on_corruption,
            SendMsg: self._on_event,
            PktSent: self._on_datagram,
            PktDelivered: self._on_delivered,
        }
        for progress in PROGRESS_EVENTS:
            table[progress] = self._on_progress
        return table

    def _violation_total(self) -> int:
        total = 0
        for monitor in self._scrub:
            total += len(monitor._violations)
        return total

    def _on_event(self, index: int, event: Event) -> None:
        self._events += 1

    def _on_datagram(self, index: int, event: Event) -> None:
        self._events += 1
        self._datagrams += 1

    def _on_delivered(self, index: int, event: Event) -> None:
        self._events += 1

    def _on_corruption(self, index: int, event: Event) -> None:
        self._events += 1
        self._corruptions += 1
        if not self._open:
            # Snapshot the pre-fault verdicts; convergence scrubs back to
            # exactly this point.  Overlapping corruptions share the marks
            # of the episode's first corruption.
            self._marks = tuple(len(m._violations) for m in self._scrub)
        self._open.append(
            _Episode(
                station=event.station,
                fields=tuple(event.fields),
                seed=event.seed,
                index=index,
                events_at=self._events,
                datagrams_at=self._datagrams,
                started=perf_counter(),
            )
        )
        self._streak = 0
        self._baseline_total = self._violation_total()

    def _on_progress(self, index: int, event: Event) -> None:
        self._events += 1
        if not self._open:
            return
        # Safety handlers for this same event ran before us (suite order),
        # so the total already includes anything this event flagged.
        total = self._violation_total()
        if total != self._baseline_total:
            self._baseline_total = total
            self._streak = 0
            return
        self._streak += 1
        if self._streak >= self._window:
            self._converge()

    def _converge(self) -> None:
        ended = perf_counter()
        assert self._marks is not None
        for monitor, mark in zip(self._scrub, self._marks):
            del monitor._violations[mark:]
        for episode in self._open:
            self._records.append(
                ConvergenceRecord(
                    station=episode.station,
                    fields=episode.fields,
                    seed=episode.seed,
                    events=self._events - episode.events_at,
                    datagrams=self._datagrams - episode.datagrams_at,
                    wall_seconds=ended - episode.started,
                )
            )
        self._open.clear()
        self._marks = None
        self._streak = 0

    def finalize(self, run_completed: bool) -> None:
        """Close the books at end of run.

        A run that drains its whole workload reaches a final verdict point:
        every message after the corruption was handled, so an open probation
        episode closes (the clean streak was simply cut short by the end of
        traffic, not by a violation).  A *truncated* run — step budget, give
        up, live-lock — leaves its episodes open: the protocol never
        demonstrated reconvergence, and the probation violations stand.
        """
        if run_completed and self._open:
            self._converge()

    # -- verdicts ---------------------------------------------------------------

    def summary(self) -> StabilizationReport:
        return StabilizationReport(
            corruptions=self._corruptions,
            converged=len(self._records),
            window=self._window,
            records=tuple(self._records),
        )

    def report(self) -> CheckReport:
        violations: List[Violation] = []
        for episode in self._open:
            violations.append(
                Violation(
                    condition="stabilization",
                    event_index=episode.index,
                    detail=(
                        f"corruption of {episode.station} "
                        f"(fields: {', '.join(episode.fields) or 'none'}) never "
                        f"reconverged: needed {self._window} clean progress "
                        f"events, saw {self._streak}"
                    ),
                )
            )
        return CheckReport(
            condition="stabilization",
            trials=self._corruptions,
            violations=violations,
        )

    def reset(self) -> None:
        self._records = []
        self._open.clear()
        self._marks = None
        self._streak = 0
        self._baseline_total = 0
        self._corruptions = 0
        self._events = 0
        self._datagrams = 0
