"""Correctness-condition checkers for Section 2.6, evaluated on traces.

Two evaluation styles over one set of condition state machines:

* **batch** — ``check_*`` functions that scan a finished :class:`Trace`;
* **streaming** — :class:`StreamingChecks` and the individual monitors in
  :mod:`repro.checkers.streaming`, which consume events online as the
  simulator records them (O(1) amortized per event, bounded state).

A third driver, :class:`LiveEventLog` (:mod:`repro.checkers.live`), feeds
the same streaming monitors from *live* deployments — real sockets and
wall-clock crashes (:mod:`repro.live`) — so live traces get the identical
Section 2.6 verdicts.

Both report through the same :class:`CheckReport`/:class:`SafetyReport`
types and produce identical verdicts by construction.
"""

from repro.checkers.axioms import check_axiom1, check_axiom2, check_axiom3_bounded
from repro.checkers.endtoend import (
    EndToEndMonitor,
    EndToEndNoReplayMonitor,
    SequentialOrderMonitor,
)
from repro.checkers.live import LiveEventLog
from repro.checkers.liveness import LivenessStats, check_liveness, progress_gaps
from repro.checkers.report import CheckReport, SafetyReport, Violation
from repro.checkers.serialize import (
    dump_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
)
from repro.checkers.safety import (
    check_all_safety,
    check_causality,
    check_no_duplication,
    check_no_replay,
    check_order,
)
from repro.checkers.stabilization import (
    ConvergenceRecord,
    StabilizationMonitor,
    StabilizationReport,
)
from repro.checkers.streaming import (
    Axiom1Monitor,
    Axiom2Monitor,
    Axiom3BoundedMonitor,
    CausalityMonitor,
    LivenessMonitor,
    NoDuplicationMonitor,
    NoReplayMonitor,
    OrderMonitor,
    ProgressGapMonitor,
    StreamingChecks,
    StreamMonitor,
    feed,
)
from repro.checkers.trace import EventsView, MessageOutcome, Trace

__all__ = [
    "Axiom1Monitor",
    "Axiom2Monitor",
    "Axiom3BoundedMonitor",
    "CausalityMonitor",
    "CheckReport",
    "ConvergenceRecord",
    "EndToEndMonitor",
    "EndToEndNoReplayMonitor",
    "EventsView",
    "LiveEventLog",
    "LivenessMonitor",
    "LivenessStats",
    "MessageOutcome",
    "NoDuplicationMonitor",
    "NoReplayMonitor",
    "OrderMonitor",
    "ProgressGapMonitor",
    "SafetyReport",
    "SequentialOrderMonitor",
    "StabilizationMonitor",
    "StabilizationReport",
    "StreamMonitor",
    "StreamingChecks",
    "Trace",
    "Violation",
    "check_all_safety",
    "check_axiom1",
    "check_axiom2",
    "check_axiom3_bounded",
    "check_causality",
    "check_liveness",
    "check_no_duplication",
    "check_no_replay",
    "check_order",
    "dump_trace",
    "event_from_dict",
    "event_to_dict",
    "load_trace",
    "progress_gaps",
]
