"""Correctness-condition checkers for Section 2.6, evaluated on traces."""

from repro.checkers.axioms import check_axiom1, check_axiom2, check_axiom3_bounded
from repro.checkers.liveness import LivenessStats, check_liveness, progress_gaps
from repro.checkers.serialize import (
    dump_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
)
from repro.checkers.safety import (
    CheckReport,
    SafetyReport,
    Violation,
    check_all_safety,
    check_causality,
    check_no_duplication,
    check_no_replay,
    check_order,
)
from repro.checkers.trace import MessageOutcome, Trace

__all__ = [
    "CheckReport",
    "LivenessStats",
    "MessageOutcome",
    "SafetyReport",
    "Trace",
    "Violation",
    "check_all_safety",
    "check_axiom1",
    "check_axiom2",
    "check_axiom3_bounded",
    "check_causality",
    "check_liveness",
    "check_no_duplication",
    "check_no_replay",
    "check_order",
    "dump_trace",
    "event_from_dict",
    "event_to_dict",
    "load_trace",
    "progress_gaps",
]
