"""Recorded executions of ``D(A, ADV)``.

A :class:`Trace` is the concrete form of the paper's *execution*: the
ordered sequence of external actions, as defined in Section 2 via the I/O
automata model.  The checkers evaluate the Section 2.6 correctness
conditions on traces, and the metrics pipeline summarises them, so the
trace API provides exactly the projections those consumers need (message
events, crash boundaries, per-message segments).

The trace is also the simulator's hottest data structure, so recording is
engineered accordingly:

* ``append`` maintains **per-type counters and index lists** online, so
  ``count``/``indexes_of``/``of_type`` answer from the indexes instead of
  rescanning the event list, and ``message_outcomes`` is a memoized single
  pass (invalidated by the next append);
* a **retention mode** (``retain="full" | "tail" | "none"``) bounds what
  the trace keeps: ``"full"`` stores every event (the default, and what the
  batch checkers need), ``"tail"`` keeps only a fixed-size forensic ring
  buffer of the most recent events, and ``"none"`` keeps counters only.
  Campaigns use ``"none"``/``"tail"`` with the streaming checkers to run
  verdict-only at a fraction of the memory;
* **observers** (:meth:`subscribe`) receive each event at append time with
  an optional type filter — this is how :class:`StreamingChecks` rides the
  recording pass — and :meth:`wants`/:meth:`tally` let the recording layer
  skip allocating event objects nobody would ever see.

Queries that need discarded events raise
:class:`~repro.core.exceptions.TraceRetentionError` rather than silently
answering from partial data.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    Union,
)

from repro.core.events import (
    CrashR,
    CrashT,
    Event,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
)
from repro.core.exceptions import ConfigurationError, TraceRetentionError

__all__ = ["Trace", "MessageOutcome", "EventsView", "RETENTION_MODES"]

E = TypeVar("E", bound=Event)

Observer = Callable[[int, Event], None]

#: The valid ``retain=`` arguments, in decreasing order of memory appetite.
RETENTION_MODES = ("full", "tail", "none")


@dataclass(frozen=True)
class MessageOutcome:
    """What ultimately happened to one ``send_msg`` (for metrics & checks).

    ``resolution`` is one of ``"ok"`` (an OK followed), ``"crash"``
    (a crash^T intervened before any OK), or ``"pending"`` (the execution
    ended mid-handshake).
    """

    message: bytes
    send_index: int
    resolution: str
    resolution_index: Optional[int]
    delivered_before_resolution: bool


class EventsView(Sequence):
    """Read-only sequence view over a trace's retained events.

    Supports everything a caller legitimately did with the old raw list —
    ``len``, indexing/slicing, iteration, ``==`` against lists/tuples —
    but no mutation, so the trace's online counters can never be
    desynchronised from the event storage.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Sequence[Event]) -> None:
        self._events = events

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self._events[index])
        return self._events[index]

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventsView):
            return list(self._events) == list(other._events)
        if isinstance(other, (list, tuple)):
            return len(self._events) == len(other) and all(
                mine == theirs for mine, theirs in zip(self._events, other)
            )
        return NotImplemented

    __hash__ = None  # view over mutable storage

    def __repr__(self) -> str:
        return f"EventsView({list(self._events)!r})"


class Trace:
    """An append-only execution record with query helpers."""

    def __init__(
        self,
        events: Optional[Sequence[Event]] = None,
        retain: str = "full",
        tail_size: int = 256,
    ) -> None:
        if retain not in RETENTION_MODES:
            raise ConfigurationError(
                f"retain must be one of {RETENTION_MODES}, got {retain!r}"
            )
        if retain == "tail" and tail_size < 1:
            raise ConfigurationError("tail_size must be >= 1")
        self._retain = retain
        self._is_full = retain == "full"
        self._events: List[Event] = []
        self._tail: Optional[Deque[Tuple[int, Event]]] = (
            deque(maxlen=tail_size) if retain == "tail" else None
        )
        self._total = 0
        self._dropped = 0
        # Per-concrete-type counters (all modes) and index lists (full only).
        self._counts: Dict[type, int] = {}
        self._indexes: Dict[type, List[int]] = {}
        # Caches: query type -> matching concrete types (cleared when a new
        # concrete type first appears), concrete type -> observer tuple
        # (cleared on subscribe), and the memoized message_outcomes result
        # (cleared on every append).
        self._query_cache: Dict[type, Tuple[type, ...]] = {}
        self._observers: List[Tuple[Observer, Optional[Tuple[Type[Event], ...]]]] = []
        self._observer_cache: Dict[type, Tuple[Observer, ...]] = {}
        self._outcomes_cache: Optional[Tuple[MessageOutcome, ...]] = None
        if retain == "none":
            # Counters-only recording has no storage branches and nothing to
            # invalidate; shadow append with the lean path.
            self.append = self._append_none  # type: ignore[method-assign]
        if events:
            for event in events:
                self.append(event)

    # -- recording -------------------------------------------------------------

    def append(self, event: Event) -> None:
        """Record the next event of the execution (O(1) amortized)."""
        if not isinstance(event, Event):
            raise TypeError(f"traces hold Event instances, got {type(event).__name__}")
        index = self._total
        self._total = index + 1
        cls = type(event)
        counts = self._counts
        if cls in counts:
            counts[cls] += 1
        else:
            counts[cls] = 1
            self._query_cache.clear()
        if self._is_full:
            self._events.append(event)
            indexes = self._indexes.get(cls)
            if indexes is None:
                self._indexes[cls] = [index]
            else:
                indexes.append(index)
        elif self._tail is not None:
            self._tail.append((index, event))
            if len(self._tail) == self._tail.maxlen:
                self._dropped = index + 1 - len(self._tail)
        else:
            self._dropped = index + 1
        self._outcomes_cache = None
        observers = self._observer_cache.get(cls)
        if observers is None:
            observers = self._resolve_observers(cls)
        for observer in observers:
            observer(index, event)

    def _append_none(self, event: Event) -> None:
        """:meth:`append` specialised for ``retain="none"``: count + notify."""
        if not isinstance(event, Event):
            raise TypeError(f"traces hold Event instances, got {type(event).__name__}")
        index = self._total
        self._total = index + 1
        cls = type(event)
        counts = self._counts
        if cls in counts:
            counts[cls] += 1
        else:
            counts[cls] = 1
            self._query_cache.clear()
        self._dropped = index + 1
        observers = self._observer_cache.get(cls)
        if observers is None:
            observers = self._resolve_observers(cls)
        for observer in observers:
            observer(index, event)

    def reset(self) -> None:
        """Forget the recorded execution, keeping mode and observers.

        After a reset the trace is observationally identical to a freshly
        constructed one with the same ``retain``/``tail_size``, except that
        existing subscriptions survive — that is the point: a simulator
        session re-records into the same trace with the same streaming
        checkers attached, skipping the rebuild of the observer wiring.
        """
        self._events.clear()
        if self._tail is not None:
            self._tail.clear()
        self._total = 0
        self._dropped = 0
        self._counts.clear()
        self._indexes.clear()
        # count()/indexes_of() answer from _counts keys; stale cached type
        # lists would index into cleared dicts.
        self._query_cache.clear()
        self._outcomes_cache = None

    def tally(self, event_type: Type[Event], count: int = 1) -> None:
        """Count ``count`` occurrences of ``event_type`` without storing them.

        Lets the recording layer skip allocating event objects that no
        retention mode or observer would ever see (check :meth:`wants`
        first).  Forbidden under ``retain="full"``, where it would
        desynchronise the counters from the stored events.
        """
        if self._is_full:
            raise TraceRetentionError(
                "tally() on a fully-retained trace would desynchronise its "
                "counters from the stored events; append real events instead"
            )
        if count < 0:
            raise ValueError("count must be non-negative")
        cls = event_type
        if cls in self._counts:
            self._counts[cls] += count
        elif count:
            self._counts[cls] = count
            self._query_cache.clear()
        self._total += count
        self._dropped += count
        self._outcomes_cache = None

    def tally1(self, event_type: Type[Event]) -> None:
        """:meth:`tally` of exactly one event, minus the argument checks.

        The recording hot loop calls this once per skipped packet event;
        callers must have established (via :meth:`wants`) that the trace is
        not fully retained.
        """
        counts = self._counts
        if event_type in counts:
            counts[event_type] += 1
        else:
            counts[event_type] = 1
            self._query_cache.clear()
        self._total += 1
        self._dropped += 1

    # -- observers -------------------------------------------------------------

    def subscribe(
        self,
        observer: Observer,
        types: Optional[Iterable[Type[Event]]] = None,
    ) -> None:
        """Call ``observer(index, event)`` for every subsequent append.

        ``types`` restricts delivery to events that are instances of any of
        the given types (subclasses included); ``None`` means every event.
        Observers see events the retention mode discards — this is how the
        streaming checkers evaluate executions that are never stored.
        """
        interest = None if types is None else tuple(types)
        self._observers.append((observer, interest))
        self._observer_cache.clear()

    def wants(self, event_type: Type[Event]) -> bool:
        """Would an appended event of this type reach storage or an observer?

        ``False`` (only possible under ``retain="none"`` with no interested
        observer) licenses the recording layer to :meth:`tally` instead of
        allocating and appending a real event.
        """
        if self._retain != "none":
            return True
        observers = self._observer_cache.get(event_type)
        if observers is None:
            observers = self._resolve_observers(event_type)
        return bool(observers)

    def _resolve_observers(self, cls: type) -> Tuple[Observer, ...]:
        resolved = tuple(
            observer
            for observer, interest in self._observers
            if interest is None or issubclass(cls, interest)
        )
        self._observer_cache[cls] = resolved
        return resolved

    # -- retention -------------------------------------------------------------

    @property
    def retention(self) -> str:
        """The trace's retention mode: ``"full"``, ``"tail"`` or ``"none"``."""
        return self._retain

    @property
    def total_events(self) -> int:
        """Events recorded over the whole execution, retained or not."""
        return self._total

    @property
    def dropped_events(self) -> int:
        """Events the retention mode discarded (0 under ``retain="full"``)."""
        return self._dropped

    def tail_events(self) -> List[Tuple[int, Event]]:
        """The retained ``(index, event)`` pairs, oldest first.

        Under ``"full"`` this is the entire execution; under ``"tail"`` the
        forensic ring buffer; under ``"none"`` it is empty.
        """
        if self._retain == "full":
            return list(enumerate(self._events))
        if self._tail is not None:
            return list(self._tail)
        return []

    def _require_full(self, operation: str) -> None:
        if self._retain != "full":
            raise TraceRetentionError(
                f"{operation} needs the full event sequence, but this trace "
                f"was recorded with retain={self._retain!r}"
            )

    # -- generic access ----------------------------------------------------------

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, index):
        self._require_full("indexing")
        return self._events[index]

    def __iter__(self) -> Iterator[Event]:
        self._require_full("iteration")
        return iter(self._events)

    @property
    def events(self) -> "EventsView":
        """The raw event sequence, as an immutable view."""
        self._require_full("the events view")
        return EventsView(self._events)

    def _matching_types(self, event_type: Type[Event]) -> Tuple[type, ...]:
        matching = self._query_cache.get(event_type)
        if matching is None:
            matching = tuple(
                cls for cls in self._counts if issubclass(cls, event_type)
            )
            self._query_cache[event_type] = matching
        return matching

    def of_type(self, event_type: Type[E]) -> List[E]:
        """All events of one type, in execution order."""
        self._require_full("of_type")
        return [self._events[i] for i in self.indexes_of(event_type)]

    def indexes_of(self, event_type: Type[Event]) -> List[int]:
        """Positions of all events of one type."""
        self._require_full("indexes_of")
        lists = [self._indexes[cls] for cls in self._matching_types(event_type)]
        if not lists:
            return []
        if len(lists) == 1:
            return list(lists[0])
        return list(heapq.merge(*lists))

    def count(self, event_type: Type[Event]) -> int:
        """Number of events of one type (from the online counters)."""
        counts = self._counts
        return sum(counts[cls] for cls in self._matching_types(event_type))

    # -- protocol-level projections --------------------------------------------------

    def sent_messages(self) -> List[bytes]:
        """Payloads of every ``send_msg``, in order."""
        return [e.message for e in self.of_type(SendMsg)]

    def received_messages(self) -> List[bytes]:
        """Payloads of every ``receive_msg``, in order."""
        return [e.message for e in self.of_type(ReceiveMsg)]

    def ok_count(self) -> int:
        """Number of OK notifications."""
        return self.count(Ok)

    def crash_count(self) -> int:
        """Total crashes of either station."""
        return self.count(CrashT) + self.count(CrashR)

    def message_outcomes(self) -> List[MessageOutcome]:
        """Resolve every send_msg to ok / crash / pending.

        Axiom 1 guarantees at most one message is in flight, so one forward
        pass with a single open slot suffices.  The result is memoized and
        invalidated by the next append, so repeated consumers (metrics,
        checkers, reports) pay for the pass once.
        """
        self._require_full("message_outcomes")
        cached = self._outcomes_cache
        if cached is not None:
            return list(cached)
        outcomes: List[MessageOutcome] = []
        open_message: Optional[bytes] = None
        open_index = 0
        open_delivered = False

        def close(resolution: str, resolution_index: Optional[int]) -> None:
            outcomes.append(
                MessageOutcome(
                    message=open_message,  # type: ignore[arg-type]
                    send_index=open_index,
                    resolution=resolution,
                    resolution_index=resolution_index,
                    delivered_before_resolution=open_delivered,
                )
            )

        for index, event in enumerate(self._events):
            if isinstance(event, SendMsg):
                if open_message is not None:
                    close("pending", None)  # Axiom 1 forbids this; be defensive
                open_message = event.message
                open_index = index
                open_delivered = False
            elif open_message is None:
                continue
            elif isinstance(event, ReceiveMsg):
                if event.message == open_message:
                    open_delivered = True
            elif isinstance(event, Ok):
                close("ok", index)
                open_message = None
            elif isinstance(event, CrashT):
                close("crash", index)
                open_message = None
        if open_message is not None:
            close("pending", None)
        self._outcomes_cache = tuple(outcomes)
        return outcomes

    def packets_sent(self) -> int:
        """Total send_pkt actions on both channels."""
        return self.count(PktSent)

    def packets_delivered(self) -> int:
        """Total deliver_pkt actions on both channels."""
        return self.count(PktDelivered)

    def retries(self) -> int:
        """Total RETRY internal actions."""
        return self.count(Retry)

    def summary(self) -> str:
        """One-line human-readable digest, useful in failure messages."""
        return (
            f"Trace(events={self._total}, sends={self.count(SendMsg)}, "
            f"oks={self.ok_count()}, delivered={self.count(ReceiveMsg)}, "
            f"crashT={self.count(CrashT)}, crashR={self.count(CrashR)}, "
            f"pkts={self.packets_sent()}/{self.packets_delivered()})"
        )

    def __repr__(self) -> str:
        return self.summary()
