"""Recorded executions of ``D(A, ADV)``.

A :class:`Trace` is the concrete form of the paper's *execution*: the
ordered sequence of external actions, as defined in Section 2 via the I/O
automata model.  The checkers evaluate the Section 2.6 correctness
conditions on traces, and the metrics pipeline summarises them, so the
trace API provides exactly the projections those consumers need (message
events, crash boundaries, per-message segments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Type, TypeVar

from repro.core.events import (
    CrashR,
    CrashT,
    Event,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
)

__all__ = ["Trace", "MessageOutcome"]

E = TypeVar("E", bound=Event)


@dataclass(frozen=True)
class MessageOutcome:
    """What ultimately happened to one ``send_msg`` (for metrics & checks).

    ``resolution`` is one of ``"ok"`` (an OK followed), ``"crash"``
    (a crash^T intervened before any OK), or ``"pending"`` (the execution
    ended mid-handshake).
    """

    message: bytes
    send_index: int
    resolution: str
    resolution_index: Optional[int]
    delivered_before_resolution: bool


class Trace:
    """An append-only execution record with query helpers."""

    def __init__(self, events: Optional[Sequence[Event]] = None) -> None:
        self._events: List[Event] = list(events) if events else []

    # -- recording -------------------------------------------------------------

    def append(self, event: Event) -> None:
        """Record the next event of the execution."""
        if not isinstance(event, Event):
            raise TypeError(f"traces hold Event instances, got {type(event).__name__}")
        self._events.append(event)

    # -- generic access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> Sequence[Event]:
        """The raw event sequence (read-only view by convention)."""
        return self._events

    def of_type(self, event_type: Type[E]) -> List[E]:
        """All events of one type, in execution order."""
        return [e for e in self._events if isinstance(e, event_type)]

    def indexes_of(self, event_type: Type[Event]) -> List[int]:
        """Positions of all events of one type."""
        return [i for i, e in enumerate(self._events) if isinstance(e, event_type)]

    def count(self, event_type: Type[Event]) -> int:
        """Number of events of one type."""
        return sum(1 for e in self._events if isinstance(e, event_type))

    # -- protocol-level projections --------------------------------------------------

    def sent_messages(self) -> List[bytes]:
        """Payloads of every ``send_msg``, in order."""
        return [e.message for e in self.of_type(SendMsg)]

    def received_messages(self) -> List[bytes]:
        """Payloads of every ``receive_msg``, in order."""
        return [e.message for e in self.of_type(ReceiveMsg)]

    def ok_count(self) -> int:
        """Number of OK notifications."""
        return self.count(Ok)

    def crash_count(self) -> int:
        """Total crashes of either station."""
        return self.count(CrashT) + self.count(CrashR)

    def message_outcomes(self) -> List[MessageOutcome]:
        """Resolve every send_msg to ok / crash / pending.

        Axiom 1 guarantees at most one message is in flight, so scanning
        forward from each send_msg to the first OK or crash^T suffices.
        """
        outcomes: List[MessageOutcome] = []
        for send_index in self.indexes_of(SendMsg):
            message = self._events[send_index].message
            resolution = "pending"
            resolution_index: Optional[int] = None
            delivered = False
            for i in range(send_index + 1, len(self._events)):
                event = self._events[i]
                if isinstance(event, ReceiveMsg) and event.message == message:
                    delivered = True
                elif isinstance(event, Ok):
                    resolution, resolution_index = "ok", i
                    break
                elif isinstance(event, CrashT):
                    resolution, resolution_index = "crash", i
                    break
                elif isinstance(event, SendMsg):
                    break  # Axiom 1 would forbid this; be defensive anyway
            outcomes.append(
                MessageOutcome(
                    message=message,
                    send_index=send_index,
                    resolution=resolution,
                    resolution_index=resolution_index,
                    delivered_before_resolution=delivered,
                )
            )
        return outcomes

    def packets_sent(self) -> int:
        """Total send_pkt actions on both channels."""
        return self.count(PktSent)

    def packets_delivered(self) -> int:
        """Total deliver_pkt actions on both channels."""
        return self.count(PktDelivered)

    def retries(self) -> int:
        """Total RETRY internal actions."""
        return self.count(Retry)

    def summary(self) -> str:
        """One-line human-readable digest, useful in failure messages."""
        return (
            f"Trace(events={len(self._events)}, sends={self.count(SendMsg)}, "
            f"oks={self.ok_count()}, delivered={self.count(ReceiveMsg)}, "
            f"crashT={self.count(CrashT)}, crashR={self.count(CrashR)}, "
            f"pkts={self.packets_sent()}/{self.packets_delivered()})"
        )

    def __repr__(self) -> str:
        return self.summary()
