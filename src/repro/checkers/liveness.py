"""The liveness condition (Theorem 9), operationalised for bounded runs.

The paper's liveness statement: if the adversary is fair and a message is
pending, then eventually one of ``crash^T``, ``crash^R``, ``OK`` or
``receive_msg`` occurs.  In a bounded simulation "eventually" becomes
"within the step budget"; :func:`check_liveness` verifies that no message
sat unresolved with no intervening progress event once the run ended, and
:func:`progress_gaps` measures the *longest* stretch any message waited —
the quantitative series for experiment E5.

Both are batch drivers over the monitors in
:mod:`repro.checkers.streaming` (:class:`LivenessMonitor`,
:class:`ProgressGapMonitor`), so online and post-hoc verdicts agree by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.checkers.report import CheckReport, Violation
from repro.checkers.streaming import LivenessMonitor, ProgressGapMonitor, feed
from repro.checkers.trace import Trace

__all__ = ["check_liveness", "progress_gaps", "LivenessStats"]


def check_liveness(trace: Trace, run_completed: bool) -> CheckReport:
    """Verify that every pending message eventually saw a progress event.

    ``run_completed`` is the simulator's verdict that the run ended because
    the workload finished (rather than the step budget).  If the run was
    truncated *and* the tail of the trace holds a send_msg with no
    subsequent progress event, liveness failed within the budget.
    """
    monitor = LivenessMonitor()
    feed(trace, monitor)
    return monitor.report(run_completed=run_completed)


@dataclass(frozen=True)
class LivenessStats:
    """Distribution of waiting times between send_msg and first progress."""

    gaps: List[int]

    @property
    def worst(self) -> int:
        return max(self.gaps) if self.gaps else 0

    @property
    def mean(self) -> float:
        return sum(self.gaps) / len(self.gaps) if self.gaps else 0.0

    @property
    def resolved_count(self) -> int:
        return len(self.gaps)


def progress_gaps(trace: Trace) -> LivenessStats:
    """Event-count gaps between each send_msg and its first progress event.

    The unit is trace events (a proxy for adversary turns); Theorem 9 says
    these gaps are finite for every fair adversary, and experiment E5 shows
    how they scale with adversarial stalling.
    """
    monitor = ProgressGapMonitor()
    feed(trace, monitor)
    return LivenessStats(gaps=monitor.gaps)
