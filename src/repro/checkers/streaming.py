"""Online monitors: the Section 2.6 conditions as incremental state machines.

The batch checkers in :mod:`repro.checkers.safety`, ``liveness`` and
``axioms`` were single-pass scanners already, but each made its *own* pass
over a fully materialised trace.  This module factors every condition's
state machine into a :class:`StreamMonitor` that consumes events one at a
time — O(1) amortized work per event, bounded state — so that:

* the simulator can evaluate every condition *while recording*, in one
  pass, with no post-hoc rescans (see ``Simulator(checks=...)``);
* Monte-Carlo campaigns can run checker-only (``retain="none"``) without
  materialising traces at all;
* the batch checkers become thin wrappers (:func:`feed` + ``report()``)
  over the same state machines, so batch and streaming verdicts are
  identical **by construction** — one implementation, two drivers.  The
  differential property tests pin this equivalence down anyway.

Monitors declare the event types they observe via :meth:`handlers`, and
dispatch is by concrete event type (one dict lookup per event, with
subclass resolution cached on first miss), so an event no monitor cares
about costs a single failed lookup.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.checkers.report import CheckReport, SafetyReport, Violation
from repro.core.events import (
    CrashR,
    CrashT,
    Event,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    SendMsg,
)

__all__ = [
    "StreamMonitor",
    "CausalityMonitor",
    "OrderMonitor",
    "NoDuplicationMonitor",
    "NoReplayMonitor",
    "LivenessMonitor",
    "ProgressGapMonitor",
    "Axiom1Monitor",
    "Axiom2Monitor",
    "Axiom3BoundedMonitor",
    "StreamingChecks",
    "feed",
]

Handler = Callable[[int, Event], None]

#: Progress events for the liveness condition (Theorem 9).
PROGRESS_EVENTS = (Ok, ReceiveMsg, CrashT, CrashR)


class StreamMonitor:
    """One condition evaluated incrementally.

    Subclasses expose their per-event-type handlers via :meth:`handlers`
    (bound methods taking ``(index, event)``) and their verdict via
    :meth:`report`.  State must stay O(1) in the trace length (modulo the
    violation list, which only grows on actual failures).
    """

    condition: str = ""

    def handlers(self) -> Dict[Type[Event], Handler]:
        """Map each observed event type to its bound handler."""
        raise NotImplementedError

    def report(self) -> CheckReport:
        """The verdict over everything observed so far."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return to the freshly-constructed state, in place.

        Resetting instead of rebuilding keeps every bound handler in an
        already-built dispatch table valid, which is what lets a
        :class:`StreamingChecks` (and the simulator session holding it) be
        reused across runs.
        """
        raise NotImplementedError


class CausalityMonitor(StreamMonitor):
    """Theorem 1's condition: deliveries only of previously sent messages."""

    condition = "causality"

    def __init__(self) -> None:
        self._sent_at: Dict[bytes, int] = {}
        self._trials = 0
        self._violations: List[Violation] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {SendMsg: self._on_send, ReceiveMsg: self._on_receive}

    def _on_send(self, index: int, event: Event) -> None:
        self._sent_at.setdefault(event.message, index)

    def _on_receive(self, index: int, event: Event) -> None:
        self._trials += 1
        origin = self._sent_at.get(event.message)
        if origin is None or origin >= index:
            self._violations.append(
                Violation(
                    condition="causality",
                    event_index=index,
                    detail=f"receive_msg({event.message!r}) with no prior send_msg",
                )
            )

    def report(self) -> CheckReport:
        return CheckReport(
            condition="causality", trials=self._trials, violations=list(self._violations)
        )

    def reset(self) -> None:
        self._sent_at.clear()
        self._trials = 0
        self._violations.clear()


class OrderMonitor(StreamMonitor):
    """Theorem 3's condition: OK implies the message was delivered first."""

    condition = "order"

    def __init__(self) -> None:
        self._pending: Optional[bytes] = None
        self._pending_index = 0
        self._delivered_pending = False
        self._trials = 0
        self._violations: List[Violation] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {
            SendMsg: self._on_send,
            ReceiveMsg: self._on_receive,
            Ok: self._on_ok,
            CrashT: self._on_crash_t,
        }

    def _on_send(self, index: int, event: Event) -> None:
        self._pending = event.message
        self._pending_index = index
        self._delivered_pending = False

    def _on_receive(self, index: int, event: Event) -> None:
        if self._pending is not None and event.message == self._pending:
            self._delivered_pending = True

    def _on_ok(self, index: int, event: Event) -> None:
        if self._pending is None:
            self._violations.append(
                Violation(
                    condition="order",
                    event_index=index,
                    detail="OK with no message in flight",
                )
            )
            return
        self._trials += 1
        if not self._delivered_pending:
            self._violations.append(
                Violation(
                    condition="order",
                    event_index=index,
                    detail=(
                        f"OK for send_msg({self._pending!r}) at {self._pending_index} "
                        f"without an intervening receive_msg"
                    ),
                )
            )
        self._pending = None

    def _on_crash_t(self, index: int, event: Event) -> None:
        self._pending = None  # the in-flight message dies with the memory

    def report(self) -> CheckReport:
        return CheckReport(
            condition="order", trials=self._trials, violations=list(self._violations)
        )

    def reset(self) -> None:
        self._pending = None
        self._pending_index = 0
        self._delivered_pending = False
        self._trials = 0
        self._violations.clear()


class NoDuplicationMonitor(StreamMonitor):
    """Theorem 8's condition: at most one delivery per message, absent crash^R."""

    condition = "no-duplication"

    def __init__(self) -> None:
        self._delivered_since_crash: Dict[bytes, int] = {}
        self._trials = 0
        self._violations: List[Violation] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {CrashR: self._on_crash_r, ReceiveMsg: self._on_receive}

    def _on_crash_r(self, index: int, event: Event) -> None:
        self._delivered_since_crash.clear()

    def _on_receive(self, index: int, event: Event) -> None:
        self._trials += 1
        earlier = self._delivered_since_crash.get(event.message)
        if earlier is not None:
            self._violations.append(
                Violation(
                    condition="no-duplication",
                    event_index=index,
                    detail=(
                        f"receive_msg({event.message!r}) duplicated "
                        f"(first at {earlier}) with no crash^R between"
                    ),
                )
            )
        self._delivered_since_crash[event.message] = index

    def report(self) -> CheckReport:
        return CheckReport(
            condition="no-duplication",
            trials=self._trials,
            violations=list(self._violations),
        )

    def reset(self) -> None:
        self._delivered_since_crash.clear()
        self._trials = 0
        self._violations.clear()


class NoReplayMonitor(StreamMonitor):
    """Theorem 7's condition: resolved messages never resurface.

    Tracks the resolution index of every message (its send followed by an
    OK or crash^T) and the most recent ``receive_msg``/``crash^R``
    boundary; a delivery whose message was resolved at or before the
    boundary is a replay — exactly the quantification of Theorem 7.
    """

    condition = "no-replay"

    def __init__(self) -> None:
        self._resolution_index: Dict[bytes, int] = {}
        self._pending: Optional[bytes] = None
        self._boundary = -1
        self._trials = 0
        self._violations: List[Violation] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {
            SendMsg: self._on_send,
            Ok: self._on_resolve,
            CrashT: self._on_resolve,
            CrashR: self._on_crash_r,
            ReceiveMsg: self._on_receive,
        }

    def _on_send(self, index: int, event: Event) -> None:
        self._pending = event.message

    def _on_resolve(self, index: int, event: Event) -> None:
        if self._pending is not None:
            self._resolution_index[self._pending] = index
            self._pending = None

    def _on_crash_r(self, index: int, event: Event) -> None:
        self._boundary = index

    def _on_receive(self, index: int, event: Event) -> None:
        self._trials += 1
        resolved_at = self._resolution_index.get(event.message)
        if resolved_at is not None and resolved_at <= self._boundary:
            self._violations.append(
                Violation(
                    condition="no-replay",
                    event_index=index,
                    detail=(
                        f"receive_msg({event.message!r}) replayed: already "
                        f"resolved at {resolved_at}, boundary at {self._boundary}"
                    ),
                )
            )
        self._boundary = index

    def report(self) -> CheckReport:
        return CheckReport(
            condition="no-replay", trials=self._trials, violations=list(self._violations)
        )

    def reset(self) -> None:
        self._resolution_index.clear()
        self._pending = None
        self._boundary = -1
        self._trials = 0
        self._violations.clear()


class LivenessMonitor(StreamMonitor):
    """Theorem 9's condition, operationalised for bounded runs.

    Whether the final pending send counts as a violation depends on how
    the run ended, so :meth:`report` takes ``run_completed``.
    """

    condition = "liveness"

    def __init__(self) -> None:
        self._trials = 0
        self._last_send: Optional[int] = None

    def handlers(self) -> Dict[Type[Event], Handler]:
        table: Dict[Type[Event], Handler] = {SendMsg: self._on_send}
        for progress in PROGRESS_EVENTS:
            table[progress] = self._on_progress
        return table

    def _on_send(self, index: int, event: Event) -> None:
        self._trials += 1
        self._last_send = index

    def _on_progress(self, index: int, event: Event) -> None:
        self._last_send = None

    def report(self, run_completed: bool = True) -> CheckReport:
        violations: List[Violation] = []
        if self._last_send is not None and not run_completed:
            violations.append(
                Violation(
                    condition="liveness",
                    event_index=self._last_send,
                    detail=(
                        "send_msg at end of truncated run with no subsequent "
                        "OK/receive_msg/crash before the step budget expired"
                    ),
                )
            )
        return CheckReport(
            condition="liveness", trials=self._trials, violations=violations
        )

    def reset(self) -> None:
        self._trials = 0
        self._last_send = None


class ProgressGapMonitor(StreamMonitor):
    """Waiting times between each send_msg and its first progress event.

    Feeds experiment E5; ``gaps`` is the raw series (event-count units).
    """

    condition = "progress-gaps"

    def __init__(self) -> None:
        self.gaps: List[int] = []
        self._last_send: Optional[int] = None

    def handlers(self) -> Dict[Type[Event], Handler]:
        table: Dict[Type[Event], Handler] = {SendMsg: self._on_send}
        for progress in PROGRESS_EVENTS:
            table[progress] = self._on_progress
        return table

    def _on_send(self, index: int, event: Event) -> None:
        self._last_send = index

    def _on_progress(self, index: int, event: Event) -> None:
        if self._last_send is not None:
            self.gaps.append(index - self._last_send)
            self._last_send = None

    def report(self) -> CheckReport:
        return CheckReport(condition="progress-gaps", trials=len(self.gaps))

    def reset(self) -> None:
        # Fresh list, not clear(): callers may have kept the old series.
        self.gaps = []
        self._last_send = None


class Axiom1Monitor(StreamMonitor):
    """Axiom 1: between two send_msg events there is an OK or crash^T."""

    condition = "axiom-1"

    def __init__(self) -> None:
        self._armed: Optional[int] = None
        self._trials = 0
        self._violations: List[Violation] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {SendMsg: self._on_send, Ok: self._on_resolve, CrashT: self._on_resolve}

    def _on_send(self, index: int, event: Event) -> None:
        self._trials += 1
        if self._armed is not None:
            self._violations.append(
                Violation(
                    condition="axiom-1",
                    event_index=index,
                    detail=(
                        f"send_msg at {index} before the send_msg at "
                        f"{self._armed} saw an OK or crash^T"
                    ),
                )
            )
        self._armed = index

    def _on_resolve(self, index: int, event: Event) -> None:
        self._armed = None

    def report(self) -> CheckReport:
        return CheckReport(
            condition="axiom-1", trials=self._trials, violations=list(self._violations)
        )

    def reset(self) -> None:
        self._armed = None
        self._trials = 0
        self._violations.clear()


class Axiom2Monitor(StreamMonitor):
    """Axiom 2: every message value is sent at most once."""

    condition = "axiom-2"

    def __init__(self) -> None:
        self._first_seen: Dict[bytes, int] = {}
        self._trials = 0
        self._violations: List[Violation] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {SendMsg: self._on_send}

    def _on_send(self, index: int, event: Event) -> None:
        self._trials += 1
        earlier = self._first_seen.get(event.message)
        if earlier is not None:
            self._violations.append(
                Violation(
                    condition="axiom-2",
                    event_index=index,
                    detail=(
                        f"send_msg({event.message!r}) repeated "
                        f"(first at {earlier})"
                    ),
                )
            )
        else:
            self._first_seen[event.message] = index

    def report(self) -> CheckReport:
        return CheckReport(
            condition="axiom-2", trials=self._trials, violations=list(self._violations)
        )

    def reset(self) -> None:
        self._first_seen.clear()
        self._trials = 0
        self._violations.clear()


class Axiom3BoundedMonitor(StreamMonitor):
    """Bounded form of Axiom 3 (fairness): sends imply eventual deliveries."""

    condition = "axiom-3"

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._window = window
        self._sends_since_delivery = 0
        self._trials = 0
        self._violations: List[Violation] = []

    def handlers(self) -> Dict[Type[Event], Handler]:
        return {PktSent: self._on_sent, PktDelivered: self._on_delivered}

    def _on_sent(self, index: int, event: Event) -> None:
        self._trials += 1
        self._sends_since_delivery += 1
        if self._sends_since_delivery == self._window:
            self._violations.append(
                Violation(
                    condition="axiom-3",
                    event_index=index,
                    detail=(
                        f"{self._window} consecutive packet sends without a "
                        f"single delivery"
                    ),
                )
            )

    def _on_delivered(self, index: int, event: Event) -> None:
        self._sends_since_delivery = 0

    def report(self) -> CheckReport:
        return CheckReport(
            condition="axiom-3", trials=self._trials, violations=list(self._violations)
        )

    def reset(self) -> None:
        self._sends_since_delivery = 0
        self._trials = 0
        self._violations.clear()


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def _build_table(
    monitors: Iterable[StreamMonitor],
) -> Dict[Type[Event], Tuple[Handler, ...]]:
    table: Dict[Type[Event], List[Handler]] = {}
    for monitor in monitors:
        for event_type, handler in monitor.handlers().items():
            table.setdefault(event_type, []).append(handler)
    return {event_type: tuple(handlers) for event_type, handlers in table.items()}


_NO_HANDLERS: Tuple[Handler, ...] = ()

#: Under ``timed=True`` one event in this many is bracketed by perf_counter
#: calls and the total is extrapolated; timing every event would cost more
#: than the dispatch it measures.
_TIMED_STRIDE = 32


def _resolve_subclass(
    table: Dict[Type[Event], Tuple[Handler, ...]], event_class: type
) -> Tuple[Handler, ...]:
    """Handlers for an event class not registered directly (subclass case).

    Preserves the semantics of the batch checkers' ``isinstance`` chains: a
    subclass of a handled type is handled like its base.  The result is
    cached in the table, so the cost is paid once per concrete class.
    """
    resolved: List[Handler] = []
    for registered, handlers in list(table.items()):
        if issubclass(event_class, registered):
            resolved.extend(handlers)
    table[event_class] = tuple(resolved)
    return table[event_class]


class StreamingChecks:
    """One-pass online evaluation of the Section 2.6 conditions.

    The default monitor set matches what :func:`repro.sim.runner.run_once`
    verifies per run: the four safety conditions plus liveness.  Pass
    ``axioms=True`` to also validate the environment axioms (harness
    self-check), or an explicit ``monitors`` list for a custom set.

    Feed events either by subscribing to a recording trace::

        checks = StreamingChecks()
        trace.subscribe(checks.observe, types=checks.observed_types)

    or manually via :meth:`observe`.  With ``timed=True`` the cumulative
    wall-clock cost of checking is accumulated in :attr:`checker_seconds`,
    which is how the metrics layer reports checker overhead.
    """

    def __init__(
        self,
        monitors: Optional[List[StreamMonitor]] = None,
        liveness: bool = True,
        axioms: bool = False,
        axiom3_window: int = 4096,
        timed: bool = False,
        stabilization: bool = False,
        stabilization_window: int = 8,
    ) -> None:
        self.causality = CausalityMonitor()
        self.order = OrderMonitor()
        self.no_duplication = NoDuplicationMonitor()
        self.no_replay = NoReplayMonitor()
        self.liveness: Optional[LivenessMonitor] = None
        self.axiom1: Optional[Axiom1Monitor] = None
        self.axiom2: Optional[Axiom2Monitor] = None
        self.axiom3: Optional[Axiom3BoundedMonitor] = None
        self.stabilization = None
        if monitors is not None:
            self.monitors: Tuple[StreamMonitor, ...] = tuple(monitors)
        else:
            suite: List[StreamMonitor] = [
                self.causality,
                self.order,
                self.no_duplication,
                self.no_replay,
            ]
            if liveness:
                self.liveness = LivenessMonitor()
                suite.append(self.liveness)
            if axioms:
                self.axiom1 = Axiom1Monitor()
                self.axiom2 = Axiom2Monitor()
                self.axiom3 = Axiom3BoundedMonitor(window=axiom3_window)
                suite += [self.axiom1, self.axiom2, self.axiom3]
            if stabilization:
                # Imported lazily: stabilization.py builds on this module.
                from repro.checkers.stabilization import StabilizationMonitor

                self.stabilization = StabilizationMonitor(
                    scrub=(
                        self.causality,
                        self.order,
                        self.no_duplication,
                        self.no_replay,
                    ),
                    window=stabilization_window,
                )
                suite.append(self.stabilization)
            self.monitors = tuple(suite)
        self._table = _build_table(self.monitors)
        self.events_seen = 0
        self._timed = timed
        self._timed_samples = 0
        self._sampled_seconds = 0.0

    @property
    def observed_types(self) -> Tuple[Type[Event], ...]:
        """Event types at least one monitor handles (for trace interest)."""
        return tuple(self._table)

    @property
    def checker_seconds(self) -> float:
        """Estimated cumulative wall-clock cost of checking.

        With ``timed=True``, one event in ``_TIMED_STRIDE`` is measured
        (starting with the first) and the total is extrapolated from the
        sample mean; 0.0 when untimed or before the first event.
        """
        if self._timed_samples == 0:
            return 0.0
        return self._sampled_seconds * (self.events_seen / self._timed_samples)

    def observe(self, index: int, event: Event) -> None:
        """Consume the next event of the execution (O(1) amortized)."""
        self.events_seen = seen = self.events_seen + 1
        if self._timed and seen % _TIMED_STRIDE == 1:
            started = perf_counter()
            table = self._table
            handlers = table.get(type(event))
            if handlers is None:
                handlers = _resolve_subclass(table, type(event))
            for handler in handlers:
                handler(index, event)
            self._sampled_seconds += perf_counter() - started
            self._timed_samples += 1
        else:
            table = self._table
            handlers = table.get(type(event))
            if handlers is None:
                handlers = _resolve_subclass(table, type(event))
            for handler in handlers:
                handler(index, event)

    def reset(self) -> None:
        """Reset every monitor for a new run, keeping the dispatch table.

        Each monitor is reset *in place* (never replaced), so the bound
        handlers baked into ``_table`` — including any cached subclass
        resolutions — remain correct.  A reset checker is observationally
        identical to a freshly-constructed one with the same monitor set.
        """
        for monitor in self.monitors:
            monitor.reset()
        self.events_seen = 0
        self._timed_samples = 0
        self._sampled_seconds = 0.0

    # -- verdicts -----------------------------------------------------------------

    def safety_report(self) -> SafetyReport:
        """The four safety verdicts over everything observed so far."""
        return SafetyReport(
            causality=self.causality.report(),
            order=self.order.report(),
            no_duplication=self.no_duplication.report(),
            no_replay=self.no_replay.report(),
        )

    def liveness_report(self, run_completed: bool) -> CheckReport:
        """The liveness verdict (requires the default or liveness monitor)."""
        if self.liveness is None:
            raise ValueError("this StreamingChecks was built without a liveness monitor")
        return self.liveness.report(run_completed=run_completed)

    def axiom_reports(self) -> List[CheckReport]:
        """Verdicts of the environment-axiom monitors (``axioms=True`` only)."""
        if self.axiom1 is None or self.axiom2 is None or self.axiom3 is None:
            raise ValueError("this StreamingChecks was built without axiom monitors")
        return [self.axiom1.report(), self.axiom2.report(), self.axiom3.report()]

    def stabilization_report(self):
        """The convergence summary (``stabilization=True`` only).

        Returns a :class:`~repro.checkers.stabilization.StabilizationReport`.
        """
        if self.stabilization is None:
            raise ValueError(
                "this StreamingChecks was built without a stabilization monitor"
            )
        return self.stabilization.summary()


def _noop_handler(index: int, event: Event) -> None:
    """Cached in single-monitor tables for event classes nobody observes."""


def _resolve_subclass_single(
    table: Dict[Type[Event], Handler], event_class: type
) -> Handler:
    """Single-monitor twin of :func:`_resolve_subclass`.

    Resolves an unregistered event class to one callable — the matching
    handler, a no-op when nothing matches, or a closure fanning out in
    the (rare) case a subclass matches several registered bases — and
    caches it so dispatch stays one lookup plus one call.
    """
    resolved = [
        registered_handler
        for registered, registered_handler in list(table.items())
        if issubclass(event_class, registered)
    ]
    if not resolved:
        handler: Handler = _noop_handler
    elif len(resolved) == 1:
        handler = resolved[0]
    else:
        fan_out = tuple(resolved)

        def handler(index: int, event: Event) -> None:
            for each in fan_out:
                each(index, event)

    table[event_class] = handler
    return handler


def feed(events: Iterable[Event], *monitors: StreamMonitor) -> None:
    """Drive monitors over a recorded event sequence (the batch driver).

    This is how the batch checkers evaluate a finished trace: same state
    machines, same dispatch, just fed from a sequence instead of live.
    """
    if len(monitors) == 1:
        # Every batch checker feeds exactly one monitor, so the hot loop
        # dispatches straight to the bound handler: no per-event iterator
        # over a one-element handler tuple.
        single: Dict[Type[Event], Handler] = dict(monitors[0].handlers())
        for index, event in enumerate(events):
            handler = single.get(type(event))
            if handler is None:
                handler = _resolve_subclass_single(single, type(event))
            handler(index, event)
        return
    table = _build_table(monitors)
    for index, event in enumerate(events):
        handlers = table.get(type(event))
        if handlers is None:
            handlers = _resolve_subclass(table, type(event))
        for handler in handlers:
            handler(index, event)
