"""Safety conditions of Section 2.6, as trace predicates.

The paper states four safety conditions — **causality**, **order**, and the
two halves of **uniqueness** (**no duplication**, **no replay**) — each as a
statement about extensions of executions, with the probabilistic ones
permitted to fail with probability at most ε.  Translated to recorded
traces:

* *causality* (absolute): every ``receive_msg(m)`` is preceded by a unique
  ``send_msg(m)``.
* *order*: for every ``send_msg(m)`` whose OK arrives (with no intervening
  crash^T), a ``receive_msg(m)`` occurs strictly between them.  Each OK'd
  message is one Bernoulli trial; the failure rate estimates the error
  probability that Theorem 3 bounds by ε.
* *no duplication*: within one message's window, a second
  ``receive_msg(m)`` without an intervening ``crash^R`` is a violation
  (after a receiver crash duplication is expressly unavoidable).
* *no replay*: a ``receive_msg(m)`` is a replay when ``m`` already belonged
  to ``M_α`` — its send was resolved by OK or crash^T — *before the current
  receive-extension began*, i.e. before the most recent
  ``receive_msg``/``crash^R`` boundary.  (The boundary matters: a message
  whose transmitter crashed mid-flight may still legitimately arrive as the
  very next delivery; it must not resurface after the receiver has moved
  on.)

The condition state machines live in :mod:`repro.checkers.streaming`; the
functions here are the batch drivers — they feed a finished trace through
the corresponding monitor and return its report, so batch and streaming
verdicts agree by construction.  Every checker returns a
:class:`CheckReport` carrying both the verdict and the Bernoulli trial
counts the Monte-Carlo experiments aggregate.
"""

from __future__ import annotations

from repro.checkers.report import CheckReport, SafetyReport, Violation
from repro.checkers.streaming import (
    CausalityMonitor,
    NoDuplicationMonitor,
    NoReplayMonitor,
    OrderMonitor,
    StreamingChecks,
    feed,
)
from repro.checkers.trace import Trace

__all__ = [
    "Violation",
    "CheckReport",
    "check_causality",
    "check_order",
    "check_no_duplication",
    "check_no_replay",
    "check_all_safety",
    "SafetyReport",
]


def check_causality(trace: Trace) -> CheckReport:
    """Theorem 1's condition: deliveries only of previously sent messages."""
    monitor = CausalityMonitor()
    feed(trace, monitor)
    return monitor.report()


def check_order(trace: Trace) -> CheckReport:
    """Theorem 3's condition: OK implies the message was delivered first."""
    monitor = OrderMonitor()
    feed(trace, monitor)
    return monitor.report()


def check_no_duplication(trace: Trace) -> CheckReport:
    """Theorem 8's condition: at most one delivery per message, absent crash^R.

    A ``crash^R`` resets the "already delivered" knowledge — duplications
    with an intervening receiver crash are expressly excused by the
    definition ("excluding those which follow a crash^R event").
    """
    monitor = NoDuplicationMonitor()
    feed(trace, monitor)
    return monitor.report()


def check_no_replay(trace: Trace) -> CheckReport:
    """Theorem 7's condition: resolved messages never resurface.

    For each delivery at position ``p``, let ``b`` be the most recent
    ``receive_msg``/``crash^R`` boundary before ``p``.  The delivery is a
    replay iff the message's send was already resolved (OK or crash^T)
    at or before ``b`` — i.e. ``m ∈ M_α`` for the execution prefix α ending
    at the boundary, exactly as Theorem 7 quantifies.
    """
    monitor = NoReplayMonitor()
    feed(trace, monitor)
    return monitor.report()


def check_all_safety(trace: Trace) -> SafetyReport:
    """Run all four Section 2.6 safety checkers on one trace (one pass)."""
    checks = StreamingChecks(liveness=False)
    observe = checks.observe
    for index, event in enumerate(trace):
        observe(index, event)
    return checks.safety_report()
