"""Safety conditions of Section 2.6, as trace predicates.

The paper states four safety conditions — **causality**, **order**, and the
two halves of **uniqueness** (**no duplication**, **no replay**) — each as a
statement about extensions of executions, with the probabilistic ones
permitted to fail with probability at most ε.  Translated to recorded
traces:

* *causality* (absolute): every ``receive_msg(m)`` is preceded by a unique
  ``send_msg(m)``.
* *order*: for every ``send_msg(m)`` whose OK arrives (with no intervening
  crash^T), a ``receive_msg(m)`` occurs strictly between them.  Each OK'd
  message is one Bernoulli trial; the failure rate estimates the error
  probability that Theorem 3 bounds by ε.
* *no duplication*: within one message's window, a second
  ``receive_msg(m)`` without an intervening ``crash^R`` is a violation
  (after a receiver crash duplication is expressly unavoidable).
* *no replay*: a ``receive_msg(m)`` is a replay when ``m`` already belonged
  to ``M_α`` — its send was resolved by OK or crash^T — *before the current
  receive-extension began*, i.e. before the most recent
  ``receive_msg``/``crash^R`` boundary.  (The boundary matters: a message
  whose transmitter crashed mid-flight may still legitimately arrive as the
  very next delivery; it must not resurface after the receiver has moved
  on.)

Every checker returns a :class:`CheckReport` carrying both the verdict and
the Bernoulli trial counts the Monte-Carlo experiments aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkers.trace import Trace
from repro.core.events import CrashR, CrashT, Ok, ReceiveMsg, SendMsg
from repro.core.exceptions import CheckFailure

__all__ = [
    "Violation",
    "CheckReport",
    "check_causality",
    "check_order",
    "check_no_duplication",
    "check_no_replay",
    "check_all_safety",
    "SafetyReport",
]


@dataclass(frozen=True)
class Violation:
    """One concrete counterexample found in a trace."""

    condition: str
    event_index: int
    detail: str


@dataclass(frozen=True)
class CheckReport:
    """Verdict for one condition on one trace.

    ``trials`` counts the condition's Bernoulli opportunities in this trace
    (e.g. OK'd messages for *order*); ``violations`` the failures among
    them.  ``passed`` is simply "no violations".
    """

    condition: str
    trials: int
    violations: List[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def failure_count(self) -> int:
        return len(self.violations)

    def raise_on_failure(self) -> None:
        """Raise :class:`CheckFailure` describing the first violation."""
        if self.violations:
            first = self.violations[0]
            raise CheckFailure(self.condition, f"{first.detail} (event {first.event_index})")


def check_causality(trace: Trace) -> CheckReport:
    """Theorem 1's condition: deliveries only of previously sent messages."""
    violations: List[Violation] = []
    sent_at: Dict[bytes, int] = {}
    deliveries = 0
    for index, event in enumerate(trace):
        if isinstance(event, SendMsg):
            sent_at.setdefault(event.message, index)
        elif isinstance(event, ReceiveMsg):
            deliveries += 1
            origin = sent_at.get(event.message)
            if origin is None or origin >= index:
                violations.append(
                    Violation(
                        condition="causality",
                        event_index=index,
                        detail=f"receive_msg({event.message!r}) with no prior send_msg",
                    )
                )
    return CheckReport(condition="causality", trials=deliveries, violations=violations)


def check_order(trace: Trace) -> CheckReport:
    """Theorem 3's condition: OK implies the message was delivered first."""
    violations: List[Violation] = []
    trials = 0
    pending: Optional[bytes] = None
    pending_index = 0
    delivered_pending = False
    for index, event in enumerate(trace):
        if isinstance(event, SendMsg):
            pending = event.message
            pending_index = index
            delivered_pending = False
        elif isinstance(event, ReceiveMsg):
            if pending is not None and event.message == pending:
                delivered_pending = True
        elif isinstance(event, Ok):
            if pending is None:
                violations.append(
                    Violation(
                        condition="order",
                        event_index=index,
                        detail="OK with no message in flight",
                    )
                )
                continue
            trials += 1
            if not delivered_pending:
                violations.append(
                    Violation(
                        condition="order",
                        event_index=index,
                        detail=(
                            f"OK for send_msg({pending!r}) at {pending_index} "
                            f"without an intervening receive_msg"
                        ),
                    )
                )
            pending = None
        elif isinstance(event, CrashT):
            pending = None  # the in-flight message dies with the memory
    return CheckReport(condition="order", trials=trials, violations=violations)


def check_no_duplication(trace: Trace) -> CheckReport:
    """Theorem 8's condition: at most one delivery per message, absent crash^R.

    A ``crash^R`` resets the "already delivered" knowledge — duplications
    with an intervening receiver crash are expressly excused by the
    definition ("excluding those which follow a crash^R event").
    """
    violations: List[Violation] = []
    delivered_since_crash: Dict[bytes, int] = {}
    trials = 0
    for index, event in enumerate(trace):
        if isinstance(event, CrashR):
            delivered_since_crash.clear()
        elif isinstance(event, ReceiveMsg):
            trials += 1
            earlier = delivered_since_crash.get(event.message)
            if earlier is not None:
                violations.append(
                    Violation(
                        condition="no-duplication",
                        event_index=index,
                        detail=(
                            f"receive_msg({event.message!r}) duplicated "
                            f"(first at {earlier}) with no crash^R between"
                        ),
                    )
                )
            delivered_since_crash[event.message] = index
    return CheckReport(
        condition="no-duplication", trials=trials, violations=violations
    )


def check_no_replay(trace: Trace) -> CheckReport:
    """Theorem 7's condition: resolved messages never resurface.

    For each delivery at position ``p``, let ``b`` be the most recent
    ``receive_msg``/``crash^R`` boundary before ``p``.  The delivery is a
    replay iff the message's send was already resolved (OK or crash^T)
    at or before ``b`` — i.e. ``m ∈ M_α`` for the execution prefix α ending
    at the boundary, exactly as Theorem 7 quantifies.
    """
    violations: List[Violation] = []
    resolution_index: Dict[bytes, int] = {}
    pending: Optional[bytes] = None
    boundary = -1
    trials = 0
    for index, event in enumerate(trace):
        if isinstance(event, SendMsg):
            pending = event.message
        elif isinstance(event, Ok):
            if pending is not None:
                resolution_index[pending] = index
                pending = None
        elif isinstance(event, CrashT):
            if pending is not None:
                resolution_index[pending] = index
                pending = None
        elif isinstance(event, CrashR):
            boundary = index
        elif isinstance(event, ReceiveMsg):
            trials += 1
            resolved_at = resolution_index.get(event.message)
            if resolved_at is not None and resolved_at <= boundary:
                violations.append(
                    Violation(
                        condition="no-replay",
                        event_index=index,
                        detail=(
                            f"receive_msg({event.message!r}) replayed: already "
                            f"resolved at {resolved_at}, boundary at {boundary}"
                        ),
                    )
                )
            boundary = index
    return CheckReport(condition="no-replay", trials=trials, violations=violations)


@dataclass(frozen=True)
class SafetyReport:
    """All four safety verdicts for one trace."""

    causality: CheckReport
    order: CheckReport
    no_duplication: CheckReport
    no_replay: CheckReport

    @property
    def passed(self) -> bool:
        return (
            self.causality.passed
            and self.order.passed
            and self.no_duplication.passed
            and self.no_replay.passed
        )

    @property
    def all_reports(self) -> List[CheckReport]:
        return [self.causality, self.order, self.no_duplication, self.no_replay]

    def raise_on_failure(self) -> None:
        """Raise :class:`CheckFailure` for the first failing condition."""
        for report in self.all_reports:
            report.raise_on_failure()


def check_all_safety(trace: Trace) -> SafetyReport:
    """Run all four Section 2.6 safety checkers on one trace."""
    return SafetyReport(
        causality=check_causality(trace),
        order=check_order(trace),
        no_duplication=check_no_duplication(trace),
        no_replay=check_no_replay(trace),
    )
