"""Verdict containers shared by the batch and streaming checker layers.

Every Section 2.6 condition — evaluated either in one batch pass over a
finished :class:`~repro.checkers.trace.Trace` or incrementally by the
online monitors of :mod:`repro.checkers.streaming` — reports through the
same types: a :class:`CheckReport` per condition (verdict plus the
Bernoulli trial counts the Monte-Carlo experiments aggregate) and a
:class:`SafetyReport` bundling the four safety conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.exceptions import CheckFailure

__all__ = ["Violation", "CheckReport", "SafetyReport", "merge_safety_reports"]


@dataclass(frozen=True)
class Violation:
    """One concrete counterexample found in a trace."""

    condition: str
    event_index: int
    detail: str


@dataclass(frozen=True)
class CheckReport:
    """Verdict for one condition on one trace.

    ``trials`` counts the condition's Bernoulli opportunities in this trace
    (e.g. OK'd messages for *order*); ``violations`` the failures among
    them.  ``passed`` is simply "no violations".
    """

    condition: str
    trials: int
    violations: List[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def failure_count(self) -> int:
        return len(self.violations)

    def raise_on_failure(self) -> None:
        """Raise :class:`CheckFailure` describing the first violation."""
        if self.violations:
            first = self.violations[0]
            raise CheckFailure(self.condition, f"{first.detail} (event {first.event_index})")


@dataclass(frozen=True)
class SafetyReport:
    """All four safety verdicts for one trace."""

    causality: CheckReport
    order: CheckReport
    no_duplication: CheckReport
    no_replay: CheckReport

    @property
    def passed(self) -> bool:
        return (
            self.causality.passed
            and self.order.passed
            and self.no_duplication.passed
            and self.no_replay.passed
        )

    @property
    def all_reports(self) -> List[CheckReport]:
        return [self.causality, self.order, self.no_duplication, self.no_replay]

    def raise_on_failure(self) -> None:
        """Raise :class:`CheckFailure` for the first failing condition."""
        for report in self.all_reports:
            report.raise_on_failure()


def merge_safety_reports(reports: List[SafetyReport]) -> SafetyReport:
    """Combine per-component verdicts into one aggregate report.

    A multi-lane deployment checks each lane's trace independently (each
    lane is its own instance of the protocol, with its own Section 2.6
    conditions); the aggregate sums trial counts and concatenates
    violations per condition, so the merged report passes iff every lane
    passed.  Requires at least one input report.
    """
    if not reports:
        raise ValueError("cannot merge zero safety reports")

    def merged(condition_index: int) -> CheckReport:
        parts = [report.all_reports[condition_index] for report in reports]
        violations: List[Violation] = []
        for part in parts:
            violations.extend(part.violations)
        return CheckReport(
            condition=parts[0].condition,
            trials=sum(part.trials for part in parts),
            violations=violations,
        )

    return SafetyReport(
        causality=merged(0),
        order=merged(1),
        no_duplication=merged(2),
        no_replay=merged(3),
    )
