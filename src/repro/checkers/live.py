"""Live event adapter: feed wire-level executions to the streaming checkers.

The online monitors of :mod:`repro.checkers.streaming` were built for the
discrete-event simulator, but nothing in them depends on simulated time —
they consume ``(index, event)`` pairs.  :class:`LiveEventLog` is the thin
bridge that lets a *live* deployment (real sockets, real crashes, real
wall-clock; see :mod:`repro.live`) mirror every externally visible action
into the same Section 2.6 state machines, so safety and liveness verdicts
for live traces are produced by the exact code paths the simulator uses —
one checker implementation, three drivers (batch, streaming, live).

Event indices are assigned by arrival order at the log.  A live system has
no global step counter, so the indices define the observation order — the
order in which one observer (the harness) saw the external actions, which
is the only total order the paper's conditions ever quantify over.

The log also keeps a bounded forensic tail (like the simulator's
``retain="tail"`` mode) so a failing live run can archive its last events
without the memory cost of full retention on long-lived deployments.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.checkers.report import CheckReport, SafetyReport
from repro.checkers.streaming import StreamingChecks
from repro.core.events import Event

__all__ = ["LiveEventLog"]


class LiveEventLog:
    """Single-writer event sink mirroring live executions into checkers.

    Designed for one asyncio event loop: all records happen on the loop
    thread, so a plain counter is race-free.  ``checks`` defaults to the
    standard safety+liveness suite (the same set ``run_once`` verifies).
    """

    def __init__(
        self,
        checks: Optional[StreamingChecks] = None,
        tail_size: int = 4096,
    ) -> None:
        if tail_size < 1:
            raise ValueError("tail_size must be >= 1")
        self.checks = checks if checks is not None else StreamingChecks(timed=True)
        self._tail: Deque[Tuple[int, Event]] = deque(maxlen=tail_size)
        self._next_index = 0

    @property
    def events_seen(self) -> int:
        """Total events recorded since construction."""
        return self._next_index

    @property
    def tail(self) -> List[Tuple[int, Event]]:
        """The retained ``(index, event)`` forensic tail, oldest first."""
        return list(self._tail)

    @property
    def dropped_events(self) -> int:
        """Events no longer in the forensic tail."""
        return self._next_index - len(self._tail)

    def record(self, event: Event) -> int:
        """Mirror one live event into the monitors; returns its index."""
        index = self._next_index
        self._next_index = index + 1
        self._tail.append((index, event))
        self.checks.observe(index, event)
        return index

    # -- verdicts ---------------------------------------------------------------

    def safety_report(self) -> SafetyReport:
        """Section 2.6 safety verdicts over everything recorded so far."""
        return self.checks.safety_report()

    def liveness_report(self, run_completed: bool) -> CheckReport:
        """Liveness verdict; ``run_completed=False`` for give-up/truncated runs."""
        return self.checks.liveness_report(run_completed=run_completed)

    def tail_lines(self) -> List[str]:
        """Human-readable forensic tail (for artifacts and CLI output)."""
        return [f"{index:>8}  {event!r}" for index, event in self._tail]
