"""Environment-axiom validators (Axioms 1–3 of Section 2).

The correctness theorems only hold for executions whose *environment*
behaves: the higher layer respects Axioms 1–2 and the adversary Axiom 3.
The simulator enforces these on-line, but experiments that assemble traces
by other means (baselines, hand-written scenarios, property tests) use
these validators as a self-check — a failed axiom means the *harness* is
wrong, and any checker verdicts on that trace are meaningless.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.checkers.safety import CheckReport, Violation
from repro.checkers.trace import Trace
from repro.core.events import CrashT, Ok, PktDelivered, PktSent, SendMsg

__all__ = ["check_axiom1", "check_axiom2", "check_axiom3_bounded"]


def check_axiom1(trace: Trace) -> CheckReport:
    """Axiom 1: between two send_msg events there is an OK or crash^T."""
    violations: List[Violation] = []
    trials = 0
    armed: Optional[int] = None  # index of a send_msg awaiting resolution
    for index, event in enumerate(trace):
        if isinstance(event, SendMsg):
            trials += 1
            if armed is not None:
                violations.append(
                    Violation(
                        condition="axiom-1",
                        event_index=index,
                        detail=(
                            f"send_msg at {index} before the send_msg at "
                            f"{armed} saw an OK or crash^T"
                        ),
                    )
                )
            armed = index
        elif isinstance(event, (Ok, CrashT)):
            armed = None
    return CheckReport(condition="axiom-1", trials=trials, violations=violations)


def check_axiom2(trace: Trace) -> CheckReport:
    """Axiom 2: every message value is sent at most once."""
    violations: List[Violation] = []
    first_seen: Dict[bytes, int] = {}
    trials = 0
    for index, event in enumerate(trace):
        if isinstance(event, SendMsg):
            trials += 1
            earlier = first_seen.get(event.message)
            if earlier is not None:
                violations.append(
                    Violation(
                        condition="axiom-2",
                        event_index=index,
                        detail=(
                            f"send_msg({event.message!r}) repeated "
                            f"(first at {earlier})"
                        ),
                    )
                )
            else:
                first_seen[event.message] = index
    return CheckReport(condition="axiom-2", trials=trials, violations=violations)


def check_axiom3_bounded(trace: Trace, window: int) -> CheckReport:
    """Bounded form of Axiom 3 (fairness): sends imply eventual deliveries.

    The true axiom quantifies over infinite suffixes; on a finite trace we
    check that no stretch of ``window`` consecutive ``PktSent`` events (on
    either channel) passed without a single ``PktDelivered``.  The window
    should comfortably exceed the fairness enforcer's patience.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    violations: List[Violation] = []
    sends_since_delivery = 0
    trials = 0
    for index, event in enumerate(trace):
        if isinstance(event, PktSent):
            trials += 1
            sends_since_delivery += 1
            if sends_since_delivery == window:
                violations.append(
                    Violation(
                        condition="axiom-3",
                        event_index=index,
                        detail=(
                            f"{window} consecutive packet sends without a "
                            f"single delivery"
                        ),
                    )
                )
        elif isinstance(event, PktDelivered):
            sends_since_delivery = 0
    return CheckReport(condition="axiom-3", trials=trials, violations=violations)
