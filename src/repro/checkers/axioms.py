"""Environment-axiom validators (Axioms 1–3 of Section 2).

The correctness theorems only hold for executions whose *environment*
behaves: the higher layer respects Axioms 1–2 and the adversary Axiom 3.
The simulator enforces these on-line, but experiments that assemble traces
by other means (baselines, hand-written scenarios, property tests) use
these validators as a self-check — a failed axiom means the *harness* is
wrong, and any checker verdicts on that trace are meaningless.

Each validator is a batch driver over the matching monitor in
:mod:`repro.checkers.streaming` (:class:`Axiom1Monitor`,
:class:`Axiom2Monitor`, :class:`Axiom3BoundedMonitor`).
"""

from __future__ import annotations

from repro.checkers.report import CheckReport
from repro.checkers.streaming import (
    Axiom1Monitor,
    Axiom2Monitor,
    Axiom3BoundedMonitor,
    feed,
)
from repro.checkers.trace import Trace

__all__ = ["check_axiom1", "check_axiom2", "check_axiom3_bounded"]


def check_axiom1(trace: Trace) -> CheckReport:
    """Axiom 1: between two send_msg events there is an OK or crash^T."""
    monitor = Axiom1Monitor()
    feed(trace, monitor)
    return monitor.report()


def check_axiom2(trace: Trace) -> CheckReport:
    """Axiom 2: every message value is sent at most once."""
    monitor = Axiom2Monitor()
    feed(trace, monitor)
    return monitor.report()


def check_axiom3_bounded(trace: Trace, window: int) -> CheckReport:
    """Bounded form of Axiom 3 (fairness): sends imply eventual deliveries.

    The true axiom quantifies over infinite suffixes; on a finite trace we
    check that no stretch of ``window`` consecutive ``PktSent`` events (on
    either channel) passed without a single ``PktDelivered``.  The window
    should comfortably exceed the fairness enforcer's patience.
    """
    monitor = Axiom3BoundedMonitor(window=window)
    feed(trace, monitor)
    return monitor.report()
