"""Facade for constructing a matched transmitter/receiver pair.

A *data link protocol* in the paper's sense is a pair of randomized
algorithms ``A = (A^t, A^r)``.  :class:`DataLink` bundles the pair with its
shared :class:`~repro.core.params.ProtocolParams` and independent random
tapes, which is the unit the simulator composes with channels and an
adversary into ``D(A, ADV)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.params import ProtocolParams, SizeBoundPolicy
from repro.core.random_source import RandomSource
from repro.core.receiver import Receiver
from repro.core.transmitter import Transmitter

__all__ = ["DataLink", "make_data_link"]


@dataclass
class DataLink:
    """A matched (transmitter, receiver) pair sharing one parameterisation."""

    params: ProtocolParams
    transmitter: Transmitter
    receiver: Receiver

    @property
    def epsilon(self) -> float:
        """The security parameter ε both stations were built with."""
        return self.params.epsilon

    def total_storage_bits(self) -> int:
        """Combined nonce storage of both stations right now.

        The paper's storage claim (Section 1) is that this quantity depends
        only on faults during the current message and resets afterwards;
        experiment E4 tracks it over time.
        """
        return self.transmitter.storage_bits + self.receiver.storage_bits


def make_data_link(
    epsilon: float = 2.0 ** -20,
    seed: Optional[int] = None,
    policy: Optional[SizeBoundPolicy] = None,
    require_sound_policy: bool = True,
) -> DataLink:
    """Build a ready-to-run data link.

    Parameters
    ----------
    epsilon:
        Per-message error probability bound (Section 2.6's security
        parameter).
    seed:
        Root seed; the two stations receive independently derived tapes.
        None draws from OS entropy (non-reproducible).
    policy:
        size/bound policy; defaults to :class:`~repro.core.params.SoundPolicy`.
    require_sound_policy:
        Reject policies that cannot honour the ε/4 union bound (set False
        for ablations and the deliberately broken baselines).

    Examples
    --------
    >>> link = make_data_link(epsilon=2**-16, seed=7)
    >>> link.transmitter.busy
    False
    """
    if policy is None:
        params = ProtocolParams(epsilon=epsilon, require_sound_policy=require_sound_policy)
    else:
        params = ProtocolParams(
            epsilon=epsilon, policy=policy, require_sound_policy=require_sound_policy
        )
    root = RandomSource(seed)
    transmitter = Transmitter(params, root.fork("transmitter"))
    receiver = Receiver(params, root.fork("receiver"))
    return DataLink(params=params, transmitter=transmitter, receiver=receiver)
