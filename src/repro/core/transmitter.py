"""The transmitting module (TM) of Appendix A.

Figure 2 of the scanned technical report (the transmitter's code) is
missing from the surviving text, so this module reconstructs it from the
protocol overview (Section 3), the receiver's code (Figure 5), and the
facts the analysis relies on:

* the OK test is a *prefix* test on τ — Theorem 3's proof bounds
  ``P(prefix(τ_0, τ_0^R))``, which is only meaningful if a poll whose τ
  extends τ^T triggers OK;
* the transmitter answers a poll only when its retry counter exceeds the
  last one seen — Theorem 9's proof says "the transmitter replies each time
  i_j > i^T";
* same-length mismatches of τ are counted and trigger nonce extension, the
  dual of the receiver's ρ machinery (Lemma 2^T / Lemma 6);
* every τ^T begins with ``τ'_crash`` so that the receiver's post-crash
  sentinel ``τ_crash`` is never a prefix of a live nonce (Figure 3's note);
* all counters reset on OK and on crash — the paper's storage argument
  (Section 1) is that state depends only on faults during the *current*
  message.

The class is a pure state machine: inputs arrive via :meth:`send_msg`,
:meth:`on_receive_pkt` and :meth:`crash`; outputs are returned as
:class:`~repro.core.events.StationOutput` lists.  It performs no I/O and
holds no clock, which is what lets the simulator drive it under arbitrary
adversarial schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.bitstrings import BitString, TAU_PRIME_CRASH
from repro.core.events import EMIT_OK, StationOutput, make_emit_packet
from repro.core.exceptions import ProtocolError
from repro.core.packets import PollPacket, make_data_packet
from repro.core.params import ProtocolParams
from repro.core.random_source import RandomSource

__all__ = ["Transmitter", "TransmitterStats"]


@dataclass
class TransmitterStats:
    """Counters exposed for the metrics pipeline (not protocol state)."""

    packets_sent: int = 0
    oks: int = 0
    crashes: int = 0
    corruptions: int = 0
    errors_counted: int = 0
    extensions: int = 0
    polls_ignored: int = 0
    max_tau_bits: int = 0

    def observe_tau(self, tau: BitString) -> None:
        self.max_tau_bits = max(self.max_tau_bits, len(tau))


class Transmitter:
    """The TM automaton: accepts messages from the higher layer and runs
    the transmitter side of the randomized handshake.

    Parameters
    ----------
    params:
        Shared protocol parameters (ε and the size/bound policy).
    rng:
        The station's private random tape.  Survives crashes (a crash
        erases memory, not the entropy source).
    """

    def __init__(self, params: ProtocolParams, rng: RandomSource) -> None:
        self._params = params
        self._rng = rng
        self.stats = TransmitterStats()
        self._reset_memory()
        # _reset_memory counts itself as a crash; the initial reset is not one.
        self.stats.crashes = 0

    # -- state inspection -------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a message is in flight (between send_msg and OK)."""
        return self._busy

    @property
    def tau(self) -> BitString:
        """The current transmitter nonce τ^T."""
        return self._tau

    @property
    def generation(self) -> int:
        """t^T: how many times τ^T has been extended for this message."""
        return self._t

    @property
    def error_count(self) -> int:
        """num^T: same-length τ mismatches seen at the current generation."""
        return self._num

    @property
    def last_retry_seen(self) -> int:
        """i^T: the largest receiver retry counter answered so far."""
        return self._i_seen

    @property
    def pending_message(self) -> Optional[bytes]:
        """The in-flight message, or None when idle."""
        return self._message if self._busy else None

    @property
    def storage_bits(self) -> int:
        """Current volatile-state footprint attributable to nonces."""
        return len(self._tau) + (len(self._prev_tau) if self._prev_tau else 0)

    # -- input actions ------------------------------------------------------------

    #: Volatile fields an arbitrary-state fault may scramble, in the fixed
    #: order :meth:`corrupt` processes them (order is part of the replay
    #: contract: the scramble tape is consumed field by field).
    CORRUPTIBLE_FIELDS: Tuple[str, ...] = (
        "busy", "tau", "prev_tau", "t", "num", "i_seen", "rho_next",
    )

    def crash(self) -> None:
        """``crash^T``: erase the entire memory (back to the initial value)."""
        self._reset_memory()

    def corrupt(
        self, rng: RandomSource, fields: Optional[Sequence[str]] = None
    ) -> Tuple[str, ...]:
        """Scramble volatile state in place (the arbitrary-state fault).

        Unlike :meth:`crash`, which resets to the known blank configuration,
        this leaves the automaton in a random-but-coherent configuration:
        nonces are XOR-masked to uniform strings of their current length,
        counters are redrawn, and an in-flight message may be dropped (the
        ``busy``/``_message`` pair stays coherent — a corrupted TM never
        claims to be busy with no message).  ``rng`` is the *pinned* scramble
        tape, not the station's entropy source, so the same seed over the
        same pre-fault state reproduces the same post-fault state.  Returns
        the names of the fields actually scrambled.
        """
        wanted = self.CORRUPTIBLE_FIELDS if fields is None else tuple(fields)
        for name in wanted:
            if name not in self.CORRUPTIBLE_FIELDS:
                raise ValueError(
                    f"unknown transmitter field {name!r} "
                    f"(corruptible: {', '.join(self.CORRUPTIBLE_FIELDS)})"
                )
        scrambled = []
        for name in self.CORRUPTIBLE_FIELDS:
            if name not in wanted:
                continue
            if name == "busy":
                # Only True -> False is reachable: an idle automaton holds no
                # message to turn busy *with*, and inventing one would be a
                # stronger fault than memory corruption.
                if self._busy and rng.bernoulli(0.5):
                    self._busy = False
                    self._message = None
                    scrambled.append(name)
            elif name == "tau":
                self._tau = rng.scramble_bits(self._tau)
                self.stats.observe_tau(self._tau)
                scrambled.append(name)
            elif name == "prev_tau":
                if self._prev_tau is not None:
                    self._prev_tau = rng.scramble_bits(self._prev_tau)
                    scrambled.append(name)
            elif name == "t":
                self._t = rng.randint(1, max(self._t, 1) + 4)
                scrambled.append(name)
            elif name == "num":
                self._num = rng.randint(0, max(self._num, 1) + 4)
                scrambled.append(name)
            elif name == "i_seen":
                self._i_seen = rng.randint(0, self._i_seen + 8)
                scrambled.append(name)
            elif name == "rho_next":
                if self._rho_next is not None:
                    self._rho_next = rng.scramble_bits(self._rho_next)
                    scrambled.append(name)
        self.stats.corruptions += 1
        return tuple(scrambled)

    def send_msg(self, message: bytes) -> List[StationOutput]:
        """``send_msg(m)``: accept the next message from the higher layer.

        Axiom 1 forbids a second send_msg before OK or a crash; violating it
        raises :class:`ProtocolError` rather than silently corrupting state.
        """
        if self._busy:
            raise ProtocolError(
                "send_msg while busy violates Axiom 1: wait for OK or crash"
            )
        if not isinstance(message, bytes):
            raise TypeError("messages must be bytes")
        self._busy = True
        self._message = message
        self._prev_tau = self._tau
        self._tau = self._fresh_tau()
        self._t = 1
        self._num = 0
        self.stats.observe_tau(self._tau)
        if self._rho_next is None:
            # Nothing heard from the receiver yet (e.g. right after a
            # crash); stay silent and let the receiver's polls drive us.
            return []
        packet = make_data_packet(message, self._rho_next, self._tau)
        self.stats.packets_sent += 1
        return [make_emit_packet(packet)]

    def on_receive_pkt(self, packet: PollPacket) -> List[StationOutput]:
        """``receive_pkt^{R→T}(ρ, τ, i)``: react to a receiver poll/ack."""
        if not isinstance(packet, PollPacket):
            raise ProtocolError(
                f"transmitter received a {type(packet).__name__}; only "
                f"PollPacket travels on C^(R->T)"
            )
        if self._busy:
            return self._on_poll_while_busy(packet)
        return self._on_poll_while_idle(packet)

    # -- internals ------------------------------------------------------------------

    def _on_poll_while_busy(self, packet: PollPacket) -> List[StationOutput]:
        if self._tau.is_prefix_of(packet.tau):
            # The receiver acknowledged our nonce: the message was delivered.
            self._busy = False
            self._message = None
            self._rho_next = packet.rho
            self._i_seen = 0
            self._t = 1
            self._num = 0
            self.stats.oks += 1
            return [EMIT_OK]

        self._count_tau_error(packet.tau)

        if packet.retry > self._i_seen:
            self._i_seen = packet.retry
            assert self._message is not None
            reply = make_data_packet(self._message, packet.rho, self._tau)
            self.stats.packets_sent += 1
            return [make_emit_packet(reply)]
        self.stats.polls_ignored += 1
        return []

    def _on_poll_while_idle(self, packet: PollPacket) -> List[StationOutput]:
        # Remember the freshest challenge so the next send_msg can open
        # with a data packet instead of waiting a full poll round-trip.
        if self._tau.is_prefix_of(packet.tau) and packet.retry > self._i_seen:
            self._rho_next = packet.rho
            self._i_seen = packet.retry
        else:
            self.stats.polls_ignored += 1
        return []

    def _count_tau_error(self, tau: BitString) -> None:
        """num^T bookkeeping: only same-length mismatches burn budget.

        Packets whose τ is shorter than τ^T are necessarily old (the nonce
        only grows within a handshake) and are not treated as errors — this
        is what lets τ^T stabilise in the liveness proof.  Replays of the
        previous handshake's nonce are likewise benign.
        """
        if len(tau) != len(self._tau):
            return
        if self._prev_tau is not None and tau == self._prev_tau:
            return
        self._num += 1
        self.stats.errors_counted += 1
        if self._num >= self._params.bound(self._t):
            self._t += 1
            self._num = 0
            self._tau = self._tau.concat(self._rng.random_bits(self._params.size(self._t)))
            self.stats.extensions += 1
            self.stats.observe_tau(self._tau)

    def _fresh_tau(self) -> BitString:
        """Draw a new nonce prefixed by τ'_crash (never extends τ_crash)."""
        return TAU_PRIME_CRASH.concat(self._rng.random_bits(self._params.size(1)))

    def _reset_memory(self) -> None:
        self._busy = False
        self._message: Optional[bytes] = None
        self._tau = self._fresh_tau()
        self._prev_tau: Optional[BitString] = None
        self._t = 1
        self._num = 0
        self._i_seen = 0
        self._rho_next: Optional[BitString] = None
        self.stats.crashes += 1
        self.stats.observe_tau(self._tau)

    def __repr__(self) -> str:
        state = "busy" if self._busy else "idle"
        return (
            f"Transmitter({state}, t={self._t}, num={self._num}, "
            f"|tau|={len(self._tau)}, i_seen={self._i_seen})"
        )
