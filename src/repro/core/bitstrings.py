"""Immutable bit strings and the prefix algebra used by the protocol.

The protocol of Appendix A manipulates random strings with exactly four
operations (Figure 3): ``random(l)``, ``concat(s, r)``, ``prefix(s, r)`` and
length inspection.  :class:`BitString` packages those operations behind an
immutable, hashable value type so that protocol state can never be mutated
in place by accident — an important property when traces of past states are
recorded for the correctness checkers.

Bits are stored as a Python ``int`` plus an explicit length, which keeps
concatenation and prefix tests O(1)-ish for the string sizes the protocol
uses while preserving leading zeros (``"0010"`` and ``"10"`` are different
strings of different lengths).
"""

from __future__ import annotations

from typing import Iterator, Union

__all__ = ["BitString", "EMPTY", "TAU_CRASH", "TAU_PRIME_CRASH"]


class BitString:
    """An immutable sequence of bits.

    Instances compare equal iff they have the same length and the same bit
    values.  The class supports the operations of Figure 3 of the paper:

    * :meth:`concat` — ``concat(s, r)``;
    * :meth:`is_prefix_of` — ``prefix(s, r)``;
    * ``len(s)`` — ``length(s)``.

    Examples
    --------
    >>> s = BitString("0101")
    >>> len(s)
    4
    >>> s.concat(BitString("1")).to01()
    '01011'
    >>> BitString("01").is_prefix_of(s)
    True
    """

    __slots__ = ("_value", "_length")

    def __init__(self, bits: Union[str, "BitString", None] = None) -> None:
        if bits is None:
            self._value = 0
            self._length = 0
        elif isinstance(bits, BitString):
            self._value = bits._value
            self._length = bits._length
        elif isinstance(bits, str):
            if bits and any(c not in "01" for c in bits):
                raise ValueError(f"bit string may contain only 0/1: {bits!r}")
            self._value = int(bits, 2) if bits else 0
            self._length = len(bits)
        else:
            raise TypeError(f"cannot build BitString from {type(bits).__name__}")

    @classmethod
    def from_int(cls, value: int, length: int) -> "BitString":
        """Build a bit string of exactly ``length`` bits from an integer.

        The integer supplies the low ``length`` bits, most significant first.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if value < 0:
            raise ValueError("value must be non-negative")
        if value >> length:
            raise ValueError(f"value {value} does not fit in {length} bits")
        out = cls.__new__(cls)
        out._value = value
        out._length = length
        return out

    @classmethod
    def _trusted(cls, value: int, length: int) -> "BitString":
        """Internal fast constructor: caller guarantees ``0 <= value < 2**length``.

        The stations draw and concatenate nonces on every handshake; this
        skips :meth:`from_int`'s range checks for values that are already
        invariant-true by construction.
        """
        out = cls.__new__(cls)
        out._value = value
        out._length = length
        return out

    # -- Figure 3 operations -------------------------------------------------

    def concat(self, other: "BitString") -> "BitString":
        """Return the concatenation ``self || other`` (Figure 3 ``concat``)."""
        if not isinstance(other, BitString):
            raise TypeError("can only concat BitString with BitString")
        return BitString._trusted(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def is_prefix_of(self, other: "BitString") -> bool:
        """Return True iff ``self`` is a prefix of ``other`` (Figure 3 ``prefix``).

        Every string is a prefix of itself; the empty string is a prefix of
        everything.
        """
        if not isinstance(other, BitString):
            raise TypeError("prefix comparison requires a BitString")
        if self._length > other._length:
            return False
        return (other._value >> (other._length - self._length)) == self._value

    def is_proper_prefix_of(self, other: "BitString") -> bool:
        """Return True iff ``self`` is a strictly shorter prefix of ``other``."""
        return self._length < len(other) and self.is_prefix_of(other)

    def is_comparable_with(self, other: "BitString") -> bool:
        """Return True iff one string is a prefix of the other.

        The receiver of Figure 5 delivers a message exactly when the incoming
        τ is *not* comparable with its stored τ — comparability means "same
        handshake", incomparability means "new message".
        """
        return self.is_prefix_of(other) or other.is_prefix_of(self)

    # -- derived helpers ------------------------------------------------------

    def prefix(self, length: int) -> "BitString":
        """Return the first ``length`` bits of this string."""
        if not 0 <= length <= self._length:
            raise ValueError(f"prefix length {length} out of range 0..{self._length}")
        return BitString._trusted(self._value >> (self._length - length), length)

    def suffix(self, length: int) -> "BitString":
        """Return the last ``length`` bits of this string.

        Lemma 2 of the paper reasons about "the last size(t, ε) bits of ρ";
        this is that operation.
        """
        if not 0 <= length <= self._length:
            raise ValueError(f"suffix length {length} out of range 0..{self._length}")
        mask = (1 << length) - 1
        return BitString._trusted(self._value & mask, length)

    def to01(self) -> str:
        """Render as a string of '0'/'1' characters (MSB first)."""
        if self._length == 0:
            return ""
        return format(self._value, f"0{self._length}b")

    def bits(self) -> Iterator[int]:
        """Iterate over the bits, most significant first."""
        for shift in range(self._length - 1, -1, -1):
            yield (self._value >> shift) & 1

    @property
    def value(self) -> int:
        """The bits interpreted as a big-endian integer."""
        return self._value

    # -- dunder protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitString):
            return NotImplemented
        return self._length == other._length and self._value == other._value

    def __hash__(self) -> int:
        return hash((self._length, self._value))

    def __add__(self, other: "BitString") -> "BitString":
        return self.concat(other)

    def __getitem__(self, index: int) -> int:
        if isinstance(index, slice):
            raise TypeError("use .prefix()/.suffix() instead of slicing")
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("bit index out of range")
        return (self._value >> (self._length - 1 - index)) & 1

    def __repr__(self) -> str:
        shown = self.to01()
        if len(shown) > 40:
            shown = f"{shown[:18]}...{shown[-18:]}"
        return f"BitString({shown!r}, len={self._length})"


#: The empty bit string.
EMPTY = BitString("")

#: Sentinel value the receiver assigns to τ^R after a crash (Figure 3:
#: "τ_crash returns some predefined string, e.g. 0").
TAU_CRASH = BitString("0")

#: The leading bit forced onto every transmitter nonce so that τ_crash is
#: never a prefix of τ^T (Figure 3: "τ'_crash returns a string different
#: from τ_crash, e.g. 1").
TAU_PRIME_CRASH = BitString("1")
