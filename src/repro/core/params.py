"""Protocol parameters: the ``size`` and ``bound`` functions of Figure 3.

The protocol's defence against replay is *adaptive nonce extension*: a
station tolerates ``bound(t)`` wrong packets against its current nonce, then
appends ``size(t+1, ε)`` fresh random bits and resets the counter.  The paper
leaves the concrete pair as a tunable ("The specific pair of bound and size
given in Figure 3 is not the only selection that ensures correctness") and
names choosing good functions an open problem (§5).

We therefore expose the pair as a pluggable :class:`SizeBoundPolicy`.  The
union bound of Lemmas 4/6 needs, per lemma,

    Σ_{t≥1} bound(t) · 2^(−size(t, ε))  ≤  ε/4 ,

because at generation ``t`` the adversary gets ``bound(t)`` guesses at a
fresh ``size(t, ε)``-bit suffix.  :class:`SoundPolicy` (the default)
satisfies this with margin; :class:`PrintedPaperPolicy` implements the
constants literally as printed in the (OCR-damaged) technical report, and
:class:`AggressivePolicy` trades longer nonces for fewer extensions.  The
ablation benchmark (experiment E8) compares them.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.exceptions import ConfigurationError

__all__ = [
    "SizeBoundPolicy",
    "SoundPolicy",
    "PrintedPaperPolicy",
    "AggressivePolicy",
    "FixedPolicy",
    "ProtocolParams",
    "log2_inverse",
]


# Memo for SizeBoundPolicy.is_sound: (policy type, policy attrs, ε, horizon)
# → verdict.  Bounded in practice by the handful of distinct policy/ε pairs a
# process ever constructs.
_SOUNDNESS_CACHE: dict = {}


def log2_inverse(epsilon: float) -> int:
    """Return ⌈log2(1/ε)⌉, the number of bits needed to push a uniform
    guess below ε."""
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(1, math.ceil(math.log2(1.0 / epsilon)))


class SizeBoundPolicy(ABC):
    """A (size, bound) pair governing nonce growth.

    ``size(t, ε)`` is the number of fresh bits appended at generation ``t``
    (generations are 1-based, matching ``t^R``/``t^T`` in Appendix A);
    ``bound(t)`` is the number of same-length mismatches tolerated before
    moving to generation ``t + 1``.
    """

    name: str = "abstract"

    @abstractmethod
    def size(self, t: int, epsilon: float) -> int:
        """Bits appended at generation ``t`` for security parameter ``ε``."""

    @abstractmethod
    def bound(self, t: int) -> int:
        """Wrong packets tolerated at generation ``t`` before extending."""

    # -- analysis helpers -------------------------------------------------------

    def generation_failure_mass(self, t: int, epsilon: float) -> float:
        """Upper bound on P[adversary hits the generation-``t`` suffix].

        ``bound(t)`` guesses at a uniform ``size(t, ε)``-bit string.
        """
        return self.bound(t) * 2.0 ** (-self.size(t, epsilon))

    def total_failure_mass(self, epsilon: float, horizon: int = 64) -> float:
        """Σ_t bound(t)·2^(−size(t, ε)) up to ``horizon`` generations.

        For a policy to support the paper's Theorem 3 accounting this must
        be ≤ ε/4 (each of the four lemmas spends ε/4).
        """
        return sum(self.generation_failure_mass(t, epsilon) for t in range(1, horizon + 1))

    def is_sound(self, epsilon: float, horizon: int = 64) -> bool:
        """True iff the union bound telescopes to at most ε/4.

        The verdict is a pure function of the policy's state and (ε,
        horizon), yet :class:`ProtocolParams` re-asks it for every link —
        once per run in a campaign, always with identical inputs.  A
        class-level memo keyed on the policy's type and attributes makes
        repeat validation free; policies with unhashable state skip the
        cache rather than corrupt it.
        """
        key = (
            type(self),
            tuple(sorted(self.__dict__.items())),
            epsilon,
            horizon,
        )
        try:
            verdict = _SOUNDNESS_CACHE.get(key)
        except TypeError:
            return self.total_failure_mass(epsilon, horizon) <= epsilon / 4.0
        if verdict is None:
            verdict = self.total_failure_mass(epsilon, horizon) <= epsilon / 4.0
            _SOUNDNESS_CACHE[key] = verdict
        return verdict

    def cumulative_size(self, t: int, epsilon: float) -> int:
        """Total nonce length after ``t`` generations (storage metric)."""
        return sum(self.size(s, epsilon) for s in range(1, t + 1))

    def validate(self, epsilon: float) -> None:
        """Raise :class:`ConfigurationError` on degenerate parameters."""
        for t in (1, 2, 8):
            if self.size(t, epsilon) < 1:
                raise ConfigurationError(f"{self.name}: size({t}) must be >= 1")
            if self.bound(t) < 1:
                raise ConfigurationError(f"{self.name}: bound({t}) must be >= 1")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SoundPolicy(SizeBoundPolicy):
    """Default policy: ``size(t, ε) = 2t + 4 + ⌈log2(1/ε)⌉``, ``bound(t) = 2^t``.

    Per-generation failure mass is ``2^t · ε · 2^(−2t−4) = ε/2^(t+4)``, so the
    total over all generations is at most ε/16 < ε/4 — the accounting
    Theorem 3 requires, with room to spare.
    """

    name = "sound"

    def size(self, t: int, epsilon: float) -> int:
        if t < 1:
            raise ValueError("generations are 1-based")
        return 2 * t + 4 + log2_inverse(epsilon)

    def bound(self, t: int) -> int:
        if t < 1:
            raise ValueError("generations are 1-based")
        return 2 ** t


class PrintedPaperPolicy(SizeBoundPolicy):
    """The constants literally as printed in TR #563 Figure 3.

    ``size(t, ε) = t + 4 − ⌊log2 ε⌋`` and ``bound(t) = ⌊2^t / 4⌋`` (reading
    the garbled "⌊2t/4⌋" as the exponential the analysis needs; the linear
    reading makes ``bound(1) = 0``, which deadlocks generation 1).  Each
    generation's failure mass is a constant ε/64, so the infinite-horizon
    union bound does not telescope — usable in practice (few generations
    ever happen) but included mainly for the E8 ablation.
    """

    name = "printed"

    def size(self, t: int, epsilon: float) -> int:
        if t < 1:
            raise ValueError("generations are 1-based")
        return t + 4 + log2_inverse(epsilon)

    def bound(self, t: int) -> int:
        if t < 1:
            raise ValueError("generations are 1-based")
        return max(1, 2 ** t // 4)


class AggressivePolicy(SizeBoundPolicy):
    """Fast-growing nonces: ``size(t, ε) = 4t + 2 + ⌈log2(1/ε)⌉``, ``bound(t) = 4^t``.

    Tolerates many more wrong packets per generation (fewer, larger
    extensions), at the cost of longer packets once faults do occur.
    Per-generation failure mass is ``ε·2^(−2t−2)``, total ≤ ε/12 < ε/4.
    """

    name = "aggressive"

    def size(self, t: int, epsilon: float) -> int:
        if t < 1:
            raise ValueError("generations are 1-based")
        return 4 * t + 2 + log2_inverse(epsilon)

    def bound(self, t: int) -> int:
        if t < 1:
            raise ValueError("generations are 1-based")
        return 4 ** t


class FixedPolicy(SizeBoundPolicy):
    """A *non-adaptive* policy: constant size, effectively infinite bound.

    This is the "first modification" protocol of Section 3 — a single random
    string per message that is never extended.  The paper's replay-attack
    scenario defeats exactly this; we keep it to reproduce that scenario
    (experiment E2) inside the same machinery.
    """

    name = "fixed"

    def __init__(self, nonce_bits: int = 8) -> None:
        if nonce_bits < 1:
            raise ConfigurationError("nonce_bits must be >= 1")
        self.nonce_bits = nonce_bits

    def size(self, t: int, epsilon: float) -> int:
        return self.nonce_bits if t == 1 else 0

    def bound(self, t: int) -> int:
        return 2 ** 62  # never reached in any finite execution

    def validate(self, epsilon: float) -> None:
        # size(t>1) == 0 is intentional here; skip the generic check.
        if self.nonce_bits < 1:
            raise ConfigurationError("nonce_bits must be >= 1")

    def __repr__(self) -> str:
        return f"FixedPolicy(nonce_bits={self.nonce_bits})"


@dataclass(frozen=True)
class ProtocolParams:
    """Bundle of everything a station pair needs agreed up front.

    Attributes
    ----------
    epsilon:
        The security parameter ε of Section 2.6: per-message error
        probability the protocol may not exceed.
    policy:
        The (size, bound) pair governing nonce extension.
    require_sound_policy:
        If True (default), reject policies whose union bound does not
        telescope to ε/4 — set False to run the E8 ablation or the broken
        baseline of experiment E2.
    """

    epsilon: float = 2.0 ** -20
    policy: SizeBoundPolicy = field(default_factory=SoundPolicy)
    require_sound_policy: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {self.epsilon}")
        self.policy.validate(self.epsilon)
        if self.require_sound_policy and not self.policy.is_sound(self.epsilon):
            raise ConfigurationError(
                f"policy {self.policy.name!r} does not satisfy the epsilon/4 union "
                f"bound; pass require_sound_policy=False to use it anyway"
            )
        # Per-generation memo: the stations ask for size/bound on every nonce
        # draw and error count, and both are pure in (policy, ε, t).  The
        # caches live outside the frozen field set (object.__setattr__ is the
        # sanctioned escape hatch in __post_init__).
        object.__setattr__(self, "_size_cache", {})
        object.__setattr__(self, "_bound_cache", {})

    def size(self, t: int) -> int:
        """``size(t, ε)`` with this configuration's ε baked in."""
        cache = self._size_cache
        value = cache.get(t)
        if value is None:
            value = cache[t] = self.policy.size(t, self.epsilon)
        return value

    def bound(self, t: int) -> int:
        """``bound(t)`` of the configured policy."""
        cache = self._bound_cache
        value = cache.get(t)
        if value is None:
            value = cache[t] = self.policy.bound(t)
        return value
