"""Event vocabulary for executions of ``D(A, ADV)``.

Section 2 of the paper describes the system as I/O automata whose external
actions form an *execution*.  The simulator records executions as sequences
of the event types defined here; the checkers in :mod:`repro.checkers`
evaluate the Section 2.6 correctness conditions directly on these
sequences, so every event carries exactly the information the definitions
mention (messages, packet identifiers, channel directions).

Two channel directions exist, named after the paper's superscripts:
``T_TO_R`` (``C^{T→R}``) and ``R_TO_T`` (``C^{R→T}``).

Events are immutable value types on the simulator's hottest path (several
are allocated per step), so the hierarchy is slotted wherever the runtime
supports it and the four field-less events are also available as interned
singletons (:data:`OK`, :data:`CRASH_T`, :data:`CRASH_R`, :data:`RETRY`)
that the recording layer reuses instead of allocating fresh instances.
``ChannelId`` members are interned by construction (enum members are
singletons), so identity comparison on channels is always safe.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass

from repro.util.hotpath import trusted_constructor

__all__ = [
    "ChannelId",
    "Event",
    "SendMsg",
    "Ok",
    "ReceiveMsg",
    "CrashT",
    "CrashR",
    "Retry",
    "Corruption",
    "PktSent",
    "PktDelivered",
    "StationOutput",
    "EmitPacket",
    "EmitOk",
    "EmitReceiveMsg",
    "OK",
    "CRASH_T",
    "CRASH_R",
    "RETRY",
    "EMIT_OK",
    "make_send_msg",
    "make_receive_msg",
    "make_pkt_sent",
    "make_pkt_delivered",
    "make_emit_packet",
    "make_emit_receive_msg",
]

# ``slots=True`` needs Python 3.10; on 3.9 the classes degrade gracefully to
# ordinary frozen dataclasses (with a per-instance __dict__).
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


class ChannelId(str, enum.Enum):
    """The two unidirectional channels of Figure 1."""

    T_TO_R = "T->R"
    R_TO_T = "R->T"

    def __str__(self) -> str:  # keeps traces readable
        return self.value


@dataclass(frozen=True, **_SLOTS)
class Event:
    """Base class for all recorded execution events."""


@dataclass(frozen=True, **_SLOTS)
class SendMsg(Event):
    """``send_msg(m)``: the higher layer hands message ``m`` to the TM."""

    message: bytes


@dataclass(frozen=True, **_SLOTS)
class Ok(Event):
    """``OK``: the TM notifies the higher layer the last message arrived."""


@dataclass(frozen=True, **_SLOTS)
class ReceiveMsg(Event):
    """``receive_msg(m)``: the RM delivers ``m`` to the higher layer."""

    message: bytes


@dataclass(frozen=True, **_SLOTS)
class CrashT(Event):
    """``crash^T``: the transmitting station loses its entire memory."""


@dataclass(frozen=True, **_SLOTS)
class CrashR(Event):
    """``crash^R``: the receiving station loses its entire memory."""


@dataclass(frozen=True, **_SLOTS)
class Retry(Event):
    """The RM's internal RETRY action (assumed to recur forever)."""


@dataclass(frozen=True, **_SLOTS)
class Corruption(Event):
    """An arbitrary-state fault scrambled a station's volatile memory.

    Unlike ``crash^T``/``crash^R`` (which wipe to a *known* blank), a
    corruption leaves the station in an adversarially random configuration.
    ``fields`` names the volatile slots that were actually scrambled and
    ``seed`` pins the scramble tape, so a recorded corruption replays
    bit-identically from its trace or fault-plan artifact.
    """

    station: str  # "T" or "R"
    fields: "tuple"  # tuple of field-name strings
    seed: int


@dataclass(frozen=True, **_SLOTS)
class PktSent(Event):
    """``send_pkt``/``new_pkt``: a packet entered a channel.

    ``packet_id`` and ``length_bits`` are exactly what ``new_pkt(id, l)``
    exposes to the adversary — never the contents.
    """

    channel: ChannelId
    packet_id: int
    length_bits: int


@dataclass(frozen=True, **_SLOTS)
class PktDelivered(Event):
    """``deliver_pkt``/``receive_pkt``: the adversary delivered a packet."""

    channel: ChannelId
    packet_id: int


#: Interned instances of the field-less events.  Equal (``==``) to any other
#: instance of their class, so recording layers may use them freely to avoid
#: one allocation per occurrence.
OK = Ok()
CRASH_T = CrashT()
CRASH_R = CrashR()
RETRY = Retry()


# ---------------------------------------------------------------------------
# Station outputs.  The station automata are pure transition functions that
# return lists of these; the simulator turns them into channel operations and
# trace events.  Keeping them distinct from Event keeps the automata
# decoupled from the harness.
# ---------------------------------------------------------------------------


@dataclass(frozen=True, **_SLOTS)
class StationOutput:
    """Base class for outputs produced by a station transition."""


@dataclass(frozen=True, **_SLOTS)
class EmitPacket(StationOutput):
    """The station asks for ``send_pkt(packet)`` on its outgoing channel."""

    packet: object  # DataPacket or PollPacket; typed loosely to avoid cycles


@dataclass(frozen=True, **_SLOTS)
class EmitOk(StationOutput):
    """The transmitter performs its ``OK`` output action."""


@dataclass(frozen=True, **_SLOTS)
class EmitReceiveMsg(StationOutput):
    """The receiver performs ``receive_msg(message)``."""

    message: bytes


#: Interned instance of the field-less transmitter output.
EMIT_OK = EmitOk()


#: Trusted fast constructors (positional: the declared field order) for the
#: event and output types the recording layer allocates per step.
make_send_msg = trusted_constructor(SendMsg, "message")
make_receive_msg = trusted_constructor(ReceiveMsg, "message")
make_pkt_sent = trusted_constructor(PktSent, "channel", "packet_id", "length_bits")
make_pkt_delivered = trusted_constructor(PktDelivered, "channel", "packet_id")
make_emit_packet = trusted_constructor(EmitPacket, "packet")
make_emit_receive_msg = trusted_constructor(EmitReceiveMsg, "message")
