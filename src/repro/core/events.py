"""Event vocabulary for executions of ``D(A, ADV)``.

Section 2 of the paper describes the system as I/O automata whose external
actions form an *execution*.  The simulator records executions as sequences
of the event types defined here; the checkers in :mod:`repro.checkers`
evaluate the Section 2.6 correctness conditions directly on these
sequences, so every event carries exactly the information the definitions
mention (messages, packet identifiers, channel directions).

Two channel directions exist, named after the paper's superscripts:
``T_TO_R`` (``C^{T→R}``) and ``R_TO_T`` (``C^{R→T}``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ChannelId",
    "Event",
    "SendMsg",
    "Ok",
    "ReceiveMsg",
    "CrashT",
    "CrashR",
    "Retry",
    "PktSent",
    "PktDelivered",
    "StationOutput",
    "EmitPacket",
    "EmitOk",
    "EmitReceiveMsg",
]


class ChannelId(str, enum.Enum):
    """The two unidirectional channels of Figure 1."""

    T_TO_R = "T->R"
    R_TO_T = "R->T"

    def __str__(self) -> str:  # keeps traces readable
        return self.value


@dataclass(frozen=True)
class Event:
    """Base class for all recorded execution events."""


@dataclass(frozen=True)
class SendMsg(Event):
    """``send_msg(m)``: the higher layer hands message ``m`` to the TM."""

    message: bytes


@dataclass(frozen=True)
class Ok(Event):
    """``OK``: the TM notifies the higher layer the last message arrived."""


@dataclass(frozen=True)
class ReceiveMsg(Event):
    """``receive_msg(m)``: the RM delivers ``m`` to the higher layer."""

    message: bytes


@dataclass(frozen=True)
class CrashT(Event):
    """``crash^T``: the transmitting station loses its entire memory."""


@dataclass(frozen=True)
class CrashR(Event):
    """``crash^R``: the receiving station loses its entire memory."""


@dataclass(frozen=True)
class Retry(Event):
    """The RM's internal RETRY action (assumed to recur forever)."""


@dataclass(frozen=True)
class PktSent(Event):
    """``send_pkt``/``new_pkt``: a packet entered a channel.

    ``packet_id`` and ``length_bits`` are exactly what ``new_pkt(id, l)``
    exposes to the adversary — never the contents.
    """

    channel: ChannelId
    packet_id: int
    length_bits: int


@dataclass(frozen=True)
class PktDelivered(Event):
    """``deliver_pkt``/``receive_pkt``: the adversary delivered a packet."""

    channel: ChannelId
    packet_id: int


# ---------------------------------------------------------------------------
# Station outputs.  The station automata are pure transition functions that
# return lists of these; the simulator turns them into channel operations and
# trace events.  Keeping them distinct from Event keeps the automata
# decoupled from the harness.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StationOutput:
    """Base class for outputs produced by a station transition."""


@dataclass(frozen=True)
class EmitPacket(StationOutput):
    """The station asks for ``send_pkt(packet)`` on its outgoing channel."""

    packet: object  # DataPacket or PollPacket; typed loosely to avoid cycles


@dataclass(frozen=True)
class EmitOk(StationOutput):
    """The transmitter performs its ``OK`` output action."""


@dataclass(frozen=True)
class EmitReceiveMsg(StationOutput):
    """The receiver performs ``receive_msg(message)``."""

    message: bytes
