"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
programming errors (``TypeError``, ``ValueError`` from the standard library)
still propagate normally where appropriate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProtocolError(ReproError):
    """A protocol automaton was driven in a way its interface forbids.

    For example, calling ``send_msg`` on a transmitter that is still busy
    violates Axiom 1 of the paper (the higher layer must wait for OK or a
    crash before submitting the next message).
    """


class ChannelError(ReproError):
    """The communication channel was used incorrectly."""


class UnknownPacketError(ChannelError):
    """An adversary asked the channel to deliver an identifier it never issued.

    The channel only delivers packets that were previously sent (the causality
    axiom of Section 2.3); requesting an unknown identifier is a bug in the
    adversary, not a tolerated fault.
    """

    def __init__(self, packet_id: int) -> None:
        super().__init__(f"channel never issued packet id {packet_id}")
        self.packet_id = packet_id


class CodecError(ReproError):
    """A packet could not be encoded to, or decoded from, its wire format."""


class AxiomViolationError(ReproError):
    """An execution violated one of the environment axioms (Axioms 1-3).

    The correctness conditions of Section 2.6 are only guaranteed for
    executions that respect the axioms; the simulator raises this error
    eagerly instead of producing a trace the theorems say nothing about.
    """


class TraceRetentionError(ReproError):
    """A query needed events a trace's retention mode discarded.

    Raised when e.g. ``of_type`` or ``message_outcomes`` is called on a
    trace recorded with ``retain="tail"`` or ``retain="none"`` — the
    counters still answer ``count``-style queries, but the events
    themselves are gone by design.  Re-run with ``retain="full"`` (or use
    the streaming checkers, which never need retained events).
    """


class CheckFailure(ReproError):
    """A correctness condition of Section 2.6 failed on a recorded trace.

    Raised by the checkers in :mod:`repro.checkers` when ``strict=True``.
    Carries the human-readable diagnosis produced by the checker.
    """

    def __init__(self, condition: str, detail: str) -> None:
        super().__init__(f"{condition} violated: {detail}")
        self.condition = condition
        self.detail = detail


class SimulationError(ReproError):
    """The simulation harness reached an inconsistent internal state."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid parameters."""
