"""The receiving module (RM) of Appendix A, Figure 5.

The receiver owns the pace of the protocol: its internal RETRY action
(assumed to occur infinitely often) retransmits the current poll packet
``(ρ^R, τ^R, i^R)`` until progress happens.  On an incoming data packet
``(m, ρ, τ)`` it applies Figure 5's decision tree:

* ``ρ = ρ^R`` and ``τ^R`` a prefix of ``τ``  →  same handshake, the
  transmitter merely extended its nonce: adopt the longer τ, do **not**
  deliver again;
* ``ρ = ρ^R`` and τ incomparable with ``τ^R``  →  a new message: deliver
  it, remember its τ, draw a fresh challenge ρ, reset all counters;
* ``ρ = ρ^R`` and τ a proper prefix of ``τ^R``  →  stale packet, ignore;
* ``ρ ≠ ρ^R`` of the *same length* (and not the previous handshake's ρ)
  →  count toward ``num^R`` and extend ρ^R once ``bound(t^R)`` is hit.

After ``crash^R`` the memory resets with ``τ^R = τ_crash``; since live
transmitter nonces always start with ``τ'_crash``, the first genuine data
packet after a receiver crash is always recognised as new — no message is
lost across a receiver crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.bitstrings import BitString, TAU_CRASH
from repro.core.events import StationOutput, make_emit_packet, make_emit_receive_msg
from repro.core.exceptions import ProtocolError
from repro.core.packets import DataPacket, make_poll_packet
from repro.core.params import ProtocolParams
from repro.core.random_source import RandomSource

__all__ = ["Receiver", "ReceiverStats"]


@dataclass
class ReceiverStats:
    """Counters exposed for the metrics pipeline (not protocol state)."""

    packets_sent: int = 0
    deliveries: int = 0
    crashes: int = 0
    corruptions: int = 0
    errors_counted: int = 0
    extensions: int = 0
    stale_ignored: int = 0
    tau_updates: int = 0
    max_rho_bits: int = 0

    def observe_rho(self, rho: BitString) -> None:
        self.max_rho_bits = max(self.max_rho_bits, len(rho))


class Receiver:
    """The RM automaton: polls the transmitter and delivers new messages.

    Like :class:`~repro.core.transmitter.Transmitter` this is a pure state
    machine; the simulator calls :meth:`retry` whenever the RETRY internal
    action is scheduled and :meth:`on_receive_pkt` for channel deliveries.
    """

    def __init__(self, params: ProtocolParams, rng: RandomSource) -> None:
        self._params = params
        self._rng = rng
        self.stats = ReceiverStats()
        self._reset_memory()
        self.stats.crashes = 0

    # -- state inspection -------------------------------------------------------

    @property
    def rho(self) -> BitString:
        """The current challenge ρ^R."""
        return self._rho

    @property
    def tau(self) -> BitString:
        """τ^R: the nonce of the last accepted message (or τ_crash)."""
        return self._tau

    @property
    def generation(self) -> int:
        """t^R: how many times ρ^R has been extended for this message."""
        return self._t

    @property
    def error_count(self) -> int:
        """num^R: same-length ρ mismatches seen at the current generation."""
        return self._num

    @property
    def retry_counter(self) -> int:
        """i^R: retries since the last receive_msg or crash."""
        return self._i

    @property
    def messages_accepted(self) -> int:
        """k − 1: how many messages this incarnation has delivered."""
        return self._k - 1

    @property
    def storage_bits(self) -> int:
        """Current volatile-state footprint attributable to nonces."""
        prev = len(self._prev_rho) if self._prev_rho else 0
        return len(self._rho) + len(self._tau) + prev

    # -- input actions ------------------------------------------------------------

    #: Volatile fields an arbitrary-state fault may scramble, in the fixed
    #: order :meth:`corrupt` processes them (the scramble tape is consumed
    #: field by field, so order is part of the replay contract).
    CORRUPTIBLE_FIELDS: Tuple[str, ...] = (
        "k", "t", "num", "i", "tau", "rho", "prev_rho",
    )

    def crash(self) -> None:
        """``crash^R``: erase the entire memory (back to the initial value)."""
        self._reset_memory()

    def corrupt(
        self, rng: RandomSource, fields: Optional[Sequence[str]] = None
    ) -> Tuple[str, ...]:
        """Scramble volatile state in place (the arbitrary-state fault).

        The dual of :meth:`Transmitter.corrupt <repro.core.transmitter.
        Transmitter.corrupt>`: nonces are XOR-masked to uniform strings of
        their current length, counters redrawn.  ``rng`` is the pinned
        scramble tape (not the station's entropy source), so replaying the
        same seed over the same pre-fault state is bit-identical.  Returns
        the names of the fields actually scrambled.
        """
        wanted = self.CORRUPTIBLE_FIELDS if fields is None else tuple(fields)
        for name in wanted:
            if name not in self.CORRUPTIBLE_FIELDS:
                raise ValueError(
                    f"unknown receiver field {name!r} "
                    f"(corruptible: {', '.join(self.CORRUPTIBLE_FIELDS)})"
                )
        scrambled = []
        for name in self.CORRUPTIBLE_FIELDS:
            if name not in wanted:
                continue
            if name == "k":
                self._k = rng.randint(1, self._k + 4)
                scrambled.append(name)
            elif name == "t":
                self._t = rng.randint(1, max(self._t, 1) + 4)
                scrambled.append(name)
            elif name == "num":
                self._num = rng.randint(0, max(self._num, 1) + 4)
                scrambled.append(name)
            elif name == "i":
                self._i = rng.randint(1, self._i + 8)
                scrambled.append(name)
            elif name == "tau":
                self._tau = rng.scramble_bits(self._tau)
                scrambled.append(name)
            elif name == "rho":
                self._rho = rng.scramble_bits(self._rho)
                self.stats.observe_rho(self._rho)
                scrambled.append(name)
            elif name == "prev_rho":
                if self._prev_rho is not None:
                    self._prev_rho = rng.scramble_bits(self._prev_rho)
                    scrambled.append(name)
        self.stats.corruptions += 1
        return tuple(scrambled)

    def retry(self) -> List[StationOutput]:
        """The internal RETRY action: (re)send the current poll packet."""
        packet = make_poll_packet(self._rho, self._tau, self._i)
        self._i += 1
        self.stats.packets_sent += 1
        return [make_emit_packet(packet)]

    def on_receive_pkt(self, packet: DataPacket) -> List[StationOutput]:
        """``receive_pkt^{T→R}(m, ρ, τ)``: Figure 5's decision tree."""
        if not isinstance(packet, DataPacket):
            raise ProtocolError(
                f"receiver received a {type(packet).__name__}; only "
                f"DataPacket travels on C^(T->R)"
            )
        if packet.rho == self._rho:
            return self._on_matching_challenge(packet)
        self._count_rho_error(packet.rho)
        return []

    # -- internals ------------------------------------------------------------------

    def _on_matching_challenge(self, packet: DataPacket) -> List[StationOutput]:
        if self._tau.is_prefix_of(packet.tau):
            # Same handshake, transmitter extended its nonce: keep up so our
            # next poll acknowledges the full string.  No second delivery.
            if packet.tau != self._tau:
                self._tau = packet.tau
                self.stats.tau_updates += 1
            return []
        if packet.tau.is_prefix_of(self._tau):
            # τ is a proper prefix of τ^R: an old packet from earlier in this
            # same handshake.  Ignore it.
            self.stats.stale_ignored += 1
            return []
        # τ incomparable with τ^R: a genuinely new message.
        self._tau = packet.tau
        self._k += 1
        self._t = 1
        self._num = 0
        self._i = 1
        self._prev_rho = self._rho
        self._rho = self._rng.random_bits(self._params.size(1))
        self.stats.deliveries += 1
        self.stats.observe_rho(self._rho)
        return [make_emit_receive_msg(packet.message)]

    def _count_rho_error(self, rho: BitString) -> None:
        """num^R bookkeeping (the ELSE branch of Figure 5).

        Only packets whose ρ has the *same length* as ρ^R burn error budget:
        shorter ρ values are necessarily from before our latest extension,
        and the previous handshake's ρ (``ρ_{k−1}`` in Figure 5) is a benign
        duplicate of a message we already accepted.
        """
        if len(rho) != len(self._rho):
            return
        if self._prev_rho is not None and rho == self._prev_rho:
            return
        self._num += 1
        self.stats.errors_counted += 1
        if self._num >= self._params.bound(self._t):
            self._t += 1
            self._num = 0
            self._rho = self._rho.concat(self._rng.random_bits(self._params.size(self._t)))
            self.stats.extensions += 1
            self.stats.observe_rho(self._rho)

    def _reset_memory(self) -> None:
        self._k = 1
        self._t = 1
        self._num = 0
        self._i = 1
        self._tau = TAU_CRASH
        self._rho = self._rng.random_bits(self._params.size(1))
        self._prev_rho: Optional[BitString] = None
        self.stats.crashes += 1
        self.stats.observe_rho(self._rho)

    def __repr__(self) -> str:
        return (
            f"Receiver(k={self._k}, t={self._t}, num={self._num}, "
            f"|rho|={len(self._rho)}, |tau|={len(self._tau)}, i={self._i})"
        )
