"""Packet types and their wire codec.

The protocol exchanges two packet shapes (Section 3 / Appendix A):

* **data packets** ``(m, ρ, τ)`` from transmitter to receiver, carrying the
  message ``m``, the echoed receiver challenge ρ, and the transmitter
  nonce τ;
* **poll/ack packets** ``(ρ, τ, i)`` from receiver to transmitter, carrying
  the receiver's current challenge ρ, the τ of the last accepted message,
  and the retry counter ``i``.

The model of Section 2.3 defines packets as elements of {0,1}* with a
``length`` function, and the adversary observes *only* identifiers and
lengths.  We therefore give every packet a canonical wire encoding;
``wire_length_bits`` is the ``length(p)`` the channel reports to the
adversary.  Encoding/decoding round-trips exactly, which the property tests
verify, so simulations may pass packet objects by reference without losing
fidelity.

**Zero-copy discipline.**  The live wire (docs/PROTOCOL.md §15) drains
batches of datagrams into reusable buffers, so every reader here accepts a
``memoryview`` as well as ``bytes`` and never materializes intermediate
slices: :func:`peek_wire_info` reads only the identifier octets,
:func:`decode_packet` unpacks straight out of the caller's buffer (the one
unavoidable copy is the message payload, which outlives the buffer), and
the ``*_into`` encoders serialize into a caller-supplied ``bytearray`` with
lane/session prefixes written in place of a concatenation.  A view handed
to these functions is only valid for the duration of the call — the live
drain loop reuses its buffers on the next wakeup.
"""

from __future__ import annotations

import struct
import sys
from dataclasses import dataclass
from typing import NamedTuple, Optional, Union

from repro.core.bitstrings import BitString
from repro.core.exceptions import CodecError
from repro.util.hotpath import trusted_constructor

__all__ = [
    "DataPacket",
    "PollPacket",
    "Packet",
    "PollEncoder",
    "WireInfo",
    "MAX_LANES",
    "encode_packet",
    "encode_packet_into",
    "packet_wire_bytes",
    "decode_packet",
    "encode_lane_frame",
    "decode_lane_frame",
    "lane_prefix",
    "peek_wire_info",
    "make_data_packet",
    "make_poll_packet",
]

#: Anything the codec can read without copying: the classic wire hands the
#: endpoints ``bytes``, the batched wire hands them ``memoryview`` slices
#: of pooled receive buffers.
ReadableBuffer = Union[bytes, bytearray, memoryview]

# Packets are allocated once per send_pkt; slot them where the runtime allows.
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

_KIND_DATA = 0xD1
_KIND_POLL = 0xA5

#: Highest lane count a multi-lane deployment may use.  Lane ids occupy the
#: range [0, MAX_LANES) so a lane byte can never collide with the packet
#: kind bytes (both >= 0x80), which is what keeps laned and unlaned frames
#: distinguishable from their first octet alone.
MAX_LANES = 64

_LANE_PREFIXES = tuple(bytes([lane]) for lane in range(MAX_LANES))


def _encode_bitstring(bits: BitString) -> bytes:
    """Length-prefixed encoding of a bit string: u32 bit count + packed bytes."""
    n = len(bits)
    nbytes = (n + 7) // 8
    value = bits.value << (nbytes * 8 - n) if n else 0
    return struct.pack(">I", n) + value.to_bytes(nbytes, "big")


def _bitstring_wire_bytes(bits: BitString) -> int:
    """Byte length of :func:`_encode_bitstring`'s output, without encoding."""
    return 4 + (len(bits) + 7) // 8


def _encode_bitstring_into(buf: bytearray, offset: int, bits: BitString) -> int:
    """Write :func:`_encode_bitstring`'s output at ``buf[offset:]``.

    Returns the new offset.  The caller guarantees capacity (see
    :func:`packet_wire_bytes`); ``struct.pack_into`` raises on a short
    buffer rather than silently extending it the way slice assignment on a
    ``bytearray`` would.
    """
    n = len(bits)
    nbytes = (n + 7) // 8
    value = bits.value << (nbytes * 8 - n) if n else 0
    struct.pack_into(">I", buf, offset, n)
    offset += 4
    buf[offset : offset + nbytes] = value.to_bytes(nbytes, "big")
    return offset + nbytes


def _decode_bitstring(data: ReadableBuffer, offset: int) -> "tuple[BitString, int]":
    if offset + 4 > len(data):
        raise CodecError("truncated bit-string length")
    (n,) = struct.unpack_from(">I", data, offset)
    offset += 4
    nbytes = (n + 7) // 8
    if offset + nbytes > len(data):
        raise CodecError("truncated bit-string body")
    raw = int.from_bytes(data[offset : offset + nbytes], "big")
    value = raw >> (nbytes * 8 - n) if n else 0
    return BitString.from_int(value, n), offset + nbytes


@dataclass(frozen=True, **_SLOTS)
class DataPacket:
    """A transmitter→receiver packet ``(m, ρ, τ)``."""

    message: bytes
    rho: BitString
    tau: BitString

    def __post_init__(self) -> None:
        if not isinstance(self.message, bytes):
            raise TypeError("message payload must be bytes")

    def encode(self) -> bytes:
        """Serialise to the canonical wire format."""
        return (
            bytes([_KIND_DATA])
            + struct.pack(">I", len(self.message))
            + self.message
            + _encode_bitstring(self.rho)
            + _encode_bitstring(self.tau)
        )

    @property
    def wire_length_bits(self) -> int:
        """``length(p)`` as reported to the adversary (Section 2.3).

        Computed arithmetically from the canonical format (kind byte +
        u32 message length + message + two length-prefixed bit strings) —
        the channel reports a length per ``send_pkt``, so this must not
        pay for a full serialization.
        """
        return (
            1
            + 4
            + len(self.message)
            + _bitstring_wire_bytes(self.rho)
            + _bitstring_wire_bytes(self.tau)
        ) * 8

    def __repr__(self) -> str:
        return (
            f"DataPacket(m={self.message!r}, rho={self.rho.to01()}, "
            f"tau={self.tau.to01()})"
        )


@dataclass(frozen=True, **_SLOTS)
class PollPacket:
    """A receiver→transmitter packet ``(ρ, τ, i)``.

    Sent on every RETRY; doubles as the acknowledgement once τ names the
    transmitter's current nonce.
    """

    rho: BitString
    tau: BitString
    retry: int

    def __post_init__(self) -> None:
        if self.retry < 0:
            raise ValueError("retry counter must be non-negative")

    def encode(self) -> bytes:
        """Serialise to the canonical wire format."""
        return (
            bytes([_KIND_POLL])
            + _encode_bitstring(self.rho)
            + _encode_bitstring(self.tau)
            + struct.pack(">Q", self.retry)
        )

    @property
    def wire_length_bits(self) -> int:
        """``length(p)`` as reported to the adversary (Section 2.3).

        Arithmetic form of ``len(self.encode()) * 8`` — see
        :meth:`DataPacket.wire_length_bits`.
        """
        return (
            1
            + _bitstring_wire_bytes(self.rho)
            + _bitstring_wire_bytes(self.tau)
            + 8
        ) * 8

    def __repr__(self) -> str:
        return (
            f"PollPacket(rho={self.rho.to01()}, tau={self.tau.to01()}, "
            f"i={self.retry})"
        )


Packet = Union[DataPacket, PollPacket]

#: Trusted fast constructors (positional: the declared field order).  The
#: stations build several packets per handshake from already-validated
#: protocol state; these skip the frozen-dataclass ``__init__`` overhead.
make_data_packet = trusted_constructor(DataPacket, "message", "rho", "tau")
make_poll_packet = trusted_constructor(PollPacket, "rho", "tau", "retry")


def encode_packet(packet: Packet) -> bytes:
    """Serialise either packet kind to bytes."""
    if isinstance(packet, (DataPacket, PollPacket)):
        return packet.encode()
    raise CodecError(f"not a protocol packet: {type(packet).__name__}")


def packet_wire_bytes(packet: Packet) -> int:
    """Byte length of ``encode_packet(packet)``, without encoding.

    The batched wire sizes its pooled send buffers with this before calling
    :func:`encode_packet_into`; it is ``wire_length_bits // 8`` but named
    separately because callers here want a buffer size, not an
    adversary-visible length.
    """
    if isinstance(packet, (DataPacket, PollPacket)):
        return packet.wire_length_bits // 8
    raise CodecError(f"not a protocol packet: {type(packet).__name__}")


def encode_packet_into(buf: bytearray, offset: int, packet: Packet) -> int:
    """Serialise ``packet`` into ``buf`` at ``offset``; return the end offset.

    Byte-identical to ``buf[offset:] = encode_packet(packet)`` but without
    the intermediate ``bytes`` objects: fields are packed straight into the
    caller's (pooled, reusable) buffer.  A lane or session prefix is the
    caller's slice-prefix write before ``offset`` — never a concatenation.
    The caller guarantees ``len(buf) >= offset + packet_wire_bytes(packet)``.
    """
    if isinstance(packet, DataPacket):
        buf[offset] = _KIND_DATA
        offset += 1
        message = packet.message
        struct.pack_into(">I", buf, offset, len(message))
        offset += 4
        end = offset + len(message)
        buf[offset:end] = message
        offset = _encode_bitstring_into(buf, end, packet.rho)
        return _encode_bitstring_into(buf, offset, packet.tau)
    if isinstance(packet, PollPacket):
        buf[offset] = _KIND_POLL
        offset += 1
        offset = _encode_bitstring_into(buf, offset, packet.rho)
        offset = _encode_bitstring_into(buf, offset, packet.tau)
        struct.pack_into(">Q", buf, offset, packet.retry)
        return offset + 8
    raise CodecError(f"not a protocol packet: {type(packet).__name__}")


class WireInfo(NamedTuple):
    """What the adversary may learn from one wire datagram (Section 2.3).

    The model restricts adversary visibility to packet *identifiers* and
    *lengths* — never contents.  The chaos proxy's fault decisions go
    through this view exclusively: ``kind_byte`` is the on-wire identifier
    octet, ``kind`` its symbolic name, ``length_bits`` the full datagram
    length.  ``lane`` is the lane id of a multi-lane frame (``None`` for
    the classic unlaned wire) — structural framing, like the identifier,
    not content.  Nothing here requires (or performs) a content decode.

    A named tuple rather than a dataclass: the proxy constructs one per
    forwarded datagram, squarely on the wire hot path.
    """

    kind_byte: int
    kind: str
    length_bits: int
    lane: Optional[int] = None


_KIND_NAMES = {_KIND_DATA: "data", _KIND_POLL: "poll"}


def peek_wire_info(data: ReadableBuffer) -> WireInfo:
    """Identifier/length-only view of an encoded packet.

    This is the *maximum* the channel adversary is allowed to observe:
    the leading kind octet (plus the lane id, for a laned frame) and the
    datagram length.  Raises :class:`CodecError` on an empty datagram or
    an unknown kind byte so that in-path components can reject foreign
    traffic without ever looking at payloads.

    Accepts ``bytes`` or a ``memoryview`` into a pooled receive buffer and
    copies nothing either way: only the first one or two octets are indexed
    (indexing yields an ``int``, never a slice) plus ``len``.
    """
    size = len(data)
    if not size:
        raise CodecError("empty packet")
    first = data[0]
    # Lane bytes sit below MAX_LANES (< 0x80) and kind octets above it, so
    # one comparison routes the frame; the laned branch comes first — it is
    # the live stack's hot path (every multi-lane datagram lands here).
    if first < MAX_LANES:
        if size >= 2:
            second = data[1]
            kind = _KIND_NAMES.get(second)
            if kind is not None:
                return WireInfo(second, kind, size * 8, first)
            raise CodecError(
                f"unknown packet kind byte 0x{second:02x} on lane {first}"
            )
        raise CodecError(f"unknown packet kind byte 0x{first:02x}")
    kind = _KIND_NAMES.get(first)
    if kind is not None:
        return WireInfo(first, kind, size * 8)
    raise CodecError(f"unknown packet kind byte 0x{first:02x}")


def lane_prefix(lane: int) -> bytes:
    """The cached one-byte frame prefix for ``lane`` (validated)."""
    if not 0 <= lane < MAX_LANES:
        raise CodecError(f"lane id {lane} outside [0, {MAX_LANES})")
    return _LANE_PREFIXES[lane]


def encode_lane_frame(lane: int, payload: bytes) -> bytes:
    """Frame one encoded packet for a multi-lane wire: lane byte + payload."""
    return lane_prefix(lane) + payload


def decode_lane_frame(data: bytes) -> "tuple[int, bytes]":
    """Split a laned datagram into ``(lane, encoded_packet)``.

    Rejects empty frames, foreign lane ids, and frames with no body; the
    body itself is *not* decoded here — callers hand it to
    :func:`decode_packet`, which preserves the strict-prefix rejection
    property lane by lane.
    """
    if len(data) < 2:
        raise CodecError("truncated lane frame")
    lane = data[0]
    if lane >= MAX_LANES:
        raise CodecError(f"invalid lane id {lane}")
    return lane, data[1:]


_RETRY_STRUCT = struct.Struct(">Q")


class PollEncoder:
    """Cached wire encoding for the RM's repeated RETRY polls.

    Between two progress events every poll a receiver sends carries the
    same ``(ρ, τ_prev)`` pair — only the retry counter ``i`` advances — so
    the poll backoff loop used to re-encode two identical bit strings per
    resend.  This encoder caches the encoded ``(kind, ρ, τ)`` prefix
    (optionally behind a lane-frame byte, so the lane-frame buffer is
    built once and reused too) and re-packs only the 8-byte counter.

    The cache keys on *object identity*: the receiver automaton replaces
    its ρ/τ references exactly when their values change, and BitStrings
    are immutable, so identity is a sound (and O(1)) freshness test.
    Equal-but-distinct objects merely re-encode — never corrupt.
    """

    __slots__ = ("_prefix", "_rho", "_tau", "_cached")

    def __init__(self, lane: Optional[int] = None) -> None:
        self._prefix = lane_prefix(lane) if lane is not None else b""
        self._rho: Optional[BitString] = None
        self._tau: Optional[BitString] = None
        self._cached = b""

    def encode(self, packet: PollPacket) -> bytes:
        """Byte-identical to ``encode_lane_frame``/``encode_packet``."""
        rho, tau = packet.rho, packet.tau
        if rho is not self._rho or tau is not self._tau:
            self._rho = rho
            self._tau = tau
            self._cached = (
                self._prefix
                + bytes([_KIND_POLL])
                + _encode_bitstring(rho)
                + _encode_bitstring(tau)
            )
        return self._cached + _RETRY_STRUCT.pack(packet.retry)

    def encode_into(self, buf: bytearray, offset: int, packet: PollPacket) -> int:
        """Write :meth:`encode`'s output at ``buf[offset:]``; return end offset.

        Same cached-prefix fast path, but the prefix lands in the caller's
        pooled buffer as one slice write and the counter is packed in place
        — no per-poll ``bytes`` allocation on the batched wire.
        """
        rho, tau = packet.rho, packet.tau
        if rho is not self._rho or tau is not self._tau:
            self.encode(packet)  # refresh self._cached
        cached = self._cached
        end = offset + len(cached)
        buf[offset:end] = cached
        _RETRY_STRUCT.pack_into(buf, end, packet.retry)
        return end + 8


def decode_packet(data: ReadableBuffer) -> Packet:
    """Parse a packet from its canonical wire format.

    Raises :class:`CodecError` on any malformed input — the channel never
    corrupts packets (causality axiom), so a decode failure indicates a bug,
    not a tolerated fault.

    ``data`` may be a ``memoryview`` into a reusable receive buffer; the
    bit-string fields are unpacked straight out of it (``int.from_bytes``
    and ``unpack_from`` read any buffer), and only a data packet's message
    payload — which outlives the buffer — is materialized to ``bytes``.
    The view must stay valid for the duration of this call only.
    """
    if not data:
        raise CodecError("empty packet")
    kind, offset = data[0], 1
    if kind == _KIND_DATA:
        if offset + 4 > len(data):
            raise CodecError("truncated message length")
        (mlen,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if offset + mlen > len(data):
            raise CodecError("truncated message body")
        message = data[offset : offset + mlen]
        if type(message) is not bytes:
            message = bytes(message)
        offset += mlen
        rho, offset = _decode_bitstring(data, offset)
        tau, offset = _decode_bitstring(data, offset)
        if offset != len(data):
            raise CodecError("trailing bytes after data packet")
        return DataPacket(message=message, rho=rho, tau=tau)
    if kind == _KIND_POLL:
        rho, offset = _decode_bitstring(data, offset)
        tau, offset = _decode_bitstring(data, offset)
        if offset + 8 > len(data):
            raise CodecError("truncated retry counter")
        (retry,) = struct.unpack_from(">Q", data, offset)
        offset += 8
        if offset != len(data):
            raise CodecError("trailing bytes after poll packet")
        return PollPacket(rho=rho, tau=tau, retry=retry)
    raise CodecError(f"unknown packet kind byte 0x{kind:02x}")
