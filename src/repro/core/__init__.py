"""The paper's primary contribution: the randomized data-link protocol.

Public surface:

* :class:`~repro.core.bitstrings.BitString` — the nonce value type;
* :class:`~repro.core.random_source.RandomSource` — deterministic tapes;
* :mod:`~repro.core.params` — ε and the size/bound policies;
* :mod:`~repro.core.packets` — the two wire packet shapes;
* :class:`~repro.core.transmitter.Transmitter` /
  :class:`~repro.core.receiver.Receiver` — the station automata;
* :func:`~repro.core.protocol.make_data_link` — convenience factory.
"""

from repro.core.bitstrings import BitString, EMPTY, TAU_CRASH, TAU_PRIME_CRASH
from repro.core.events import (
    ChannelId,
    CrashR,
    CrashT,
    EmitOk,
    EmitPacket,
    EmitReceiveMsg,
    Event,
    Ok,
    PktDelivered,
    PktSent,
    ReceiveMsg,
    Retry,
    SendMsg,
    StationOutput,
)
from repro.core.exceptions import (
    AxiomViolationError,
    ChannelError,
    CheckFailure,
    CodecError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
    UnknownPacketError,
)
from repro.core.packets import DataPacket, Packet, PollPacket, decode_packet, encode_packet
from repro.core.params import (
    AggressivePolicy,
    FixedPolicy,
    PrintedPaperPolicy,
    ProtocolParams,
    SizeBoundPolicy,
    SoundPolicy,
)
from repro.core.protocol import DataLink, make_data_link
from repro.core.random_source import RandomSource, split_seed
from repro.core.receiver import Receiver, ReceiverStats
from repro.core.transmitter import Transmitter, TransmitterStats

__all__ = [
    "AggressivePolicy",
    "AxiomViolationError",
    "BitString",
    "ChannelError",
    "ChannelId",
    "CheckFailure",
    "CodecError",
    "ConfigurationError",
    "CrashR",
    "CrashT",
    "DataLink",
    "DataPacket",
    "EMPTY",
    "EmitOk",
    "EmitPacket",
    "EmitReceiveMsg",
    "Event",
    "FixedPolicy",
    "Ok",
    "Packet",
    "PktDelivered",
    "PktSent",
    "PollPacket",
    "PrintedPaperPolicy",
    "ProtocolError",
    "ProtocolParams",
    "ReceiveMsg",
    "Receiver",
    "ReceiverStats",
    "RandomSource",
    "ReproError",
    "Retry",
    "SendMsg",
    "SimulationError",
    "SizeBoundPolicy",
    "SoundPolicy",
    "StationOutput",
    "TAU_CRASH",
    "TAU_PRIME_CRASH",
    "Transmitter",
    "TransmitterStats",
    "UnknownPacketError",
    "decode_packet",
    "encode_packet",
    "make_data_link",
    "split_seed",
]
