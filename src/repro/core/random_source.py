"""Deterministic randomness for protocol stations and adversaries.

Every random choice in the system — the stations' nonces and the adversary's
coin tosses — flows through a :class:`RandomSource`.  This gives three things
the paper's analysis needs and a reproduction must preserve:

* **Independent tapes.**  Section 4 fixes "the random tape of the adversary
  and the transmitting station" while quantifying over the receiver's tape.
  Distinct sources seeded independently model exactly those tapes.
* **Reproducibility.**  Experiments and failing property tests can be
  replayed bit-for-bit from a seed.
* **Crash semantics.**  A crash erases a station's *memory* but not its
  entropy supply; the source survives crashes, exactly as a hardware RNG
  would, while all protocol state is re-initialised.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from repro.core.bitstrings import BitString

__all__ = ["RandomSource", "split_seed"]


# repr()+encode() of the label tokens is a measurable share of split_seed
# when campaigns derive seeds for every component of every run; labels come
# from a small fixed vocabulary, so their byte forms are cached.  Keyed by
# (type, value) because repr(1) == repr(True) must not collide with "1".
_TOKEN_BYTES: dict = {}


def _token_bytes(token: object) -> bytes:
    key = (type(token), token)
    try:
        data = _TOKEN_BYTES.get(key)
    except TypeError:  # unhashable token: derive directly
        return repr(token).encode("utf-8")
    if data is None:
        data = repr(token).encode("utf-8")
        if len(_TOKEN_BYTES) < 4096:  # labels are few; seeds must not pile up
            _TOKEN_BYTES[key] = data
    return data


def split_seed(seed: int, *labels: object) -> int:
    """Derive an independent child seed from ``seed`` and a label path.

    Used to give each component of a simulation (transmitter, receiver,
    adversary, workload) its own deterministic tape from one experiment seed.
    The derivation is stable across runs and platforms.
    """
    h = 0x811C9DC5
    for byte in repr(seed).encode("utf-8"):
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFFFFFFFFFF
    for token in labels:
        for byte in _token_bytes(token):
            h ^= byte
            h = (h * 0x01000193) & 0xFFFFFFFFFFFFFFFF
    return h


class RandomSource:
    """A seeded stream of random bits and standard sampling helpers.

    Implements ``random(l)`` of Figure 3 as :meth:`random_bits`, plus the
    sampling primitives adversaries and workload generators need.  Wraps
    :class:`random.Random` (Mersenne Twister), which is more than adequate
    for simulation — the oblivious-adversary assumption is enforced
    structurally, not cryptographically (see DESIGN.md §5).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._bits_drawn = 0

    def __getattr__(self, name: str):
        # The Twister is materialized on first draw, not at construction:
        # seeding Mersenne state is the dominant cost of a RandomSource, and
        # several sources per run exist only to fork children (which derive
        # purely from the seed).  Laziness changes no tape — a source that
        # never draws never touches its generator.  ``random_float`` is the
        # Twister's own bound method (the uniform draw is made once per
        # adversary turn, and a wrapper frame is pure overhead there), so
        # asking for it also materializes.
        if name in ("_rng", "random_float"):
            rng = self._rng = random.Random(self._seed)
            self.random_float = rng.random
            return rng if name == "_rng" else rng.random
        raise AttributeError(name)

    @property
    def seed(self) -> Optional[int]:
        """The seed this source was created with (None = OS entropy)."""
        return self._seed

    @property
    def bits_drawn(self) -> int:
        """Total number of random bits handed out so far (for metrics)."""
        return self._bits_drawn

    def fork(self, *labels: object) -> "RandomSource":
        """Create an independently-seeded child source.

        The child's tape is a deterministic function of this source's seed
        and the labels, so forking does not perturb this source's stream.
        """
        base = self._seed if self._seed is not None else self._rng.getrandbits(64)
        return RandomSource(split_seed(base, *labels))

    # -- bit-level primitives (Figure 3 `random`) ------------------------------

    def random_bits(self, length: int) -> BitString:
        """Return a uniformly random :class:`BitString` of ``length`` bits."""
        if length < 0:
            raise ValueError("length must be non-negative")
        self._bits_drawn += length
        if length == 0:
            return BitString("")
        # getrandbits yields < 2**length by contract, so the trusted
        # constructor's invariant holds without a range check.
        return BitString._trusted(self._rng.getrandbits(length), length)

    def scramble_bits(self, bits: BitString) -> BitString:
        """XOR a bit string with a uniform same-length mask (state corruption).

        The primitive behind the arbitrary-state fault model: flipping each
        bit independently with probability 1/2 yields a uniformly random
        string of the same length, i.e. the corrupted field carries *no*
        information about its pre-fault value.  Zero-width inputs come back
        unchanged without consuming any tape, so field lists containing
        empty nonces scramble deterministically regardless of order.
        """
        if len(bits) == 0:
            return bits
        mask = self.random_bits(len(bits))
        return BitString._trusted(bits._value ^ mask._value, len(bits))

    # -- generic sampling helpers ----------------------------------------------

    # random_float (uniform float in [0, 1)) is served by __getattr__ as the
    # underlying Twister's bound ``random`` method.

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} outside [0, 1]")
        return self._rng.random() < probability

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def choice(self, items: Sequence):
        """Uniformly choose one element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def sample(self, items: Sequence, k: int) -> list:
        """Choose ``k`` distinct elements without replacement."""
        return self._rng.sample(list(items), k)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._rng.shuffle(items)

    def geometric(self, probability: float) -> int:
        """Number of Bernoulli(p) trials up to and including the first success.

        Draws one uniform per trial, so a tape that interleaved per-trial
        coin flips with other draws replays unchanged.  New code that does
        not need tape-compatibility with old seeds should prefer
        :meth:`geometric_fast`.
        """
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        count = 1
        while not self.bernoulli(probability):
            count += 1
        return count

    def geometric_fast(self, probability: float) -> int:
        """Geometric(p) trial count from a single inverse-CDF draw.

        Same distribution as :meth:`geometric` — ``P(X = k) = (1-p)^(k-1) p``
        — but always exactly one uniform draw, however small ``p`` is.  The
        closed form ``⌊ln(U) / ln(1-p)⌋ + 1`` maps a uniform ``U ∈ (0, 1]``
        through the inverse CDF, so a ``geometric(0.01)`` that used to cost
        ~100 Bernoulli trials costs one draw.

        **Tape note:** the draw *count* differs from :meth:`geometric` (one
        vs one-per-trial) and the draw→value mapping differs even when the
        counts coincide, so switching a consumer changes every schedule
        derived from its seed.  Adopt it only where old-seed compatibility
        is not a contract (documented at each adoption site).
        """
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        # Consume a draw even for p=1 so the p→1 limit keeps draw parity
        # with every other probability (and with geometric(1.0)).
        u = 1.0 - self.random_float()  # uniform in (0, 1]
        if probability == 1.0:
            return 1
        return int(math.log(u) / math.log1p(-probability)) + 1

    def __repr__(self) -> str:
        return f"RandomSource(seed={self._seed!r})"
