"""Transport-layer substrate: the data link over a relayed network (§1)."""

from repro.transport.endtoend import NetworkRelay
from repro.transport.fabric import FabricRun, FabricSpec
from repro.transport.network import (
    LinkState,
    Network,
    line_network,
    mesh_network,
    ring_network,
)
from repro.transport.routing import Arrival, FloodingRelay, PathRelay, RelayStrategy

__all__ = [
    "Arrival",
    "FabricRun",
    "FabricSpec",
    "FloodingRelay",
    "LinkState",
    "Network",
    "NetworkRelay",
    "PathRelay",
    "RelayStrategy",
    "line_network",
    "mesh_network",
    "ring_network",
]
