"""Multi-node network model for the transport-layer application.

Section 1 of the paper proposes running the protocol in the source and
destination processors of a *network*, with the intermediate processors
running any semi-reliable relay ("a trivial implementation ... is by
flooding each packet; a more efficient method is to try to find a reliable
path ... replacing the path only when an error is detected [HK89]").

:class:`Network` wraps a :mod:`networkx` graph whose edges carry dynamic
up/down state (a two-state Markov chain per link) and a latency.  The relay
strategies in :mod:`repro.transport.routing` propagate packets across it,
producing the loss, duplication and reordering the end-to-end data link
must survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.core.exceptions import ConfigurationError
from repro.core.random_source import RandomSource

__all__ = [
    "LinkState",
    "Network",
    "disjoint_routes",
    "line_network",
    "ring_network",
    "mesh_network",
]

Edge = Tuple[object, object]


def _normalize(edge: Edge) -> Edge:
    a, b = edge
    return (a, b) if repr(a) <= repr(b) else (b, a)


@dataclass
class LinkState:
    """One link's dynamic state: up/down plus the Markov toggle rates."""

    up: bool = True
    fail_rate: float = 0.0
    repair_rate: float = 0.2
    latency: int = 1

    def tick(self, rng: RandomSource) -> None:
        """Advance the two-state Markov chain by one time step."""
        if self.up:
            if self.fail_rate and rng.bernoulli(self.fail_rate):
                self.up = False
        else:
            if rng.bernoulli(self.repair_rate):
                self.up = True


class Network:
    """An undirected network with per-link failure dynamics.

    Parameters
    ----------
    graph:
        Any connected undirected :class:`networkx.Graph`.
    source / destination:
        The two endpoints running the data-link protocol.
    fail_rate / repair_rate / latency:
        Defaults applied to every link (overridable per edge via
        :meth:`configure_link`).
    """

    def __init__(
        self,
        graph: nx.Graph,
        source,
        destination,
        fail_rate: float = 0.0,
        repair_rate: float = 0.2,
        latency: int = 1,
    ) -> None:
        if source not in graph or destination not in graph:
            raise ConfigurationError("source and destination must be graph nodes")
        if source == destination:
            raise ConfigurationError("source and destination must differ")
        if not nx.is_connected(graph):
            raise ConfigurationError("the network graph must be connected")
        self.graph = graph
        self.source = source
        self.destination = destination
        self._links: Dict[Edge, LinkState] = {
            _normalize(edge): LinkState(
                fail_rate=fail_rate, repair_rate=repair_rate, latency=latency
            )
            for edge in graph.edges()
        }

    # -- link management ------------------------------------------------------------

    def link(self, a, b) -> LinkState:
        """The dynamic state of the link between two adjacent nodes."""
        try:
            return self._links[_normalize((a, b))]
        except KeyError:
            raise ConfigurationError(f"no link between {a!r} and {b!r}") from None

    def configure_link(self, a, b, **attrs) -> None:
        """Override fail_rate / repair_rate / latency / up on one link."""
        state = self.link(a, b)
        for key, value in attrs.items():
            if not hasattr(state, key):
                raise ConfigurationError(f"LinkState has no attribute {key!r}")
            setattr(state, key, value)

    def tick(self, rng: RandomSource) -> None:
        """Advance every link's failure process by one step."""
        for state in self._links.values():
            state.tick(rng)

    def link_up(self, a, b) -> bool:
        """True iff the link between two adjacent nodes is currently up."""
        return self.link(a, b).up

    def up_subgraph(self) -> nx.Graph:
        """The graph restricted to currently-up links."""
        up_edges = [
            edge for edge, state in self._links.items() if state.up
        ]
        sub = nx.Graph()
        sub.add_nodes_from(self.graph.nodes())
        sub.add_edges_from(up_edges)
        return sub

    def shortest_up_path(self) -> Optional[List]:
        """Shortest source→destination path over up links, or None."""
        try:
            return nx.shortest_path(self.up_subgraph(), self.source, self.destination)
        except nx.NetworkXNoPath:
            return None

    @property
    def edge_count(self) -> int:
        """|E| — the unit of flooding's per-packet cost."""
        return self.graph.number_of_edges()

    def __repr__(self) -> str:
        return (
            f"Network(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.edge_count}, {self.source!r}->{self.destination!r})"
        )


def disjoint_routes(graph: nx.Graph, source, destination, k: int) -> List[List]:
    """Up to ``k`` vertex-disjoint source→destination routes.

    Greedy shortest-first: repeatedly take a shortest path, then delete its
    interior nodes (and, for a direct source–destination edge, the edge
    itself) from a working copy, so later routes cannot share any relay
    with earlier ones — the Bunn–Ostrovsky condition for running fully
    independent protocol instances per route.  Deterministic for a given
    graph (BFS order), shortest routes first, and degrades gracefully:
    a line yields exactly one route, a ring two, a grid corner-to-corner
    two (the corner degree caps it).  May return fewer than ``k`` routes;
    never zero for a connected graph.
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    if source not in graph or destination not in graph:
        raise ConfigurationError("source and destination must be graph nodes")
    work = graph.copy()
    routes: List[List] = []
    while len(routes) < k:
        try:
            route = nx.shortest_path(work, source, destination)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            break
        routes.append(route)
        if len(route) == 2:
            work.remove_edge(source, destination)
        else:
            work.remove_nodes_from(route[1:-1])
    return routes


def line_network(hops: int, **kwargs) -> Network:
    """A path graph of ``hops`` links: the minimal multi-hop topology."""
    if hops < 1:
        raise ConfigurationError("hops must be >= 1")
    graph = nx.path_graph(hops + 1)
    return Network(graph, source=0, destination=hops, **kwargs)


def ring_network(nodes: int, **kwargs) -> Network:
    """A cycle of ``nodes`` nodes: two disjoint source→destination paths."""
    if nodes < 3:
        raise ConfigurationError("a ring needs at least 3 nodes")
    graph = nx.cycle_graph(nodes)
    return Network(graph, source=0, destination=nodes // 2, **kwargs)


def mesh_network(side: int, **kwargs) -> Network:
    """A side×side grid: rich path diversity for the flooding relay."""
    if side < 2:
        raise ConfigurationError("a mesh needs side >= 2")
    graph = nx.grid_2d_graph(side, side)
    return Network(graph, source=(0, 0), destination=(side - 1, side - 1), **kwargs)
