"""Multi-hop relay fabric: every edge runs a full TM/RM data link.

Section 1 of the paper proposes running the protocol "in the source and
destination processors" over a network of semi-reliable relays; the
transport seeds (:mod:`repro.transport.network`, ``routing``) model the
relays as arrival schedules.  This module promotes that sketch into an
operational scenario family:

* every *directed* edge ``u→v`` of a line/ring/mesh topology runs a full
  per-link protocol instance (:class:`_LinkSimulator`) — TM at ``u``, RM
  at ``v`` — over a wire whose delivery is gated by the physical link's
  up/down state (:class:`_LinkAdversary`);
* interior nodes are store-and-forward relays with *bounded* queues:
  a message delivered by hop ``u→v``'s RM is re-submitted to the next
  hop's TM, data frames routed toward the destination and acknowledgement
  frames toward the source along the currently-up shortest path;
* the source end pipelines a window of messages with timeout-driven
  retransmission; the destination deduplicates and resequences, returning
  cumulative acknowledgements — the Bunn–Ostrovsky-style end-to-end layer
  that turns per-link reliability into source→destination reliability;
* an :class:`~repro.checkers.endtoend.EndToEndMonitor` rides the
  network-scope stream (``send_msg`` at submission, ``receive_msg`` at
  exactly-once delivery, ``OK`` as acknowledgements reach the source) and
  verdicts the Section 2.6 conditions *end to end* — per Dolev–Spielrein,
  per-hop verdicts cannot substitute.

Faults come from the topology events of
:mod:`repro.resilience.faultplan` — ``link_down``/``link_up`` windows
(partition/heal), ``relay_crash`` (amnesia: the relay queue is wiped and
every adjacent station takes its crash transition) and ``route_flap``.
Everything is seed-pinned: same spec, plan and seed replay the identical
execution, which is what lets ``repro shrink`` minimise fabric failures.

A deliberate asymmetry worth naming: per-link Axiom 2 (never submit the
same payload twice) is enforced by the *fabric*, which stamps every frame
with a per-link monotonically increasing uid that survives relay crashes
— the volatile relay could not keep that promise itself.  End-to-end
exactly-once is then re-established above the links by the destination's
dedup/resequencing layer; disable it (``exactly_once=False``) and the
end-to-end no-duplication condition observably fails under retransmission
races, which is the ablation the differential tests pin.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Deque, Dict, List, Optional, Tuple

import networkx as nx

from repro.adversary.base import PASS, Adversary, Move, PacketInfo, make_deliver
from repro.checkers.endtoend import EndToEndMonitor
from repro.checkers.trace import Trace
from repro.core.events import OK, ReceiveMsg, make_receive_msg, make_send_msg
from repro.core.exceptions import ConfigurationError
from repro.core.protocol import make_data_link
from repro.core.random_source import RandomSource, split_seed
from repro.resilience.faultplan import (
    FaultPlan,
    LinkDownWindow,
    LinkUpWindow,
    RelayCrashAt,
    RouteFlapAt,
    TopologyEvent,
)
from repro.sim.metrics import SimulationMetrics
from repro.sim.runner import RunOutcome
from repro.sim.simulator import SimulationResult, Simulator
from repro.transport.network import (
    LinkState,
    Network,
    disjoint_routes,
    line_network,
    mesh_network,
    ring_network,
)

__all__ = ["FabricSpec", "FabricRun", "DATA", "ACK"]

DATA = b"D"
ACK = b"A"

_TOPOLOGIES = ("line", "ring", "mesh")


def _encode_frame(kind: bytes, seq: int, uid: int) -> bytes:
    return b"%s:%d:%d" % (kind, seq, uid)


def _decode_frame(payload: bytes) -> Tuple[bytes, int]:
    kind, seq, _uid = payload.split(b":")
    return kind, int(seq)


class _LinkAdversary(Adversary):
    """A FIFO wire gated by the physical link's up/down state.

    While the link is up, packets are delivered in announcement order, one
    per simulation step.  A packet announced while the link is down is lost
    in transit; packets still in flight when the link goes down are dropped
    at the wire's next move.  Per-link RETRY polling (the receiver's
    internal action, forced by the harness cadence) is what re-solicits the
    lost traffic after a heal — no fabric-level bookkeeping needed below
    the end-to-end retransmission layer.
    """

    def __init__(self, state: LinkState) -> None:
        super().__init__()
        self._state = state
        self._queue: Deque[PacketInfo] = deque()
        self.dropped = 0

    def on_new_pkt(self, info: PacketInfo) -> None:
        if self._state.up:
            self._queue.append(info)
        else:
            self.dropped += 1

    def _decide(self) -> Move:
        if not self._state.up:
            if self._queue:
                self.dropped += len(self._queue)
                self._queue.clear()
            return PASS
        if self._queue:
            info = self._queue.popleft()
            return make_deliver(info.channel, info.packet_id)
        return PASS

    @property
    def pending(self) -> int:
        return len(self._queue)


class _LinkSimulator(Simulator):
    """One directed hop's protocol instance, fed frames by the fabric.

    Replaces the pull-style workload with a push-style ``feed`` deque (the
    origin node's outgoing memory) and collects the far end's deliveries
    via a trace observer (so they surface even under ``retain="none"``).
    Frame uids are stamped here — per directed link, monotone, and *not*
    wiped by crashes, because they are the environment's Axiom 2
    bookkeeping, not station memory.
    """

    def __init__(
        self,
        wire: _LinkAdversary,
        seed: int,
        epsilon: float,
        retry_every: int,
        engine: str = "object",
    ) -> None:
        self.feed: Deque[bytes] = deque()
        self.delivered: Deque[bytes] = deque()
        self._uid = 0
        self.wire = wire
        super().__init__(
            link=make_data_link(epsilon=epsilon, seed=split_seed(seed, "stations")),
            adversary=wire,
            workload=(),
            seed=split_seed(seed, "wire"),
            retry_every=retry_every,
            max_steps=2 ** 62,
            enforce_fairness=False,
            retain="none",
            engine=engine,
        )
        self._trace.subscribe(self._collect, types=(ReceiveMsg,))
        # Kernel mode: a persistent flat-state executor owns this hop's
        # state between bursts; the object graph goes stale until
        # finalize_engine() syncs it back at the end of the fabric run.
        self._hop: Optional["HopKernel"] = None
        if engine == "kernel":
            from repro.kernel.hop import HopKernel

            self._hop = HopKernel(self)

    # -- fabric-facing API ----------------------------------------------------------

    def push_frame(self, kind: bytes, seq: int) -> None:
        """Queue one frame for submission on this hop (fresh uid)."""
        self._uid += 1
        self.feed.append(_encode_frame(kind, seq, self._uid))

    def tick(self, steps: int) -> None:
        """Advance this hop by ``steps`` simulation steps."""
        hop = self._hop
        if hop is not None:
            hop.tick(steps)
            return
        if self._next_message is None and self.feed:
            self._advance_workload()
        for _ in range(steps):
            self.step()

    @property
    def active(self) -> bool:
        """Does this hop have any work an idle step could progress?"""
        hop = self._hop
        if hop is not None:
            return hop.active
        return bool(
            self.feed
            or self._next_message is not None
            or self._tx_busy
            or self.wire.pending
        )

    def crash_transmitter_station(self) -> None:
        if self._hop is not None:
            self._hop.crash_transmitter()
        else:
            self._crash_transmitter(None)

    def crash_receiver_station(self) -> None:
        if self._hop is not None:
            self._hop.crash_receiver()
        else:
            self._crash_receiver(None)

    def wipe_feed(self) -> int:
        """Amnesia for the origin node's outgoing queue on this hop."""
        if self._hop is not None:
            return self._hop.wipe_feed()
        wiped = len(self.feed) + (1 if self._next_message is not None else 0)
        self.feed.clear()
        self._next_message = None
        return wiped

    def finalize_engine(self) -> None:
        """Sync kernel-resident state back to the objects (no-op otherwise)."""
        if self._hop is not None:
            self._hop.finalize()

    @property
    def wire_dropped(self) -> int:
        """Frames lost to link-down on this hop (live under either engine)."""
        if self._hop is not None:
            return self._hop.wire_dropped
        return self.wire.dropped

    # -- Simulator overrides ---------------------------------------------------------

    def _advance_workload(self) -> None:
        self._next_message = self.feed.popleft() if self.feed else None
        self._workload_exhausted = False

    def _collect(self, index: int, event: ReceiveMsg) -> None:
        self.delivered.append(event.message)


@dataclass
class FabricSpec:
    """Everything needed to launch one seeded relay-fabric execution.

    The fabric analogue of :class:`~repro.sim.runner.RunSpec`: the
    campaign supervisor detects the :meth:`run_supervised` hook and routes
    execution here instead of building a single-link simulator, so
    timeouts, retries, classification, forensics and shrinking all work
    unchanged on fabric runs.
    """

    topology: str = "line"
    size: int = 4
    messages: int = 50
    epsilon: float = 2.0 ** -12
    retry_every: int = 4
    steps_per_tick: int = 2
    max_ticks: int = 60_000
    queue_limit: int = 16
    window: int = 4
    rto: int = 64
    exactly_once: bool = True
    fail_rate: float = 0.0
    repair_rate: float = 0.2
    label: str = ""
    retain: str = "none"
    tail_size: int = 256
    engine: str = "object"
    paths: int = 1

    def __post_init__(self) -> None:
        if self.topology not in _TOPOLOGIES:
            raise ConfigurationError(
                f"topology must be one of {_TOPOLOGIES}, got {self.topology!r}"
            )
        for name in ("size", "steps_per_tick", "max_ticks", "queue_limit",
                     "window", "rto", "retry_every", "paths"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.messages < 0:
            raise ConfigurationError("messages must be >= 0")
        if self.engine not in ("object", "kernel"):
            raise ConfigurationError(
                f"engine must be 'object' or 'kernel', got {self.engine!r}"
            )

    def build_network(self) -> Network:
        """The topology instance this spec runs over."""
        kwargs = {"fail_rate": self.fail_rate, "repair_rate": self.repair_rate}
        if self.topology == "line":
            return line_network(self.size, **kwargs)
        if self.topology == "ring":
            return ring_network(max(self.size, 3), **kwargs)
        return mesh_network(max(self.size, 2), **kwargs)

    def run_supervised(
        self,
        fault_plan: Optional[FaultPlan],
        index: int,
        seed: int,
    ) -> RunOutcome:
        """Execute one supervised fabric run (the campaign entry point)."""
        events: Tuple[TopologyEvent, ...] = ()
        if fault_plan is not None:
            events = fault_plan.for_run(index).events
        return FabricRun(self, events, seed).run()


class FabricRun:
    """One seeded execution of the relay fabric.

    Construction validates the fault plan against the topology and builds
    every directed hop eagerly (deterministic per-hop seeding); :meth:`run`
    drives the tick loop and returns a standard
    :class:`~repro.sim.runner.RunOutcome` whose safety/liveness verdicts
    come from the end-to-end monitor.  The instance stays inspectable
    afterwards — tests read :attr:`monitor`, :attr:`reroutes`,
    :attr:`queue_drops` and friends.
    """

    def __init__(
        self,
        spec: FabricSpec,
        events: Tuple[TopologyEvent, ...] = (),
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.network = spec.build_network()
        self._rng = RandomSource(split_seed(seed, "fabric-topology"))
        self.trace = Trace(retain=spec.retain, tail_size=spec.tail_size)
        self.monitor = EndToEndMonitor()
        self.trace.subscribe(self.monitor.observe, types=self.monitor.observed_types)

        # One protocol instance per *directed* edge: TM at u, RM at v.
        # ``_edge_state`` doubles each undirected LinkState under both
        # orientations so hot-path up checks are one dict hit instead of
        # Network.link's normalise-and-lookup.
        self.links: Dict[Tuple[object, object], _LinkSimulator] = {}
        self._edge_state: Dict[Tuple[object, object], LinkState] = {}
        for a, b in self.network.graph.edges():
            state = self.network.link(a, b)
            for u, v in ((a, b), (b, a)):
                self._edge_state[(u, v)] = state
                self.links[(u, v)] = _LinkSimulator(
                    wire=_LinkAdversary(state),
                    seed=split_seed(seed, "fabric-link", repr(u), repr(v)),
                    epsilon=spec.epsilon,
                    retry_every=spec.retry_every,
                    engine=spec.engine,
                )

        # Multi-path striping (Bunn–Ostrovsky): vertex-disjoint routes
        # computed once on the full graph; data frames stripe round-robin
        # by sequence number.  Vertex-disjointness means each relay is
        # interior to at most one stripe, so relays infer their stripe
        # from their own identity — no frame-format change.  paths=1 (or
        # a topology with a single route) leaves behaviour bit-identical
        # to the unstriped fabric.
        self._stripes: Optional[List[List]] = None
        self._stripe_next: Dict[object, object] = {}
        if spec.paths > 1:
            routes = disjoint_routes(
                self.network.graph,
                self.network.source,
                self.network.destination,
                spec.paths,
            )
            if len(routes) > 1:
                self._stripes = routes
                for route in routes:
                    for i in range(1, len(route) - 1):
                        self._stripe_next[route[i]] = route[i + 1]

        src, dst = self.network.source, self.network.destination
        self.queues: Dict[object, Deque[Tuple[bytes, int]]] = {
            node: deque()
            for node in self.network.graph.nodes()
            if node not in (src, dst)
        }
        # Delivery drain plan: (delivered deque, lands-at-destination,
        # lands-at-source, relay queue or None) per directed hop, so the
        # per-tick drain is one flat scan with no node comparisons.
        self._drain_plan: List[Tuple[Deque[bytes], bool, bool, Optional[Deque]]] = [
            (link.delivered, v == dst, v == src, self.queues.get(v))
            for (u, v), link in self.links.items()
        ]

        self._sort_events(events)

        # Source endpoint: windowed pipeline with timeout retransmission.
        self._next_seq = 0
        self._base = 0  # lowest unacknowledged sequence number
        self._sent_at: Dict[int, int] = {}
        self._rto_guard = 0  # lower bound on min(_sent_at.values())
        # Destination endpoint: dedup + resequencer + cumulative acks.
        self._next_expected = 0
        self._reorder: Dict[int, bool] = {}

        # Diagnostics the tests and bench read.
        self.reroutes = 0
        self.queue_drops = 0
        self.relay_crashes = 0
        self.retransmits = 0
        self.dup_drops = 0
        self.misrouted = 0
        self.ticks = 0
        self.completed = False

        self._route: Optional[List] = None
        self._up_graph: Optional[nx.Graph] = None

    # -- fault-plan interpretation ----------------------------------------------------

    def _sort_events(self, events: Tuple[TopologyEvent, ...]) -> None:
        src, dst = self.network.source, self.network.destination
        self._down_windows: List[LinkDownWindow] = []
        self._up_windows: List[LinkUpWindow] = []
        self._crashes: Dict[int, List[object]] = {}
        self._flaps: Dict[int, int] = {}
        for event in events:
            if not isinstance(event, TopologyEvent):
                raise ConfigurationError(
                    f"fault event {type(event).kind!r} targets a single-link "
                    "station; a fabric run only interprets topology events"
                )
            if isinstance(event, (LinkDownWindow, LinkUpWindow)):
                a, b = event.link
                self.network.link(a, b)  # raises if not an edge
                windows = (
                    self._down_windows
                    if isinstance(event, LinkDownWindow)
                    else self._up_windows
                )
                windows.append(event)
            elif isinstance(event, RelayCrashAt):
                if event.node not in self.network.graph:
                    raise ConfigurationError(
                        f"relay_crash names unknown node {event.node!r}"
                    )
                if event.node in (src, dst):
                    raise ConfigurationError(
                        "relay_crash cannot target the source or destination "
                        "endpoint; script those with crash_t/crash_r on a "
                        "single link"
                    )
                self._crashes.setdefault(event.step, []).append(event.node)
            elif isinstance(event, RouteFlapAt):
                self._flaps[event.step] = self._flaps.get(event.step, 0) + 1

    def _apply_topology(self, tick: int) -> None:
        """Markov dynamics, then scripted windows (down overrides up)."""
        self.network.tick(self._rng)
        for window in self._up_windows:
            if window.start <= tick <= window.end:
                self.network.link(*window.link).up = True
        for window in self._down_windows:
            state = self.network.link(*window.link)
            if window.start <= tick <= window.end:
                state.up = False
            elif tick == window.end + 1:
                state.up = True  # deterministic heal closes the partition
        self._up_graph = None
        route = self._route
        if route is not None and not self._route_up(route):
            self._route = None
            self.reroutes += 1
        for node in self._crashes.get(tick, ()):
            self._crash_relay(node)
        if self._flaps.get(tick):
            if self._route is not None:
                self.reroutes += 1
            self._route = None

    def _crash_relay(self, node: object) -> None:
        """Amnesia: wipe the relay queue and crash every adjacent station."""
        self.relay_crashes += 1
        self.queues[node].clear()
        for (u, v), link in self.links.items():
            if u == node:
                link.crash_transmitter_station()
                link.wipe_feed()
            elif v == node:
                link.crash_receiver_station()

    # -- routing ----------------------------------------------------------------------

    def _up(self) -> nx.Graph:
        if self._up_graph is None:
            self._up_graph = self.network.up_subgraph()
        return self._up_graph

    def _route_up(self, route: List) -> bool:
        edge_state = self._edge_state
        a = route[0]
        for b in route[1:]:
            if not edge_state[(a, b)].up:
                return False
            a = b
        return True

    def _ensure_route(self) -> Optional[List]:
        # A cached route is always up here: link state only changes in
        # _apply_topology, which runs first in the tick and drops any
        # route with a downed edge, so no per-frame re-verification.
        route = self._route
        if route is None:
            try:
                route = nx.shortest_path(
                    self._up(), self.network.source, self.network.destination
                )
            except nx.NetworkXNoPath:
                route = None
            self._route = route
        return route

    def _next_hop(self, node: object, toward_destination: bool) -> Optional[object]:
        """The next node for a frame at ``node``, or None while partitioned."""
        route = self._ensure_route()
        if route is not None and node in route:
            # Route edges are up by construction (see _ensure_route).
            i = route.index(node)
            if toward_destination and i + 1 < len(route):
                return route[i + 1]
            elif not toward_destination and i > 0:
                return route[i - 1]
        # Off the main route (it changed underneath a queued frame): detour
        # along the shortest up path from here.
        target = (
            self.network.destination if toward_destination else self.network.source
        )
        if node == target:
            return None
        try:
            return nx.shortest_path(self._up(), node, target)[1]
        except nx.NetworkXNoPath:
            return None

    # -- endpoints --------------------------------------------------------------------

    def _body(self, seq: int) -> bytes:
        return b"msg-%05d" % seq

    def _stripe_hop(self, seq: int) -> Optional[object]:
        """First hop for ``seq``'s stripe, falling back to dynamic routing."""
        stripes = self._stripes
        route = stripes[seq % len(stripes)]
        src = self.network.source
        first = route[1]
        if self._edge_state[(src, first)].up:
            return first
        return self._next_hop(src, toward_destination=True)

    def _source_phase(self, tick: int) -> None:
        spec = self.spec
        src = self.network.source
        if self._stripes is not None:
            while (
                self._next_seq < spec.messages
                and self._next_seq - self._base < spec.window
            ):
                seq = self._next_seq
                hop = self._stripe_hop(seq)
                if hop is None:
                    return  # partitioned at the source; retry next tick
                self.trace.append(make_send_msg(self._body(seq)))
                self.links[(src, hop)].push_frame(DATA, seq)
                self._sent_at[seq] = tick
                self._next_seq += 1
            if tick - self._rto_guard >= spec.rto:
                sent_at = self._sent_at
                for seq in range(self._base, self._next_seq):
                    if tick - sent_at[seq] >= spec.rto:
                        hop = self._stripe_hop(seq)
                        if hop is None:
                            continue
                        self.links[(src, hop)].push_frame(DATA, seq)
                        sent_at[seq] = tick
                        self.retransmits += 1
                self._rto_guard = min(sent_at.values()) if sent_at else tick
            return
        hop = self._next_hop(src, toward_destination=True)
        if hop is None:
            return  # partitioned at the source; retry next tick
        link = self.links[(src, hop)]
        while (
            self._next_seq < spec.messages
            and self._next_seq - self._base < spec.window
        ):
            seq = self._next_seq
            self.trace.append(make_send_msg(self._body(seq)))
            link.push_frame(DATA, seq)
            self._sent_at[seq] = tick
            self._next_seq += 1
        # The guard is a lower bound on min(sent_at): the scan only runs
        # when some frame could actually be due for retransmission.
        if tick - self._rto_guard >= spec.rto:
            sent_at = self._sent_at
            for seq in range(self._base, self._next_seq):
                if tick - sent_at[seq] >= spec.rto:
                    link.push_frame(DATA, seq)
                    sent_at[seq] = tick
                    self.retransmits += 1
            self._rto_guard = min(sent_at.values()) if sent_at else tick

    def _source_ack(self, ack: int) -> None:
        """Cumulative acknowledgement: every seq ≤ ack is resolved."""
        while self._base <= ack:
            self._sent_at.pop(self._base, None)
            self.trace.append(OK)
            self._base += 1

    def _destination_data(self, seq: int) -> None:
        if not self.spec.exactly_once:
            # Ablation: raw arrival stream straight to the monitor —
            # duplicates and reordering reach the destination application.
            self.trace.append(make_receive_msg(self._body(seq)))
            if seq == self._next_expected:
                self._next_expected += 1
            return
        if seq < self._next_expected or seq in self._reorder:
            self.dup_drops += 1
            return
        self._reorder[seq] = True
        while self._next_expected in self._reorder:
            del self._reorder[self._next_expected]
            self.trace.append(make_receive_msg(self._body(self._next_expected)))
            self._next_expected += 1

    def _destination_ack_phase(self) -> None:
        if self._next_expected == 0:
            return
        hop = self._next_hop(self.network.destination, toward_destination=False)
        if hop is None:
            return
        self.links[(self.network.destination, hop)].push_frame(
            ACK, self._next_expected - 1
        )

    # -- relays -----------------------------------------------------------------------

    def _drain_deliveries(self) -> bool:
        """Route every per-hop delivery to its node; True if data reached dst."""
        data_arrived = False
        queue_limit = self.spec.queue_limit
        for delivered, at_dst, at_src, queue in self._drain_plan:
            while delivered:
                kind, seq = _decode_frame(delivered.popleft())
                if at_dst and kind == DATA:
                    self._destination_data(seq)
                    data_arrived = True
                elif at_src and kind == ACK:
                    self._source_ack(seq)
                elif queue is not None:
                    if len(queue) >= queue_limit:
                        self.queue_drops += 1
                    else:
                        queue.append((kind, seq))
                else:
                    self.misrouted += 1
        return data_arrived

    def _forward_phase(self) -> None:
        stripe_next = self._stripe_next if self._stripes is not None else None
        for node, queue in self.queues.items():
            if not queue:
                continue
            kept: Deque[Tuple[bytes, int]] = deque()
            while queue:
                kind, seq = queue.popleft()
                hop = None
                if stripe_next is not None and kind == DATA:
                    nxt = stripe_next.get(node)
                    if nxt is not None and self._edge_state[(node, nxt)].up:
                        hop = nxt
                if hop is None:
                    hop = self._next_hop(node, toward_destination=kind == DATA)
                if hop is None:
                    kept.append((kind, seq))
                else:
                    self.links[(node, hop)].push_frame(kind, seq)
            queue.extend(kept)

    # -- drive ------------------------------------------------------------------------

    def run(self) -> RunOutcome:
        """Drive ticks until the stream is fully acknowledged or budget ends."""
        spec = self.spec
        started = perf_counter()
        ack_due = False
        # Bind each hop's executor once: the kernel object itself when the
        # spec asks for it, the link veneer otherwise.  Both expose the
        # same ``active``/``tick(burst)`` surface; skipping the veneer's
        # per-tick dispatch matters at eight calls per fabric tick.
        drivers = [
            link._hop if link._hop is not None else link
            for link in self.links.values()
        ]
        kernel_mode = spec.engine == "kernel"
        steps_per_tick = spec.steps_per_tick
        for tick in range(spec.max_ticks):
            if self._base >= spec.messages:
                self.completed = True
                break
            self.ticks = tick + 1
            self._apply_topology(tick)
            self._source_phase(tick)
            if kernel_mode:
                # Inlined HopKernel.active: plain attribute reads beat a
                # property call at eight hops per fabric tick.
                for driver in drivers:
                    if (
                        driver.wire_q
                        or driver.t_busy
                        or driver.feed
                        or driver.next_message is not None
                    ):
                        driver.tick(steps_per_tick)
            else:
                for driver in drivers:
                    if driver.active:
                        driver.tick(steps_per_tick)
            if self._drain_deliveries():
                ack_due = True
            if ack_due:
                self._destination_ack_phase()
                ack_due = False
            self._forward_phase()
        else:
            self.completed = self._base >= spec.messages
        # Kernel hops hold their state in flat slots; sync every hop's
        # object graph before anything (metrics aggregation, tests) reads
        # stations, channels or wire queues.  Counted inside the wall —
        # it is part of the kernel engine's cost.
        for link in self.links.values():
            link.finalize_engine()
        wall = perf_counter() - started
        return self._outcome(wall)

    def _outcome(self, wall_seconds: float) -> RunOutcome:
        metrics = self._aggregate_metrics(wall_seconds)
        result = SimulationResult(
            trace=self.trace,
            metrics=metrics,
            completed=self.completed,
            steps=self.ticks,
            link=None,
            adversary=None,
        )
        safety = self.monitor.safety_report()
        liveness = self.monitor.liveness_report(run_completed=self.completed)
        return RunOutcome(
            seed=self.seed,
            result=result,
            safety=safety,
            liveness_passed=liveness.passed,
        )

    def verdict(self) -> str:
        """The end-to-end CLEAN/VIOLATED summary for the finished run."""
        return self.monitor.verdict(run_completed=self.completed)

    @property
    def dropped_overflow(self) -> int:
        """Frames dropped because a relay's bounded FIFO was full."""
        return self.queue_drops

    @property
    def dropped_down(self) -> int:
        """Frames lost to link-down wires (announced while down or purged
        in flight), summed over every directed hop."""
        return sum(link.wire_dropped for link in self.links.values())

    def drop_report(self) -> str:
        """One-line drop accounting to accompany :meth:`verdict`."""
        return (
            f"dropped_overflow={self.dropped_overflow} "
            f"dropped_down={self.dropped_down}"
        )

    def _aggregate_metrics(self, wall_seconds: float) -> SimulationMetrics:
        packets_sent = packets_delivered = bits_sent = 0
        retries = crashes_t = crashes_r = 0
        t_ext = r_ext = t_err = r_err = 0
        storage_bits = 0
        for link in self.links.values():
            channels = link.channels
            packets_sent += channels.total_packets_sent
            packets_delivered += (
                channels.t_to_r.delivered_count + channels.r_to_t.delivered_count
            )
            bits_sent += channels.total_bits_sent
            retries += link._metrics.retries
            crashes_t += link._metrics.crashes_t
            crashes_r += link._metrics.crashes_r
            stats_t = link._link.transmitter.stats
            stats_r = link._link.receiver.stats
            t_ext += stats_t.extensions
            r_ext += stats_r.extensions
            t_err += stats_t.errors_counted
            r_err += stats_r.errors_counted
            storage_bits += link._link.total_storage_bits()
        return SimulationMetrics(
            steps=self.ticks,
            messages_submitted=self._next_seq,
            messages_ok=self._base,
            messages_delivered=self._next_expected,
            packets_sent=packets_sent,
            packets_delivered=packets_delivered,
            bits_sent=bits_sent,
            retries=retries,
            crashes_t=crashes_t,
            crashes_r=crashes_r,
            corruptions_t=0,
            corruptions_r=0,
            transmitter_extensions=t_ext,
            receiver_extensions=r_ext,
            transmitter_errors_counted=t_err,
            receiver_errors_counted=r_err,
            storage_peak_bits=storage_bits,
            storage_final_bits=storage_bits,
            storage_samples=[],
            wall_seconds=wall_seconds,
            checker_seconds=0.0,
            events_recorded=self.trace.total_events,
            dropped_overflow=self.dropped_overflow,
            dropped_down=self.dropped_down,
        )
