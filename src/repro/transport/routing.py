"""Semi-reliable relay strategies: flooding and path maintenance.

A relay strategy answers one question per injected packet: *when, and how
many times, does a copy reach the far end?*  That is all the end-to-end
data link can observe, and it is exactly the semi-reliable contract of
Section 1 — copies may be lost (no up path / path broke mid-flight),
duplicated (flooding finds several routes), and reordered (different
latencies), but contents are never modified.

* :class:`FloodingRelay` — "a trivial implementation ... is by flooding
  each packet": breadth-first propagation over up links with a
  per-(token, edge) seen-set, so each link carries at most one copy of a
  token — at most |E| transmissions per packet, arrivals capped.
* :class:`PathRelay` — the [HK89] approach: keep one current path, send
  along it, and when a transit link is down (an "error is detected")
  recompute from the live topology *before* sending.  Costs path-length
  transmissions per packet when quiet; reroutes (without losing the
  packet) on failure, and loses the packet only when no up path exists.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.random_source import RandomSource
from repro.transport.network import Network

__all__ = ["Arrival", "RelayStrategy", "FloodingRelay", "PathRelay"]


@dataclass(frozen=True)
class Arrival:
    """One copy of an injected packet reaching the destination side."""

    token: object
    arrive_at: int


class RelayStrategy(ABC):
    """Common interface: inject a token now, receive arrivals later."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.transmissions = 0  # per-hop copies sent (communication cost)

    @abstractmethod
    def inject(self, token: object, now: int, direction: str, rng: RandomSource) -> List[Arrival]:
        """Relay one packet submitted at time ``now``.

        ``direction`` is ``"fwd"`` (source→destination) or ``"rev"``;
        the returned arrivals say when copies reach the other side.
        """

    def endpoints(self, direction: str) -> Tuple[object, object]:
        """(origin, target) nodes for a direction."""
        if direction == "fwd":
            return self.network.source, self.network.destination
        if direction == "rev":
            return self.network.destination, self.network.source
        raise ValueError(f"direction must be 'fwd' or 'rev', got {direction!r}")


class FloodingRelay(RelayStrategy):
    """Breadth-first flooding over currently-up links.

    Every node forwards the first copy it sees to all neighbours; the
    destination registers one arrival per distinct neighbour that hands it
    a copy (bounded duplication, the way real flooding behaves with
    per-node duplicate suppression).  Cost accounting charges one
    transmission per traversed up link.
    """

    def __init__(self, network: Network, max_duplicates: int = 4) -> None:
        super().__init__(network)
        if max_duplicates < 1:
            raise ValueError("max_duplicates must be >= 1")
        self._max_duplicates = max_duplicates

    def inject(self, token, now, direction, rng) -> List[Arrival]:
        origin, target = self.endpoints(direction)
        up = self.network.up_subgraph()
        # BFS wavefront with duplicate suppression at every node except the
        # target, which registers each incoming copy (up to the cap).  A
        # per-(token, edge) seen-set caps each link at one copy of this
        # token, bounding the storm at |E| transmissions per inject —
        # without it every forwarder echoes the token back across the
        # link it arrived on, and dense meshes amplify without bound.
        seen: Set[object] = {origin}
        traversed: Set[frozenset] = set()
        frontier = [(origin, 0)]
        arrivals: List[Arrival] = []
        while frontier:
            next_frontier: List[Tuple[object, int]] = []
            for node, depth in frontier:
                for neighbour in up.neighbors(node):
                    edge = frozenset((node, neighbour))
                    if edge in traversed:
                        continue
                    traversed.add(edge)
                    self.transmissions += 1
                    latency = self.network.link(node, neighbour).latency
                    if neighbour == target:
                        if len(arrivals) < self._max_duplicates:
                            arrivals.append(
                                Arrival(token=token, arrive_at=now + depth + latency)
                            )
                        continue
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append((neighbour, depth + latency))
            frontier = next_frontier
        return arrivals


class PathRelay(RelayStrategy):
    """[HK89]-style path maintenance: one cached route per direction.

    A packet travels its direction's current path hop by hop.  The cached
    route is validated against the live topology before every send: when a
    transit link has gone down since the route was cached (the "error
    detected" case) the stale route is discarded — counted in
    :attr:`reroutes` — and the packet rides the recomputed path instead of
    dying at the dead hop.  Only when *no* up path exists is the packet
    lost; the data link's retransmission machinery is what recovers then,
    exactly the division of labour the paper describes.  Callers that
    observe link failures directly (the fabric's topology events) can
    invalidate eagerly via :meth:`on_link_down`.
    """

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        self._paths: Dict[str, Optional[List]] = {"fwd": None, "rev": None}
        self.path_repairs = 0
        self.reroutes = 0
        self.losses = 0

    def current_path(self, direction: str) -> Optional[List]:
        """The cached route for a direction (None until first use)."""
        return self._paths.get(direction)

    def on_link_down(self, a, b) -> None:
        """Eagerly drop any cached route that crossed the failed link."""
        failed = frozenset((a, b))
        for direction, path in self._paths.items():
            if path is not None and any(
                frozenset(hop) == failed for hop in zip(path, path[1:])
            ):
                self._paths[direction] = None
                self.reroutes += 1

    def _path_up(self, path: List) -> bool:
        return all(
            self.network.link_up(hop_from, hop_to)
            for hop_from, hop_to in zip(path, path[1:])
        )

    def inject(self, token, now, direction, rng) -> List[Arrival]:
        origin, target = self.endpoints(direction)
        path = self._paths[direction]
        if path is not None and not self._path_up(path):
            # Stale route: a transit link went down after it was cached.
            # Repair *before* sending so the packet takes the fresh path
            # instead of being sacrificed to discover the failure.
            self._paths[direction] = path = None
            self.reroutes += 1
        if path is None:
            path = self._recompute(origin, target)
        if path is None:
            self.losses += 1
            return []
        elapsed = 0
        for hop_from, hop_to in zip(path, path[1:]):
            self.transmissions += 1
            elapsed += self.network.link(hop_from, hop_to).latency
        self._paths[direction] = path
        return [Arrival(token=token, arrive_at=now + elapsed)]

    def _recompute(self, origin, target) -> Optional[List]:
        self.path_repairs += 1
        try:
            path = nx.shortest_path(self.network.up_subgraph(), origin, target)
        except nx.NetworkXNoPath:
            return None
        key = "fwd" if origin == self.network.source else "rev"
        self._paths[key] = path
        return path
